"""Chaos suite — the price of failover under a byzantine mediator.

One (w = 3, t = 2) threshold cluster signs the same blinded batch twice:
once all-healthy, once with SEM 0 byzantine.  The faulty round pays the
full detection-and-recovery path — the bad share batch fails Eq. 14
verification, the health scoreboard trips its circuit breaker, and the
round completes on the healthy majority.  The op-count delta between the
two phases is deterministic, so the committed ``BENCH_chaos.json``
trajectory pins the exact failover overhead next to the clean
``BENCH_service.json`` throughput numbers.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import (
    count_ops,
    dense_data,
    record_suite_run,
    time_call,
    write_bench_json,
)
from repro.core.blocks import aggregate_block, encode_data
from repro.core.multi_sem import SEMCluster
from repro.core.params import setup
from repro.crypto.blind_bls import blind
from repro.obs.bench import make_phase
from repro.service.failover import FailoverConfig, FailoverMultiSEMClient

K = 4
N_BLOCKS = 8
T = 2


def _blinded(params, group):
    rng = random.Random(31)
    blocks = encode_data(dense_data(params, N_BLOCKS), params, b"bench")
    return [blind(group, aggregate_block(params, b), rng).blinded for b in blocks]


def _cluster(group):
    return SEMCluster(group, t=T, rng=random.Random(37), require_membership=False)


def _round_over(cluster, blinded):
    """One full failover round with a fresh client (fresh scoreboard), so
    every measured call pays an identical, deterministic op mix."""
    client = FailoverMultiSEMClient.from_cluster(
        cluster,
        config=FailoverConfig(max_attempts=1, quarantine_rounds=4),
        rng=random.Random(41),
    )
    return client.sign_blinded_batch(blinded)


@pytest.mark.benchmark(group="chaos")
def test_chaos_failover_overhead(benchmark, fast_group):
    params = setup(fast_group, K)
    blinded = _blinded(params, fast_group)
    clean = _cluster(fast_group)
    faulty = _cluster(fast_group)
    faulty.corrupt(0)

    timings = {}

    def sweep():
        timings["clean"] = time_call(lambda: _round_over(clean, blinded), repeats=2)
        timings["byzantine"] = time_call(lambda: _round_over(faulty, blinded), repeats=2)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    ops_clean = count_ops(fast_group, lambda: _round_over(clean, blinded))
    ops_byz = count_ops(fast_group, lambda: _round_over(faulty, blinded))
    n = len(blinded)
    rate_clean = n / timings["clean"]
    rate_byz = n / timings["byzantine"]
    overhead = timings["byzantine"] / timings["clean"]

    lines = [
        f"{'round':>10}  {'sig/s':>10}  {'pairings':>8}  {'exp_g1':>8}",
        f"{'clean':>10}  {rate_clean:>10.1f}  {ops_clean.get('pairings', 0):>8}"
        f"  {ops_clean.get('exp_g1', 0):>8}",
        f"{'byzantine':>10}  {rate_byz:>10.1f}  {ops_byz.get('pairings', 0):>8}"
        f"  {ops_byz.get('exp_g1', 0):>8}",
        f"failover overhead: {overhead:.2f}x wall; byzantine share batch "
        "rejected via Eq. 14, round completed on the healthy majority",
    ]
    record_report("Chaos: failover overhead under a byzantine SEM", lines)
    write_bench_json(
        "chaos_failover",
        {
            "k": K, "t": T, "n_blinded": n,
            "clean_sig_per_s": rate_clean,
            "byzantine_sig_per_s": rate_byz,
            "overhead_x": overhead,
            "ops_clean": ops_clean,
            "ops_byzantine": ops_byz,
        },
    )

    # Standardized run document, phase names matching the CLI `chaos`
    # suite so the committed BENCH_chaos.json trajectory stays comparable.
    record_suite_run(
        "chaos",
        [
            make_phase("round.clean", timings["clean"], ops_clean,
                       scalars={"sig_per_s": rate_clean}),
            make_phase("round.byzantine", timings["byzantine"], ops_byz,
                       scalars={"sig_per_s": rate_byz, "overhead_x": overhead}),
        ],
        config={"param_set": "toy-64", "k": K, "t": T,
                "n_blinded": n, "byzantine": 1},
    )

    # Correctness of what we timed: both rounds yield signatures that
    # verify under the cluster's master public key.
    group = fast_group
    for cluster in (clean, faulty):
        for m, sig in zip(blinded, _round_over(cluster, blinded)):
            assert group.pair(sig, group.g2()) == group.pair(m, cluster.master_pk)
    # The byzantine round's extra cost is the detection path: one more
    # contacted endpoint's share batch verified (pairings) and rejected.
    assert ops_byz.get("pairings", 0) > ops_clean.get("pairings", 0)
    assert ops_byz.get("exp_g1", 0) > ops_clean.get("exp_g1", 0)
