"""Figure 6(a) — owner ↔ SEM communication during signature generation
versus k, for the single-SEM mode and multi-SEM with w = 3 and w = 5.

Paper numbers (2 GB data, |p| = 160, group elements counted as |p| bits):
k = 100 -> 40 MB single-SEM; k = 1000 -> 4 MB single-SEM / 20 MB at w = 5.
Communication falls as 1/k and scales linearly in w.

The formula totals are validated against actual byte counts from the
discrete-event network simulation at small scale before extrapolating.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import fmt_header, fmt_row
from repro.analysis.cost_model import CostModel
from repro.core.params import setup
from repro.net import build_protocol_network

KS = [100, 200, 500, 1000]


@pytest.mark.benchmark(group="fig6a")
def test_fig6a_signing_communication(benchmark, fast_group, units):
    simulated: dict[str, int] = {}

    def run_simulation():
        """Small-scale ground truth: count real bytes over the simulator."""
        simulated.clear()
        params = setup(fast_group, k=4)
        data = bytes(range(1, 200))
        for threshold, label in [(None, "single"), (2, "w=3"), (3, "w=5")]:
            sim, owner, _ = build_protocol_network(
                params, threshold=threshold, rng=random.Random(5)
            )
            for message in owner.start_upload(data, b"f"):
                sim.send(message)
            sim.run()
            assert owner.completed_uploads == [b"f"]
            sem_names = [n for n in sim.nodes if n.startswith("sem-")]
            total = sum(
                sim.bytes_between("owner", s) + sim.bytes_between(s, "owner")
                for s in sem_names
            )
            simulated[label] = total
        return simulated

    benchmark.pedantic(run_simulation, rounds=1, iterations=1)

    # Ground truth check: per-block traffic is exactly 2 compressed G1
    # elements per contacted SEM (the paper's "2|p| bits per block" with
    # honest serialization).
    params = setup(fast_group, k=4)
    data = bytes(range(1, 200))
    from repro.core.blocks import encode_data

    n = len(encode_data(data, params, b"f"))
    element = fast_group.g1_element_bytes()
    assert simulated["single"] == 2 * n * element
    assert simulated["w=3"] == 3 * 2 * n * element
    assert simulated["w=5"] == 5 * 2 * n * element

    model = CostModel(units)
    mb = 1024**2
    single = [model.signing_communication_bytes(k, w=1) / mb for k in KS]
    w3 = [model.signing_communication_bytes(k, w=3) / mb for k in KS]
    w5 = [model.signing_communication_bytes(k, w=5) / mb for k in KS]
    lines = [
        fmt_header("k ->", KS),
        fmt_row("Single-Signer (2GB)", single, unit="MB"),
        fmt_row("Multi-Signer w=3 (2GB)", w3, unit="MB"),
        fmt_row("Multi-Signer w=5 (2GB)", w5, unit="MB"),
        "paper: 40 MB at k=100 (single); 4 MB at k=1000; 20 MB at k=1000, w=5",
        f"simulator ground truth (k=4, n={n}): {simulated}",
    ]
    record_report("Fig 6(a): owner-SEM communication vs k", lines)

    # Paper anchor points.
    assert 40 <= single[0] <= 43
    assert 4 <= single[-1] <= 4.3
    assert 20 <= w5[-1] <= 21.5
    # 1/k decay and linear scaling in w.
    assert single == sorted(single, reverse=True)
    for s, a, b in zip(single, w3, w5):
        assert a == pytest.approx(3 * s)
        assert b == pytest.approx(5 * s)
