"""Figure 6(b) — cloud storage consumed by signatures versus k.

One signature per block means signature storage = data_size / k under the
paper's element-size convention: 20 MB at k = 100 falling to 2 MB at
k = 1000 for 2 GB of data.  The number of SEMs does not affect storage
(the combined multi-SEM signature is a single G1 element — asserted here
by byte-measuring actual cloud state in both modes).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import fmt_header, fmt_row
from repro.analysis.cost_model import CostModel
from repro.core import SemPdpSystem
from repro.core.params import setup

KS = [100, 200, 500, 1000]


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_signature_storage(benchmark, fast_group, units):
    stored_bytes: dict[str, int] = {}

    def run_storage():
        stored_bytes.clear()
        data = bytes(range(1, 240))
        for threshold, label in [(None, "single"), (2, "multi w=3")]:
            system = SemPdpSystem.create(fast_group, k=4, threshold=threshold,
                                         rng=random.Random(3))
            owner = system.enroll("alice")
            system.upload(owner, data, b"f")
            stored_bytes[label] = system.cloud.retrieve(b"f").signature_storage_bytes()
        return stored_bytes

    benchmark.pedantic(run_storage, rounds=1, iterations=1)

    # Ground truth: storage identical in single- and multi-SEM modes.
    assert stored_bytes["single"] == stored_bytes["multi w=3"]

    model = CostModel(units)
    mb = 1024**2
    storage = [model.signature_storage_bytes(k) / mb for k in KS]
    # Larger-k ground truth for the 1/k decay using real encodings.
    params_k4 = setup(fast_group, k=4)
    params_k8 = setup(fast_group, k=8)
    data = bytes(range(1, 240))
    from repro.core.blocks import encode_data

    n4 = len(encode_data(data, params_k4, b"f"))
    n8 = len(encode_data(data, params_k8, b"f"))
    lines = [
        fmt_header("k ->", KS),
        fmt_row("Signature storage (2GB)", storage, unit="MB"),
        "paper: ~20 MB at k=100 falling to ~2 MB at k=1000",
        f"doubling k halves the block count: n(k=4)={n4}, n(k=8)={n8}",
        f"multi-SEM stores the same bytes as single-SEM: {stored_bytes}",
    ]
    record_report("Fig 6(b): signature storage vs k", lines)

    assert 20 <= storage[0] <= 21.5  # k = 100
    assert 2 <= storage[-1] <= 2.2  # k = 1000
    assert storage == sorted(storage, reverse=True)
    assert n4 == pytest.approx(2 * n8, abs=1)
