"""Flight-recorder overhead — the ≤5% gate behind the tamper-evident ledger.

The recorder (causal tracing + hash-chained ledger) must be cheap enough
to leave on: it copies integers and hashes canonical JSON but never
touches the curve, so its group-operation footprint is *exactly* zero and
its wall-clock overhead on the service scenario must stay within 5%.
Wall time is the only noisy axis — the gate takes the best of a few suite
attempts so a single scheduler hiccup on a shared runner cannot flake it,
while a real regression (recording on the hot path, accidental fsync)
still trips every attempt.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import record_suite_run, write_bench_json
from repro.obs import Ledger, Observability
from repro.obs.bench import _SCENARIO_SUITE_DOCS, run_suite
from repro.scenarios import ScenarioRunner, scenario_from_dict

REPEATS = 3
#: The acceptance gate: recorder-on wall time within 5% of recorder-off.
MAX_OVERHEAD_X = 1.05
#: Suite attempts before the wall gate is declared failed (noise armour).
ATTEMPTS = 3


def _recorded_run():
    doc = _SCENARIO_SUITE_DOCS["open.poisson"]
    ledger = Ledger()
    runner = ScenarioRunner(scenario_from_dict(doc), obs=Observability.create(),
                            ledger=ledger)
    return runner.run(), ledger


@pytest.mark.benchmark(group="ledger")
def test_ledger_overhead(benchmark):
    runs = []

    def sweep():
        runs.append(run_suite("ledger", repeats=REPEATS))
        scalars = runs[-1]["phases"][1]["scalars"]
        while scalars["overhead_x"] > MAX_OVERHEAD_X and len(runs) < ATTEMPTS:
            runs.append(run_suite("ledger", repeats=REPEATS))
            scalars = runs[-1]["phases"][1]["scalars"]

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    doc = min(runs, key=lambda r: r["phases"][1]["scalars"]["overhead_x"])
    phases = doc["phases"]
    scalars = phases[1]["scalars"]

    lines = [f"{'phase':>14}  {'wall_s':>8}  {'Exp':>6}  {'Pair':>5}"]
    for phase in phases:
        lines.append(
            f"{phase['name']:>14}  {phase['wall_s']:>8.3f}"
            f"  {phase['exp']:>6}  {phase['pair']:>5}"
        )
    lines.append(
        f"overhead {scalars['overhead_x']:.3f}x"
        f"  dExp {int(scalars['delta_exp'])}"
        f"  dPair {int(scalars['delta_pair'])}"
        f"  ledger entries {int(scalars['ledger_entries'])}"
    )
    record_report("Flight recorder: tracing + ledger overhead", lines)
    write_bench_json(
        "ledger_overhead", {"phases": phases, "config": doc["config"]}
    )
    record_suite_run("ledger", phases, doc["config"])

    # The gates. Group operations must be bit-identical with the recorder
    # on — recording reads results, it never adds crypto work — and wall
    # overhead must clear the acceptance bar on at least one attempt.
    assert scalars["delta_exp"] == 0
    assert scalars["delta_pair"] == 0
    assert scalars["ledger_entries"] > 0
    assert scalars["overhead_x"] <= MAX_OVERHEAD_X, (
        f"recorder overhead {scalars['overhead_x']:.3f}x exceeds "
        f"{MAX_OVERHEAD_X}x on every attempt"
    )


def test_ledger_head_deterministic():
    """A double run reproduces the chain head hash bit-for-bit."""
    first, first_ledger = _recorded_run()
    second, second_ledger = _recorded_run()
    assert first_ledger.head() == second_ledger.head()
    assert first.digest() == second.digest()
    assert first.ledger == second.ledger
