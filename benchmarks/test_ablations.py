"""Ablations for the design choices DESIGN.md calls out.

* batch vs per-signature unblind verification (Eq. 4 vs Eq. 7) — pairing
  counts, isolated from the rest of signing;
* small-exponent challenges (β from Z_q, |q| = 80 ≪ |p|) — the Response
  and Verify exponentiations shrink with |β|;
* Straus multi-scalar multiplication vs naive per-term exponentiation —
  the generic-substrate optimization available to verifiers.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import record_report
from repro.core.accounting import CostTracker
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier


@pytest.mark.benchmark(group="ablation")
def test_ablation_batch_unblind(benchmark, paper_group, paper_params_factory):
    """Eq. 7 replaces 2n pairings with (2n extra Exp + 2 pairings)."""
    outcome: dict[str, float] = {}

    def run():
        outcome.clear()
        params = paper_params_factory(20)
        n_blocks = 6
        data = bytes((i % 255) + 1 for i in range(params.block_bytes() * n_blocks - 8))
        for label, batch in [("per-signature", False), ("batched", True)]:
            sem = SecurityMediator(paper_group, rng=random.Random(1), require_membership=False)
            owner = DataOwner(params, sem.pk, rng=random.Random(2))
            with CostTracker(paper_group) as tracker:
                owner.sign_file(data, b"f", sem, batch=batch)
            outcome[f"{label} pairings"] = tracker.pairings
            outcome[f"{label} seconds"] = tracker.elapsed_seconds

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome["per-signature pairings"] == 12  # 2n
    assert outcome["batched pairings"] == 2
    record_report(
        "Ablation: batch unblind verification (n=6, k=20)",
        [
            f"per-signature: {outcome['per-signature pairings']} pairings, "
            f"{outcome['per-signature seconds']*1000:.1f} ms",
            f"batched:       {outcome['batched pairings']} pairings, "
            f"{outcome['batched seconds']*1000:.1f} ms",
        ],
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_small_exponents(benchmark, paper_group, paper_params_factory):
    """β from Z_q with |q| = 80 halves the challenged-block exponentiation
    cost in Response and Verify, with soundness 2^-80 (Ferrara et al.)."""
    outcome: dict[str, float] = {}

    def run():
        outcome.clear()
        params = paper_params_factory(20)
        rng = random.Random(3)
        sem = SecurityMediator(paper_group, rng=rng, require_membership=False)
        owner = DataOwner(params, sem.pk, rng=rng)
        cloud = CloudServer(params, rng=rng)
        verifier = PublicVerifier(params, sem.pk, rng=rng)
        n_blocks = 10
        data = bytes((i % 255) + 1 for i in range(params.block_bytes() * n_blocks - 8))
        cloud.store(owner.sign_file(data, b"f", sem))
        for label, bits in [("full |p|=160", None), ("small |q|=80", 80)]:
            ch = verifier.generate_challenge(b"f", n_blocks, beta_bits=bits)
            start = time.perf_counter()
            proof = cloud.generate_proof(b"f", ch)
            respond = time.perf_counter() - start
            start = time.perf_counter()
            assert verifier.verify(ch, proof)
            verify = time.perf_counter() - start
            outcome[label] = respond + verify

    benchmark.pedantic(run, rounds=1, iterations=1)
    # 80-bit exponents should cut the β-dependent work noticeably; the
    # u^alpha terms (full-size alphas) keep it well below 2x.
    assert outcome["small |q|=80"] < outcome["full |p|=160"]
    record_report(
        "Ablation: small-exponent challenges (n=10, k=20)",
        [f"{k}: {v*1000:.1f} ms respond+verify" for k, v in outcome.items()],
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_multi_scalar_mul(benchmark):
    """Straus interleaving vs naive sum of per-term scalar mults."""
    from repro.ec.curve import EllipticCurve
    from repro.ec.scalar_mul import multi_scalar_mul
    from repro.mathkit.field import PrimeField
    from repro.mathkit.ntheory import sqrt_mod

    p = 2**127 - 1
    F = PrimeField(p)
    curve = EllipticCurve(F(1), F(0), F(0))
    x = 3
    while True:
        rhs = (x**3 + x) % p
        y = sqrt_mod(rhs, p)
        if y is not None:
            break
        x += 1
    base = curve.point(F(x), F(y))
    rng = random.Random(5)
    points = [n * base for n in range(3, 35)]
    scalars = [rng.getrandbits(126) for _ in points]
    outcome: dict[str, float] = {}

    def run():
        start = time.perf_counter()
        naive = points[0] * scalars[0]
        for pt, sc in zip(points[1:], scalars[1:]):
            naive = naive + pt * sc
        outcome["naive"] = time.perf_counter() - start
        start = time.perf_counter()
        fast = multi_scalar_mul(points, scalars)
        outcome["straus"] = time.perf_counter() - start
        assert naive == fast

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome["straus"] < outcome["naive"]
    record_report(
        "Ablation: multi-scalar multiplication (32 terms, 126-bit scalars)",
        [
            f"naive per-term: {outcome['naive']*1000:.1f} ms",
            f"Straus:         {outcome['straus']*1000:.1f} ms "
            f"({outcome['naive']/outcome['straus']:.2f}x)",
        ],
    )
