"""Table II — public verification at k = 1000: all n = 100,000 blocks vs
a c = 460 sample.

Paper values: 189.83 s / 2.27 MB when challenging every block, 0.21 s /
314.16 KB when sampling c = 460 (with > 99% detection probability for a
1% corruption).

The (c + k) Exp + 2 Pair verification cost is *measured* at a reduced
scale and checked against the cost model's prediction; the paper-scale
row is then the model evaluated at (n, c) = (100,000, 460) with this
machine's calibrated units.  Detection probability is validated
empirically by corrupting 1% of blocks and sampling.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from repro.analysis.cost_model import CostModel
from repro.core import SemPdpSystem
from repro.core.verifier import detection_probability

K_PAPER = 1000
C_PAPER = 460


@pytest.mark.benchmark(group="table2")
def test_table2_verification_cost(benchmark, paper_group, paper_params_factory, units):
    """Measure verification wall-clock at reduced scale, extrapolate."""
    measured: dict[str, float] = {}

    def run():
        measured.clear()
        import time

        k = 50
        params = paper_params_factory(k)
        system_rng = random.Random(9)
        from repro.core.cloud import CloudServer
        from repro.core.owner import DataOwner
        from repro.core.sem import SecurityMediator
        from repro.core.verifier import PublicVerifier

        sem = SecurityMediator(paper_group, rng=system_rng, require_membership=False)
        owner = DataOwner(params, sem.pk, rng=system_rng)
        cloud = CloudServer(params, rng=system_rng)
        verifier = PublicVerifier(params, sem.pk, rng=system_rng)
        data = bytes((i % 255) + 1 for i in range(params.block_bytes() * 12 - 8))
        cloud.store(owner.sign_file(data, b"f", sem))
        n = cloud.retrieve(b"f").n_blocks
        for label, c in [("all blocks", None), ("sampled c=4", 4)]:
            ch = verifier.generate_challenge(b"f", n, sample_size=c)
            proof = cloud.generate_proof(b"f", ch)
            start = time.perf_counter()
            assert verifier.verify(ch, proof)
            measured[label] = time.perf_counter() - start
        measured["n"] = n
        measured["k"] = k

    benchmark.pedantic(run, rounds=1, iterations=1)

    model = CostModel(units)
    # Model-vs-measurement validation at the reduced scale.
    predicted_all = model.verification_seconds(int(measured["n"]), int(measured["k"]))
    assert 0.3 < predicted_all / measured["all blocks"] < 3.0

    n_paper = model.n_blocks(K_PAPER)
    full_s = model.verification_seconds(n_paper, K_PAPER)
    sampled_s = model.verification_seconds(C_PAPER, K_PAPER)
    full_mb = model.verification_communication_bytes(n_paper, K_PAPER) / 1024**2
    sampled_kb = model.verification_communication_bytes(C_PAPER, K_PAPER) / 1024
    lines = [
        f"{'':<26}{'n = ' + format(n_paper, ','):>16}{'c = 460':>12}",
        f"{'Computation (s)':<26}{full_s:>16.2f}{sampled_s:>12.2f}",
        f"{'Communication':<26}{full_mb:>14.2f}MB{sampled_kb:>10.2f}KB",
        "paper: 189.83 s / 2.27 MB (all) vs 0.21 s / 314.16 KB (c=460)",
        f"measured at reduced scale (n={int(measured['n'])}, k=50): "
        f"all={measured['all blocks']*1000:.1f} ms, c=4={measured['sampled c=4']*1000:.1f} ms",
        f"detection probability at c=460, 1% corruption: "
        f"{detection_probability(0.01, C_PAPER):.4f} (> 0.99)",
    ]
    record_report("Table II: public verification, full vs sampled", lines)

    # Shape: sampling buys a huge factor in both compute and bytes.
    assert full_s / sampled_s > 30
    assert full_mb * 1024 / sampled_kb > 30
    assert detection_probability(0.01, C_PAPER) > 0.99


@pytest.mark.benchmark(group="table2")
def test_table2_detection_probability_empirical(benchmark, fast_group):
    """Corrupt 1% of blocks; sampling must detect at close to 1-(1-f)^c."""
    outcome: dict[str, float] = {}

    def run():
        outcome.clear()
        rng = random.Random(17)
        system = SemPdpSystem.create(fast_group, k=2, rng=rng)
        owner = system.enroll("alice")
        params = system.params
        n_blocks = 200
        data = bytes((i % 255) + 1 for i in range(params.block_bytes() * n_blocks - 8))
        system.upload(owner, data, b"f")
        # Corrupt 1% of blocks (2 of 200).
        corrupt = rng.sample(range(n_blocks), 2)
        for index in corrupt:
            system.cloud.tamper_block(b"f", index)
        c = 100
        trials = 40
        detected = sum(not system.audit(b"f", sample_size=c) for _ in range(trials))
        outcome["rate"] = detected / trials
        outcome["expected"] = 1 - (1 - 2 / n_blocks) ** c

    benchmark.pedantic(run, rounds=1, iterations=1)
    # Expected ~0.63 for f=1%, c=100 (hypergeometric is even higher);
    # allow generous sampling noise for 40 trials.
    assert outcome["rate"] >= outcome["expected"] - 0.25
    record_report(
        "Table II (supplement): empirical detection rate",
        [
            f"corrupt 1% of 200 blocks, c=100: detected {outcome['rate']:.2f}"
            f" vs model {outcome['expected']:.2f}",
        ],
    )
