"""Figure 5(b) — signature generation time versus the threshold t.

Paper shape: per-block time grows mildly and linearly with t (more share
verifications and a t-term Lagrange combination per block), for both
k = 100 and k = 1000; the k term dominates throughout.

k = 100 is measured; k = 1000 is rendered through the calibrated cost
model (a single k = 1000 block costs >4 s in pure Python, times 4 values
of t would blow the benchmark budget without adding information).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import fmt_header, fmt_row, multi_sem_per_block_ms
from repro.analysis.cost_model import CostModel

TS = [2, 3, 4, 5]
K_MEASURED = 100
N_BLOCKS = 2


@pytest.mark.benchmark(group="fig5b")
def test_fig5b_time_vs_threshold(benchmark, paper_group, paper_params_factory, units):
    measured = []

    def sweep():
        measured.clear()
        params = paper_params_factory(K_MEASURED)
        for t in TS:
            measured.append(
                multi_sem_per_block_ms(params, paper_group, t=t, batch=True, n_blocks=N_BLOCKS)
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    model = CostModel(units)
    model_k100 = [model.signing_per_block_ms(K_MEASURED, t=t, optimized=True) for t in TS]
    model_k1000 = [model.signing_per_block_ms(1000, t=t, optimized=True) for t in TS]
    lines = [
        fmt_header("t ->", TS),
        fmt_row(f"k={K_MEASURED} (measured)", measured),
        fmt_row(f"k={K_MEASURED} (model)", model_k100),
        fmt_row("k=1000 (model)", model_k1000),
        "paper: mild linear growth in t; k=1000 an order above k=100",
    ]
    record_report("Fig 5(b): signing time vs number of valid SEMs t", lines)

    # Shape 1: monotone growth in t (each t adds ~4 Exp_G1 per block).
    assert measured == sorted(measured)
    # Shape 2: the growth is mild — quintupling t far less than doubles cost.
    assert measured[-1] < 2.0 * measured[0]
    # Shape 3: k = 1000 dwarfs k = 100 at every t (the k term dominates).
    for small, large in zip(model_k100, model_k1000):
        assert large > 5 * small
