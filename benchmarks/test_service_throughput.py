"""Service layer — batched signing pipeline vs the sequential baseline.

Where the speedup comes from (per n-signature batch):

=================  =======================  ==========================
stage              sequential               batched pipeline
=================  =======================  ==========================
transport          n round trips            1 round trip
verification       2n pairings (Eq. 4)      2 pairings (Eq. 7)
blind/unblind      2n full exponentiations  2n fixed-base table passes
aggregation        k exps per block         k table passes per block
=================  =======================  ==========================

The acceptance bar for the service subsystem: >= 2x signatures/sec at
batch size 64.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import dense_data, time_call
from repro.core.blocks import encode_data
from repro.core.params import setup
from repro.core.sem import SecurityMediator
from repro.service.api import SignRequest, next_request_id
from repro.service.pipeline import SigningPipeline

BATCH_SIZES = [1, 8, 64]
K = 4


def _requests(params, n: int) -> list[SignRequest]:
    """n one-block requests (batch size = requests coalesced per pass)."""
    data = dense_data(params, n)
    blocks = encode_data(data, params, b"bench")
    assert len(blocks) >= n
    return [
        SignRequest(request_id=next_request_id(), owner="bench", blocks=(block,))
        for block in blocks[:n]
    ]


@pytest.mark.benchmark(group="service")
def test_service_batched_vs_sequential_throughput(benchmark, fast_group):
    params = setup(fast_group, K)
    sem = SecurityMediator(fast_group, rng=random.Random(5), require_membership=False)
    batched_pipeline = SigningPipeline(
        params, sem, sem.pk, org_pk_g1=sem.pk_g1, rng=random.Random(6)
    )
    sequential_pipeline = SigningPipeline(
        params, sem, sem.pk, org_pk_g1=sem.pk_g1, use_fixed_base=False,
        rng=random.Random(7),
    )

    rows = {}

    def sweep():
        rows.clear()
        for n in BATCH_SIZES:
            requests = _requests(params, n)
            t_batch = time_call(
                lambda: batched_pipeline.sign_batch(requests), repeats=2
            )
            t_seq = time_call(
                lambda: [sequential_pipeline.sign_sequential(r) for r in requests],
                repeats=2,
            )
            rows[n] = (n / t_batch, n / t_seq, t_seq / t_batch)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'batch':>6}  {'batched sig/s':>14}  {'sequential sig/s':>17}  {'speedup':>8}"
    ]
    for n, (batched_rate, seq_rate, speedup) in rows.items():
        lines.append(
            f"{n:>6}  {batched_rate:>14.1f}  {seq_rate:>17.1f}  {speedup:>7.2f}x"
        )
    lines.append(
        "one transport round trip + 2 pairings per batch (Eq. 7) vs per-item"
    )
    lines.append("round trips + 2 pairings each (Eq. 4); fixed-base tables amortized")
    record_report("Service throughput: batched vs sequential signing", lines)

    # Acceptance: batching is >= 2x at batch size 64.
    assert rows[64][2] >= 2.0, f"batched speedup at 64 was only {rows[64][2]:.2f}x"
    # Correctness of what we timed: both paths produce verifying signatures.
    check = _requests(params, 2)
    for result in batched_pipeline.sign_batch(check):
        assert result.ok
    assert all(sequential_pipeline.sign_sequential(r).ok for r in check)
