"""Service layer — batched signing pipeline vs the sequential baseline.

Where the speedup comes from (per n-signature batch):

=================  =======================  ==========================
stage              sequential               batched pipeline
=================  =======================  ==========================
transport          n round trips            1 round trip
verification       2n pairings (Eq. 4)      2 pairings (Eq. 7)
blind/unblind      2n full exponentiations  2n fixed-base table passes
aggregation        k exps per block         k table passes per block
=================  =======================  ==========================

The acceptance bar for the service subsystem: >= 2x signatures/sec at
batch size 64.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import (
    count_ops,
    dense_data,
    record_suite_run,
    time_call,
    write_bench_json,
)
from repro.obs.bench import make_phase
from repro.core.blocks import encode_data
from repro.core.params import setup
from repro.core.sem import SecurityMediator
from repro.obs import Observability
from repro.service.api import SignRequest, next_request_id
from repro.service.pipeline import SigningPipeline

BATCH_SIZES = [1, 8, 64]
K = 4


def _requests(params, n: int) -> list[SignRequest]:
    """n one-block requests (batch size = requests coalesced per pass)."""
    data = dense_data(params, n)
    blocks = encode_data(data, params, b"bench")
    assert len(blocks) >= n
    return [
        SignRequest(request_id=next_request_id(), owner="bench", blocks=(block,))
        for block in blocks[:n]
    ]


@pytest.mark.benchmark(group="service")
def test_service_batched_vs_sequential_throughput(benchmark, fast_group):
    params = setup(fast_group, K)
    sem = SecurityMediator(fast_group, rng=random.Random(5), require_membership=False)
    batched_pipeline = SigningPipeline(
        params, sem, sem.pk, org_pk_g1=sem.pk_g1, rng=random.Random(6)
    )
    sequential_pipeline = SigningPipeline(
        params, sem, sem.pk, org_pk_g1=sem.pk_g1, use_fixed_base=False,
        rng=random.Random(7),
    )

    rows = {}

    def sweep():
        rows.clear()
        for n in BATCH_SIZES:
            requests = _requests(params, n)
            t_batch = time_call(
                lambda: batched_pipeline.sign_batch(requests), repeats=2
            )
            t_seq = time_call(
                lambda: [sequential_pipeline.sign_sequential(r) for r in requests],
                repeats=2,
            )
            rows[n] = (n / t_batch, n / t_seq, t_seq / t_batch)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'batch':>6}  {'batched sig/s':>14}  {'sequential sig/s':>17}  {'speedup':>8}"
    ]
    for n, (batched_rate, seq_rate, speedup) in rows.items():
        lines.append(
            f"{n:>6}  {batched_rate:>14.1f}  {seq_rate:>17.1f}  {speedup:>7.2f}x"
        )
    # Op-count annotation: the exact operation mix behind each timing.
    ops_batched = count_ops(
        fast_group, lambda: batched_pipeline.sign_batch(_requests(params, 8))
    )
    ops_sequential = count_ops(
        fast_group,
        lambda: [sequential_pipeline.sign_sequential(r) for r in _requests(params, 8)],
    )
    lines.append(
        f"per 8-signature pass: batched {ops_batched.get('pairings', 0)} pairings, "
        f"sequential {ops_sequential.get('pairings', 0)} pairings"
    )

    # Tracing overhead: the same batched pass with live spans + op counting.
    obs = Observability.create()
    traced_pipeline = SigningPipeline(
        params, sem, sem.pk, org_pk_g1=sem.pk_g1, rng=random.Random(6), obs=obs
    )
    obs.observe_group(fast_group)
    requests_64 = _requests(params, 64)
    try:
        t_plain = time_call(lambda: batched_pipeline.sign_batch(requests_64), repeats=5)
        t_traced = time_call(lambda: traced_pipeline.sign_batch(requests_64), repeats=5)
    finally:
        fast_group.detach_counter()
    overhead = t_traced / t_plain - 1.0
    lines.append(f"tracing overhead on a 64-batch: {overhead * 100:+.1f}%")
    lines.append(
        "one transport round trip + 2 pairings per batch (Eq. 7) vs per-item"
    )
    lines.append("round trips + 2 pairings each (Eq. 4); fixed-base tables amortized")
    record_report("Service throughput: batched vs sequential signing", lines)
    write_bench_json(
        "service_throughput",
        {
            "k": K,
            "batch_sizes": BATCH_SIZES,
            "rows": {
                str(n): {
                    "batched_sig_per_s": batched_rate,
                    "sequential_sig_per_s": seq_rate,
                    "speedup": speedup,
                }
                for n, (batched_rate, seq_rate, speedup) in rows.items()
            },
            "ops_per_8_batched": ops_batched,
            "ops_per_8_sequential": ops_sequential,
            "tracing_overhead": overhead,
        },
    )

    # Standardized run document, phase names matching the CLI `service`
    # suite so the committed BENCH_service.json trajectory stays comparable.
    t_batch64, batched_rate64 = 64 / rows[64][0], rows[64][0]
    t_seq64, seq_rate64 = 64 / rows[64][1], rows[64][1]
    requests_again = _requests(params, 64)
    record_suite_run(
        "service",
        [
            make_phase(
                "batched.64", t_batch64,
                count_ops(fast_group, lambda: batched_pipeline.sign_batch(requests_again)),
                scalars={"sig_per_s": batched_rate64},
            ),
            make_phase(
                "sequential.64", t_seq64,
                count_ops(
                    fast_group,
                    lambda: [sequential_pipeline.sign_sequential(r) for r in requests_again],
                ),
                scalars={"sig_per_s": seq_rate64},
            ),
        ],
        config={"param_set": "toy-64", "k": K, "batch": 64},
    )

    # Acceptance: batching is >= 2x at batch size 64.
    assert rows[64][2] >= 2.0, f"batched speedup at 64 was only {rows[64][2]:.2f}x"
    # Acceptance: live tracing costs <= 5% (plus 2 ms of timer slack).
    assert t_traced <= t_plain * 1.05 + 0.002, (
        f"tracing overhead {overhead * 100:.1f}% exceeds 5%"
    )
    # Correctness of what we timed: both paths produce verifying signatures.
    check = _requests(params, 2)
    for result in batched_pipeline.sign_batch(check):
        assert result.ok
    assert all(sequential_pipeline.sign_sequential(r).ok for r in check)
