"""Figure 4(a) — signature generation time (ms/block) versus k.

Series: "Our Scheme" (per-signature Eq. 4 verification), "Our Scheme*"
(Eq. 7 batch verification), and "SW08/WCWRL11" (owner signs locally).

Paper shape at k = 100 (Intel i5, PBC): 34.99 ms / 14.13 ms / 13.76 ms —
basic is several times slower, batch-unblinding closes the gap to near
parity with SW08.  The basic-vs-optimized *ratio* depends on the machine's
pairing/exponentiation cost ratio (~80x with 2013-era PBC, ~3x for this
pure-Python backend), so we report the measured curve plus the cost-model
curve evaluated with the paper's ratio; the orderings must hold on both.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import (
    fmt_header,
    fmt_row,
    record_suite_run,
    sem_pdp_per_block_ms,
    sw08_per_block_ms,
)
from repro.obs.bench import make_phase
from repro.analysis.calibrate import UnitCosts
from repro.analysis.cost_model import CostModel

KS = [20, 50, 100, 200]  # model curves
KS_MEASURED = [20, 50, 100]  # wall-clock sweep (pure Python is slow)
N_BLOCKS = 4  # enough to amortize the batch's constant 2 pairings

# The paper testbed's unit-cost ratio (Section VI-B implies ~0.13 ms Exp,
# ~10.6 ms Pair on the authors' i5 + PBC).
PAPER_UNITS = UnitCosts(exp_g1=0.000134, pair=0.0106, mul_g1=2e-6, hash_g1=5e-4, mul_zp=1e-7)


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_signature_generation_vs_k(
    benchmark, paper_group, paper_params_factory, units
):
    measured_basic, measured_opt, measured_sw08 = [], [], []

    def sweep():
        measured_basic.clear()
        measured_opt.clear()
        measured_sw08.clear()
        for k in KS_MEASURED:
            params = paper_params_factory(k)
            measured_basic.append(
                sem_pdp_per_block_ms(params, paper_group, batch=False, n_blocks=N_BLOCKS)
            )
            measured_opt.append(
                sem_pdp_per_block_ms(params, paper_group, batch=True, n_blocks=N_BLOCKS)
            )
            measured_sw08.append(sw08_per_block_ms(params, n_blocks=N_BLOCKS))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    model_here = CostModel(units)
    model_paper = CostModel(PAPER_UNITS)
    lines = [
        fmt_header("k (measured) ->", KS_MEASURED),
        fmt_row("Our Scheme (measured)", measured_basic),
        fmt_row("Our Scheme* (measured)", measured_opt),
        fmt_row("SW08/WCWRL11 (measured)", measured_sw08),
        fmt_header("k (model) ->", KS),
        fmt_row("Our Scheme (model)", [model_here.signing_per_block_ms(k) for k in KS]),
        fmt_row("Our Scheme* (model)", [model_here.signing_per_block_ms(k, optimized=True) for k in KS]),
        fmt_row("Our Scheme (paper-ratio)", [model_paper.signing_per_block_ms(k) for k in KS]),
        fmt_row("Our Scheme* (paper-ratio)", [model_paper.signing_per_block_ms(k, optimized=True) for k in KS]),
        fmt_row("SW08 (paper-ratio)", [model_paper.sw08_per_block_ms(k) for k in KS]),
        "paper (k=100): Our 34.99 / Our* 14.13 / SW08 13.76 ms per block",
    ]
    record_report("Fig 4(a): signature generation time vs k", lines)
    # Wall-only phases (the sweep times whole helper closures, so there is
    # no per-phase op mix); the trajectory still tracks the measured curve.
    record_suite_run(
        "fig4a",
        [
            make_phase(
                f"sign.k{k}.{series}", ms / 1000.0,
                scalars={"ms_per_block": ms},
            )
            for k, basic, opt, sw in zip(
                KS_MEASURED, measured_basic, measured_opt, measured_sw08
            )
            for series, ms in (("basic", basic), ("opt", opt), ("sw08", sw))
        ],
        config={"param_set": "paper-160", "ks": KS_MEASURED, "n_blocks": N_BLOCKS},
    )

    for basic, opt, sw in zip(measured_basic, measured_opt, measured_sw08):
        # Shape 1 (sanity): batch unblinding is never materially worse.  On
        # this backend a pairing costs only ~1.5x an exponentiation, so the
        # expected gap (1.5 Pair - 2 Exp per block) is within run-to-run
        # noise; the strict ordering is asserted deterministically below
        # via operation counts x unit costs, exactly as the paper's own
        # Table I argues it.
        assert opt < basic * 1.15
        # Shape 2: optimized is close to SW08 (the SEM costs almost nothing).
        assert opt < 2.0 * sw
    # Shape 3: cost grows with k for every series.
    assert measured_opt == sorted(measured_opt)
    assert measured_sw08 == sorted(measured_sw08)
    # Shape 1 (deterministic, via op counts x calibrated units): basic
    # strictly dominates optimized on both unit-cost profiles.
    for m in (model_here, model_paper):
        for k in KS:
            assert m.signing_per_block_ms(k) > m.signing_per_block_ms(k, optimized=True)
    # Shape 4: with the paper's pairing ratio the model reproduces the
    # headline 2.5x gap at k = 100.
    ratio = model_paper.signing_per_block_ms(100) / model_paper.signing_per_block_ms(
        100, optimized=True
    )
    assert 2.0 < ratio < 3.0
