"""Supplement: audit cost scaling in the challenge size c.

Not a numbered figure in the paper, but the curve behind Table II's two
columns: verification time is (c + k) Exp + 2 Pair, so it is flat in the
file size and linear in c — the property that makes sampling worthwhile
at all.  Measured on paper-scale parameters.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import record_report
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier

CS = [1, 4, 8, 16]
K = 20
N_BLOCKS = 16


@pytest.mark.benchmark(group="supplement")
def test_audit_time_scales_linearly_in_c(benchmark, paper_group, paper_params_factory):
    timings: dict[int, float] = {}

    def run():
        timings.clear()
        params = paper_params_factory(K)
        rng = random.Random(8)
        sem = SecurityMediator(paper_group, rng=rng, require_membership=False)
        owner = DataOwner(params, sem.pk, rng=rng)
        cloud = CloudServer(params, rng=rng)
        verifier = PublicVerifier(params, sem.pk, rng=rng)
        data = bytes((i % 255) + 1 for i in range(params.block_bytes() * N_BLOCKS - 8))
        cloud.store(owner.sign_file(data, b"f", sem))
        for c in CS:
            ch = verifier.generate_challenge(b"f", N_BLOCKS, sample_size=c)
            proof = cloud.generate_proof(b"f", ch)
            start = time.perf_counter()
            assert verifier.verify(ch, proof)
            timings[c] = time.perf_counter() - start

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        f"Supplement: verification time vs challenge size c (k={K}, n={N_BLOCKS})",
        [f"c={c:>3}: {t*1000:8.1f} ms" for c, t in sorted(timings.items())]
        + ["flat in n, linear in c: the economics behind Table II's sampling column"],
    )
    # Monotone in c...
    values = [timings[c] for c in CS]
    assert values == sorted(values)
    # ...and sublinear growth overall: the k u-exponentiations and the two
    # pairings are a fixed floor, so 16x the blocks costs far less than 16x.
    assert values[-1] < 8 * values[0]
