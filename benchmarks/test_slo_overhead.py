"""SLO-engine overhead — the ≤5% gate behind always-on burn-rate alerting.

The harness (virtual-time sampler, multi-window burn-rate evaluation,
per-scope metering) must be cheap enough to leave on: it copies counter
integers at sampler ticks and divides them at evaluation, but it never
touches the curve, so its group-operation footprint is *exactly* zero
and its wall-clock overhead on the open-loop scenario must stay within
5%.  Wall time is the only noisy axis — the gate takes the best of a few
suite attempts so a scheduler hiccup on a shared runner cannot flake it,
while a real regression (per-event sampling, quadratic window scans)
still trips every attempt.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import record_suite_run, write_bench_json
from repro.obs.bench import run_suite
from repro.scenarios import run_scenario, scenario_from_dict

REPEATS = 3
#: The acceptance gate: SLO-harness-on wall time within 5% of harness-off.
MAX_OVERHEAD_X = 1.05
#: Suite attempts before the wall gate is declared failed (noise armour).
ATTEMPTS = 3


@pytest.mark.benchmark(group="slo")
def test_slo_overhead(benchmark):
    runs = []

    def sweep():
        runs.append(run_suite("slo", repeats=REPEATS))
        scalars = runs[-1]["phases"][1]["scalars"]
        while scalars["overhead_x"] > MAX_OVERHEAD_X and len(runs) < ATTEMPTS:
            runs.append(run_suite("slo", repeats=REPEATS))
            scalars = runs[-1]["phases"][1]["scalars"]

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    doc = min(runs, key=lambda r: r["phases"][1]["scalars"]["overhead_x"])
    phases = doc["phases"]
    scalars = phases[1]["scalars"]

    lines = [f"{'phase':>10}  {'wall_s':>8}  {'Exp':>6}  {'Pair':>5}"]
    for phase in phases:
        lines.append(
            f"{phase['name']:>10}  {phase['wall_s']:>8.3f}"
            f"  {phase['exp']:>6}  {phase['pair']:>5}"
        )
    lines.append(
        f"overhead {scalars['overhead_x']:.3f}x"
        f"  dExp {int(scalars['delta_exp'])}"
        f"  dPair {int(scalars['delta_pair'])}"
        f"  alert transitions {int(scalars['alert_transitions'])}"
        f"  metering records {int(scalars['metering_records'])}"
    )
    record_report("SLO engine: sampling + alerting + metering overhead", lines)
    write_bench_json(
        "slo_overhead", {"phases": phases, "config": doc["config"]}
    )
    record_suite_run("slo", phases, doc["config"])

    # The gates. Group operations must be bit-identical with the harness
    # on — sampling and alerting read counters, they never add crypto
    # work — and wall overhead must clear the bar on at least one attempt.
    assert scalars["delta_exp"] == 0
    assert scalars["delta_pair"] == 0
    assert scalars["metering_records"] > 0
    assert scalars["overhead_x"] <= MAX_OVERHEAD_X, (
        f"SLO harness overhead {scalars['overhead_x']:.3f}x exceeds "
        f"{MAX_OVERHEAD_X}x on every attempt"
    )


def test_slo_plane_deterministic():
    """A double run reproduces the whole SLO plane bit-for-bit."""
    from repro.obs.bench import _SCENARIO_SUITE_DOCS, _SLO_SUITE_BLOCK

    doc = dict(_SCENARIO_SUITE_DOCS["open.poisson"], slos=_SLO_SUITE_BLOCK)
    first = run_scenario(scenario_from_dict(doc))
    second = run_scenario(scenario_from_dict(doc))
    assert first.digest() == second.digest()
    assert first.alerts == second.alerts
    assert first.metering == second.metering
