"""Figure 5(a) — multi-SEM signing time vs k, with and without batch
verification of the blind-signature shares (t = 2).

Paper shape at k = 100: ~40 ms per block without batch verification vs
~17.52 ms with it — Eq. 14 (plus precomputed Lagrange bases) pays for the
multi-SEM mode's extra pairings.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import fmt_header, fmt_row, multi_sem_per_block_ms
from repro.analysis.cost_model import CostModel

KS_MEASURED = [20, 50, 100]
T = 2
N_BLOCKS = 3


@pytest.mark.benchmark(group="fig5a")
def test_fig5a_multisem_batch_vs_nobatch(benchmark, paper_group, paper_params_factory, units):
    no_batch, batch = [], []

    def sweep():
        no_batch.clear()
        batch.clear()
        for k in KS_MEASURED:
            params = paper_params_factory(k)
            no_batch.append(
                multi_sem_per_block_ms(params, paper_group, t=T, batch=False, n_blocks=N_BLOCKS)
            )
            batch.append(
                multi_sem_per_block_ms(params, paper_group, t=T, batch=True, n_blocks=N_BLOCKS)
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    model = CostModel(units)
    lines = [
        fmt_header("k ->", KS_MEASURED),
        fmt_row("Multi-Signer (measured)", no_batch),
        fmt_row("Multi-Signer* (measured)", batch),
        fmt_row(
            "Multi-Signer (model)",
            [model.signing_per_block_ms(k, t=T) for k in KS_MEASURED],
        ),
        fmt_row(
            "Multi-Signer* (model)",
            [model.signing_per_block_ms(k, t=T, optimized=True) for k in KS_MEASURED],
        ),
        "paper (k=100, t=2): ~40 ms unbatched vs 17.52 ms batched per block",
    ]
    record_report("Fig 5(a): multi-SEM batch vs per-share verification", lines)

    for nb, b in zip(no_batch, batch):
        # Batch verification never loses; its advantage is 2nt - (t+1)
        # pairings, which shrinks relative to the k exponentiations as k
        # grows (same trend as the paper's converging curves).
        assert b < nb * 1.05
    assert batch == sorted(batch)
    # Deterministic confirmation of the paper's 2x-at-k=100 claim under
    # paper-era unit costs.
    from benchmarks.test_fig4a_siggen_vs_k import PAPER_UNITS

    paper_model = CostModel(PAPER_UNITS)
    ratio = paper_model.signing_per_block_ms(100, t=T) / paper_model.signing_per_block_ms(
        100, t=T, optimized=True
    )
    assert 1.8 < ratio < 4.5
