"""Scenario-engine suite — compile + drive + collect, per workload shape.

Each phase is one end-to-end :class:`ScenarioRunner` run of an inline
scenario document (open-loop Poisson with cloud/TPA audit traffic, an
MMPP burst crowd, a crash-failover fault window).  The engine derives
every RNG stream from the scenario seed, so per-phase op counts and the
result digest are bit-identical across repeats and machines; wall time
is the only noisy axis, and the committed ``BENCH_scenario.json``
trajectory pins both next to the crypto suites.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import record_suite_run, write_bench_json
from repro.obs.bench import _SCENARIO_SUITE_DOCS, run_suite
from repro.scenarios import run_scenario, scenario_from_dict

REPEATS = 2


@pytest.mark.benchmark(group="scenario")
def test_scenario_suite(benchmark):
    run = {}

    def sweep():
        run["doc"] = run_suite("scenario", repeats=REPEATS)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    doc = run["doc"]
    phases = doc["phases"]

    lines = [f"{'shape':>16}  {'wall_s':>8}  {'done':>5}  {'p99_ms':>7}"]
    for phase in phases:
        scalars = phase["scalars"]
        lines.append(
            f"{phase['name']:>16}  {phase['wall_s']:>8.3f}"
            f"  {int(scalars['completed']):>5}"
            f"  {scalars['latency_p99_s'] * 1e3:>7.2f}"
        )
    record_report("Scenario engine: per-shape end-to-end cost", lines)
    write_bench_json(
        "scenario_suite",
        {"phases": phases, "config": doc["config"]},
    )
    record_suite_run("scenario", phases, doc["config"])

    # Correctness of what we timed: every shape completed its full
    # request budget, and the engine is deterministic — a second run of
    # the same document reproduces the digest bit-for-bit.
    for phase in phases:
        assert phase["scalars"]["completed"] == phase["scalars"]["issued"]
    doc0 = _SCENARIO_SUITE_DOCS["open.poisson"]
    first = run_scenario(scenario_from_dict(doc0))
    second = run_scenario(scenario_from_dict(doc0))
    assert first.digest() == second.digest()
