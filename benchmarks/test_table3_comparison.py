"""Table III — comparison among the schemes with identity privacy:
SEM-PDP (ours) vs Oruta [5] vs Knox [13].

Rows (paper setting: 2 GB, k = 1000, n = 100,000, d = 10, c = 460):

* signature generation time (ms/block)     — measured + model
* extra storage for signatures (MB)        — paper element-size convention
* verification computation (s)             — model with calibrated units
* verification communication (KB)          — paper convention
* public verification (Yes/Yes/No)         — structural, asserted
* group dynamics (Yes/No/No)               — structural, asserted

Expected shape: ours wins every numeric row; Oruta pays O(d) everywhere;
Knox pays a large constant per block and loses public verifiability.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import oruta_per_block_ms, sem_pdp_per_block_ms
from repro.analysis.cost_model import (
    CostModel,
    oruta_verification_counts,
    verification_counts,
)

D = 10
K_PAPER = 1000
C = 460
K_MEASURED = 50
GSIG_ELEMENTS = 9  # BBS04: 3 G1 + 6 Z_p, in |p|-bit units


@pytest.mark.benchmark(group="table3")
def test_table3_identity_privacy_comparison(
    benchmark, paper_group, paper_params_factory, fast_group, units
):
    measured: dict[str, float] = {}

    def run():
        measured.clear()
        params = paper_params_factory(K_MEASURED)
        measured["ours"] = sem_pdp_per_block_ms(params, paper_group, batch=True, n_blocks=2)
        measured["oruta"] = oruta_per_block_ms(params, d=D, n_blocks=2)
        # Knox signing: homomorphic MAC (cheap) + BBS04 group signature.
        import time

        from repro.baselines.knox import KnoxGroup
        from repro.core.params import setup as _setup

        knox_params = paper_params_factory(K_MEASURED)
        kg = KnoxGroup(knox_params, d=D, rng=random.Random(4))
        data = bytes((i % 255) + 1 for i in range(knox_params.block_bytes() * 2 - 8))
        start = time.perf_counter()
        kg.sign_and_store(data, b"f")
        measured["knox"] = (time.perf_counter() - start) / 2 * 1000.0

    benchmark.pedantic(run, rounds=1, iterations=1)

    model = CostModel(units)
    n = model.n_blocks(K_PAPER)
    storage_ours = model.signature_storage_bytes(K_PAPER) / 1024**2
    storage_oruta = model.oruta_signature_storage_bytes(K_PAPER, D) / 1024**2
    storage_knox = model.knox_signature_storage_bytes(K_PAPER, GSIG_ELEMENTS) / 1024**2
    verify_ours = verification_counts(C, K_PAPER).seconds(units)
    verify_oruta = oruta_verification_counts(C, K_PAPER, D).seconds(units)
    # Knox's designated-verifier MAC check is pairing-free modular
    # arithmetic: (c + k) Z_p multiplications (c HMAC evaluations are of
    # the same order and omitted).
    verify_knox = (C + K_PAPER) * units.mul_zp
    comm_ours = model.verification_communication_bytes(C, K_PAPER) / 1024
    comm_oruta = model.oruta_verification_communication_bytes(C, K_PAPER, D) / 1024
    comm_knox = (C * (model.id_bits + model.p_bits) + (K_PAPER + 1) * model.p_bits) / 8 / 1024

    rows = [
        f"{'':<34}{'Ours':>12}{'Oruta [5]':>12}{'Knox [13]':>12}",
        f"{'Sig. generation (ms/block)':<34}{measured['ours']:>12.2f}{measured['oruta']:>12.2f}{measured['knox']:>12.2f}",
        f"{'Extra storage (MB, 2GB data)':<34}{storage_ours:>12.2f}{storage_oruta:>12.2f}{storage_knox:>12.2f}",
        f"{'Verification compute (s)':<34}{verify_ours:>12.3f}{verify_oruta:>12.3f}{verify_knox:>12.5f}",
        f"{'Verification comm. (KB)':<34}{comm_ours:>12.2f}{comm_oruta:>12.2f}{comm_knox:>12.2f}",
        f"{'Public verification':<34}{'Yes':>12}{'Yes':>12}{'No':>12}",
        f"{'Group dynamics':<34}{'Yes':>12}{'No':>12}{'No':>12}",
        f"(measured at k={K_MEASURED}; storage/comm at paper convention k={K_PAPER}, d={D}, c={C})",
    ]
    record_report("Table III: schemes with identity privacy", rows)

    # --- numeric shapes -------------------------------------------------
    # Signing: ours beats Oruta (ring closure costs ~2(d-1) extra exps per
    # block, growing with the group size d).  Knox's signing is cheap (a
    # Z_p MAC plus one constant-size group signature) — its Table III
    # losses are storage, communication, and the verifiability rows below.
    assert measured["ours"] < measured["oruta"]
    # Storage: ours = Oruta/d; Knox pays ~10x for MAC + group signature.
    assert storage_oruta == pytest.approx(D * storage_ours)
    assert storage_knox == pytest.approx((1 + GSIG_ELEMENTS) * storage_ours)
    # Verification: Oruta needs d+1 pairings vs our 2.
    assert verify_oruta > verify_ours
    # Communication: Oruta's response is d-1 elements longer.
    assert comm_oruta > comm_ours

    # --- structural properties -----------------------------------------
    from repro.baselines.knox import KnoxGroup, KnoxVerifier, KnoxMacKey
    from repro.core.params import setup

    params = setup(fast_group, k=2)
    rng = random.Random(11)
    kg = KnoxGroup(params, d=3, rng=rng)
    kg.sign_and_store(b"knox" * 30, b"f")
    # Knox: NOT publicly verifiable (wrong MAC key -> reject).
    from repro.core.verifier import PublicVerifier

    helper = PublicVerifier(params, kg.gs.w, rng=rng)
    ch = helper.generate_challenge(b"f", kg.n_blocks(b"f"))
    impostor = KnoxVerifier(
        params,
        KnoxMacKey(
            taus=tuple(rng.randrange(params.order) for _ in range(params.k)),
            prf_seed=b"\x00" * 32,
        ),
    )
    assert not impostor.verify(ch, kg.generate_proof(b"f", ch))
    # Knox: no group dynamics (revocation invalidates stored files).
    assert kg.revoke_member(0) == [b"f"]
