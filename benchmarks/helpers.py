"""Shared measurement helpers for the reproduction benchmarks.

All signature-generation measurements follow the same recipe: sign a small
number of dense blocks on the paper's 160/512-bit parameters, take the
per-block wall-clock cost, and let the cost model extrapolate to the
paper's 2 GB workload where a direct run is infeasible in pure Python.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.baselines.oruta import OrutaGroup
from repro.baselines.sw08 import SW08Owner
from repro.core.multi_sem import MultiSEMClient, SEMCluster
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.obs.bench import (
    append_run,
    make_phase,
    make_run,
    measure_ops_and_wall,
    trajectory_path,
    validate_run,
    write_run_file,
)
from repro.pairing.interface import OperationCounter

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def dense_data(params, n_blocks: int) -> bytes:
    """A payload with no zero elements (maximal operation counts)."""
    return bytes((i % 255) + 1 for i in range(params.block_bytes() * n_blocks - 8))


def time_call(fn, repeats: int = 1) -> float:
    """Best-of-`repeats` wall-clock seconds for fn()."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def sem_pdp_per_block_ms(
    params, group, batch: bool, n_blocks: int = 1, repeats: int = 1, seed: int = 1
) -> float:
    """Measured per-block signing cost of the paper's scheme (ms)."""
    sem = SecurityMediator(group, rng=random.Random(seed), require_membership=False)
    owner = DataOwner(params, sem.pk, rng=random.Random(seed + 1))
    data = dense_data(params, n_blocks)
    seconds = time_call(lambda: owner.sign_file(data, b"f", sem, batch=batch), repeats)
    return seconds / n_blocks * 1000.0


def multi_sem_per_block_ms(
    params, group, t: int, batch: bool, n_blocks: int = 1, repeats: int = 1, seed: int = 1
) -> float:
    """Measured per-block signing cost in the multi-SEM mode (ms)."""
    cluster = SEMCluster(group, t=t, rng=random.Random(seed), require_membership=False)
    client = MultiSEMClient(cluster, batch=batch, rng=random.Random(seed + 1))
    owner = DataOwner(params, cluster.master_pk, rng=random.Random(seed + 2))
    data = dense_data(params, n_blocks)
    seconds = time_call(
        lambda: owner.sign_file(data, b"f", client, batch=batch, sem_pk_g1=cluster.master_pk_g1),
        repeats,
    )
    return seconds / n_blocks * 1000.0


def sw08_per_block_ms(params, n_blocks: int = 1, repeats: int = 1, seed: int = 1) -> float:
    """Measured per-block signing cost of SW08/WCWRL11 (ms)."""
    owner = SW08Owner(params, rng=random.Random(seed))
    data = dense_data(params, n_blocks)
    seconds = time_call(lambda: owner.sign_file(data, b"f"), repeats)
    return seconds / n_blocks * 1000.0


def oruta_per_block_ms(params, d: int, n_blocks: int = 1, repeats: int = 1, seed: int = 1) -> float:
    """Measured per-block ring-signing cost of Oruta (ms)."""
    og = OrutaGroup(params, d=d, rng=random.Random(seed))
    data = dense_data(params, n_blocks)
    seconds = time_call(lambda: og.sign_and_store(data, b"f"), repeats)
    return seconds / n_blocks * 1000.0


def count_ops(group, fn) -> dict[str, int]:
    """Run ``fn()`` with a fresh operation counter attached to ``group``.

    Returns the nonzero op tallies (``exp_g1``, ``pairings``, …), restoring
    whatever counter was attached before, so timing measurements can be
    annotated with the exact operation mix they exercised.
    """
    counter = OperationCounter()
    previous = group.counter
    group.attach_counter(counter)
    try:
        fn()
    finally:
        group.counter = previous
    return {k: v for k, v in counter.snapshot().items() if v}


def write_bench_json(name: str, payload: dict) -> None:
    """Write one benchmark's machine-readable results next to its .txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def measure_phase(group, name: str, fn, repeats: int = 1, scalars: dict | None = None) -> dict:
    """Measure ``fn`` into one schema-valid phase entry (wall + exact ops)."""
    wall, ops = measure_ops_and_wall(group, fn, repeats)
    return make_phase(name, wall, ops, repeats=repeats, scalars=scalars)


def record_suite_run(suite: str, phases: list[dict], config: dict | None = None) -> dict:
    """Persist one benchmark's results in the versioned run schema.

    Always writes the per-run JSON under ``benchmarks/results/``.  When
    ``REPRO_BENCH_TRAJECTORY_DIR`` is set (as the CI bench-smoke job and
    baseline refreshes do), the run is additionally appended to the
    committed ``BENCH_<suite>.json`` trajectory in that directory, so
    ordinary pytest invocations never dirty the checked-in perf history.
    """
    run = validate_run(make_run(suite, phases, config=config))
    write_run_file(run, RESULTS_DIR)
    trajectory_dir = os.environ.get("REPRO_BENCH_TRAJECTORY_DIR")
    if trajectory_dir:
        append_run(trajectory_path(suite, trajectory_dir), run)
    return run


def fmt_row(label: str, values: list[float], unit: str = "ms") -> str:
    cells = "  ".join(f"{v:>10.2f}" for v in values)
    return f"{label:<28}{cells}  [{unit}]"


def fmt_header(label: str, ks: list[int]) -> str:
    cells = "  ".join(f"{k:>10}" for k in ks)
    return f"{label:<28}{cells}"
