"""Supplement: cost of the dynamic-data extension (paper §IV-C).

Two questions the paper leaves open when it says dynamics "can be easily
supported": (1) what does one in-place update cost versus re-signing the
whole file, and (2) how much bigger are dynamic audit proofs (which add a
Merkle path per challenged block plus one signed root)?
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import record_report
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.dynamics import DynamicCloudServer, DynamicFileClient, DynamicVerifier
from repro.net.message import payload_size

N_BLOCKS = 24
K = 8


@pytest.mark.benchmark(group="supplement")
def test_dynamics_update_vs_resign_all(benchmark, fast_group, paper_params_factory):
    outcome: dict[str, float] = {}

    def run():
        outcome.clear()
        from repro.core.params import setup

        params = setup(fast_group, k=K)
        rng = random.Random(10)
        sem = SecurityMediator(fast_group, rng=rng, require_membership=False)
        owner = DataOwner(params, sem.pk, rng=rng)
        client = DynamicFileClient(params, owner, sem, b"dyn")
        cloud = DynamicCloudServer(params)
        verifier = DynamicVerifier(params, sem.pk)
        chunks = [b"chunk-%03d" % i for i in range(N_BLOCKS)]
        start = time.perf_counter()
        blocks, sigs, mutation = client.create(chunks)
        outcome["create (= re-sign all)"] = time.perf_counter() - start
        cloud.create_file(b"dyn", blocks, sigs, mutation)
        start = time.perf_counter()
        cloud.apply(b"dyn", client.update(3, b"edited"))
        outcome["one update"] = time.perf_counter() - start
        # Proof-size comparison: dynamic proof vs bare static response.
        ch = verifier.generate_challenge(N_BLOCKS, sample_size=8, rng=rng)
        proof = cloud.generate_proof(b"dyn", ch)
        assert verifier.verify(b"dyn", ch, proof)
        outcome["static response bytes"] = payload_size(proof.response)
        outcome["dynamic proof bytes"] = (
            payload_size(proof.response)
            + sum(p.wire_size_bytes() for p in proof.paths)
            + sum(len(i) for i in proof.block_ids)
            + len(proof.root)
            + payload_size(proof.root_signature)
            + 8
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    # One update is far cheaper than re-signing the file.
    assert outcome["one update"] < outcome["create (= re-sign all)"] / 4
    record_report(
        f"Supplement: dynamic data costs (n={N_BLOCKS}, k={K}, c=8)",
        [
            f"initial signing (all blocks): {outcome['create (= re-sign all)']*1000:8.1f} ms",
            f"one in-place update:          {outcome['one update']*1000:8.1f} ms "
            "(1 block + 1 root re-signed)",
            f"audit proof size: static {outcome['static response bytes']} B -> "
            f"dynamic {outcome['dynamic proof bytes']} B "
            "(Merkle paths + signed root)",
        ],
    )
