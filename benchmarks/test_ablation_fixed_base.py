"""Ablation: fixed-base precomputation for the u_1..u_k exponentiations,
and batch auditing of multiple files.

Neither appears in the paper's evaluation; both are natural engineering
extensions its structure invites (the u bases never change; all audits
verify under the single organization key).
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import record_report
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier


@pytest.mark.benchmark(group="ablation")
def test_ablation_fixed_base_tables(benchmark, paper_group, paper_params_factory):
    """Precomputed windows vs plain double-and-add for Bind's aggregation."""
    outcome: dict[str, float] = {}
    k = 50
    n_blocks = 4

    def run():
        outcome.clear()
        params = paper_params_factory(k)
        data = bytes((i % 255) + 1 for i in range(params.block_bytes() * n_blocks - 8))
        sem = SecurityMediator(paper_group, rng=random.Random(1), require_membership=False)
        plain = DataOwner(params, sem.pk, rng=random.Random(2))
        start = time.perf_counter()
        plain.sign_file(data, b"f", sem)
        outcome["plain"] = time.perf_counter() - start
        start = time.perf_counter()
        fast = DataOwner(params, sem.pk, rng=random.Random(2), use_fixed_base=True)
        outcome["precompute"] = time.perf_counter() - start
        start = time.perf_counter()
        fast.sign_file(data, b"f", sem)
        outcome["fixed-base"] = time.perf_counter() - start

    benchmark.pedantic(run, rounds=1, iterations=1)
    # Per-block signing must be faster once tables exist.
    assert outcome["fixed-base"] < outcome["plain"]
    record_report(
        f"Ablation: fixed-base u-tables (k={k}, n={n_blocks})",
        [
            f"plain signing:        {outcome['plain']*1000:.1f} ms",
            f"fixed-base signing:   {outcome['fixed-base']*1000:.1f} ms "
            f"({outcome['plain']/outcome['fixed-base']:.2f}x)",
            f"one-time table build: {outcome['precompute']*1000:.1f} ms "
            f"(amortizes across every block the owner ever signs)",
        ],
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_batch_audit(benchmark, paper_group, paper_params_factory):
    """Auditing L files: L x 2 pairings individually vs 2 in a batch."""
    outcome: dict[str, float] = {}
    files = 4

    def run():
        outcome.clear()
        params = paper_params_factory(20)
        rng = random.Random(3)
        sem = SecurityMediator(paper_group, rng=rng, require_membership=False)
        owner = DataOwner(params, sem.pk, rng=rng)
        cloud = CloudServer(params, rng=rng)
        verifier = PublicVerifier(params, sem.pk, rng=rng)
        audits = []
        for i in range(files):
            fid = b"file-%d" % i
            signed = owner.sign_file(
                bytes((j % 255) + 1 for j in range(params.block_bytes() * 2 - 8)), fid, sem
            )
            cloud.store(signed)
            ch = verifier.generate_challenge(fid, len(signed.blocks))
            audits.append((ch, cloud.generate_proof(fid, ch)))
        start = time.perf_counter()
        assert all(verifier.verify(ch, proof) for ch, proof in audits)
        outcome["individual"] = time.perf_counter() - start
        start = time.perf_counter()
        assert verifier.verify_batch(audits, rng)
        outcome["batched"] = time.perf_counter() - start

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome["batched"] < outcome["individual"]
    record_report(
        f"Ablation: batch auditing ({files} files)",
        [
            f"individual: {outcome['individual']*1000:.1f} ms ({2*files} pairings)",
            f"batched:    {outcome['batched']*1000:.1f} ms (2 pairings, "
            f"{outcome['individual']/outcome['batched']:.2f}x)",
        ],
    )
