"""Benchmark-suite fixtures and reproduction-report plumbing.

Every benchmark module reproduces one table or figure of the paper.  Each
appends a formatted text block to the session-wide report; at the end of
the run the report is printed in the terminal summary and written to
``benchmarks/results/report.txt`` so that ``bench_output.txt`` and the
repository both carry the regenerated tables.

Methodology (see DESIGN.md §2 and EXPERIMENTS.md): per-block and
per-operation costs are *measured* on this machine with the paper's own
parameter sizes (|p| = 160 bits, |q| = 512 bits); totals for the paper's
2 GB workload are *extrapolated* through the closed-form cost model — the
same linearity the paper itself relies on.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.analysis.calibrate import calibrate
from repro.analysis.cost_model import CostModel
from repro.core.params import setup
from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORT_BLOCKS: list[str] = []


def record_report(title: str, lines: list[str]) -> None:
    """Register one experiment's reproduced table for the final report."""
    block = "\n".join([f"== {title} ==", *lines])
    _REPORT_BLOCKS.append(block)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    safe = title.split(":")[0].strip().lower().replace(" ", "_").replace("(", "").replace(")", "")
    with open(os.path.join(RESULTS_DIR, f"{safe}.txt"), "w") as fh:
        fh.write(block + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_BLOCKS:
        return
    terminalreporter.section("paper reproduction report")
    for block in _REPORT_BLOCKS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "report.txt"), "w") as fh:
        fh.write("\n\n".join(_REPORT_BLOCKS) + "\n")


@pytest.fixture(scope="session")
def paper_group():
    """The paper's parameterization: |r| = 160, |q| = 512."""
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["paper-160"])


@pytest.fixture(scope="session")
def fast_group():
    """Small parameters for functional (non-timing) benchmark setup."""
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["toy-64"])


@pytest.fixture(scope="session")
def units(paper_group):
    """Calibrated unit costs of this machine at paper-scale parameters."""
    return calibrate(paper_group, repeats=8, rng=random.Random(42))


@pytest.fixture(scope="session")
def model(units):
    return CostModel(units)


@pytest.fixture(scope="session")
def paper_params_factory(paper_group):
    """Cached setup(paper_group, k) across benchmark modules."""
    cache: dict[int, object] = {}

    def factory(k: int):
        if k not in cache:
            cache[k] = setup(paper_group, k)
        return cache[k]

    return factory


@pytest.fixture()
def rng():
    return random.Random(20130708)
