"""Figure 4(b) — single-signer* vs multi-signer* (t = 3) vs SW08, versus k.

Paper shape: the multi-SEM mode (with batch verification and precomputed
Lagrange bases) costs only slightly more than the single-SEM mode — at
k = 100 about 16.38 ms vs 14.13 ms per block — i.e. replicating the SEM
for fault tolerance is nearly free for the data owner.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import (
    fmt_header,
    fmt_row,
    multi_sem_per_block_ms,
    sem_pdp_per_block_ms,
    sw08_per_block_ms,
)
from repro.analysis.cost_model import CostModel

KS_MEASURED = [20, 50, 100]
T = 3
N_BLOCKS = 3


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_single_vs_multi_signer(benchmark, paper_group, paper_params_factory, units):
    single, multi, sw08 = [], [], []

    def sweep():
        single.clear()
        multi.clear()
        sw08.clear()
        for k in KS_MEASURED:
            params = paper_params_factory(k)
            single.append(
                sem_pdp_per_block_ms(params, paper_group, batch=True, n_blocks=N_BLOCKS)
            )
            multi.append(
                multi_sem_per_block_ms(params, paper_group, t=T, batch=True, n_blocks=N_BLOCKS)
            )
            sw08.append(sw08_per_block_ms(params, n_blocks=N_BLOCKS))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    model = CostModel(units)
    lines = [
        fmt_header("k ->", KS_MEASURED),
        fmt_row("Single-Signer* (measured)", single),
        fmt_row("Multi-Signer* t=3 (measured)", multi),
        fmt_row("SW08/WCWRL11 (measured)", sw08),
        fmt_row(
            "Single-Signer* (model)",
            [model.signing_per_block_ms(k, optimized=True) for k in KS_MEASURED],
        ),
        fmt_row(
            "Multi-Signer* t=3 (model)",
            [model.signing_per_block_ms(k, t=T, optimized=True) for k in KS_MEASURED],
        ),
        "paper (k=100): Single* 14.13 / Multi* (t=3) 16.38 / SW08 13.76 ms per block",
    ]
    record_report("Fig 4(b): single vs multi signer", lines)

    for s, m in zip(single, multi):
        # Multi-SEM costs more (t share verifications + combination) ...
        assert m > s * 0.95
        # ... but not dramatically more: bounded overhead, not a blow-up.
        assert m < 3.0 * s
    # Costs grow with k in both modes.
    assert single == sorted(single)
    assert multi == sorted(multi)
