"""Table I — computation cost of generating all n signatures.

Reproduces the four cells of Table I two ways:

1. *Operation counting*: runs the actual protocol under a CostTracker and
   checks the measured Exp_G1/Pair tallies against the closed forms
   (up to the zero-element skip optimization, which only lowers counts).
2. *Wall-clock benchmarking*: times per-block signing on the paper's
   160/512-bit parameters for the basic and optimized variants.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import record_report
from benchmarks.helpers import record_suite_run
from repro.analysis.cost_model import table1_exp_pair_counts
from repro.obs.bench import make_phase
from repro.core.accounting import CostTracker
from repro.core.multi_sem import MultiSEMClient, SEMCluster
from repro.core.owner import DataOwner
from repro.core.params import setup
from repro.core.sem import SecurityMediator


def _dense_data(params, n_blocks):
    """Payload with no zero elements so op counts are maximal."""
    return bytes((i % 255) + 1 for i in range(params.block_bytes() * n_blocks - 8))


@pytest.mark.benchmark(group="table1")
class TestOperationCounts:
    """Fast functional validation on toy parameters."""

    def test_all_four_table1_cells(self, fast_group, rng, benchmark):
        params = setup(fast_group, k=6)
        data = _dense_data(params, 8)
        results = []
        phases = []
        cells = [(None, False), (None, True), (2, False), (2, True)]

        def run_cells():
            results.clear()
            phases.clear()
            for t, optimized in cells:
                _run_one(t, optimized)

        def _run_one(t, optimized):
            if t is None:
                sem = SecurityMediator(fast_group, rng=rng, require_membership=False)
                service, pk, pk1 = sem, sem.pk, sem.pk_g1
            else:
                cluster = SEMCluster(fast_group, t=t, rng=rng, require_membership=False)
                service = MultiSEMClient(cluster, batch=optimized, rng=rng)
                pk, pk1 = cluster.master_pk, cluster.master_pk_g1
            owner = DataOwner(params, pk, rng=rng)
            with CostTracker(fast_group) as tracker:
                signed = owner.sign_file(data, b"f", service, batch=optimized, sem_pk_g1=pk1)
            n = len(signed.blocks)
            formula = table1_exp_pair_counts(n, params.k, t=t, optimized=optimized)
            label = f"{'multi t=2' if t else 'single'} {'opt' if optimized else 'basic'}"
            phase = f"sign.{'multi2' if t else 'single'}.{'opt' if optimized else 'basic'}"
            phases.append(
                make_phase(
                    phase,
                    tracker.elapsed_seconds,
                    tracker.counter.snapshot(),
                    scalars={"n_blocks": n},
                )
            )
            results.append(
                f"{label:>18}: measured {tracker.exp_g1:>4} Exp {tracker.pairings:>3} Pair"
                f" | Table I {formula.exp_g1:>4} Exp {formula.pair:>3} Pair"
            )
            # Measured counts track the paper's closed forms; our multi-SEM
            # client additionally runs the final Eq. 7 owner-side check
            # (+2n Exp) that the paper's accounting folds into share
            # verification, hence the +3n slack.
            assert tracker.exp_g1 <= formula.exp_g1 + 3 * n
            if optimized:
                assert tracker.pairings <= 2 * ((t or 0) + 1) + 2
            else:
                assert tracker.pairings >= 2 * n

        benchmark.pedantic(run_cells, rounds=1, iterations=1)
        record_report("Table I: operation counts (n=8 blocks, k=6)", results)
        record_suite_run(
            "table1", phases, config={"param_set": "toy-64", "k": 6, "n_blocks": 8}
        )


@pytest.mark.benchmark(group="table1")
class TestWallClock:
    K = 100
    N_BLOCKS = 2

    def _signed_ms_per_block(self, paper_params_factory, paper_group, optimized, benchmark):
        params = paper_params_factory(self.K)
        sem = SecurityMediator(paper_group, rng=random.Random(1), require_membership=False)
        owner = DataOwner(params, sem.pk, rng=random.Random(2))
        data = _dense_data(params, self.N_BLOCKS)

        def run():
            owner.sign_file(data, b"f", sem, batch=optimized)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_single_sem_basic(self, paper_params_factory, paper_group, benchmark):
        self._signed_ms_per_block(paper_params_factory, paper_group, False, benchmark)

    def test_single_sem_optimized(self, paper_params_factory, paper_group, benchmark):
        self._signed_ms_per_block(paper_params_factory, paper_group, True, benchmark)
