"""One-off generator for the pinned type-A parameter sets.

Run from the repo root:  python tools/generate_params.py
Prints the ``_register(TypeAParams(...))`` blocks pasted at the bottom of
``src/repro/pairing/params.py``.
"""

import sys

sys.path.insert(0, "src")

from repro.pairing.params import generate_type_a_params  # noqa: E402

SPECS = [
    ("paper-160", 160, 512, 20130701),
    ("test-80", 80, 160, 20130702),
    ("toy-64", 64, 80, 20130703),
]

for name, rbits, qbits, seed in SPECS:
    p = generate_type_a_params(rbits=rbits, qbits=qbits, seed=seed, name=name)
    print("_register(TypeAParams(")
    print(f'    name="{p.name}",')
    print(f"    r={p.r},")
    print(f"    q={p.q},")
    print(f"    h={p.h},")
    print(f"    gx={p.gx},")
    print(f"    gy={p.gy},")
    print("))")
    print(f"# seed={seed}, rbits={rbits}, qbits={qbits}")
