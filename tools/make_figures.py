#!/usr/bin/env python3
"""Render the paper's figure shapes as ASCII charts.

Calibrates unit costs on this machine (plus the paper-era unit costs for
Figure 4a, whose shape is ratio-dependent) and renders Figures 4(a), 5(b),
6(a), 6(b) to stdout and benchmarks/results/figures.txt.

    python tools/make_figures.py [--fast]
"""

import argparse
import pathlib
import random
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.analysis.calibrate import UnitCosts, calibrate  # noqa: E402
from repro.analysis.cost_model import CostModel  # noqa: E402
from repro.analysis.figures import figure_4a, figure_5b, figure_6a, figure_6b  # noqa: E402
from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup  # noqa: E402

PAPER_UNITS = UnitCosts(exp_g1=0.000134, pair=0.0106, mul_g1=2e-6, hash_g1=5e-4, mul_zp=1e-7)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true",
                        help="calibrate on toy parameters (quick smoke run)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for figures.txt (default: benchmarks/results)")
    args = parser.parse_args()

    name = "toy-64" if args.fast else "paper-160"
    group = TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS[name])
    units = calibrate(group, repeats=5, rng=random.Random(0))
    model = CostModel(units)
    paper_model = CostModel(PAPER_UNITS)

    ks = [20, 50, 100, 150, 200]
    charts = [
        figure_4a(model, paper_model, ks),
        figure_5b(model, [2, 3, 4, 5, 6], [100, 1000]),
        figure_6a(model, [100, 200, 400, 600, 800, 1000]),
        figure_6b(model, [100, 200, 400, 600, 800, 1000]),
    ]
    output = "\n\n".join(charts)
    print(output)
    results = args.out or pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
    results.mkdir(parents=True, exist_ok=True)
    (results / "figures.txt").write_text(output + "\n")
    print(f"\nwritten to {results / 'figures.txt'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
