"""Tests for the Oruta (HARS ring signature) baseline."""

import pytest

from repro.baselines.oruta import (
    HARSRing,
    OrutaGroup,
    OrutaResponse,
    OrutaVerifier,
    RingSignature,
)
from repro.core.verifier import PublicVerifier


@pytest.fixture()
def ring(group, rng):
    return HARSRing(group, d=4, rng=rng)


class TestHARS:
    def test_sign_verify_every_member(self, group, ring, rng):
        aggregate = group.random_g1(rng)
        for signer in range(ring.d):
            sig = ring.sign(aggregate, signer)
            assert ring.verify(aggregate, sig)

    def test_wrong_aggregate_rejected(self, group, ring, rng):
        sig = ring.sign(group.random_g1(rng), 0)
        assert not ring.verify(group.random_g1(rng), sig)

    def test_wrong_length_rejected(self, group, ring, rng):
        aggregate = group.random_g1(rng)
        sig = ring.sign(aggregate, 0)
        truncated = RingSignature(components=sig.components[:-1])
        assert not ring.verify(aggregate, truncated)

    def test_signature_size_is_d(self, group, ring, rng):
        sig = ring.sign(group.random_g1(rng), 1)
        assert len(sig) == ring.d

    def test_anonymity_components_all_random_looking(self, group, ring, rng):
        """No component slot is fixed: two signatures by the same signer
        differ in every component."""
        aggregate = group.random_g1(rng)
        s1 = ring.sign(aggregate, 2)
        s2 = ring.sign(aggregate, 2)
        differing = sum(
            1 for a, b in zip(s1.components, s2.components) if a != b
        )
        assert differing == ring.d

    def test_homomorphic_combination(self, group, ring, rng):
        """σ(m1)^a · σ(m2)^b verifies against m1^a · m2^b — the property
        Oruta's sampling audit relies on."""
        m1, m2 = group.random_g1(rng), group.random_g1(rng)
        s1 = ring.sign(m1, 0)
        s2 = ring.sign(m2, 3)  # different signers!
        a, b = 5, 9
        combined = RingSignature(
            components=tuple(
                c1**a * c2**b for c1, c2 in zip(s1.components, s2.components)
            )
        )
        assert ring.verify(m1**a * m2**b, combined)

    def test_minimum_ring_size(self, group, rng):
        with pytest.raises(ValueError):
            HARSRing(group, d=1, rng=rng)

    def test_signer_out_of_range(self, group, ring, rng):
        with pytest.raises(ValueError):
            ring.sign(group.random_g1(rng), ring.d)


@pytest.fixture()
def oruta(params_k4, rng):
    og = OrutaGroup(params_k4, d=3, rng=rng)
    og.sign_and_store(b"ring signed shared file " * 6, b"f")
    return og


class TestOrutaPdp:
    def test_audit_round_trip(self, oruta, params_k4, rng):
        verifier = OrutaVerifier(params_k4, oruta.ring.pks, rng=rng)
        helper = PublicVerifier(params_k4, oruta.ring.pks[0], rng=rng)
        ch = helper.generate_challenge(b"f", oruta.n_blocks(b"f"))
        assert verifier.verify(ch, oruta.generate_proof(b"f", ch))

    def test_sampled_audit(self, oruta, params_k4, rng):
        verifier = OrutaVerifier(params_k4, oruta.ring.pks, rng=rng)
        helper = PublicVerifier(params_k4, oruta.ring.pks[0], rng=rng)
        ch = helper.generate_challenge(b"f", oruta.n_blocks(b"f"), sample_size=2)
        assert verifier.verify(ch, oruta.generate_proof(b"f", ch))

    def test_custom_signers(self, params_k4, rng):
        og = OrutaGroup(params_k4, d=3, rng=rng)
        blocks = og.sign_and_store(b"x" * 120, b"f", signers=None)
        og2 = OrutaGroup(params_k4, d=3, rng=rng)
        og2.sign_and_store(b"x" * 120, b"f", signers=[0] * len(blocks))
        verifier = OrutaVerifier(params_k4, og2.ring.pks, rng=rng)
        helper = PublicVerifier(params_k4, og2.ring.pks[0], rng=rng)
        ch = helper.generate_challenge(b"f", og2.n_blocks(b"f"))
        assert verifier.verify(ch, og2.generate_proof(b"f", ch))

    def test_tampered_alpha_rejected(self, oruta, params_k4, rng):
        verifier = OrutaVerifier(params_k4, oruta.ring.pks, rng=rng)
        helper = PublicVerifier(params_k4, oruta.ring.pks[0], rng=rng)
        ch = helper.generate_challenge(b"f", oruta.n_blocks(b"f"))
        proof = oruta.generate_proof(b"f", ch)
        bad = OrutaResponse(
            phis=proof.phis,
            alphas=((proof.alphas[0] + 1) % params_k4.order,) + proof.alphas[1:],
        )
        assert not verifier.verify(ch, bad)

    def test_tampered_phi_rejected(self, oruta, params_k4, rng, group):
        verifier = OrutaVerifier(params_k4, oruta.ring.pks, rng=rng)
        helper = PublicVerifier(params_k4, oruta.ring.pks[0], rng=rng)
        ch = helper.generate_challenge(b"f", oruta.n_blocks(b"f"))
        proof = oruta.generate_proof(b"f", ch)
        bad = OrutaResponse(
            phis=(proof.phis[0] * group.g1(),) + proof.phis[1:], alphas=proof.alphas
        )
        assert not verifier.verify(ch, bad)

    def test_storage_is_d_elements_per_block(self, oruta):
        n = oruta.n_blocks(b"f")
        assert oruta.signature_storage_elements(b"f") == n * 3

    def test_verification_pairing_cost_is_d_plus_1(self, oruta, params_k4, rng, group):
        from repro.core.accounting import CostTracker

        verifier = OrutaVerifier(params_k4, oruta.ring.pks, rng=rng)
        helper = PublicVerifier(params_k4, oruta.ring.pks[0], rng=rng)
        ch = helper.generate_challenge(b"f", oruta.n_blocks(b"f"))
        proof = oruta.generate_proof(b"f", ch)
        with CostTracker(group) as tracker:
            assert verifier.verify(ch, proof)
        assert tracker.pairings == 3 + 1  # d + 1

    def test_response_size_grows_with_d(self, oruta):
        helper_bits = 160
        ch_n = oruta.n_blocks(b"f")
        from repro.core.verifier import PublicVerifier
        import random

        helper = PublicVerifier(oruta.params, oruta.ring.pks[0], rng=random.Random(1))
        ch = helper.generate_challenge(b"f", ch_n)
        proof = oruta.generate_proof(b"f", ch)
        assert proof.paper_size_bits(helper_bits) == (oruta.params.k + 3) * helper_bits
