"""Tests for the SW08 baseline."""

import pytest

from repro.baselines.sw08 import SW08Owner, SW08Verifier
from repro.core.accounting import CostTracker
from repro.core.cloud import CloudServer


@pytest.fixture()
def deployment(params_k4, rng):
    owner = SW08Owner(params_k4, rng=rng)
    cloud = CloudServer(params_k4, rng=rng)
    verifier = SW08Verifier(params_k4, owner.pk, rng=rng)
    signed = owner.sign_file(b"owner signed data " * 8, b"f")
    cloud.store(signed)
    return owner, cloud, verifier, signed


class TestSW08:
    def test_audit_round_trip(self, deployment):
        _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"f", len(signed.blocks))
        assert verifier.verify_owner_data(ch, cloud.generate_proof(b"f", ch))

    def test_sampled_audit(self, deployment):
        _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"f", len(signed.blocks), sample_size=3)
        assert verifier.verify(ch, cloud.generate_proof(b"f", ch))

    def test_tamper_detected(self, deployment):
        _, cloud, verifier, signed = deployment
        cloud.tamper_block(b"f", 1)
        ch = verifier.generate_challenge(b"f", len(signed.blocks))
        assert not verifier.verify(ch, cloud.generate_proof(b"f", ch))

    def test_signatures_same_shape_as_sem_pdp(self, params_k4, rng, group):
        """The paper's compatibility claim: SW08 and SEM-PDP signatures are
        indistinguishable objects — the cloud runs identical Response code."""
        from repro.core.owner import DataOwner
        from repro.core.sem import SecurityMediator

        sw_owner = SW08Owner(params_k4, rng=rng)
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        sem_owner = DataOwner(params_k4, sem.pk, rng=rng)
        sw_signed = sw_owner.sign_file(b"data", b"f")
        sem_signed = sem_owner.sign_file(b"data", b"f", sem)
        assert len(sw_signed.signatures[0].to_bytes()) == len(sem_signed.signatures[0].to_bytes())

    def test_signing_is_local_no_pairings(self, params_k4, rng, group):
        owner = SW08Owner(params_k4, rng=rng)
        with CostTracker(group) as tracker:
            owner.sign_file(b"local signing " * 5, b"f")
        assert tracker.pairings == 0

    def test_sign_exp_budget(self, params_k4, rng, group):
        """n(k+1) Exp_G1 (Table I's implicit SW08 row)."""
        owner = SW08Owner(params_k4, rng=rng)
        data = bytes(range(1, 200))
        with CostTracker(group) as tracker:
            signed = owner.sign_file(data, b"f")
        n = len(signed.blocks)
        assert tracker.exp_g1 <= n * (params_k4.k + 1)

    def test_fixed_keypair_reuse(self, params_k4, rng):
        from repro.crypto.bls import bls_keygen

        kp = bls_keygen(params_k4.group, rng)
        owner = SW08Owner(params_k4, keypair=kp)
        assert owner.pk == kp.pk
