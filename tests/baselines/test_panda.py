"""Tests for the Panda (proxy re-signature) baseline."""

import pytest

from repro.baselines.panda import PandaAudit, PandaGroup, PandaVerifier
from repro.core.challenge import Challenge


@pytest.fixture()
def panda(params_k4, rng):
    pg = PandaGroup(params_k4, d=3, rng=rng)
    pg.sign_and_store(b"proxy resignature shared data " * 6, b"f")
    return pg


@pytest.fixture()
def verifier(params_k4, panda, rng):
    return PandaVerifier(params_k4, panda.pks, rng=rng)


class TestAudit:
    def test_full_file_audit(self, panda, verifier, rng):
        assert verifier.verify_file(panda.audit_units(b"f", rng))

    def test_per_signer_unit(self, panda, verifier, rng):
        ch = panda.challenge_for_signer(b"f", 0, rng)
        unit = PandaAudit(signer=0, challenge=ch, response=panda.generate_proof(b"f", ch))
        assert verifier.verify_unit(unit)

    def test_mixed_signer_challenge_rejected(self, panda, rng, params_k4):
        blocks, _, _ = panda._files[b"f"]
        ch = Challenge(
            indices=(0, 1),  # round-robin: different signers
            block_ids=(blocks[0].block_id, blocks[1].block_id),
            betas=(3, 5),
        )
        with pytest.raises(ValueError):
            panda.generate_proof(b"f", ch)

    def test_wrong_member_key_rejects(self, panda, verifier, rng):
        ch = panda.challenge_for_signer(b"f", 0, rng)
        proof = panda.generate_proof(b"f", ch)
        impostor = PandaAudit(signer=1, challenge=ch, response=proof)
        assert not verifier.verify_unit(impostor)

    def test_tamper_detected(self, panda, verifier, rng, params_k4):
        blocks, _, _ = panda._files[b"f"]
        import dataclasses

        elements = list(blocks[0].elements)
        elements[0] = (elements[0] + 1) % params_k4.order
        blocks[0] = dataclasses.replace(blocks[0], elements=tuple(elements))
        assert not verifier.verify_file(panda.audit_units(b"f", rng))

    def test_empty_units_reject(self, verifier):
        assert not verifier.verify_file([])


class TestRevocation:
    def test_resignatures_verify_under_successor(self, panda, verifier, rng):
        converted = panda.revoke(0, successor=1)
        assert converted > 0
        assert 0 not in panda.live
        units = panda.audit_units(b"f", rng)
        assert all(u.signer != 0 for u in units)
        assert verifier.verify_file(units)

    def test_revocation_cost_linear_in_blocks(self, panda, params_k4, rng):
        """The contrast with SEM-PDP: Panda re-signs every affected block."""
        blocks_of_0 = sum(
            1 for i in range(panda.n_blocks(b"f")) if panda.signer_of(b"f", i) == 0
        )
        assert panda.revoke(0, successor=2) == blocks_of_0
        assert panda.resign_operations == blocks_of_0

    def test_revocation_spans_files(self, panda, rng):
        panda.sign_and_store(b"second file " * 8, b"g")
        converted = panda.revoke(0, successor=1)
        per_file = [
            sum(1 for s in panda._files[fid][2] if s == 1 and True)
            for fid in (b"f", b"g")
        ]
        assert converted >= 2  # at least one block in each file

    def test_revoked_member_cannot_sign(self, panda, rng):
        panda.revoke(0, successor=1)
        n = panda.n_blocks(b"f")
        with pytest.raises(ValueError):
            panda.sign_and_store(b"new data", b"h", signers=[0] * 2)

    def test_revoke_validation(self, panda):
        with pytest.raises(ValueError):
            panda.revoke(0, successor=0)
        panda.revoke(0, successor=1)
        with pytest.raises(ValueError):
            panda.revoke(0, successor=1)  # already revoked

    def test_resign_key_reveals_no_secret(self, panda, params_k4, group):
        """rk alone cannot produce a signature on fresh data under either key."""
        rk = panda.resign_key(0, 1)
        fresh = group.hash_to_g1(b"fresh block never signed")
        forged = fresh**rk
        # Fails under both keys.
        assert group.pair(forged, group.g2()) != group.pair(fresh, panda.pks[0])
        assert group.pair(forged, group.g2()) != group.pair(fresh, panda.pks[1])


class TestIdentityLeak:
    def test_every_block_publicly_attributed(self, panda, rng):
        """The leak the SEM eliminates: block -> member is public data."""
        for i in range(panda.n_blocks(b"f")):
            assert panda.signer_of(b"f", i) == i % 3

    def test_audit_structure_reveals_workload_distribution(self, panda, rng):
        """A verifier learns exactly how many blocks each member signed —
        the 'more important member' inference the paper's Section IV-C
        warns about."""
        units = panda.audit_units(b"f", rng)
        per_member = {u.signer: len(u.challenge) for u in units}
        assert sum(per_member.values()) == panda.n_blocks(b"f")
        assert len(per_member) == 3

    def test_d_plus_pairings_vs_constant(self, panda, verifier, rng, group):
        """Verification cost grows with the number of members audited."""
        from repro.core.accounting import CostTracker

        units = panda.audit_units(b"f", rng)
        with CostTracker(group) as tracker:
            assert verifier.verify_file(units)
        assert tracker.pairings == 2 * len(units)  # 2 per member

    def test_minimum_group_size(self, params_k4, rng):
        with pytest.raises(ValueError):
            PandaGroup(params_k4, d=1, rng=rng)
