"""Tests for the Knox (homomorphic MAC + group signature) baseline."""

import pytest

from repro.baselines.knox import KnoxGroup, KnoxResponse, KnoxVerifier
from repro.core.verifier import PublicVerifier


@pytest.fixture()
def knox(params_k4, rng):
    kg = KnoxGroup(params_k4, d=3, rng=rng)
    kg.sign_and_store(b"knox protected shared data " * 6, b"f")
    return kg


@pytest.fixture()
def helper(params_k4, knox, rng):
    return PublicVerifier(params_k4, knox.gs.w, rng=rng)


class TestKnoxAudit:
    def test_designated_verifier_accepts(self, knox, params_k4, helper):
        verifier = KnoxVerifier(params_k4, knox.mac_key)
        ch = helper.generate_challenge(b"f", knox.n_blocks(b"f"))
        assert verifier.verify(ch, knox.generate_proof(b"f", ch))

    def test_sampled_audit(self, knox, params_k4, helper):
        verifier = KnoxVerifier(params_k4, knox.mac_key)
        ch = helper.generate_challenge(b"f", knox.n_blocks(b"f"), sample_size=2)
        assert verifier.verify(ch, knox.generate_proof(b"f", ch))

    def test_tampered_data_detected(self, knox, params_k4, helper):
        verifier = KnoxVerifier(params_k4, knox.mac_key)
        blocks, _ = knox._files[b"f"]
        elements = list(blocks[0].elements)
        elements[0] = (elements[0] + 1) % params_k4.order
        import dataclasses

        blocks[0] = dataclasses.replace(blocks[0], elements=tuple(elements))
        ch = helper.generate_challenge(b"f", knox.n_blocks(b"f"))
        assert not verifier.verify(ch, knox.generate_proof(b"f", ch))

    def test_not_publicly_verifiable(self, knox, params_k4, helper, rng):
        """Without the shared MAC key, verification is impossible: a guessed
        key rejects honest proofs."""
        from repro.baselines.knox import KnoxMacKey

        wrong_key = KnoxMacKey(
            taus=tuple(rng.randrange(params_k4.order) for _ in range(params_k4.k)),
            prf_seed=rng.randbytes(32),
        )
        impostor = KnoxVerifier(params_k4, wrong_key)
        ch = helper.generate_challenge(b"f", knox.n_blocks(b"f"))
        assert not impostor.verify(ch, knox.generate_proof(b"f", ch))

    def test_wrong_alpha_count(self, knox, params_k4, helper):
        verifier = KnoxVerifier(params_k4, knox.mac_key)
        ch = helper.generate_challenge(b"f", knox.n_blocks(b"f"))
        proof = knox.generate_proof(b"f", ch)
        assert not verifier.verify(ch, KnoxResponse(proof.mac_aggregate, proof.alphas[:-1]))

    def test_forged_mac_rejected(self, knox, params_k4, helper):
        verifier = KnoxVerifier(params_k4, knox.mac_key)
        ch = helper.generate_challenge(b"f", knox.n_blocks(b"f"))
        proof = knox.generate_proof(b"f", ch)
        forged = KnoxResponse((proof.mac_aggregate + 1) % params_k4.order, proof.alphas)
        assert not verifier.verify(ch, forged)


class TestKnoxGroupSignatures:
    def test_block_signatures_verify(self, knox):
        blocks, _ = knox._files[b"f"]
        for index in range(min(3, len(blocks))):
            sig = knox.block_signature(b"f", index)
            assert knox.gs.verify(blocks[index].block_id + b"|knox", sig)

    def test_manager_can_open_block_author(self, knox):
        """Group signatures give accountability: the manager identifies the
        round-robin author of each block."""
        blocks, _ = knox._files[b"f"]
        for index in range(min(3, len(blocks))):
            assert knox.gs.open(knox.block_signature(b"f", index)) == index % knox.d


class TestKnoxCosts:
    def test_metadata_an_order_larger_than_sem_pdp(self, knox, params_k4, group):
        """Knox's per-block metadata (MAC + group signature) versus one G1
        element — the Table III storage gap."""
        n = knox.n_blocks(b"f")
        sem_pdp_bytes = n * group.g1_element_bytes()
        assert knox.metadata_bytes(b"f") > 3 * sem_pdp_bytes

    def test_no_group_dynamics(self, knox):
        """Revocation invalidates all stored metadata (re-signing needed)."""
        invalidated = knox.revoke_member(0)
        assert invalidated == [b"f"]
        assert len(knox.member_keys) == 2
        with pytest.raises(KeyError):
            knox.n_blocks(b"f")

    def test_verification_needs_no_pairings(self, knox, params_k4, helper, group):
        """The MAC check is pairing-free (that's why Knox retreats from
        public verifiability: the fast path needs the secret key)."""
        from repro.core.accounting import CostTracker

        verifier = KnoxVerifier(params_k4, knox.mac_key)
        ch = helper.generate_challenge(b"f", knox.n_blocks(b"f"))
        proof = knox.generate_proof(b"f", ch)
        with CostTracker(group) as tracker:
            assert verifier.verify(ch, proof)
        assert tracker.pairings == 0
