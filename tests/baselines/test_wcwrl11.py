"""Tests for the WCWRL11 (privacy-preserving TPA) baseline."""

import pytest

from repro.baselines.wcwrl11 import (
    MaskedProofResponse,
    WCWRL11Owner,
    WCWRL11Server,
    WCWRL11Verifier,
)
from repro.core.verifier import PublicVerifier


@pytest.fixture()
def deployment(params_k4, rng):
    owner = WCWRL11Owner(params_k4, rng=rng)
    server = WCWRL11Server(params_k4, owner.pk, rng=rng)
    verifier = WCWRL11Verifier(params_k4, owner.pk, rng=rng)
    helper = PublicVerifier(params_k4, owner.pk, rng=rng)
    signed = owner.sign_file(b"tpa masked audit data " * 6, b"f")
    server.store(signed)
    return owner, server, verifier, helper, signed


class TestWCWRL11:
    def test_masked_proof_verifies(self, deployment):
        _, server, verifier, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        assert verifier.verify(ch, server.generate_masked_proof(b"f", ch))

    def test_sampled_masked_proof(self, deployment):
        _, server, verifier, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks), sample_size=2)
        assert verifier.verify(ch, server.generate_masked_proof(b"f", ch))

    def test_tamper_detected_through_mask(self, deployment):
        _, server, verifier, helper, signed = deployment
        server.tamper_block(b"f", 0)
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        assert not verifier.verify(ch, server.generate_masked_proof(b"f", ch))

    def test_mask_hides_true_combinations(self, deployment, params_k4):
        """Data privacy: the α values in the masked proof differ from the
        true linear combinations of the data (which an unmasked proof leaks)."""
        _, server, verifier, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        unmasked = server.generate_proof(b"f", ch)
        masked = server.generate_masked_proof(b"f", ch)
        assert masked.alphas != unmasked.alphas

    def test_mask_is_fresh_each_proof(self, deployment):
        _, server, verifier, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        p1 = server.generate_masked_proof(b"f", ch)
        p2 = server.generate_masked_proof(b"f", ch)
        assert p1.alphas != p2.alphas  # fresh masks, both verify
        assert verifier.verify(ch, p1) and verifier.verify(ch, p2)

    def test_tampered_commitment_rejected(self, deployment, group):
        _, server, verifier, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        proof = server.generate_masked_proof(b"f", ch)
        bad = MaskedProofResponse(
            sigma=proof.sigma,
            alphas=proof.alphas,
            commitment=proof.commitment * group.pair(group.g1(), group.g2()),
        )
        assert not verifier.verify(ch, bad)

    def test_tampered_alpha_rejected(self, deployment, params_k4):
        _, server, verifier, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        proof = server.generate_masked_proof(b"f", ch)
        bad_alphas = ((proof.alphas[0] + 1) % params_k4.order,) + proof.alphas[1:]
        bad = MaskedProofResponse(
            sigma=proof.sigma, alphas=bad_alphas, commitment=proof.commitment
        )
        assert not verifier.verify(ch, bad)

    def test_wrong_alpha_count_rejected(self, deployment):
        _, server, verifier, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        proof = server.generate_masked_proof(b"f", ch)
        bad = MaskedProofResponse(
            sigma=proof.sigma, alphas=proof.alphas[:-1], commitment=proof.commitment
        )
        assert not verifier.verify(ch, bad)

    def test_response_size_one_gt_larger(self, deployment, params_k4):
        _, server, _, helper, signed = deployment
        ch = helper.generate_challenge(b"f", len(signed.blocks))
        masked = server.generate_masked_proof(b"f", ch)
        unmasked = server.generate_proof(b"f", ch)
        assert masked.paper_size_bits(160) == unmasked.paper_size_bits(160) + 160
