"""Every example script must run cleanly (they double as integration tests)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)  # scripts must not depend on the CWD
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out  # every example narrates what it does
    assert "FAIL\n" not in out.replace("FAIL (as it should be)", "")


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"
