"""Shared fixtures.

Unit tests run on the ``toy-64`` parameter set (fast, structurally
identical to the paper's); integration tests can request ``test80_group``;
anything touching the paper-scale 160/512-bit parameters or the BN254
backend is marked ``slow``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import setup
from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running (paper-scale parameters or BN254)")


@pytest.fixture(scope="session")
def group():
    """Session-wide toy type-A group (64-bit order)."""
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["toy-64"])


@pytest.fixture(scope="session")
def test80_group():
    """Mid-size type-A group (80-bit order, 160-bit field)."""
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["test-80"])


@pytest.fixture(scope="session")
def paper_group():
    """The paper's parameterization (160-bit order, 512-bit field)."""
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["paper-160"])


@pytest.fixture()
def rng():
    """Deterministic RNG; reseeded per test for isolation."""
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def params_k4(group):
    return setup(group, k=4)


@pytest.fixture(scope="session")
def params_k1(group):
    return setup(group, k=1)


@pytest.fixture(scope="session")
def params_k8(group):
    return setup(group, k=8)
