"""Exporters: golden JSONL/Prometheus output, cost table vs the model."""

import json
from pathlib import Path

from repro.obs import (
    Ledger,
    Observability,
    bind_ledger,
    cost_table,
    model_equivalent_exp,
    phase_cost_rows,
    prometheus_text,
    trace_to_jsonl,
    write_metrics_text,
    write_trace_jsonl,
)

GOLDEN = Path(__file__).parent / "golden"


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def build_scenario() -> Observability:
    """A deterministic toy run: n=2 blocks, k=2, challenge c=2.

    Op counts are injected by hand at exactly the analytic predictions
    (Table I optimized single-SEM signing n(k+5) Exp + 2 Pair; proof
    generation c Exp; verification (c+k) Exp + 2 Pair), so the cost table
    over this trace must report every phase as ``ok``.
    """
    obs = Observability.create(clock=FakeClock())
    c = obs.counter
    with obs.tracer.span("keygen", k=2, threshold=0):
        c.exp_g2 += 1
    with obs.tracer.span("sign", n_blocks=2, optimized=True):
        c.exp_g1 += 14  # n(k+5) = 2 * 7
        c.pairings += 2
        c.hash_to_g1 += 2
    with obs.tracer.span("proofgen", challenged=2):
        c.exp_g1 += 2  # c
    with obs.tracer.span("proofverify", challenged=2, k=2) as span:
        c.exp_g1 += 4  # c + k
        c.pairings += 2
        span.set(ok=True)
    obs.registry.histogram(
        "phase_duration_seconds", "span durations", buckets=(0.5, 1.0, 2.0)
    )
    for s in obs.tracer.spans:
        obs.registry._metrics["phase_duration_seconds"].observe(s.duration)
    # A tiny flight-recorder chain so ledger_entries_total{kind} lands in
    # the golden Prometheus exposition alongside trace_spans_total.
    ledger = Ledger()
    ledger.ensure_genesis({"scenario": "golden", "seed": 0})
    ledger.append("audit", {"verifier": "tpa", "ok": True})
    bind_ledger(obs.registry, ledger)
    return obs


class TestGoldenFiles:
    def test_trace_jsonl_matches_golden(self):
        obs = build_scenario()
        assert trace_to_jsonl(obs.tracer) == (GOLDEN / "trace.jsonl").read_text()

    def test_prometheus_text_matches_golden(self):
        obs = build_scenario()
        assert prometheus_text(obs.registry) == (GOLDEN / "metrics.txt").read_text()

    def test_jsonl_schema_is_stable(self):
        obs = build_scenario()
        for line in trace_to_jsonl(obs.tracer).splitlines():
            record = json.loads(line)
            assert set(record) == {
                "span_id", "parent_id", "name", "start", "end", "duration", "attrs"
            }

    def test_write_trace_jsonl_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(build_scenario().tracer, path)
        write_trace_jsonl(build_scenario().tracer, path)
        assert len(path.read_text().splitlines()) == 8  # 2 runs x 4 spans

    def test_write_metrics_text_overwrites(self, tmp_path):
        path = tmp_path / "metrics.txt"
        obs = build_scenario()
        write_metrics_text(obs.registry, path)
        write_metrics_text(obs.registry, path)
        assert path.read_text() == prometheus_text(obs.registry)


class TestCostTable:
    def test_all_phases_match_the_model_exactly(self):
        obs = build_scenario()
        rows = {r["phase"]: r for r in phase_cost_rows(obs.tracer, k=2)}
        assert rows["sign"]["exp"] == rows["sign"]["predicted_exp"] == 14
        assert rows["sign"]["pair"] == rows["sign"]["predicted_pair"] == 2
        assert rows["proofgen"]["exp"] == rows["proofgen"]["predicted_exp"] == 2
        assert rows["proofverify"]["exp"] == rows["proofverify"]["predicted_exp"] == 4
        assert rows["proofverify"]["pair"] == rows["proofverify"]["predicted_pair"] == 2
        table = cost_table(obs.tracer, k=2)
        assert "DEVIATES" not in table
        assert table.count(" ok") == 3

    def test_deviation_is_flagged(self):
        obs = Observability.create(clock=FakeClock())
        with obs.tracer.span("sign", n_blocks=2, optimized=True):
            obs.counter.exp_g1 += 13  # one short of n(k+5)
            obs.counter.pairings += 2
        table = cost_table(obs.tracer, k=2)
        assert "DEVIATES" in table
        assert "Δexp=-1" in table

    def test_model_equivalent_exp_reconciles_all_variants(self):
        ops = {"exp_g1": 5, "exp_g1_fixed_base": 3, "exp_g1_skipped": 1, "mul_g1": 99}
        assert model_equivalent_exp(ops) == 9

    def test_multi_span_predictions_sum_per_span(self):
        # Two sign spans of n=1 each: prediction must be 2 * (1*(k+5) + 2 Pair),
        # not the closed form over n=2 (constant terms differ).
        obs = Observability.create(clock=FakeClock())
        for _ in range(2):
            with obs.tracer.span("sign", n_blocks=1, optimized=True):
                obs.counter.exp_g1 += 7
                obs.counter.pairings += 2
        row = phase_cost_rows(obs.tracer, k=2)[0]
        assert row["predicted_exp"] == 14
        assert row["predicted_pair"] == 4
        assert row["exp"] == 14 and row["pair"] == 4
