"""serve-sim dashboard: frame content, virtual-time scheduling, zero ops."""

import io

import pytest

from repro.net.simulator import Simulator
from repro.obs import MetricsRegistry
from repro.obs.adapters import (
    bind_operation_counter,
    bind_service_metrics,
    bind_simulator,
)
from repro.obs.dashboard import Dashboard
from repro.pairing.interface import OperationCounter
from repro.service.metrics import ServiceMetrics


def _bound_registry():
    """Registry mirroring a ServiceMetrics with some activity on it."""
    registry = MetricsRegistry()
    metrics = ServiceMetrics()
    bind_service_metrics(registry, metrics)
    for depth in (1, 2, 3, 4):
        metrics.on_enqueue(depth)
    metrics.on_batch(4, 0)
    for latency in (0.010, 0.015, 0.020, 0.120):
        metrics.on_complete(3, queue_wait_s=0.001, service_time_s=latency)
    metrics.failovers = 1
    metrics.retries = 2
    return registry, metrics


class TestFrame:
    def test_shows_queue_batch_failover_and_quantiles(self):
        registry, _ = _bound_registry()
        frame = Dashboard(registry, clock=lambda: 1.25).render_frame()
        assert "t=1.250s" in frame
        assert "queue depth" in frame and "high-water 4" in frame
        assert "batches" in frame and "mean size  4.0" in frame
        assert "failover         1" in frame
        assert "retries    2" in frame
        # Bucket-interpolated quantiles from the bound latency histogram.
        assert "p50" in frame and "p95" in frame and "p99" in frame

    def test_no_completions_yet(self):
        frame = Dashboard(MetricsRegistry()).render_frame()
        assert "(no completions yet)" in frame

    def test_tick_writes_frames_to_stream(self):
        registry, _ = _bound_registry()
        out = io.StringIO()
        dashboard = Dashboard(registry, out=out)
        dashboard.tick()
        dashboard.tick()
        assert dashboard.frames_rendered == 2
        assert out.getvalue().count("serve-sim") == 2


class TestVirtualTime:
    def test_attach_renders_on_schedule_and_lets_run_drain(self):
        sim = Simulator()
        registry = MetricsRegistry()
        bind_simulator(registry, sim)
        out = io.StringIO()
        dashboard = Dashboard(registry, clock=lambda: sim.now, out=out)
        # Some protocol activity out to t=0.45s of virtual time.
        for i in range(1, 10):
            sim.schedule(0.05 * i, lambda: None)
        dashboard.attach(sim, interval_s=0.1)
        end = sim.run()
        # Frames at 0.1..0.4 fire between events; 0.4 still sees the 0.45
        # event pending so one last frame lands at 0.5, after which the
        # timer stops re-arming instead of keeping the simulation alive.
        assert dashboard.frames_rendered == 5
        assert end == pytest.approx(0.5)
        assert sim.pending_events() == 0
        assert "t=0.100s" in out.getvalue()

    def test_rendering_performs_zero_group_operations(self):
        # The acceptance bar: watching a run must not change its cost —
        # no Exp, no Pair, nothing tallied while frames render.
        counter = OperationCounter()
        registry, metrics = _bound_registry()
        bind_operation_counter(registry, counter)
        before = counter.snapshot()
        dashboard = Dashboard(registry, out=io.StringIO())
        for _ in range(5):
            dashboard.tick()
        assert counter.snapshot() == before
        assert sum(counter.snapshot().values()) == 0
