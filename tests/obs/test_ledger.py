"""Tamper-evident ledger: chain integrity, crash semantics, Eq. 6 recheck.

The property tests drive a 1000-entry chain through the full tamper
catalogue — single-bit flips at seeded-random byte positions, entry
deletion, adjacent-entry reorder, suffix truncation — and require
``verify_ledger`` (anchored by the out-of-band head digest, the
documented trust root) to detect every one.  Semantic forgery is
exercised against real Type A crypto: an audit entry whose recorded
verdict contradicts its own recorded proof fails the offline Eq. 6
re-evaluation even though its hash chain is immaculate.
"""

import json
import random

import pytest

from repro.obs.ledger import (
    DEFAULT_EPOCH_LEN,
    GENESIS_PREV,
    Ledger,
    LedgerError,
    entry_hash,
    ledger_head,
    read_ledger,
    verify_ledger,
)

CHAIN_LEN = 1000


@pytest.fixture(scope="module")
def chain(tmp_path_factory):
    """A 1000-entry file-backed chain and its head hash (built once)."""
    path = tmp_path_factory.mktemp("ledger") / "chain.jsonl"
    ledger = Ledger(path, epoch_len=64)
    ledger.ensure_genesis({"scenario": "property", "seed": 1})
    i = 0
    while ledger.head()["entries"] < CHAIN_LEN:
        ledger.append("round", {"round": i, "ok": i % 7 != 3})
        i += 1
    return path, ledger.head()["hash"]


def _mutate(path, tmp_path, transform, name="mutated.jsonl"):
    copy = tmp_path / name
    copy.write_bytes(transform(path.read_bytes()))
    return copy


class TestChainProperties:
    def test_pristine_chain_verifies(self, chain):
        path, head = chain
        report = verify_ledger(path, expect_head=head)
        assert report.ok
        assert report.entries == CHAIN_LEN
        assert report.head == head
        assert report.counts["checkpoint"] == CHAIN_LEN // 64

    def test_any_single_bit_flip_is_detected(self, chain, tmp_path):
        path, head = chain
        data = path.read_bytes()
        rng = random.Random(1311)
        for trial in range(32):
            index = rng.randrange(len(data))
            mutated = bytearray(data)
            mutated[index] ^= 1 << rng.randrange(8)
            copy = _mutate(path, tmp_path, lambda _: bytes(mutated),
                           name=f"flip{trial}.jsonl")
            report = verify_ledger(copy, expect_head=head)
            assert not report.ok, (
                f"bit flip at byte {index} survived verification"
            )

    def test_entry_deletion_is_detected(self, chain, tmp_path):
        path, head = chain
        lines = path.read_bytes().splitlines(keepends=True)
        rng = random.Random(1693)
        for trial in range(8):
            victim = rng.randrange(len(lines) - 1)
            copy = _mutate(
                path, tmp_path,
                lambda _: b"".join(lines[:victim] + lines[victim + 1:]),
                name=f"del{trial}.jsonl")
            report = verify_ledger(copy, expect_head=head)
            assert not report.ok
            assert any("deleted, inserted, or reordered" in e or "head hash" in e
                       or "link broken" in e for e in report.errors)

    def test_entry_reorder_is_detected(self, chain, tmp_path):
        path, head = chain
        lines = path.read_bytes().splitlines(keepends=True)
        rng = random.Random(1759)
        for trial in range(8):
            at = rng.randrange(1, len(lines) - 1)
            swapped = list(lines)
            swapped[at], swapped[at - 1] = swapped[at - 1], swapped[at]
            copy = _mutate(path, tmp_path, lambda _: b"".join(swapped),
                           name=f"swap{trial}.jsonl")
            report = verify_ledger(copy, expect_head=head)
            assert not report.ok

    def test_suffix_truncation_needs_the_head_anchor(self, chain, tmp_path):
        """Dropping whole trailing lines leaves a self-consistent chain —
        only the out-of-band head digest can tell."""
        path, head = chain
        lines = path.read_bytes().splitlines(keepends=True)
        copy = _mutate(path, tmp_path, lambda _: b"".join(lines[:-5]),
                       name="trunc.jsonl")
        assert verify_ledger(copy).ok  # internally consistent!
        report = verify_ledger(copy, expect_head=head)
        assert not report.ok
        assert any("truncated or wholly replaced" in e for e in report.errors)

    def test_forged_hash_tail_still_breaks_at_the_head(self, chain, tmp_path):
        """Re-sealing every hash after an edit yields a valid-looking chain
        whose head no longer matches the pinned digest."""
        path, head = chain
        entries, _ = read_ledger(path)
        entries[500]["body"]["ok"] = not entries[500]["body"]["ok"]
        prev = entries[499]["hash"]
        for entry in entries[500:]:
            entry["prev"] = prev
            entry["hash"] = entry_hash(entry)
            prev = entry["hash"]
        for entry in entries:  # re-pin checkpoints to the forged chain
            if entry["kind"] == "checkpoint":
                entry["body"]["head"] = entries[entry["seq"] - 1]["hash"]
                entry["hash"] = entry_hash(entry)
        # (checkpoint re-sealing above invalidates later prevs again; a real
        # forger must iterate — one pass is enough to show the principle
        # when the edit sits after the last checkpoint.)
        forged = tmp_path / "forged.jsonl"
        forged.write_text("".join(
            json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
            for e in entries))
        report = verify_ledger(forged, expect_head=head, recheck=False)
        assert not report.ok


class TestCrashSemantics:
    def test_torn_tail_is_tolerated_and_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        ledger = Ledger(path, epoch_len=8)
        ledger.ensure_genesis({"run": 1})
        for i in range(5):
            ledger.append("round", {"round": i})
        with open(path, "a") as fh:
            fh.write('{"seq": 6, "kind": "round", "bo')  # crash mid-append
        entries, torn = read_ledger(path)
        assert torn and len(entries) == 6
        assert verify_ledger(path).ok  # torn tail is not tamper
        reopened = Ledger(path, epoch_len=8)
        assert reopened.torn_tail
        reopened.append("round", {"round": 6})
        entries, torn = read_ledger(path)
        assert not torn
        assert entries[-1]["kind"] == "round"
        assert verify_ledger(path).ok

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        ledger = Ledger(path)
        ledger.ensure_genesis({"run": 1})
        ledger.append("round", {"round": 0})
        ledger.append("round", {"round": 1})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # torn *before* the tail: unusable
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match="line 2"):
            read_ledger(path)
        assert not verify_ledger(path).ok

    def test_resume_continues_the_chain(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        first = Ledger(path, epoch_len=4)
        first.ensure_genesis({"run": 1})
        first.append("round", {"round": 0})
        head_before = first.head()
        second = Ledger(path, epoch_len=4)
        assert second.head() == head_before
        second.append("round", {"round": 1})
        assert verify_ledger(path).ok

    def test_resume_adopts_the_genesis_epoch_len(self, tmp_path):
        path = tmp_path / "epoch.jsonl"
        Ledger(path, epoch_len=4).ensure_genesis({"run": 1})
        resumed = Ledger(path)  # default epoch_len, corrected by genesis
        assert resumed.epoch_len == 4

    def test_resume_rejects_a_tampered_file(self, tmp_path):
        path = tmp_path / "tampered.jsonl"
        ledger = Ledger(path)
        ledger.ensure_genesis({"run": 1})
        ledger.append("round", {"round": 0})
        data = path.read_text().replace('"round":0', '"round":9')
        path.write_text(data)
        with pytest.raises(LedgerError):
            Ledger(path)


class TestChainMechanics:
    def test_checkpoints_land_on_epoch_boundaries(self, tmp_path):
        ledger = Ledger(epoch_len=4)
        for i in range(10):
            ledger.append("round", {"round": i})
        kinds = [e["kind"] for e in ledger.entries]
        for seq, kind in enumerate(kinds):
            assert (kind == "checkpoint") == (seq % 4 == 0 and seq > 0)

    def test_genesis_prev_and_epoch_len_floor(self):
        ledger = Ledger()
        entry = ledger.append("round", {"round": 0})
        assert entry["prev"] == GENESIS_PREV
        with pytest.raises(LedgerError):
            Ledger(epoch_len=1)

    def test_ensure_genesis_is_idempotent_until_meta_changes(self):
        ledger = Ledger()
        assert ledger.ensure_genesis({"scenario": "a", "seed": 1})
        assert not ledger.ensure_genesis({"scenario": "a", "seed": 1})
        assert ledger.ensure_genesis({"scenario": "a", "seed": 2})
        assert sum(1 for e in ledger.entries if e["kind"] == "genesis") == 2

    def test_ledger_head_matches_live_head(self, tmp_path):
        path = tmp_path / "head.jsonl"
        ledger = Ledger(path, epoch_len=4)
        ledger.ensure_genesis({"run": 1})
        for i in range(6):
            ledger.append("round", {"round": i})
        assert ledger_head(path) == ledger.head()
        assert ledger_head(path)["epoch"] == ledger.head()["entries"] // 4

    def test_in_memory_mode_never_touches_disk(self):
        ledger = Ledger()
        ledger.append("round", {"round": 0})
        assert ledger.path is None
        assert len(ledger.entries) == 1
        assert ledger.counts == {"round": 1}

    def test_epoch_len_default(self):
        assert Ledger().epoch_len == DEFAULT_EPOCH_LEN


class TestOfflineRecheck:
    @pytest.fixture(scope="class")
    def audit_material(self):
        """One real signed block + a passing (challenge, proof) pair."""
        from repro.core.cloud import CloudServer
        from repro.core.owner import DataOwner
        from repro.core.params import setup
        from repro.core.sem import SecurityMediator
        from repro.core.verifier import PublicVerifier
        from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup

        group = TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["toy-64"])
        params = setup(group, 2, seed=b"ledger-recheck")
        rng = random.Random(5)
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params, sem.pk, rng=rng)
        signed = owner.sign_file(b"x" * 40, b"fid", sem, batch=True)
        cloud = CloudServer(params, org_pk=sem.pk)
        cloud.store(signed)
        verifier = PublicVerifier(params, sem.pk, rng=random.Random(7))
        challenge = verifier.generate_challenge(b"fid", len(signed.blocks))
        proof = cloud.generate_proof(b"fid", challenge)
        assert verifier.verify(challenge, proof)
        return params, sem, challenge, proof

    def _write_audited_chain(self, tmp_path, audit_material, ok, name):
        params, sem, challenge, proof = audit_material
        path = tmp_path / name
        ledger = Ledger(path)
        ledger.ensure_genesis({
            "param_set": "toy-64", "k": 2,
            "setup_seed": params.seed.hex(),
        })
        ledger.append("verifier_key", {"verifier": "tpa",
                                       "pk": sem.pk.to_bytes().hex()})
        ledger.append("audit", {
            "verifier": "tpa",
            "file": b"fid".hex(),
            "indices": [int(i) for i in challenge.indices],
            "betas": [int(b) for b in challenge.betas],
            "sigma": proof.sigma.to_bytes().hex(),
            "alphas": [int(a) for a in proof.alphas],
            "ok": ok,
        })
        return path

    def test_honest_verdict_rechecks_clean(self, tmp_path, audit_material):
        path = self._write_audited_chain(tmp_path, audit_material, True,
                                         "honest.jsonl")
        report = verify_ledger(path)
        assert report.ok
        assert report.audits_rechecked == 1
        assert report.audit_mismatches == 0

    def test_forged_verdict_fails_eq6_recheck(self, tmp_path, audit_material):
        """A consistently re-chained lie: hashes all valid, verdict false."""
        path = self._write_audited_chain(tmp_path, audit_material, False,
                                         "forged.jsonl")
        report = verify_ledger(path)
        assert not report.ok
        assert report.audit_mismatches == 1
        assert any("forged verdict" in e for e in report.errors)
        # The chain itself is immaculate — only the recheck catches it.
        assert verify_ledger(path, recheck=False).ok

    def test_recheck_skipped_without_key_material(self, tmp_path):
        path = tmp_path / "nokey.jsonl"
        ledger = Ledger(path)
        ledger.ensure_genesis({"scenario": "x", "seed": 0})  # no crypto pins
        ledger.append("audit", {"verifier": "tpa", "ok": True})
        report = verify_ledger(path)
        assert report.ok
        assert report.audits_rechecked == 0


class TestRepairLifecycle:
    """Fleet repair records must form a begin → slice* → complete chain."""

    def _ledger(self, tmp_path, name="repairs.jsonl"):
        path = tmp_path / name
        ledger = Ledger(path)
        ledger.ensure_genesis({"scenario": "repairs", "seed": 0})
        return path, ledger

    @staticmethod
    def _begin(ledger, repair="abcd.1", stripes=3):
        ledger.append("repair_begin", {
            "repair": repair, "file": "aa", "slot": 1,
            "from": "cloud-s1", "to": "cloud-s4", "stripes": stripes,
        })

    def test_clean_lifecycle_verifies(self, tmp_path):
        path, ledger = self._ledger(tmp_path)
        self._begin(ledger)
        ledger.append("repair_slice", {"repair": "abcd.1", "stripes": 3,
                                       "digest": "00"})
        ledger.append("repair_complete", {"repair": "abcd.1",
                                          "server": "cloud-s4", "slices": 3,
                                          "audit_ok": True})
        report = verify_ledger(path)
        assert report.ok, report.errors
        assert report.repairs_checked == 3
        assert report.open_repairs == []

    def test_spliced_slice_without_begin_rejected(self, tmp_path):
        path, ledger = self._ledger(tmp_path)
        ledger.append("repair_slice", {"repair": "feed.1", "stripes": 3,
                                       "digest": "00"})
        report = verify_ledger(path)
        assert not report.ok
        assert any("spliced repair record" in e for e in report.errors)

    def test_complete_after_close_rejected(self, tmp_path):
        path, ledger = self._ledger(tmp_path)
        self._begin(ledger)
        ledger.append("repair_complete", {"repair": "abcd.1",
                                          "server": "cloud-s4", "slices": 3,
                                          "audit_ok": True})
        ledger.append("repair_complete", {"repair": "abcd.1",
                                          "server": "cloud-s4", "slices": 3,
                                          "audit_ok": True})
        report = verify_ledger(path)
        assert not report.ok
        assert any("never begun (or already closed)" in e for e in report.errors)

    def test_begin_twice_rejected(self, tmp_path):
        path, ledger = self._ledger(tmp_path)
        self._begin(ledger)
        self._begin(ledger)
        report = verify_ledger(path)
        assert not report.ok
        assert any("begun twice" in e for e in report.errors)

    def test_stripe_count_mismatch_rejected(self, tmp_path):
        path, ledger = self._ledger(tmp_path)
        self._begin(ledger, stripes=3)
        ledger.append("repair_slice", {"repair": "abcd.1", "stripes": 2,
                                       "digest": "00"})
        ledger.append("repair_complete", {"repair": "abcd.1",
                                          "server": "cloud-s4", "slices": 5,
                                          "audit_ok": True})
        report = verify_ledger(path)
        assert not report.ok
        assert sum("repair abcd.1" in e for e in report.errors) == 2

    def test_open_repair_at_tail_tolerated_but_surfaced(self, tmp_path):
        path, ledger = self._ledger(tmp_path)
        self._begin(ledger, repair="feed.2")
        report = verify_ledger(path)
        assert report.ok, report.errors
        assert report.open_repairs == ["feed.2"]

    def test_failed_repair_closes_the_record(self, tmp_path):
        path, ledger = self._ledger(tmp_path)
        self._begin(ledger)
        ledger.append("repair_failed", {"repair": "abcd.1",
                                        "reason": "fewer than data_shards"})
        report = verify_ledger(path)
        assert report.ok, report.errors
        assert report.open_repairs == []
