"""Bench harness: run schema, trajectory files, deterministic suites."""

import json

import pytest

from repro.obs.bench import (
    MAX_TRAJECTORY_RUNS,
    SCHEMA_VERSION,
    BenchSchemaError,
    append_run,
    baseline_of,
    environment_fingerprint,
    load_trajectory,
    make_phase,
    make_run,
    measure_ops_and_wall,
    run_suite,
    trajectory_path,
    validate_run,
    write_run_file,
)


def _run(suite="audit", phases=None, **overrides):
    run = make_run(
        suite,
        phases or [make_phase("proofgen", 0.01, {"exp_g1": 4})],
        config={"k": 4},
        created_unix=1_700_000_000.0,
    )
    run.update(overrides)
    return run


class TestSchema:
    def test_make_phase_computes_table1_units(self):
        phase = make_phase(
            "sign", 0.5,
            {"exp_g1": 3, "exp_g1_fixed_base": 5, "exp_g1_skipped": 2,
             "pairings": 7, "mul_g1": 0},
            repeats=2, scalars={"n_blocks": 8},
        )
        assert phase["exp"] == 10  # plain + fixed-base + skipped
        assert phase["pair"] == 7
        assert "mul_g1" not in phase["ops"]  # zero tallies dropped
        assert phase["scalars"] == {"n_blocks": 8.0}

    def test_valid_run_passes(self):
        assert validate_run(_run())["schema_version"] == SCHEMA_VERSION

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        assert set(env) == {"python", "implementation", "platform", "machine", "cpus"}

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda r: r.update(schema_version=99), "schema_version"),
            (lambda r: r.update(suite=""), "suite"),
            (lambda r: r.pop("environment"), "environment"),
            (lambda r: r.update(phases=[]), "non-empty"),
            (lambda r: r["phases"][0].update(wall_s=-1), "wall_s"),
            (lambda r: r["phases"][0]["ops"].update(exp_g1=1.5), "ops"),
            (lambda r: r["phases"].append(dict(r["phases"][0])), "duplicate"),
        ],
    )
    def test_violations_named(self, mutate, message):
        run = _run()
        mutate(run)
        with pytest.raises(BenchSchemaError, match=message):
            validate_run(run)

    def test_all_problems_reported_at_once(self):
        run = _run(schema_version=99, suite="")
        with pytest.raises(BenchSchemaError) as err:
            validate_run(run)
        assert "schema_version" in str(err.value) and "suite" in str(err.value)


class TestTrajectory:
    def test_append_creates_and_pins_first_baseline(self, tmp_path):
        path = trajectory_path("audit", tmp_path)
        assert load_trajectory(path) is None
        doc = append_run(path, _run())
        assert doc["baseline"] == doc["runs"][0]
        assert path.name == "BENCH_audit.json"

    def test_baseline_stays_pinned_until_reset(self, tmp_path):
        path = trajectory_path("audit", tmp_path)
        first = _run()
        second = _run(created_unix=1_700_000_001.0)
        append_run(path, first)
        doc = append_run(path, second)
        assert doc["baseline"] == first
        doc = append_run(path, second, set_baseline=True)
        assert doc["baseline"] == second

    def test_suite_mismatch_rejected(self, tmp_path):
        path = trajectory_path("audit", tmp_path)
        append_run(path, _run())
        with pytest.raises(BenchSchemaError, match="suite"):
            append_run(path, _run(suite="table1"))

    def test_runs_capped(self, tmp_path):
        path = trajectory_path("audit", tmp_path)
        for i in range(MAX_TRAJECTORY_RUNS + 5):
            append_run(path, _run(created_unix=float(i)))
        doc = load_trajectory(path)
        assert len(doc["runs"]) == MAX_TRAJECTORY_RUNS
        assert doc["runs"][-1]["created_unix"] == MAX_TRAJECTORY_RUNS + 4

    def test_bare_run_file_reads_as_single_run_trajectory(self, tmp_path):
        run = _run()
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(run))
        doc = load_trajectory(path)
        assert doc["runs"] == [run]
        assert baseline_of(doc) == run

    def test_corrupt_json_fails_loudly(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="JSON"):
            load_trajectory(path)

    def test_baseline_of_fallbacks(self):
        assert baseline_of(None) is None
        run = _run()
        assert baseline_of({"runs": [run], "baseline": None}) == run
        assert baseline_of({"runs": [], "baseline": None}) is None

    def test_write_run_file_stamps_name(self, tmp_path):
        path = write_run_file(_run(), tmp_path)
        assert path.name.startswith("bench_audit_2023")
        validate_run(json.loads(path.read_text()))


class TestMeasurement:
    def test_ops_restored_and_counted(self, group):
        previous = group.counter
        wall, ops = measure_ops_and_wall(group, lambda: group.g1() ** 3, repeats=2)
        assert wall >= 0
        assert ops.get("exp_g1") == 1
        assert group.counter is previous  # whatever was attached survives

    def test_audit_suite_op_counts_are_deterministic(self):
        first = run_suite("audit", repeats=1)
        second = run_suite("audit", repeats=1)
        assert [p["ops"] for p in first["phases"]] == [
            p["ops"] for p in second["phases"]
        ]
        # ProofGen = c Exp; ProofVerify = (c+k) Exp + 2 Pair (c=4, k=4).
        by_name = {p["name"]: p for p in first["phases"]}
        assert by_name["proofgen"]["exp"] == 4
        assert by_name["proofverify"]["exp"] == 8
        assert by_name["proofverify"]["pair"] == 2

    def test_unknown_suite_rejected(self):
        with pytest.raises(BenchSchemaError, match="unknown suite"):
            run_suite("nope")
