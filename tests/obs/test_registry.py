"""Metric families: label children, monotonicity, cumulative buckets."""

import pytest

from repro.obs import MetricError, MetricsRegistry


class TestCounter:
    def test_inc_and_absolute_set(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests seen")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["requests_total"] == 5
        c._default_child().set(9)
        assert reg.snapshot()["requests_total"] == 9

    def test_counters_never_decrease(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc(3)
        with pytest.raises(MetricError):
            c.inc(-1)
        with pytest.raises(MetricError):
            c._default_child().set(2)

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        c.labels(op="exp").inc(7)
        c.labels(op="pair").inc(2)
        snap = reg.snapshot()
        assert snap['ops_total{op="exp"}'] == 7
        assert snap['ops_total{op="pair"}'] == 2

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        with pytest.raises(MetricError):
            c.labels(kind="exp")
        with pytest.raises(MetricError):
            c.inc()  # label-less use of a labelled family


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert reg.snapshot()["queue_depth"] == 12


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap['latency_seconds_bucket{le="0.01"}'] == 1
        assert snap['latency_seconds_bucket{le="0.1"}'] == 3
        assert snap['latency_seconds_bucket{le="1"}'] == 4
        assert snap['latency_seconds_bucket{le="+Inf"}'] == 5
        assert snap["latency_seconds_sum"] == pytest.approx(5.605)
        assert snap["latency_seconds_count"] == 5

    def test_needs_buckets(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(MetricError):
            reg.gauge("thing")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("thing", labels=("b",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("9bad")
        with pytest.raises(MetricError):
            reg.counter("ok", labels=("bad-label",))

    def test_collectors_refresh_on_collect(self):
        reg = MetricsRegistry()
        g = reg.gauge("mirrored")
        source = {"value": 1}
        reg.register_collector(lambda: g.set(source["value"]))
        assert reg.snapshot()["mirrored"] == 1
        source["value"] = 42
        assert reg.snapshot()["mirrored"] == 42

    def test_collect_output_is_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("zeta").set(1)
        reg.gauge("alpha").set(2)
        names = [s.name for s in reg.collect()]
        assert names == sorted(names)


class TestCounterReset:
    """The monotonicity escape hatch for mirrored external accumulators."""

    def test_explicit_reset_is_allowed_and_tallied(self):
        reg = MetricsRegistry()
        c = reg.counter("mirrored_total")
        c.set(10)
        c.set(0, reset=True)
        child = c._default_child()
        assert child.value == 0
        assert child.resets == 1
        c.set(4)  # climbing again after the reset is ordinary
        assert reg.snapshot()["mirrored_total"] == 4

    def test_equal_set_is_not_a_reset(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.set(5)
        c.set(5)
        assert c._default_child().resets == 0

    def test_decrease_error_names_both_values(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.set(9)
        with pytest.raises(MetricError, match="9.* to 2"):
            c.set(2)

    def test_labelled_children_reset_independently(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        c.labels(op="exp").set(7)
        c.labels(op="pair").set(3)
        c.labels(op="exp").set(0, reset=True)
        assert c.labels(op="exp").resets == 1
        assert c.labels(op="pair").resets == 0


class TestHistogramQuantiles:
    """Bucket-interpolated p50/p95/p99 shared by dashboard and exposition."""

    def _loaded(self, values, buckets):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=buckets)
        for v in values:
            h.observe(v)
        return h

    def test_empty_histogram_is_nan(self):
        import math

        h = self._loaded([], (1.0, 2.0))
        assert math.isnan(h.quantile(0.5))

    def test_invalid_q_rejected(self):
        h = self._loaded([1.0], (1.0, 2.0))
        with pytest.raises(MetricError):
            h.quantile(-0.1)
        with pytest.raises(MetricError):
            h.quantile(1.1)

    def test_linear_interpolation_within_bucket(self):
        # 4 observations all inside (0.5, 1.0]; rank q*4 interpolates the
        # bucket linearly from its lower bound.
        h = self._loaded([0.9] * 4, (0.5, 1.0, 2.0))
        assert h.quantile(0.5) == pytest.approx(0.75)
        assert h.quantile(0.95) == pytest.approx(0.975)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_overflow_bucket_clamps_to_last_finite_bound(self):
        h = self._loaded([5.0, 6.0, 7.0], (1.0, 2.0))
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_property_uniform_stream_within_one_bucket_width(self):
        # Property: against a known uniform distribution the bucket
        # estimator is never off by more than one bucket width.
        buckets = tuple(float(b) for b in range(10, 101, 10))
        values = [float(v) for v in range(1, 101)]  # uniform 1..100
        h = self._loaded(values, buckets)
        width = 10.0
        for q in (0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
            exact = sorted(values)[max(int(q * len(values)) - 1, 0)]
            assert abs(h.quantile(q) - exact) <= width, q

    def test_property_quantiles_are_monotone_in_q(self):
        import random

        rng = random.Random(7)
        values = [rng.uniform(0.0, 3.0) for _ in range(257)]
        h = self._loaded(values, (0.25, 0.5, 1.0, 2.0, 4.0))
        qs = [i / 20 for i in range(21)]
        estimates = [h.quantile(q) for q in qs]
        assert estimates == sorted(estimates)

    def test_summary_samples_in_collect_output(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.5, 1.0))
        h.observe(0.7)
        names = {
            (s.name, dict(s.labels).get("quantile"))
            for s in reg.collect()
            if dict(s.labels).get("quantile")
        }
        assert names == {
            ("lat_seconds", "0.5"),
            ("lat_seconds", "0.95"),
            ("lat_seconds", "0.99"),
        }
