"""Metric families: label children, monotonicity, cumulative buckets."""

import pytest

from repro.obs import MetricError, MetricsRegistry


class TestCounter:
    def test_inc_and_absolute_set(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests seen")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["requests_total"] == 5
        c._default_child().set(9)
        assert reg.snapshot()["requests_total"] == 9

    def test_counters_never_decrease(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc(3)
        with pytest.raises(MetricError):
            c.inc(-1)
        with pytest.raises(MetricError):
            c._default_child().set(2)

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        c.labels(op="exp").inc(7)
        c.labels(op="pair").inc(2)
        snap = reg.snapshot()
        assert snap['ops_total{op="exp"}'] == 7
        assert snap['ops_total{op="pair"}'] == 2

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", labels=("op",))
        with pytest.raises(MetricError):
            c.labels(kind="exp")
        with pytest.raises(MetricError):
            c.inc()  # label-less use of a labelled family


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert reg.snapshot()["queue_depth"] == 12


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap['latency_seconds_bucket{le="0.01"}'] == 1
        assert snap['latency_seconds_bucket{le="0.1"}'] == 3
        assert snap['latency_seconds_bucket{le="1"}'] == 4
        assert snap['latency_seconds_bucket{le="+Inf"}'] == 5
        assert snap["latency_seconds_sum"] == pytest.approx(5.605)
        assert snap["latency_seconds_count"] == 5

    def test_needs_buckets(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(MetricError):
            reg.gauge("thing")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("thing", labels=("b",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("9bad")
        with pytest.raises(MetricError):
            reg.counter("ok", labels=("bad-label",))

    def test_collectors_refresh_on_collect(self):
        reg = MetricsRegistry()
        g = reg.gauge("mirrored")
        source = {"value": 1}
        reg.register_collector(lambda: g.set(source["value"]))
        assert reg.snapshot()["mirrored"] == 1
        source["value"] = 42
        assert reg.snapshot()["mirrored"] == 42

    def test_collect_output_is_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("zeta").set(1)
        reg.gauge("alpha").set(2)
        names = [s.name for s in reg.collect()]
        assert names == sorted(names)
