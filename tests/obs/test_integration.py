"""End to end: a traced upload + audit whose costs match the model exactly."""

import json
import random

import pytest

from repro.core import SemPdpSystem
from repro.obs import Observability, cost_table, phase_cost_rows, trace_to_jsonl
from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup


@pytest.fixture()
def fresh_group():
    """A private group instance so the attached counter cannot leak into
    the session-scoped ``group`` fixture other tests share."""
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["toy-64"])


def run_traced_system(group, k=4, threshold=None, data=b"x" * 300):
    obs = Observability.create()
    system = SemPdpSystem.create(group, k=k, threshold=threshold,
                                 rng=random.Random(11), obs=obs)
    owner = system.enroll("alice")
    receipt = system.upload(owner, data, b"file-1")
    assert system.audit(b"file-1")
    group.detach_counter()
    return obs, receipt


class TestTracedEndToEnd:
    def test_trace_covers_the_modeled_phases(self, fresh_group):
        obs, _ = run_traced_system(fresh_group)
        names = {span.name for span in obs.tracer.spans}
        assert {"keygen", "upload", "sign", "store", "audit",
                "challenge", "proofgen", "proofverify"} <= names

    def test_phase_spans_carry_op_counts(self, fresh_group):
        obs, receipt = run_traced_system(fresh_group)
        (sign,) = obs.tracer.find("sign")
        assert sign.attributes["n_blocks"] == receipt.n_blocks
        assert sign.op_counts().get("pairings") == 2
        (verify,) = obs.tracer.find("proofverify")
        assert verify.attributes["ok"] is True
        assert verify.op_counts().get("pairings") == 2

    def test_cost_table_matches_the_model_exactly(self, fresh_group):
        """The acceptance bar: measured Exp/Pair == Table I predictions."""
        obs, _ = run_traced_system(fresh_group)
        rows = phase_cost_rows(obs.tracer, k=4)
        modeled = [r for r in rows if r["predicted_exp"] is not None]
        assert {r["phase"] for r in modeled} == {"sign", "proofgen", "proofverify"}
        for row in modeled:
            assert row["exp"] == row["predicted_exp"], row
            assert row["pair"] == row["predicted_pair"], row
        assert "DEVIATES" not in cost_table(obs.tracer, k=4)

    def test_multi_sem_cost_table_matches(self, fresh_group):
        obs, _ = run_traced_system(fresh_group, threshold=2)
        rows = {r["phase"]: r for r in phase_cost_rows(obs.tracer, k=4, t=2)}
        for name in ("proofgen", "proofverify"):
            assert rows[name]["exp"] == rows[name]["predicted_exp"]
            assert rows[name]["pair"] == rows[name]["predicted_pair"]

    def test_jsonl_trace_has_op_annotated_phases(self, fresh_group):
        obs, _ = run_traced_system(fresh_group)
        records = [json.loads(line) for line in trace_to_jsonl(obs.tracer).splitlines()]
        by_name = {r["name"]: r for r in records}
        for phase in ("sign", "proofgen", "proofverify"):
            attrs = by_name[phase]["attrs"]
            assert any(
                key in attrs
                for key in ("exp_g1", "exp_g1_fixed_base", "exp_g1_msm")
            )

    def test_registry_mirrors_the_run(self, fresh_group):
        obs, _ = run_traced_system(fresh_group)
        snap = obs.registry.snapshot()
        assert snap['pdp_operations{op="pairings"}'] >= 4  # sign + verify
        assert snap['pdp_operations{op="exp_g1"}'] > 0

    def test_null_obs_default_changes_nothing(self, fresh_group):
        system = SemPdpSystem.create(fresh_group, k=4, rng=random.Random(11))
        owner = system.enroll("alice")
        system.upload(owner, b"y" * 200, b"file-2")
        assert system.audit(b"file-2")
        assert fresh_group.counter is None


class TestSimulatedServiceTracing:
    def test_virtual_clock_spans_and_sim_metrics(self, fresh_group):
        from repro.core.params import setup
        from repro.service import BatchConfig, build_service_network

        obs = Observability.create()
        params = setup(fresh_group, 4)
        sim, service, clients = build_service_network(
            params,
            threshold=2,
            n_clients=2,
            rng=random.Random(3),
            batch_config=BatchConfig(max_batch=4, max_wait_s=0.01),
            obs=obs,
        )
        rng = random.Random(5)
        for i, client in enumerate(clients):
            sim.send(client.request_for_data(rng.randbytes(64), f"f-{i}".encode()))
        sim.run()
        fresh_group.detach_counter()
        assert all(len(c.failed) == 0 for c in clients)
        names = {span.name for span in obs.tracer.spans}
        assert {"batch.prepare", "batch.finish", "lagrange.combine"} <= names
        # Spans are stamped in virtual time: within the simulated horizon.
        assert all(0.0 <= s.start <= sim.now for s in obs.tracer.spans)
        snap = obs.registry.snapshot()
        assert snap["sim_delivered"] > 0
        assert snap["sim_virtual_time_seconds"] == pytest.approx(sim.now)
        assert snap["service_completed"] == 2
