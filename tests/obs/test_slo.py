"""Burn-rate SLO engine: rules, alert state machine, offline report check.

The engine is driven end-to-end through a scripted SLI: a controllable
bad/finished accumulator mirrored into the registry via the same
``bind_sli_sources`` path production uses, sampled into the time-series
store at fixed virtual ticks.  The alert timeline the engine produces is
then fed to :func:`check_slo_report`, the offline verifier — the same
honest-run/forged-run duality the ledger tests use.
"""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    SLI_BAD,
    SLI_FINISHED,
    SLI_LATENCY,
    SLI_REQUESTS,
    AlertEngine,
    BurnRateRule,
    BurnRateWindow,
    LatencyTap,
    SLOObjective,
    bind_sli_sources,
    check_slo_report,
    compile_rules,
    default_windows,
    error_budget_report,
)
from repro.obs.timeseries import TimeSeriesStore


def _availability_objective(target=0.9, burn=2.0):
    return SLOObjective(
        name="avail", signal="availability", target=target,
        windows=(BurnRateWindow(long_s=1.0, short_s=0.5, burn_rate=burn),),
    )


class _ScriptedRun:
    """A store + engine fed by a controllable availability SLI."""

    def __init__(self, objective=None, for_intervals=1):
        self.state = {"bad": 0.0, "finished": 0.0}
        registry = MetricsRegistry()
        bind_sli_sources(registry, {
            SLI_BAD: lambda: self.state["bad"],
            SLI_FINISHED: lambda: self.state["finished"],
        })
        self.objective = objective or _availability_objective()
        self.store = TimeSeriesStore(registry)
        self.engine = AlertEngine(
            compile_rules([self.objective], 4.0), self.store,
            for_intervals=for_intervals,
        )
        self.now = 0.0
        self.store.sample(0.0)
        self.engine.evaluate(0.0)

    def tick(self, dt=0.25, finished=4.0, bad=0.0):
        self.now += dt
        self.state["finished"] += finished
        self.state["bad"] += bad
        self.store.sample(self.now)
        self.engine.evaluate(self.now)


class TestWindowsAndRules:
    def test_default_windows_scale_with_duration(self):
        fast, slow = default_windows(100.0)
        assert (fast.long_s, fast.short_s) == (5.0, 1.0)
        assert (slow.long_s, slow.short_s) == (25.0, 5.0)
        assert fast.burn_rate > slow.burn_rate
        assert (fast.severity, slow.severity) == ("page", "ticket")

    def test_compile_rules_is_deterministically_ordered(self):
        objectives = [
            SLOObjective(name="zeta", signal="availability"),
            SLOObjective(name="alpha", signal="drop_rate"),
        ]
        keys = [r.key for r in compile_rules(objectives, 10.0)]
        assert keys == ["alpha:page", "alpha:ticket", "zeta:page", "zeta:ticket"]

    def test_op_budget_idle_window_burns_nothing(self):
        registry = MetricsRegistry()
        spend = {"exp": 0.0, "requests": 0.0}
        bind_sli_sources(registry, {
            "sli_exp_total": lambda: spend["exp"],
            SLI_REQUESTS: lambda: spend["requests"],
        })
        store = TimeSeriesStore(registry)
        objective = SLOObjective(name="cost", signal="op_budget", target=0.99,
                                 op="exp", budget_per_request=100.0)
        rule = BurnRateRule(objective, BurnRateWindow(1.0, 0.5, 4.0))
        store.sample(0.0)
        spend["exp"] += 500.0  # background spend, zero requests
        store.sample(1.0)
        assert rule.burn_rates(store, 1.0) == (0.0, 0.0)
        spend["requests"] += 5.0
        spend["exp"] += 1000.0
        store.sample(2.0)
        long_burn, _ = rule.burn_rates(store, 2.0)
        assert long_burn == pytest.approx(2.0)  # 200 exp/request vs 100 budget


class TestAlertStateMachine:
    def test_sustained_breach_fires_then_resolves(self):
        run = _ScriptedRun()
        for _ in range(4):          # healthy t=0.25..1.0
            run.tick()
        for _ in range(4):          # 50% failures t=1.25..2.0
            run.tick(bad=2.0)
        for _ in range(8):          # healthy again, windows flush
            run.tick()
        states = [e["state"] for e in run.engine.timeline]
        assert states == ["pending", "firing", "resolved"]
        assert run.engine.fired() == ["avail:page"]
        # The firing event precedes the resolve in virtual time.
        ts = [e["t"] for e in run.engine.timeline]
        assert ts == sorted(ts)

    def test_sustained_breach_emits_no_duplicate_transitions(self):
        run = _ScriptedRun()
        for _ in range(12):
            run.tick(bad=2.0)
        firing = [e for e in run.engine.timeline if e["state"] == "firing"]
        assert len(firing) == 1

    def test_lapsed_pending_never_fires(self):
        # for_intervals=3 keeps the rule pending across evaluations; a
        # one-tick blip lapses silently (no firing, no resolved event).
        run = _ScriptedRun(for_intervals=3)
        run.tick(bad=3.0)
        for _ in range(10):
            run.tick()
        states = [e["state"] for e in run.engine.timeline]
        assert "firing" not in states
        assert "resolved" not in states
        assert run.engine.fired() == []

    def test_panel_reports_firing_and_worst_burn(self):
        run = _ScriptedRun()
        for _ in range(6):
            run.tick(bad=2.0)
        panel = run.engine.panel()
        assert panel["firing"] == ["avail:page"]
        assert panel["burn"]["avail"] >= 2.0

    def test_timeline_round_trips_as_jsonl(self, tmp_path):
        run = _ScriptedRun()
        for _ in range(6):
            run.tick(bad=2.0)
        out = tmp_path / "alerts.jsonl"
        run.engine.write_timeline(out)
        import json
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert lines == run.engine.timeline


class TestErrorBudget:
    def test_blown_budget_goes_negative(self):
        run = _ScriptedRun(objective=_availability_objective(target=0.99))
        for _ in range(8):
            run.tick(bad=2.0)  # 50% bad against a 1% budget
        rows = error_budget_report([run.objective], run.store, 4.0, run.now)
        (row,) = rows
        assert row["objective"] == "avail"
        assert row["bad_ratio"] == pytest.approx(0.5)
        assert row["budget_spent"] == pytest.approx(50.0)
        assert row["budget_remaining"] == pytest.approx(-49.0)


def _honest_report():
    run = _ScriptedRun()
    for _ in range(4):
        run.tick()
    for _ in range(4):
        run.tick(bad=2.0)
    for _ in range(8):
        run.tick()
    return {
        "alerts": run.engine.timeline,
        "fired": run.engine.fired(),
        "expected_alerts": ["avail:page"],
        "error_budgets": error_budget_report(
            [run.objective], run.store, 4.0, run.now
        ),
    }


class TestCheckSloReport:
    def test_honest_report_is_clean(self):
        assert check_slo_report(_honest_report()) == []

    def test_emptied_fired_list_is_caught(self):
        report = _honest_report()
        report["fired"] = []
        problems = check_slo_report(report)
        assert any("does not match the timeline" in p for p in problems)

    def test_illegal_transition_is_caught(self):
        report = _honest_report()
        # Forge a resolve for an alert that never went pending.
        forged = dict(report["alerts"][0], alert="ghost:page",
                      objective="ghost", state="resolved")
        report["alerts"] = report["alerts"] + [forged]
        problems = check_slo_report(report)
        assert any("ghost:page" in p and "start -> resolved" in p
                   for p in problems)

    def test_burn_rate_below_threshold_firing_is_caught(self):
        report = _honest_report()
        doctored = dict(report["alerts"][1])  # the firing event
        doctored["burn_long"] = 0.0
        report["alerts"] = [report["alerts"][0], doctored,
                            report["alerts"][2]]
        problems = check_slo_report(report)
        assert any("below threshold" in p for p in problems)

    def test_budget_arithmetic_forgery_is_caught(self):
        report = _honest_report()
        report["error_budgets"][0]["budget_remaining"] += 0.5
        problems = check_slo_report(report)
        assert any("budget_remaining" in p for p in problems)

    def test_expected_alerts_exactness_cuts_both_ways(self):
        report = _honest_report()
        report["expected_alerts"] = []
        problems = check_slo_report(report)
        assert any("was not expected" in p for p in problems)
        report = _honest_report()
        report["expected_alerts"] = ["avail:page", "drops:page"]
        problems = check_slo_report(report)
        assert any("'drops:page' never fired" in p for p in problems)

    def test_objective_name_covers_any_severity(self):
        report = _honest_report()
        report["expected_alerts"] = ["avail"]
        assert check_slo_report(report) == []


class TestLatencyTap:
    def test_absorbs_each_completion_exactly_once(self):
        registry = MetricsRegistry()
        tap = LatencyTap(registry)
        latencies = []
        tap.add_source(latencies)
        latencies.extend([0.01, 0.5])
        registry.collect()
        child = registry._metrics[SLI_LATENCY]._children[()]
        assert child.count == 2
        registry.collect()  # no new entries: nothing double-absorbed
        assert child.count == 2
        latencies.append(2.0)
        registry.collect()
        assert child.count == 3
        assert child.total == pytest.approx(2.51)
