"""Deterministic profiler: self-time math, attribution, calibration hygiene."""

from repro.obs import Tracer
from repro.obs.profiler import (
    PrimitiveCosts,
    build_profile,
    calibrate_primitive_costs,
    render_profile,
)
from repro.pairing.interface import OperationCounter


class FakeClock:
    """Advances one second per call — exact, repeatable span durations."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


COSTS = PrimitiveCosts(
    exp_g1=0.5, exp_g1_fixed_base=0.25, pairing=2.0, hash_to_g1=0.1, mul_g1=0.01
)


def _traced_pair():
    """outer(3s, self 2s, 3 exp) wrapping inner(1s, 2 exp + 1 pair)."""
    counter = OperationCounter()
    tracer = Tracer(clock=FakeClock(), counter=counter)
    with tracer.span("outer"):
        counter.exp_g1 += 3
        with tracer.span("inner"):
            counter.exp_g1 += 2
            counter.pairings += 1
    return tracer


class TestBuildProfile:
    def test_self_time_and_ops_subtract_children(self):
        (outer,) = build_profile(_traced_pair(), COSTS)
        (inner,) = outer.children
        assert outer.inclusive_s == 3.0
        assert outer.self_s == 2.0
        assert outer.self_ops == {"exp_g1": 3}  # 5 inclusive - 2 in child
        assert inner.self_s == 1.0
        assert inner.self_ops == {"exp_g1": 2, "pairings": 1}

    def test_attribution_is_count_times_unit_cost(self):
        (outer,) = build_profile(_traced_pair(), COSTS)
        (inner,) = outer.children
        assert outer.attributed == {"exp_g1": 1.5}
        assert outer.unattributed_s == 0.5
        assert inner.attributed == {"exp_g1": 1.0, "pairings": 2.0}
        # Attribution exceeding measured self time clamps 'other' at zero.
        assert inner.unattributed_s == 0.0

    def test_skipped_exponentiations_cost_nothing(self):
        counter = OperationCounter()
        tracer = Tracer(clock=FakeClock(), counter=counter)
        with tracer.span("sign"):
            counter.exp_g1_skipped += 7
        (node,) = build_profile(tracer, COSTS)
        assert node.attributed == {}
        assert "exp_g1_skipped" in node.self_ops

    def test_sibling_roots_sorted_by_start(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        roots = build_profile(tracer, COSTS)
        assert [r.span.name for r in roots] == ["first", "second"]


class TestRender:
    def test_tree_shows_names_bars_and_other(self):
        text = render_profile(_traced_pair(), COSTS)
        lines = text.splitlines()
        assert any(line.startswith("outer") for line in lines)
        assert any(line.startswith("  inner") for line in lines)  # indented
        assert "exp_g1 3x=1500.00ms" in text
        assert "pairings 1x=2000.00ms" in text
        assert "other" in text
        assert text.endswith("(serialization, hashing, Python overhead)")

    def test_empty_trace_renders_header_only(self):
        text = render_profile(Tracer(clock=FakeClock()), COSTS)
        assert "span" in text and "total" not in text


class TestCalibration:
    def test_costs_positive_and_counter_untouched(self, group, rng):
        counter = OperationCounter()
        previous = group.counter
        group.attach_counter(counter)
        try:
            before = counter.snapshot()
            costs = calibrate_primitive_costs(group, repeats=2, rng=rng)
            # Calibration detaches the counter: profiling a run never
            # inflates the very op counts it is attributing.
            assert counter.snapshot() == before
        finally:
            group.counter = previous
        assert all(value > 0 for value in costs.as_dict().values())
        assert costs.unit_cost("exp_g2") == costs.exp_g1  # symmetric type A
        assert costs.unit_cost("exp_g1_skipped") == 0.0
