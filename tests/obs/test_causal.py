"""Causal assembly: trees, critical paths, exemplars, run-header fencing."""

import json

import pytest

from repro.obs import (
    Observability,
    TraceStreamError,
    critical_path,
    critical_path_report,
    exemplar_buckets,
    load_trace,
    quantile_exemplar,
    spans_from_tracer,
    trace_header,
    trace_trees,
    write_trace_jsonl,
)


def _span(trace, span, parent, src, dst, start, end, name="msg.req"):
    return {
        "span_id": span, "parent_id": None, "name": name,
        "start": start, "end": end, "duration": end - start,
        "attrs": {"trace": trace, "span": span, "parent_span": parent,
                  "hop": 0, "src": src, "dst": dst},
    }


#: client → service (5 ms wire), service holds 30 ms, service → client.
CHAIN = [
    _span(1, 10, None, "client", "service", 0.000, 0.005, "msg.request"),
    _span(1, 11, 10, "service", "client", 0.035, 0.040, "msg.response"),
]


class TestTreesAndPaths:
    def test_trees_group_by_trace_and_skip_unattributed(self):
        spans = CHAIN + [_span(2, 20, None, "a", "b", 0, 1)]
        spans.append({"name": "sign", "start": 0, "end": 1, "attrs": {}})
        trees = trace_trees(spans)
        assert set(trees) == {1, 2}
        assert len(trees[1]) == 2

    def test_critical_path_alternates_wire_and_node_segments(self):
        path = critical_path(CHAIN)
        assert path.trace_id == 1
        kinds = [s.kind for s in path.segments]
        assert kinds == ["wire", "node", "wire"]
        dominant = path.dominant
        assert dominant.kind == "node" and dominant.name == "service"
        assert dominant.duration_s == pytest.approx(0.030)
        assert path.total_s == pytest.approx(0.040)

    def test_dominant_share_in_report_dict(self):
        report = critical_path(CHAIN).to_dict()
        assert report["dominant"]["share"] == pytest.approx(0.75)
        assert report["trace"] == 1

    def test_node_hold_clamped_at_zero(self):
        # Response enqueued before the request's recorded end (batching
        # artifacts under virtual time) must not yield a negative hold.
        spans = [
            _span(1, 1, None, "a", "b", 0.0, 0.010),
            _span(1, 2, 1, "b", "c", 0.005, 0.015),
        ]
        path = critical_path(spans)
        hold = [s for s in path.segments if s.kind == "node"][0]
        assert hold.duration_s == 0.0

    def test_terminal_is_last_delivery_not_first(self):
        # A side branch (cloud upload) that ends later than the response
        # becomes the terminal — the full causal tree is attributed.
        spans = CHAIN + [_span(1, 12, 11, "client", "cloud", 0.040, 0.060,
                               "msg.upload")]
        path = critical_path(spans)
        assert path.segments[-1].name.endswith("msg.upload")

    def test_empty_tree_has_no_path(self):
        assert critical_path([]) is None


class TestExemplars:
    def test_buckets_link_counts_to_slowest_trace(self):
        pairs = [(0.004, 1), (0.003, 2), (0.04, 3), (2.0, 4), (20.0, 5)]
        buckets = exemplar_buckets(pairs)
        by_le = {b["le"]: b for b in buckets}
        assert by_le[0.005]["count"] == 2
        assert by_le[0.005]["exemplar_trace"] == 1  # slowest in bucket
        assert by_le[0.05]["exemplar_trace"] == 3
        assert by_le["+Inf"]["exemplar_trace"] == 5

    def test_zero_latency_lands_in_the_first_bucket(self):
        buckets = exemplar_buckets([(0.0, 7)])
        assert buckets[0]["count"] == 1
        assert buckets[0]["exemplar_trace"] == 7

    def test_quantile_exemplar_picks_the_p99_request(self):
        pairs = [(i / 1000, i) for i in range(1, 101)]
        latency, trace = quantile_exemplar(pairs, q=0.99)
        assert trace == 99
        assert quantile_exemplar([], q=0.99) is None

    def test_report_names_the_dominating_hop(self):
        report = critical_path_report(CHAIN, [(0.040, 1)], q=0.99)
        assert report["dominant"]["name"] == "service"
        assert report["quantile"] == 0.99
        assert report["latency_s"] == pytest.approx(0.040)

    def test_report_none_without_matching_tree(self):
        assert critical_path_report([], [(0.1, 9)], q=0.99) is None
        assert critical_path_report(CHAIN, [], q=0.99) is None


class TestHeaderFencing:
    def _write(self, path, header, spans):
        with open(path, "a") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for span in spans:
                fh.write(json.dumps(span, sort_keys=True) + "\n")

    def test_single_run_loads_clean(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, trace_header(seed=1, scenario="a"), CHAIN)
        spans = load_trace(path)
        assert len(spans) == 2
        spans = load_trace(path, expect_header={"seed": 1, "scenario": "a"})
        assert len(spans) == 2

    def test_mismatched_expect_header_names_the_offset(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, trace_header(seed=1, scenario="a"), CHAIN)
        with pytest.raises(TraceStreamError, match="byte offset 0"):
            load_trace(path, expect_header={"seed": 2})

    def test_two_different_runs_refuse_to_stitch(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, trace_header(seed=1, scenario="a"), CHAIN)
        self._write(path, trace_header(seed=2, scenario="a"), CHAIN)
        with pytest.raises(TraceStreamError, match="stitches two different runs"):
            load_trace(path)
        # Narrowing to one run's header is the documented escape hatch.
        with pytest.raises(TraceStreamError, match="does not match"):
            load_trace(path, expect_header={"seed": 1})

    def test_identical_reheader_is_not_a_second_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, trace_header(seed=1), CHAIN)
        self._write(path, trace_header(seed=1), CHAIN)
        assert len(load_trace(path)) == 4

    def test_unreadable_record_names_line_and_offset(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(TraceStreamError, match="line 2 .byte offset 10."):
            load_trace(path)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.scenarios import ScenarioRunner, scenario_from_dict

        doc = {
            "name": "causal-e2e",
            "workload": {"cohorts": [{
                "name": "writers", "members": 3, "target": "org",
                "arrival": {"kind": "poisson", "rate_rps": 50.0},
                "file_sizes": {"kind": "fixed", "bytes": 48, "max_bytes": 48},
                "upload_to": ["cloud"],
            }]},
            "topology": {
                "sem_groups": [{"name": "org", "w": 1, "t": 1}],
                "clouds": [{"name": "cloud"}],
                "verifiers": [{"name": "tpa", "audits": "cloud",
                               "period_s": 0.1}],
            },
            "settings": {"duration_s": 0.3, "seed": 9, "max_requests": 6},
        }
        obs = Observability.create()
        runner = ScenarioRunner(scenario_from_dict(doc), obs=obs)
        return runner.run(), obs

    def test_every_completion_has_an_exemplar_trace(self, run):
        result, obs = run
        assert result.exemplars
        trees = trace_trees(spans_from_tracer(obs.tracer))
        for bucket in result.exemplars:
            assert bucket["exemplar_trace"] in trees

    def test_critical_path_attributes_the_p99_exemplar(self, run):
        result, _ = run
        path = result.critical_path
        assert path is not None
        assert path["dominant"]["name"]
        assert 0 < path["dominant"]["share"] <= 1
        assert path["segments"]

    def test_requests_root_separate_traces(self, run):
        """Closed-loop request chains must not share one causal tree."""
        result, obs = run
        trees = trace_trees(spans_from_tracer(obs.tracer))
        roots = {t for t, spans in trees.items()
                 if any(s["attrs"]["parent_span"] is None for s in spans)}
        assert len(roots) == len(trees)
        assert len(trees) >= result.completed

    def test_file_roundtrip_reproduces_the_live_analysis(self, run, tmp_path):
        result, obs = run
        path = tmp_path / "trace.jsonl"
        header = trace_header(scenario="causal-e2e", seed=9)
        write_trace_jsonl(obs.tracer, path, header=header)
        loaded = load_trace(path, expect_header={"scenario": "causal-e2e"})
        pairs = [(b["exemplar_latency_s"], b["exemplar_trace"])
                 for b in result.exemplars]
        assert (critical_path_report(loaded, pairs, q=0.99)
                == critical_path_report(spans_from_tracer(obs.tracer),
                                        pairs, q=0.99))
