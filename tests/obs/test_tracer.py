"""Protocol-phase spans: nesting, injected clocks, inclusive op deltas."""

from repro.obs import NULL_TRACER, Tracer
from repro.pairing.interface import OperationCounter


class FakeClock:
    """Advances by one second per call — deterministic span timings."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestTracer:
    def test_span_timing_uses_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        (span,) = tracer.spans
        assert (span.start, span.end, span.duration) == (1.0, 2.0, 1.0)

    def test_nesting_records_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # finish order: children first
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_attributes_and_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("sign", n_blocks=4) as span:
            span.set(ok=True)
        assert tracer.spans[0].attributes == {"n_blocks": 4, "ok": True}

    def test_op_deltas_are_inclusive_of_children(self):
        counter = OperationCounter()
        tracer = Tracer(clock=FakeClock(), counter=counter)
        with tracer.span("outer"):
            counter.exp_g1 += 3
            with tracer.span("inner"):
                counter.exp_g1 += 2
                counter.pairings += 1
        inner, outer = tracer.spans
        assert inner.op_counts() == {"exp_g1": 2, "pairings": 1}
        assert outer.op_counts() == {"exp_g1": 5, "pairings": 1}

    def test_find_and_phase_totals(self):
        counter = OperationCounter()
        tracer = Tracer(clock=FakeClock(), counter=counter)
        for _ in range(3):
            with tracer.span("sign", n_blocks=2):
                counter.exp_g1 += 10
        assert len(tracer.find("sign")) == 3
        totals = tracer.phase_totals()["sign"]
        assert totals["count"] == 3
        assert totals["ops"]["exp_g1"] == 30
        assert totals["attrs"]["n_blocks"] == 6

    def test_span_survives_exceptions(self):
        tracer = Tracer(clock=FakeClock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.spans[0].end is not None


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", n=1) as span:
            span.set(more=2)
        assert NULL_TRACER.phase_totals() == {}
        assert NULL_TRACER.enabled is False

    def test_null_span_context_is_shared(self):
        # The hot-path guarantee: entering a span allocates nothing.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
