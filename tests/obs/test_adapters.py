"""Adapters: the pre-existing accumulators mirrored into one registry."""

import random

from repro.net.channel import Channel
from repro.net.message import Message
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.obs import (
    MetricsRegistry,
    bind_operation_counter,
    bind_service_metrics,
    bind_simulator,
)
from repro.pairing.interface import OperationCounter
from repro.service.metrics import ServiceMetrics


class _Sink(Node):
    pass


class TestOperationCounterAdapter:
    def test_mirrors_live_counter(self):
        reg, counter = MetricsRegistry(), OperationCounter()
        bind_operation_counter(reg, counter)
        counter.exp_g1 += 5
        counter.pairings += 2
        snap = reg.snapshot()
        assert snap['pdp_operations{op="exp_g1"}'] == 5
        assert snap['pdp_operations{op="pairings"}'] == 2
        counter.exp_g1 += 1
        assert reg.snapshot()['pdp_operations{op="exp_g1"}'] == 6

    def test_includes_model_reconciliation_ops(self):
        reg, counter = MetricsRegistry(), OperationCounter()
        bind_operation_counter(reg, counter)
        counter.exp_g1_fixed_base += 3
        counter.exp_g1_skipped += 1
        snap = reg.snapshot()
        assert snap['pdp_operations{op="exp_g1_fixed_base"}'] == 3
        assert snap['pdp_operations{op="exp_g1_skipped"}'] == 1


class TestServiceMetricsAdapter:
    def test_mirrors_summary_scalars(self):
        reg, metrics = MetricsRegistry(), ServiceMetrics()
        bind_service_metrics(reg, metrics)
        metrics.on_enqueue(3)
        metrics.on_batch(3, 0)
        metrics.on_complete(6, 0.01, 0.02)
        snap = reg.snapshot()
        assert snap["service_submitted"] == 1
        assert snap["service_batches"] == 1
        assert snap["service_signatures_produced"] == 6
        assert "service_batch_size_hist" not in snap  # dicts stay out


class TestSimulatorAdapter:
    def test_mirrors_channels_and_totals(self):
        sim = Simulator()
        sim.add_node(_Sink("a"))
        sim.add_node(_Sink("b"))
        bad = Channel(drop_rate=1.0, rng=random.Random(7))
        sim.connect("a", "b", bad, bidirectional=False)
        reg = MetricsRegistry()
        bind_simulator(reg, sim)
        sim.send(Message(sender="a", recipient="b", msg_type="x", size_bytes=100))
        sim.run()
        snap = reg.snapshot()
        assert snap['sim_channel_bytes{sender="a",recipient="b"}'] == 100
        assert snap['sim_channel_messages{sender="a",recipient="b"}'] == 1
        assert snap['sim_channel_dropped{sender="a",recipient="b"}'] == 1
        assert snap["sim_dropped"] == 1
        assert snap["sim_delivered"] == 0
