"""Virtual-time telemetry store: rings, windowed operators, sampling.

The windowed operators are the foundation the burn-rate alerting stands
on, so their edge cases get property treatment: empty windows, partial
windows at run start (the baseline-point rule), counter resets
mid-window, and histogram-delta quantiles against a brute-force oracle.
Sampling runs on the simulator timer wheel, so there is no clock skew by
construction — the tests pin that each point's timestamp is exactly the
virtual time of its sampler tick.
"""

import math
import random

import pytest

from repro.net.simulator import Simulator
from repro.obs.registry import MetricsRegistry, bucket_quantile
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    SeriesRing,
    TimeSeriesStore,
    fraction_over,
)


class TestSeriesRing:
    def test_append_requires_time_order(self):
        ring = SeriesRing()
        ring.append(1.0, 5.0)
        with pytest.raises(ValueError):
            ring.append(0.5, 6.0)

    def test_capacity_trims_oldest(self):
        ring = SeriesRing(capacity=4)
        for i in range(10):
            ring.append(float(i), float(i * i))
        assert ring.latest() == (9.0, 81.0)
        assert ring.at_or_before(5.0) == (6.0, 36.0) or \
            ring.at_or_before(6.0) == (6.0, 36.0)
        # Everything older than the window of 4 is gone.
        assert ring.at_or_before(4.9) is None

    def test_window_and_at_or_before(self):
        ring = SeriesRing()
        for i in range(5):
            ring.append(float(i), 10.0 * i)
        assert [t for t, _ in ring.window(1.0, 3.0)] == [1.0, 2.0, 3.0]
        assert ring.at_or_before(2.5) == (2.0, 20.0)
        assert ring.at_or_before(-1.0) is None


def _store_with_counter(values):
    """A store fed by a controllable counter; returns (store, setter)."""
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "test counter")
    state = {"v": 0.0, "last": 0.0}

    def collect():
        counter.set(state["v"], reset=state["v"] < state["last"])
        state["last"] = state["v"]

    registry.register_collector(collect)
    store = TimeSeriesStore(registry)

    def feed(t, v):
        state["v"] = float(v)
        store.sample(t)

    for t, v in values:
        feed(t, v)
    return store, feed


class TestWindowedOperators:
    def test_empty_window_is_zero_increase_and_nan_quantile(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "c")
        registry.histogram("lat_seconds", "h")
        store = TimeSeriesStore(registry)
        assert store.increase("events_total", 1.0, now=5.0) == 0.0
        assert store.rate("events_total", 1.0, now=5.0) == 0.0
        assert math.isnan(store.window_quantile("lat_seconds", 0.99, 1.0, 5.0))

    def test_partial_window_at_run_start_uses_baseline(self):
        # Only 0.3s of data exist; a 1.0s window must not dilute the rate
        # by dividing through the un-lived 0.7s.
        store, _ = _store_with_counter([(0.0, 0.0), (0.1, 10.0),
                                        (0.2, 20.0), (0.3, 30.0)])
        assert store.increase("events_total", 1.0, now=0.3) == 30.0
        assert store.rate("events_total", 1.0, now=0.3) == pytest.approx(100.0)

    def test_counter_reset_adds_post_reset_value(self):
        # 0 -> 40, reset, 0 -> 15: the true increase over the window is 55.
        store, _ = _store_with_counter([(0.0, 0.0), (1.0, 40.0),
                                        (2.0, 5.0), (3.0, 15.0)])
        assert store.increase("events_total", 10.0, now=3.0) == pytest.approx(55.0)

    def test_increase_windows_are_consistent(self):
        # Property: for a monotone counter, increase over [now-w, now]
        # equals total minus the baseline value at window start.
        rng = random.Random(7)
        points, total = [], 0.0
        for i in range(50):
            total += rng.uniform(0, 10)
            points.append((i * 0.1, total))
        store, _ = _store_with_counter(points)
        for w in (0.35, 1.0, 2.5, 100.0):
            start = max(4.9 - w, 0.0)
            baseline = max(v for t, v in points if t <= start)
            expected = points[-1][1] - baseline
            assert store.increase("events_total", w, now=4.9) == \
                pytest.approx(expected)


class TestHistogramWindows:
    def test_window_quantile_matches_bucket_oracle(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "h", buckets=(0.1, 0.2, 0.5, 1.0))
        store = TimeSeriesStore(registry)
        store.sample(0.0)
        rng = random.Random(3)
        values = [rng.uniform(0.0, 1.0) for _ in range(200)]
        for v in values:
            hist.observe(v)
        store.sample(1.0)
        # The windowed quantile over the whole run equals the child's own
        # bucket interpolation (same shared bucket_quantile code path).
        child = registry._metrics["lat_seconds"]._children[()]
        for q in (0.5, 0.9, 0.99):
            assert store.window_quantile("lat_seconds", q, 10.0, 1.0) == \
                pytest.approx(child.quantile(q))

    def test_window_quantile_sees_only_the_window(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "h", buckets=(0.1, 0.5, 1.0))
        store = TimeSeriesStore(registry)
        store.sample(0.0)
        for _ in range(100):
            hist.observe(0.05)   # early, fast
        store.sample(1.0)
        for _ in range(100):
            hist.observe(0.9)    # late, slow
        store.sample(2.0)
        early = store.window_quantile("lat_seconds", 0.5, 0.5, 1.0)
        late = store.window_quantile("lat_seconds", 0.5, 0.5, 2.0)
        assert early < 0.1 < late

    def test_fraction_over_interpolates(self):
        buckets = (0.1, 0.2, 0.4)
        # Cumulative: 10 observations in (0.1, 0.2], 10 in (0.2, 0.4].
        counts = [0, 10, 20]
        assert fraction_over(buckets, counts, 20, 0.05) == 1.0
        assert fraction_over(buckets, counts, 20, 0.2) == pytest.approx(0.5)
        assert fraction_over(buckets, counts, 20, 0.3) == pytest.approx(0.25)
        assert fraction_over(buckets, counts, 20, 0.4) == 0.0
        assert fraction_over(buckets, counts, 0, 0.2) == 0.0

    def test_fraction_over_is_dual_of_quantile(self):
        buckets = (0.1, 0.2, 0.5, 1.0)
        counts = [5, 25, 65, 80]  # cumulative
        count = counts[-1]
        for q in (0.2, 0.5, 0.8):
            v = bucket_quantile(buckets, counts, count, q)
            assert fraction_over(buckets, counts, count, v) == \
                pytest.approx(1.0 - q, abs=1e-9)


class TestTimerWheelSampling:
    def test_points_land_exactly_on_virtual_ticks(self):
        # No clock skew by construction: each sample's timestamp is the
        # virtual time of its sampler tick, bit-exact.
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "c")
        registry.register_collector(lambda: counter.set(sim.now * 100))
        store = TimeSeriesStore(registry)
        for i in range(1, 11):
            sim.schedule(0.05 * i, lambda: None)
        store.attach(sim, interval_s=0.1)
        sim.run()
        ring = store.series["events_total"]
        times = [t for t, _ in ring._points]
        assert times[0] == 0.0
        for t in times[1:]:
            assert t == pytest.approx(round(t / 0.1) * 0.1)
        assert store.samples_taken == len(times)

    def test_daemon_sampler_never_extends_the_run(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.counter("events_total", "c")
        store = TimeSeriesStore(registry)
        sim.schedule(0.12, lambda: None)
        store.attach(sim, interval_s=0.05)
        end = sim.run()
        # The run drains at the last real event, not at a sampler tick —
        # and two daemon observers must not sustain each other either.
        assert end == pytest.approx(0.12)
        store2 = TimeSeriesStore(registry)
        store2.attach(sim, interval_s=0.03)
        assert sim.run() == pytest.approx(0.12)

    def test_capacity_default_bounds_memory(self):
        ring = SeriesRing()
        for i in range(3 * DEFAULT_CAPACITY):
            ring.append(float(i), 0.0)
        assert len(ring._points) <= DEFAULT_CAPACITY
