"""Regression detector edge cases: the noise-aware comparison contract."""

import pytest

from repro.obs.bench import SCHEMA_VERSION, make_phase, make_run
from repro.obs.regress import (
    STATUS_IMPROVED,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    STATUS_REMOVED,
    STATUS_WALL_REGRESSION,
    VERDICT_ERROR,
    VERDICT_NO_BASELINE,
    VERDICT_OK,
    VERDICT_REGRESSION,
    RegressionConfig,
    compare_runs,
)

#: Wall-signal config that trusts our hand-built runs (same env, repeats=1).
TRUSTING = RegressionConfig(min_wall_s=0.0, min_repeats=1)


def _run(phases, suite="audit", **overrides):
    run = make_run(suite, phases, created_unix=1_700_000_000.0)
    run.update(overrides)
    return run


def _phase(name, wall_s=0.1, exp=10, pair=2, repeats=1):
    ops = {}
    if exp:
        ops["exp_g1"] = exp
    if pair:
        ops["pairings"] = pair
    return make_phase(name, wall_s, ops, repeats=repeats)


class TestVerdicts:
    def test_missing_baseline(self):
        report = compare_runs(None, _run([_phase("a")]))
        assert report.verdict == VERDICT_NO_BASELINE
        assert not report.ok
        assert any("baseline" in w for w in report.warnings)

    def test_identical_runs_are_ok(self):
        run = _run([_phase("a")])
        report = compare_runs(run, run)
        assert report.ok
        assert report.diffs[0].status == STATUS_OK

    def test_schema_version_mismatch_is_error(self):
        good = _run([_phase("a")])
        stale = _run([_phase("a")], schema_version=SCHEMA_VERSION + 1)
        for baseline, current in ((stale, good), (good, stale)):
            report = compare_runs(baseline, current)
            assert report.verdict == VERDICT_ERROR
            assert any("schema_version" in f for f in report.failures)

    def test_suite_mismatch_is_error(self):
        report = compare_runs(
            _run([_phase("a")], suite="table1"), _run([_phase("a")])
        )
        assert report.verdict == VERDICT_ERROR


class TestOpCounts:
    def test_one_extra_exp_fails_and_names_the_phase(self):
        baseline = _run([_phase("proofgen", exp=4, pair=0), _phase("proofverify")])
        current = _run([_phase("proofgen", exp=5, pair=0), _phase("proofverify")])
        report = compare_runs(baseline, current)
        assert report.verdict == VERDICT_REGRESSION
        assert any("proofgen" in f and "+1" in f for f in report.failures)
        by_name = {d.name: d for d in report.diffs}
        assert by_name["proofgen"].status == STATUS_REGRESSION
        assert by_name["proofverify"].status == STATUS_OK

    def test_extra_pairing_fails_even_with_fewer_exp(self):
        baseline = _run([_phase("a", exp=10, pair=2)])
        current = _run([_phase("a", exp=9, pair=3)])
        report = compare_runs(baseline, current)
        assert report.verdict == VERDICT_REGRESSION

    def test_fewer_ops_is_an_improvement_not_a_failure(self):
        report = compare_runs(
            _run([_phase("a", exp=10)]), _run([_phase("a", exp=8)])
        )
        assert report.ok
        assert report.diffs[0].status == STATUS_IMPROVED

    def test_ops_tolerance_allows_small_drift(self):
        report = compare_runs(
            _run([_phase("a", exp=10)]),
            _run([_phase("a", exp=11)]),
            RegressionConfig(ops_tolerance=1),
        )
        assert report.ok


class TestPhaseChurn:
    def test_new_phase_warns_but_passes(self):
        report = compare_runs(
            _run([_phase("a")]), _run([_phase("a"), _phase("b")])
        )
        assert report.ok
        by_name = {d.name: d for d in report.diffs}
        assert by_name["b"].status == STATUS_NEW
        assert any("b: new phase" in w for w in report.warnings)

    def test_removed_phase_warns_but_passes(self):
        report = compare_runs(
            _run([_phase("a"), _phase("b")]), _run([_phase("a")])
        )
        assert report.ok
        assert {d.status for d in report.diffs} == {STATUS_OK, STATUS_REMOVED}


class TestWallSignal:
    def test_inside_tolerance_band_is_ok(self):
        report = compare_runs(
            _run([_phase("a", wall_s=0.100)]),
            _run([_phase("a", wall_s=0.120)]),
            TRUSTING,  # +20% < default 25% band
        )
        assert report.ok
        assert report.diffs[0].status == STATUS_OK
        assert report.diffs[0].wall_ratio == pytest.approx(1.2)

    def test_outside_band_warns_by_default(self):
        report = compare_runs(
            _run([_phase("a", wall_s=0.100)]),
            _run([_phase("a", wall_s=0.200)]),
            TRUSTING,
        )
        assert report.ok  # wall alone never fails by default
        assert report.diffs[0].status == STATUS_WALL_REGRESSION
        assert any("2.00x" in w for w in report.warnings)

    def test_fail_on_wall_upgrades_to_failure(self):
        report = compare_runs(
            _run([_phase("a", wall_s=0.100)]),
            _run([_phase("a", wall_s=0.200)]),
            RegressionConfig(min_wall_s=0.0, min_repeats=1, fail_on_wall=True),
        )
        assert report.verdict == VERDICT_REGRESSION

    def test_sub_noise_phases_are_ignored(self):
        report = compare_runs(
            _run([_phase("a", wall_s=0.001)]),
            _run([_phase("a", wall_s=0.004)]),  # 4x, but below min_wall_s
            RegressionConfig(min_wall_s=0.005, min_repeats=1),
        )
        assert report.ok
        assert report.diffs[0].wall_ratio is None
        assert any("noise guard" in n for n in report.diffs[0].notes)

    def test_single_repeat_runs_are_not_trusted(self):
        report = compare_runs(
            _run([_phase("a", wall_s=0.1, repeats=1)]),
            _run([_phase("a", wall_s=0.5, repeats=1)]),
            RegressionConfig(min_wall_s=0.0, min_repeats=2),
        )
        assert report.ok
        assert report.diffs[0].wall_ratio is None

    def test_different_environment_disables_wall(self):
        baseline = _run([_phase("a", wall_s=0.1)])
        baseline["environment"] = dict(baseline["environment"], machine="riscv")
        report = compare_runs(baseline, _run([_phase("a", wall_s=9.9)]), TRUSTING)
        assert report.ok
        assert report.diffs[0].wall_ratio is None
        assert any("fingerprints differ" in w for w in report.warnings)

    def test_zero_op_phase_uses_wall_only(self):
        baseline = _run([make_phase("sweep", 0.100)])
        current = _run([make_phase("sweep", 0.200)])
        report = compare_runs(baseline, current, TRUSTING)
        assert report.ok
        diff = report.diffs[0]
        assert diff.status == STATUS_WALL_REGRESSION
        assert any("zero-op" in n for n in diff.notes)


class TestReporting:
    def test_table_names_offender(self):
        report = compare_runs(
            _run([_phase("proofgen", exp=4, pair=0)]),
            _run([_phase("proofgen", exp=5, pair=0)]),
        )
        table = report.table()
        assert "verdict regression" in table
        assert "FAIL: proofgen" in table

    def test_to_dict_round_trips_deltas(self):
        report = compare_runs(
            _run([_phase("a", exp=4)]), _run([_phase("a", exp=6)])
        )
        payload = report.to_dict()
        assert payload["verdict"] == VERDICT_REGRESSION
        assert payload["phases"][0]["delta_exp"] == 2
