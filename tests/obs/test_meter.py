"""Per-scope metering: event attribution, epoch records, offline verify.

The forged-record tests mirror the ledger tamper catalogue: every edit
to a metering record's deltas or totals — even with the whole hash chain
re-sealed afterwards — must fail ``verify_ledger``, because the audit
re-adds the deltas and checks them against the recorded cumulative
totals and the ``metering_close`` grand totals.
"""

import json

import pytest

from repro.obs.ledger import (
    Ledger,
    entry_hash,
    read_ledger,
    verify_ledger,
)
from repro.obs.meter import METER_FIELDS, Meter


class _FakeCounter:
    """Stands in for the crypto OperationCounter: just the read fields."""

    def __init__(self):
        self.exp_g1 = 0
        self.exp_g1_fixed_base = 0
        self.exp_g1_msm = 0
        self.exp_g1_skipped = 0
        self.pairings = 0


def _meter(ledger=None):
    counter = _FakeCounter()
    meter = Meter(counter, {"sem-0": "group:g", "c-0": "cohort:c"},
                  ledger=ledger)
    return counter, meter


class TestAttribution:
    def test_event_deltas_bill_to_the_owning_scope(self):
        counter, meter = _meter()
        meter.begin("sem-0")
        counter.exp_g1 += 3
        counter.pairings += 1
        meter.commit()
        meter.begin("c-0")
        counter.exp_g1_msm += 2
        meter.commit()
        assert meter.ops == {"group:g": [3, 1], "cohort:c": [2, 0]}

    def test_unknown_node_bills_to_other(self):
        counter, meter = _meter()
        meter.begin("mystery")
        counter.exp_g1 += 1
        meter.commit()
        assert meter.ops == {"other": [1, 0]}

    def test_zero_delta_events_allocate_nothing(self):
        counter, meter = _meter()
        for _ in range(100):
            meter.begin("sem-0")
            meter.commit()
        assert meter.ops == {}


class TestEpochRecords:
    def test_roll_emits_delta_and_total_per_active_scope(self):
        counter, meter = _meter()
        meter.add_source("group:g", lambda: {"requests": 4, "signatures": 2,
                                             "bytes": 100})
        meter.begin("sem-0")
        counter.exp_g1 += 10
        meter.commit()
        (record,) = meter.roll(1.0)
        assert record["epoch"] == 1
        assert record["scope"] == "group:g"
        assert record["delta"] == {"requests": 4, "signatures": 2, "exp": 10,
                                   "pair": 0, "bytes": 100}
        assert record["total"] == record["delta"]
        assert set(record["delta"]) == set(METER_FIELDS)

    def test_idle_scope_emits_no_record(self):
        counter, meter = _meter()
        usage = {"requests": 0}
        meter.add_source("cohort:c", lambda: dict(usage))
        assert meter.roll(1.0) == []
        usage["requests"] = 3
        (record,) = meter.roll(2.0)
        assert record["scope"] == "cohort:c"
        assert meter.roll(3.0) == []  # no new activity: idle again
        assert record["window"] == {"start": 1.0, "end": 2.0}

    def test_close_pins_grand_totals_once(self):
        counter, meter = _meter()
        meter.add_source("group:g", lambda: {"requests": 7})
        body = meter.close(5.0)
        assert body["totals"]["group:g"]["requests"] == 7
        assert meter.close(9.0) is not body or body == meter.close(9.0)
        # Epoch numbering counts records, not rolls.
        assert meter.epoch == len(meter.records) == 1


@pytest.fixture()
def metered_chain(tmp_path):
    """A ledger with two metering epochs + close; returns (path, head)."""
    path = tmp_path / "chain.jsonl"
    ledger = Ledger(path)
    ledger.ensure_genesis({"scenario": "meter-test", "seed": 1})
    counter, meter = _meter(ledger=ledger)
    usage = {"requests": 0, "signatures": 0, "bytes": 0}
    meter.add_source("group:g", lambda: dict(usage))
    for epoch in range(2):
        meter.begin("sem-0")
        counter.exp_g1 += 100
        counter.pairings += 5
        meter.commit()
        usage["requests"] += 10
        usage["bytes"] += 1000
        meter.roll(float(epoch + 1))
    meter.close(3.0)
    return path, ledger.head()["hash"]


def _reseal(path, mutate):
    """Apply ``mutate(entries)`` then re-seal every hash and prev link."""
    entries, _ = read_ledger(path)
    mutate(entries)
    prev = "0" * 64
    with open(path, "w", encoding="utf-8") as fh:
        for entry in entries:
            entry["prev"] = prev
            entry["hash"] = entry_hash(entry)
            prev = entry["hash"]
            fh.write(json.dumps(entry, sort_keys=True) + "\n")


class TestLedgerMeteringVerify:
    def test_honest_metering_chain_verifies(self, metered_chain):
        path, head = metered_chain
        report = verify_ledger(path, expect_head=head)
        assert report.ok, report.errors
        assert report.meterings_checked == 2
        assert report.counts["metering_close"] == 1

    def test_forged_delta_breaks_even_a_resealed_chain(self, metered_chain):
        path, _ = metered_chain

        def shave(entries):
            for entry in entries:
                if entry["kind"] == "metering":
                    entry["body"]["delta"]["exp"] -= 50  # under-bill
                    break

        _reseal(path, shave)
        report = verify_ledger(path)  # no head pin: the audit alone catches it
        assert not report.ok
        assert any("forged metering record" in e for e in report.errors)

    def test_forged_close_totals_are_caught(self, metered_chain):
        path, _ = metered_chain

        def inflate(entries):
            for entry in entries:
                if entry["kind"] == "metering_close":
                    entry["body"]["totals"]["group:g"]["exp"] += 1

        _reseal(path, inflate)
        report = verify_ledger(path)
        assert not report.ok
        assert any("closing totals" in e for e in report.errors)

    def test_replayed_epoch_number_is_caught(self, metered_chain):
        path, _ = metered_chain

        def replay(entries):
            records = [e for e in entries if e["kind"] == "metering"]
            records[1]["body"]["epoch"] = records[0]["body"]["epoch"]
            # Keep the arithmetic self-consistent so only the epoch
            # ordering check can object.

        _reseal(path, replay)
        report = verify_ledger(path)
        assert not report.ok
