"""Tests for the BN254 (alt_bn128) asymmetric backend.

All marked slow: the auditable schoolbook F_p¹² arithmetic makes each
pairing ~0.3 s.
"""

import pytest

from repro.pairing.bn254 import (
    BN254PairingGroup,
    CURVE_ORDER,
    FIELD_MODULUS,
    G1_GENERATOR,
    G2_GENERATOR,
    is_on_g1_curve,
    is_on_g2_curve,
    _scalar_mul,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def g():
    return BN254PairingGroup()


class TestCurveStructure:
    def test_generators_on_curve(self):
        assert is_on_g1_curve(G1_GENERATOR)
        assert is_on_g2_curve(G2_GENERATOR)

    def test_generator_orders(self):
        assert _scalar_mul(G1_GENERATOR, CURVE_ORDER) is None
        assert _scalar_mul(G2_GENERATOR, CURVE_ORDER) is None

    def test_bn_parameter_relation(self):
        # p and r satisfy the BN polynomial identities for x = 4965661367192848881.
        x = 4965661367192848881
        assert FIELD_MODULUS == 36 * x**4 + 36 * x**3 + 24 * x**2 + 6 * x + 1
        assert CURVE_ORDER == 36 * x**4 + 36 * x**3 + 18 * x**2 + 6 * x + 1

    def test_group_ops(self, g):
        p = g.g1() ** 7
        assert p == g.g1() ** 3 * g.g1() ** 4
        assert (p / p).is_identity()

    def test_asymmetric(self, g):
        assert not g.is_symmetric

    def test_hash_to_g1(self, g):
        h = g.hash_to_g1(b"bn-block")
        assert not h.is_identity()
        assert (h**g.order).is_identity()

    def test_serialization_sizes(self, g):
        assert len(g.g1().to_bytes()) == 33
        assert len(g.g2().to_bytes()) == 65


class TestPairing:
    def test_bilinearity(self, g):
        e1 = g.pair(g.g1() ** 3, g.g2() ** 5)
        e2 = g.pair(g.g1(), g.g2()) ** 15
        assert e1 == e2

    def test_non_degenerate(self, g):
        assert not g.pair(g.g1(), g.g2()).is_identity()

    def test_identity_argument(self, g):
        assert g.pair(g.g1_identity(), g.g2()).is_identity()

    def test_multi_pair_shares_final_exp(self, g):
        p1, p2 = g.g1() ** 2, g.g1() ** 3
        q = g.g2()
        combined = g.multi_pair([(p1, q), (p2, q)])
        assert combined == g.pair(g.g1() ** 5, q)


class TestSchemeOnBN254:
    """The paper's scheme must run unchanged on the asymmetric backend."""

    def test_blind_bls_round_trip(self, g):
        import random

        from repro.crypto.blind_bls import blind, sign_blinded, unblind

        rng = random.Random(1)
        sk = g.random_nonzero_scalar(rng)
        pk = g.g2() ** sk
        pk1 = g.g1() ** sk
        message = g.hash_to_g1(b"block")
        state = blind(g, message, rng)
        sigma_tilde = sign_blinded(state.blinded, sk)
        sigma = unblind(g, state, sigma_tilde, pk, pk1=pk1)
        assert sigma == message**sk
        assert g.pair(sigma, g.g2()) == g.pair(message, pk)

    def test_asymmetric_unblind_requires_pk1(self, g):
        import random

        from repro.crypto.blind_bls import blind, sign_blinded, unblind

        rng = random.Random(2)
        sk = g.random_nonzero_scalar(rng)
        pk = g.g2() ** sk
        state = blind(g, g.hash_to_g1(b"m"), rng)
        sigma_tilde = sign_blinded(state.blinded, sk)
        with pytest.raises(ValueError):
            unblind(g, state, sigma_tilde, pk, check=False)

    def test_end_to_end_pdp(self, g):
        import random

        from repro.core import SemPdpSystem

        rng = random.Random(3)
        system = SemPdpSystem.create(g, k=2, rng=rng)
        owner = system.enroll("alice")
        system.upload(owner, b"bn254 data", b"f", batch=True)
        assert system.audit(b"f")
