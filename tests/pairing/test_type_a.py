"""Tests for the type-A symmetric pairing backend."""

import pytest

from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup
from repro.pairing.interface import OperationCounter


@pytest.fixture(scope="module")
def g():
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["toy-64"])


class TestGroupStructure:
    def test_generator_order(self, g):
        assert (g.g1() ** g.order).is_identity()
        assert not (g.g1() ** 1).is_identity()

    def test_symmetric(self, g):
        assert g.is_symmetric
        assert g.g1().point == g.g2().point

    def test_identity_element(self, g):
        e = g.g1_identity()
        assert e.is_identity()
        assert (g.g1() * e) == g.g1()

    def test_inverse(self, g):
        p = g.random_g1()
        assert (p * p.inverse()).is_identity()
        assert (p / p).is_identity()

    def test_exponent_reduction_mod_order(self, g):
        p = g.random_g1()
        assert p ** (g.order + 5) == p**5
        assert (p**0).is_identity()

    def test_negative_exponent(self, g):
        p = g.random_g1()
        assert p**-1 == p.inverse()

    def test_mul_commutes(self, g):
        a, b = g.random_g1(), g.random_g1()
        assert a * b == b * a

    def test_exp_homomorphism(self, g):
        p = g.random_g1()
        assert p**3 * p**5 == p**8


class TestPairing:
    def test_bilinearity(self, g):
        p, q = g.g1(), g.g2()
        a, b = 1234567, 7654321
        assert g.pair(p**a, q**b) == g.pair(p, q) ** ((a * b) % g.order)

    def test_bilinearity_left(self, g):
        p, q = g.random_g1(), g.random_g2()
        a = 999983
        assert g.pair(p**a, q) == g.pair(p, q) ** a

    def test_bilinearity_right(self, g):
        p, q = g.random_g1(), g.random_g2()
        b = 424243
        assert g.pair(p, q**b) == g.pair(p, q) ** b

    def test_non_degenerate(self, g):
        assert not g.pair(g.g1(), g.g2()).is_identity()

    def test_identity_pairs_to_one(self, g):
        assert g.pair(g.g1_identity(), g.g2()).is_identity()
        assert g.pair(g.g1(), g.g2_identity()).is_identity()

    def test_gt_has_order_r(self, g):
        e = g.pair(g.g1(), g.g2())
        assert (e**g.order).is_identity()

    def test_pairing_product(self, g):
        p1, p2 = g.random_g1(), g.random_g1()
        q = g.g2()
        assert g.pair(p1 * p2, q) == g.pair(p1, q) * g.pair(p2, q)

    def test_multi_pair_matches_product(self, g):
        pairs = [(g.random_g1(), g.random_g2()) for _ in range(4)]
        product = g.gt_one()
        for p, q in pairs:
            product = product * g.pair(p, q)
        assert g.multi_pair(pairs) == product

    def test_multi_pair_empty(self, g):
        assert g.multi_pair([]).is_identity()

    def test_pair_wrong_sides_raises(self, g):
        with pytest.raises(ValueError):
            g.pair(g.g2(), g.g1())  # both are g1/g2-tagged wrappers

    def test_gt_division(self, g):
        e = g.pair(g.g1(), g.g2())
        assert (e / e).is_identity()
        assert e * e.inverse() == g.gt_one()


class TestHashAndSerialization:
    def test_hash_lands_in_subgroup(self, g):
        h = g.hash_to_g1(b"block-id-1")
        assert (h**g.order).is_identity()
        assert not h.is_identity()

    def test_hash_deterministic(self, g):
        assert g.hash_to_g1(b"same") == g.hash_to_g1(b"same")
        assert g.hash_to_g1(b"a") != g.hash_to_g1(b"b")

    def test_serialize_round_trip(self, g):
        p = g.random_g1()
        data = p.to_bytes()
        assert g.deserialize_g1(data) == p

    def test_serialize_identity(self, g):
        data = g.g1_identity().to_bytes()
        assert g.deserialize_g1(data).is_identity()

    def test_serialize_length_constant(self, g):
        lengths = {len(g.random_g1().to_bytes()) for _ in range(5)}
        assert len(lengths) == 1
        assert g.g1_element_bytes() == lengths.pop()

    def test_deserialize_rejects_garbage(self, g):
        with pytest.raises(ValueError):
            g.deserialize_g1(b"\x01")

    def test_element_hash_consistency(self, g):
        p = g.random_g1()
        q = p * g.g1_identity()
        assert hash(p) == hash(q)


class TestOperationCounter:
    def test_counts_exponentiations_and_pairings(self, g):
        counter = OperationCounter()
        g.attach_counter(counter)
        try:
            p = g.g1() ** 5
            _ = p * p
            g.pair(p, g.g2())
            g.hash_to_g1(b"x")
        finally:
            g.detach_counter()
        assert counter.exp_g1 == 1
        assert counter.mul_g1 == 1
        assert counter.pairings == 1
        assert counter.hash_to_g1 == 1

    def test_reset(self, g):
        counter = OperationCounter()
        g.attach_counter(counter)
        try:
            _ = g.g1() ** 2
        finally:
            g.detach_counter()
        counter.reset()
        assert counter.snapshot() == {
            "exp_g1": 0, "exp_g1_fixed_base": 0, "exp_g1_msm": 0,
            "exp_g1_skipped": 0, "exp_g2": 0, "exp_gt": 0,
            "pairings": 0, "mul_g1": 0, "hash_to_g1": 0,
        }

    def test_detached_counts_nothing(self, g):
        counter = OperationCounter()
        g.attach_counter(counter)
        g.detach_counter()
        _ = g.g1() ** 2
        assert counter.exp_g1 == 0


class TestAcrossParamSets:
    @pytest.mark.parametrize("name", ["toy-64", "test-80"])
    def test_bilinearity(self, name):
        g = TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS[name])
        p, q = g.g1(), g.g2()
        assert g.pair(p**3, q**5) == g.pair(p, q) ** 15

    @pytest.mark.slow
    def test_paper_params_bilinearity(self):
        g = TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["paper-160"])
        p, q = g.g1(), g.g2()
        a = 0xDEADBEEFCAFEBABE
        assert g.pair(p**a, q) == g.pair(p, q) ** a
