"""Backend-agnostic contract tests: every PairingGroup implementation must
satisfy the same algebraic API guarantees the scheme code relies on."""

import random

import pytest

from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup


def _backends():
    yield pytest.param(
        lambda: TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["toy-64"]), id="type-a-toy"
    )
    yield pytest.param(
        lambda: TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["test-80"]), id="type-a-80"
    )
    yield pytest.param(_bn254, id="bn254", marks=pytest.mark.slow)


def _bn254():
    from repro.pairing.bn254 import BN254PairingGroup

    return BN254PairingGroup()


@pytest.fixture(params=list(_backends()))
def backend(request):
    return request.param()


class TestGroupContract:
    def test_order_is_odd_prime_sized(self, backend):
        assert backend.order > 2
        assert backend.order % 2 == 1

    def test_generator_has_group_order(self, backend):
        assert (backend.g1() ** backend.order).is_identity()
        assert (backend.g2() ** backend.order).is_identity()

    def test_identity_laws(self, backend):
        g = backend.g1()
        e = backend.g1_identity()
        assert g * e == g
        assert (g * g.inverse()).is_identity()

    def test_exponent_arithmetic(self, backend):
        g = backend.g1()
        assert g**3 * g**4 == g**7
        assert (g**5) ** 3 == g**15
        assert g ** (backend.order + 1) == g

    def test_hash_to_g1_contract(self, backend):
        h1 = backend.hash_to_g1(b"a")
        h2 = backend.hash_to_g1(b"a")
        h3 = backend.hash_to_g1(b"b")
        assert h1 == h2 != h3
        assert (h1**backend.order).is_identity()

    def test_random_scalars_in_range(self, backend):
        rng = random.Random(1)
        for _ in range(10):
            s = backend.random_scalar(rng)
            assert 0 <= s < backend.order
        assert backend.random_nonzero_scalar(rng) != 0

    def test_serialization_round_trip(self, backend):
        g = backend.g1() ** 12345
        assert backend.deserialize_g1(g.to_bytes()) == g

    def test_element_sizes_consistent(self, backend):
        assert backend.g1_element_bytes() == len(backend.g1().to_bytes())
        assert backend.scalar_bytes() == (backend.order.bit_length() + 7) // 8


class TestPairingContract:
    def test_bilinearity_both_slots(self, backend):
        e = backend.pair
        g1, g2 = backend.g1(), backend.g2()
        base = e(g1, g2)
        assert e(g1**6, g2) == base**6
        assert e(g1, g2**7) == base**7
        assert e(g1**2, g2**3) == base**6

    def test_non_degeneracy(self, backend):
        assert not backend.pair(backend.g1(), backend.g2()).is_identity()

    def test_gt_group_laws(self, backend):
        e = backend.pair(backend.g1(), backend.g2())
        assert (e * e.inverse()).is_identity()
        assert e**2 * e**3 == e**5
        assert (e**backend.order).is_identity()

    def test_multi_pair_matches_naive(self, backend):
        pairs = [
            (backend.g1() ** 2, backend.g2() ** 3),
            (backend.g1() ** 5, backend.g2()),
        ]
        naive = backend.pair(*pairs[0]) * backend.pair(*pairs[1])
        assert backend.multi_pair(pairs) == naive

    def test_bls_equation(self, backend):
        """The exact equation every verification in the repo reduces to."""
        sk = 987654321 % backend.order
        message = backend.hash_to_g1(b"contract block")
        signature = message**sk
        pk = backend.g2() ** sk
        assert backend.pair(signature, backend.g2()) == backend.pair(message, pk)
