"""Tests for type-A parameter sets and their generation."""

import pytest

from repro.mathkit.ntheory import is_prime
from repro.pairing.params import TYPE_A_PARAM_SETS, TypeAParams, generate_type_a_params


class TestPinnedSets:
    @pytest.mark.parametrize("name", ["paper-160", "test-80", "toy-64"])
    def test_validate(self, name):
        TYPE_A_PARAM_SETS[name].validate()

    def test_paper_bit_lengths(self):
        p = TYPE_A_PARAM_SETS["paper-160"]
        assert p.r.bit_length() == 160
        assert p.q.bit_length() == 512

    def test_toy_bit_lengths(self):
        p = TYPE_A_PARAM_SETS["toy-64"]
        assert p.r.bit_length() == 64

    def test_structure(self):
        for params in TYPE_A_PARAM_SETS.values():
            assert is_prime(params.r)
            assert is_prime(params.q)
            assert params.q % 4 == 3
            assert params.h * params.r == params.q + 1


class TestGeneration:
    def test_deterministic_with_seed(self):
        a = generate_type_a_params(rbits=32, qbits=64, seed=99)
        b = generate_type_a_params(rbits=32, qbits=64, seed=99)
        assert (a.r, a.q, a.h, a.gx, a.gy) == (b.r, b.q, b.h, b.gx, b.gy)

    def test_fresh_generation_validates(self):
        params = generate_type_a_params(rbits=40, qbits=80, seed=123, name="t")
        params.validate()
        assert params.name == "t"
        assert params.r.bit_length() == 40
        assert params.q.bit_length() == 80

    def test_generator_has_order_r(self):
        from repro.pairing.params import _affine_scalar_mul

        params = generate_type_a_params(rbits=32, qbits=64, seed=7)
        assert _affine_scalar_mul(params.gx, params.gy, params.r, params.q) is None
        assert _affine_scalar_mul(params.gx, params.gy, 1, params.q) is not None


class TestValidateRejects:
    def test_bad_r(self):
        good = TYPE_A_PARAM_SETS["toy-64"]
        bad = TypeAParams(name="x", r=good.r + 1, q=good.q, h=good.h, gx=good.gx, gy=good.gy)
        with pytest.raises(ValueError):
            bad.validate()

    def test_bad_cofactor(self):
        good = TYPE_A_PARAM_SETS["toy-64"]
        bad = TypeAParams(name="x", r=good.r, q=good.q, h=good.h + 1, gx=good.gx, gy=good.gy)
        with pytest.raises(ValueError):
            bad.validate()

    def test_generator_off_curve(self):
        good = TYPE_A_PARAM_SETS["toy-64"]
        bad = TypeAParams(name="x", r=good.r, q=good.q, h=good.h, gx=good.gx + 1, gy=good.gy)
        with pytest.raises(ValueError):
            bad.validate()
