"""Tests for the repro-pdp command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def deployment(tmp_path):
    state = tmp_path / "st"
    assert main(["--state-dir", str(state), "init", "--param-set", "toy-64",
                 "-k", "4", "--seed", "7"]) == 0
    assert main(["--state-dir", str(state), "enroll", "alice"]) == 0
    doc = tmp_path / "doc.txt"
    doc.write_bytes(b"cli-managed shared document " * 4)
    return state, doc


def _run(state, *argv) -> int:
    return main(["--state-dir", str(state), *argv])


class TestLifecycle:
    def test_upload_and_audit(self, deployment):
        state, doc = deployment
        assert _run(state, "upload", "alice", str(doc), "--file-id", "d/1") == 0
        assert _run(state, "audit", "d/1") == 0
        assert _run(state, "audit", "d/1", "--sample", "2") == 0

    def test_tamper_fails_audit(self, deployment):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        assert _run(state, "tamper", "d/1", "--block", "0") == 0
        assert _run(state, "audit", "d/1") == 1

    def test_no_batch_upload(self, deployment):
        state, doc = deployment
        assert _run(state, "upload", "alice", str(doc), "--file-id", "d/2",
                    "--no-batch") == 0
        assert _run(state, "audit", "d/2") == 0

    def test_info(self, deployment, capsys):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        assert _run(state, "info") == 0
        out = capsys.readouterr().out
        assert "alice" in out and "d/1" in out

    def test_revoke_blocks_new_uploads(self, deployment):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        assert _run(state, "revoke", "alice") == 0
        assert _run(state, "upload", "alice", str(doc), "--file-id", "d/2") == 2
        # ... but existing files still audit.
        assert _run(state, "audit", "d/1") == 0

    def test_state_survives_process_boundaries(self, deployment):
        """Every command reloads state from disk — nothing is in-memory."""
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        persisted = json.loads((state / "state.json").read_text())
        assert persisted["files"]["d/1"]["blocks"] > 0
        assert (state / "cloud" / "d__1.spdp").exists()


class TestObservabilityFlags:
    def test_trace_accumulates_across_upload_and_audit(self, deployment, tmp_path):
        state, doc = deployment
        trace = tmp_path / "trace.jsonl"
        assert _run(state, "upload", "alice", str(doc), "--file-id", "d/1",
                    "--trace-out", str(trace)) == 0
        assert _run(state, "audit", "d/1", "--trace-out", str(trace)) == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {r["name"] for r in records}
        assert {"upload", "sign", "audit", "proofgen", "proofverify"} <= names
        sign = next(r for r in records if r["name"] == "sign")
        assert sign["attrs"].get("exp_g1", 0) > 0
        assert sign["attrs"]["pairings"] == 2

    def test_metrics_out_writes_prometheus_text(self, deployment, tmp_path):
        state, doc = deployment
        metrics = tmp_path / "metrics.txt"
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        assert _run(state, "audit", "d/1", "--metrics-out", str(metrics)) == 0
        text = metrics.read_text()
        assert "# TYPE pdp_operations gauge" in text
        assert 'pdp_operations{op="pairings"} 2' in text

    def test_audit_prints_exact_cost_table(self, deployment, tmp_path, capsys):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        assert _run(state, "audit", "d/1",
                    "--metrics-out", str(tmp_path / "m.txt")) == 0
        out = capsys.readouterr().out
        assert "proofgen" in out and "proofverify" in out
        assert "DEVIATES" not in out

    def test_info_reports_last_run(self, deployment, capsys):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        _run(state, "audit", "d/1")
        capsys.readouterr()
        assert _run(state, "info") == 0
        out = capsys.readouterr().out
        assert "last run: audit" in out
        assert "proofverify" in out and "pairings=2" in out

    def test_serve_sim_obs_outputs(self, tmp_path):
        trace = tmp_path / "sim.jsonl"
        metrics = tmp_path / "sim.txt"
        assert main(["serve-sim", "--clients", "1", "--requests", "1",
                     "--trace-out", str(trace), "--metrics-out", str(metrics)]) == 0
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        assert records[0]["rec"] == "trace-header"  # run fencing (causal.py)
        names = {r["name"] for r in records if "name" in r}
        assert "batch.prepare" in names and "batch.finish" in names
        assert "sim_delivered" in metrics.read_text()


class TestServeSim:
    def test_single_sem(self, capsys):
        assert main(["serve-sim", "--clients", "2", "--requests", "1"]) == 0
        out = capsys.readouterr().out
        assert "completed 2, failed 0, lost 0" in out
        assert "1 SEM(s) (t=1, 0 crashed)" in out

    def test_threshold_with_crash(self, capsys):
        assert main(["serve-sim", "--threshold", "2", "--crash", "1",
                     "--clients", "2", "--requests", "1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "3 SEM(s) (t=2, 1 crashed)" in out
        assert "failed 0" in out

    def test_crash_beyond_tolerance_refused(self):
        assert main(["serve-sim", "--threshold", "2", "--crash", "2"]) == 2

    def test_unknown_param_set(self):
        assert main(["serve-sim", "--param-set", "bogus"]) == 2


class TestErrors:
    def test_audit_before_init(self, tmp_path):
        assert main(["--state-dir", str(tmp_path / "nope"), "audit", "x"]) == 2

    def test_double_init_requires_force(self, deployment):
        state, _ = deployment
        assert _run(state, "init") == 2
        assert _run(state, "init", "--force", "--param-set", "toy-64") == 0

    def test_unknown_param_set(self, tmp_path):
        assert main(["--state-dir", str(tmp_path / "s"), "init",
                     "--param-set", "bogus"]) == 2

    def test_double_enroll(self, deployment):
        state, _ = deployment
        assert _run(state, "enroll", "alice") == 2

    def test_upload_unknown_member(self, deployment):
        state, doc = deployment
        assert _run(state, "upload", "mallory", str(doc), "--file-id", "x") == 2

    def test_audit_unknown_file(self, deployment):
        state, _ = deployment
        assert _run(state, "audit", "ghost") == 2

    def test_tamper_out_of_range(self, deployment):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        assert _run(state, "tamper", "d/1", "--block", "999") == 2

    def test_revoke_unknown(self, deployment):
        state, _ = deployment
        assert _run(state, "revoke", "nobody") == 2


class TestWatchAndProfile:
    def test_serve_sim_watch_renders_frames(self, capsys):
        assert main(["serve-sim", "--clients", "2", "--requests", "2",
                     "--watch", "--watch-interval", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "-- serve-sim t=" in out
        assert "queue depth" in out and "failover" in out
        assert "p95" in out  # bucket quantiles from real completions
        assert "completed 4, failed 0" in out  # final summary still prints

    def test_upload_profile_prints_attribution_tree(self, deployment, capsys):
        state, doc = deployment
        assert _run(state, "upload", "alice", str(doc), "--file-id", "d/1",
                    "--profile") == 0
        out = capsys.readouterr().out
        assert "self-time attribution" in out
        assert "sign" in out and "exp_g1" in out

    def test_audit_profile_covers_proof_phases(self, deployment, capsys):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        assert _run(state, "audit", "d/1", "--profile") == 0
        out = capsys.readouterr().out
        assert "proofgen" in out and "proofverify" in out
        assert "'other'" in out


class TestBench:
    """The continuous-performance commands over the fast audit suite."""

    def _bench(self, tmp_path, *argv):
        return main(["bench", *argv, "--suite", "audit", "--repeats", "1",
                     "--trajectory-dir", str(tmp_path),
                     "--results-dir", str(tmp_path / "results")])

    def test_run_writes_trajectory_and_per_run_copy(self, tmp_path, capsys):
        assert self._bench(tmp_path, "run") == 0
        doc = json.loads((tmp_path / "BENCH_audit.json").read_text())
        assert doc["suite"] == "audit"
        assert len(doc["runs"]) == 1
        assert doc["baseline"] is not None  # first run pins itself
        assert list((tmp_path / "results").glob("bench_audit_*.json"))
        out = capsys.readouterr().out
        assert "proofgen" in out and "proofverify" in out

    def test_compare_without_baseline_exits_2(self, tmp_path):
        assert self._bench(tmp_path, "compare") == 2

    def test_compare_report_only_never_fails(self, tmp_path):
        assert self._bench(tmp_path, "compare", "--report-only") == 0

    def test_baseline_then_compare_is_clean(self, tmp_path, capsys):
        assert self._bench(tmp_path, "baseline") == 0
        assert self._bench(tmp_path, "compare") == 0
        assert "verdict ok" in capsys.readouterr().out

    def test_injected_exp_regression_exits_1_naming_phase(self, tmp_path, capsys):
        """Acceptance: +1 Exp in ProofGen vs baseline fails the gate."""
        assert self._bench(tmp_path, "baseline") == 0
        path = tmp_path / "BENCH_audit.json"
        doc = json.loads(path.read_text())
        for run in [doc["baseline"], *doc["runs"]]:
            phase = next(p for p in run["phases"] if p["name"] == "proofgen")
            phase["exp"] -= 1
            phase["ops"]["exp_g1_msm"] -= 1
        path.write_text(json.dumps(doc))
        assert self._bench(tmp_path, "compare") == 1
        out = capsys.readouterr().out
        assert "verdict regression" in out
        assert "FAIL: proofgen: op-count regression (ΔExp=+1" in out

    def test_compare_json_out(self, tmp_path):
        assert self._bench(tmp_path, "baseline") == 0
        report_path = tmp_path / "report.json"
        assert self._bench(tmp_path, "compare", "--json-out",
                           str(report_path)) == 0
        payload = json.loads(report_path.read_text())
        assert payload["audit"]["verdict"] == "ok"

    def test_explicit_baseline_file(self, tmp_path):
        assert self._bench(tmp_path, "run") == 0
        run_file = next((tmp_path / "results").glob("bench_audit_*.json"))
        assert main(["bench", "compare", "--suite", "audit", "--repeats", "1",
                     "--trajectory-dir", str(tmp_path / "elsewhere"),
                     "--results-dir", str(tmp_path / "results"),
                     "--baseline", str(run_file)]) == 0

    def test_unknown_suite_is_a_usage_error(self, tmp_path):
        assert main(["bench", "run", "--suite", "bogus",
                     "--trajectory-dir", str(tmp_path),
                     "--results-dir", str(tmp_path / "results")]) == 2


class TestLedgerCommands:
    def _serve(self, ledger_path, *extra) -> int:
        return main(["serve-sim", "--clients", "1", "--requests", "2",
                     "--ledger", str(ledger_path), *extra])

    def test_serve_sim_ledger_verifies_offline(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        assert self._serve(path) == 0
        out = capsys.readouterr().out
        assert "ledger:" in out and "critical path" in out
        assert main(["ledger", "verify", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_head_pins_the_chain_out_of_band(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        assert self._serve(path) == 0
        capsys.readouterr()
        assert main(["ledger", "head", str(path)]) == 0
        head = capsys.readouterr().out.strip()
        assert len(head) == 64 and int(head, 16) >= 0
        assert main(["ledger", "verify", str(path),
                     "--expect-head", head]) == 0
        capsys.readouterr()
        assert main(["ledger", "verify", str(path),
                     "--expect-head", "0" * 64]) == 1
        assert "truncated or wholly replaced" in capsys.readouterr().out

    def test_verify_detects_a_corrupted_copy(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        assert self._serve(path) == 0
        data = bytearray(path.read_bytes())
        data[len(data) // 3] ^= 0x04
        corrupt = tmp_path / "corrupt.jsonl"
        corrupt.write_bytes(bytes(data))
        capsys.readouterr()
        assert main(["ledger", "verify", str(corrupt)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_show_filters_by_kind_and_tail(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        assert self._serve(path) == 0
        capsys.readouterr()
        assert main(["ledger", "show", str(path), "--kind", "sign_request",
                     "--tail", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 and "sign_request" in lines[0]

    def test_head_of_missing_ledger_is_a_usage_error(self, tmp_path):
        assert main(["ledger", "head", str(tmp_path / "absent.jsonl")]) == 2

    def test_trace_out_carries_the_run_header(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert self._serve(tmp_path / "ledger.jsonl",
                           "--trace-out", str(trace)) == 0
        first = json.loads(trace.read_text().splitlines()[0])
        assert first["rec"] == "trace-header"
        assert {"scenario", "seed", "digest"} <= set(first)

    def test_deployment_ledger_records_upload_and_audit(
        self, deployment, capsys
    ):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        _run(state, "audit", "d/1")
        ledger_path = state / "obs" / "ledger.jsonl"
        assert ledger_path.exists()
        capsys.readouterr()
        assert main(["ledger", "verify", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "audits rechecked offline: 1 (0 mismatch(es))" in out
        assert _run(state, "info") == 0
        assert "ledger:" in capsys.readouterr().out

    def test_failed_audit_verdict_is_on_the_chain(self, deployment, capsys):
        state, doc = deployment
        _run(state, "upload", "alice", str(doc), "--file-id", "d/1")
        _run(state, "tamper", "d/1", "--block", "0")
        assert _run(state, "audit", "d/1") == 1
        ledger_path = state / "obs" / "ledger.jsonl"
        capsys.readouterr()
        assert main(["ledger", "show", str(ledger_path),
                     "--kind", "audit"]) == 0
        assert '"ok": false' in capsys.readouterr().out
        # The recorded FAIL re-evaluates to FAIL offline: chain verifies.
        assert main(["ledger", "verify", str(ledger_path)]) == 0
