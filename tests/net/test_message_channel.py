"""Tests for message sizing and channel modelling."""

import random

import pytest

from repro.net.channel import Channel, ChannelStats
from repro.net.message import Message, payload_size


class TestPayloadSize:
    def test_primitives(self):
        assert payload_size(None) == 0
        assert payload_size(True) == 1
        assert payload_size(0) == 1
        assert payload_size(255) == 1
        assert payload_size(256) == 2
        assert payload_size(b"abcd") == 4
        assert payload_size("hi") == 2

    def test_containers(self):
        assert payload_size([b"ab", b"cd"]) == 4
        assert payload_size((1, 2, 3)) == 3
        assert payload_size({b"k": b"vv"}) == 3

    def test_group_element(self, group):
        e = group.g1()
        assert payload_size(e) == len(e.to_bytes())

    def test_gt_element(self, group):
        e = group.pair(group.g1(), group.g2())
        assert payload_size(e) > 0

    def test_wire_size_protocol(self):
        class Sized:
            def wire_size_bytes(self):
                return 99

        assert payload_size(Sized()) == 99

    def test_dataclass_recursion(self, group):
        from dataclasses import dataclass

        @dataclass
        class Bundle:
            tag: bytes
            element: object

        assert payload_size(Bundle(tag=b"xy", element=group.g1())) == 2 + len(
            group.g1().to_bytes()
        )

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            payload_size(object())

    def test_message_autosize(self, group):
        m = Message(sender="a", recipient="b", msg_type="t", payload=[group.g1()])
        assert m.size_bytes == len(group.g1().to_bytes())

    def test_message_explicit_size(self):
        m = Message(sender="a", recipient="b", msg_type="t", payload=b"xx", size_bytes=1000)
        assert m.size_bytes == 1000

    def test_message_ids_unique(self):
        a = Message(sender="a", recipient="b", msg_type="t")
        b = Message(sender="a", recipient="b", msg_type="t")
        assert a.msg_id != b.msg_id


class TestChannel:
    def test_delay_fixed_latency(self):
        ch = Channel(latency_s=0.05)
        m = Message(sender="a", recipient="b", msg_type="t", payload=b"x" * 100)
        assert ch.delay_for(m) == pytest.approx(0.05)

    def test_delay_with_bandwidth(self):
        ch = Channel(latency_s=0.01, bandwidth_bps=1000)
        m = Message(sender="a", recipient="b", msg_type="t", payload=b"x" * 100)
        assert ch.delay_for(m) == pytest.approx(0.01 + 0.1)

    def test_stats_accumulate(self):
        ch = Channel()
        for size in (10, 20):
            ch.record(Message(sender="a", recipient="b", msg_type="t", payload=b"x" * size))
        assert ch.stats.messages == 2
        assert ch.stats.bytes_total == 30
        assert ch.stats.by_type == {"t": 30}

    def test_by_type_breakdown(self):
        ch = Channel()
        ch.record(Message(sender="a", recipient="b", msg_type="x", payload=b"1"))
        ch.record(Message(sender="a", recipient="b", msg_type="y", payload=b"22"))
        assert ch.stats.by_type == {"x": 1, "y": 2}

    def test_drop_rate_requires_rng(self):
        ch = Channel(drop_rate=0.5)
        with pytest.raises(ValueError):
            ch.should_drop()

    def test_drop_rate_statistics(self):
        ch = Channel(drop_rate=0.5, rng=random.Random(1))
        drops = sum(ch.should_drop() for _ in range(1000))
        assert 400 < drops < 600

    def test_no_drops_by_default(self):
        assert not Channel().should_drop()

    def test_channel_stats_dataclass(self):
        s = ChannelStats()
        assert s.messages == 0 and s.bytes_total == 0
