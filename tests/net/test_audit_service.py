"""Tests for the periodic audit service."""

import pytest

from repro.core.verifier import PublicVerifier
from repro.net import build_protocol_network
from repro.net.audit_service import AuditServiceNode


@pytest.fixture()
def deployment(params_k4, rng):
    sim, owner, verifier = build_protocol_network(params_k4, rng=rng)
    for message in owner.start_upload(b"scheduled audit data " * 5, b"f"):
        sim.send(message)
    sim.run()
    n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
    auditor = AuditServiceNode(
        "auditor",
        PublicVerifier(params_k4, verifier.verifier.org_pk, rng=rng),
        period_s=10.0,
    )
    sim.add_node(auditor)
    auditor.watch(b"f", n)
    return sim, auditor


class TestAuditService:
    def test_periodic_audits_accumulate(self, deployment):
        sim, auditor = deployment
        auditor.start()
        sim.run(until=45.0)
        history = auditor.history(b"f")
        assert len(history) == 4  # ticks at t = 10, 20, 30, 40
        assert all(r.passed for r in history)
        assert auditor.pass_rate(b"f") == 1.0
        assert auditor.alerts == []

    def test_detects_corruption_within_one_period(self, deployment):
        sim, auditor = deployment
        auditor.start()
        sim.run(until=15.0)  # one clean audit
        sim.nodes["cloud"].server.tamper_block(b"f", 0)
        sim.run(until=45.0)
        assert auditor.alerts and auditor.alerts[0][0] == b"f"
        # Alert raised at the first audit after corruption (t = 20).
        assert auditor.alerts[0][1] == pytest.approx(20.0, abs=1.0)

    def test_alert_threshold(self, deployment):
        sim, auditor = deployment
        auditor.alert_threshold = 3
        auditor.start()
        sim.nodes["cloud"].server.tamper_block(b"f", 0)
        sim.run(until=25.0)  # 2 failing audits: below threshold
        assert auditor.alerts == []
        sim.run(until=35.0)  # third failure
        assert len(auditor.alerts) == 1

    def test_stop_halts_schedule(self, deployment):
        sim, auditor = deployment
        auditor.start()
        sim.run(until=15.0)
        auditor.stop()
        sim.run(until=100.0)
        assert len(auditor.history(b"f")) == 1

    def test_requires_simulator(self, params_k4, rng):
        auditor = AuditServiceNode(
            "a", PublicVerifier(params_k4, params_k4.group.g2(), rng=rng)
        )
        with pytest.raises(RuntimeError):
            auditor.start()

    def test_unwatched_proof_ignored(self, deployment, rng):
        sim, auditor = deployment
        # Proofs for files the auditor never registered are dropped.
        from repro.net.message import Message

        verifier = auditor.verifier
        ch = verifier.generate_challenge(b"f", 2)
        sim.send(
            Message(
                sender="cloud",
                recipient="auditor",
                msg_type="proof",
                payload=(b"other-file", ch, None),
            )
        )
        sim.run()
        assert b"other-file" not in auditor.watched

    def test_pass_rate_empty(self, deployment):
        _, auditor = deployment
        assert auditor.pass_rate(b"f") == 0.0

    def test_sampled_schedule(self, params_k4, rng):
        sim, owner, verifier = build_protocol_network(params_k4, rng=rng)
        for message in owner.start_upload(b"sampled schedule " * 6, b"f"):
            sim.send(message)
        sim.run()
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        auditor = AuditServiceNode(
            "auditor",
            PublicVerifier(params_k4, verifier.verifier.org_pk, rng=rng),
            period_s=5.0,
            sample_size=2,
        )
        sim.add_node(auditor)
        auditor.watch(b"f", n)
        auditor.start()
        sim.run(until=21.0)
        assert len(auditor.history(b"f")) == 4
        assert auditor.pass_rate(b"f") == 1.0
