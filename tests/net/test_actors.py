"""End-to-end protocol runs over the simulated network."""

import pytest

from repro.net import build_protocol_network
from repro.net.channel import Channel


@pytest.fixture()
def network(params_k4, rng):
    return build_protocol_network(params_k4, rng=rng)


def _upload(sim, owner, data=b"network data " * 8, file_id=b"f"):
    for message in owner.start_upload(data, file_id):
        sim.send(message)
    sim.run()


class TestSingleSemProtocol:
    def test_upload_completes(self, network):
        sim, owner, _ = network
        _upload(sim, owner)
        assert owner.completed_uploads == [b"f"]
        assert sim.nodes["cloud"].server.has_file(b"f")

    def test_audit_over_network(self, network):
        sim, owner, verifier = network
        _upload(sim, owner)
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        sim.send(verifier.start_audit(b"f", n))
        sim.run()
        assert verifier.audit_results == {b"f": True}

    def test_audit_detects_server_tampering(self, network):
        sim, owner, verifier = network
        _upload(sim, owner)
        sim.nodes["cloud"].server.tamper_block(b"f", 0)
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        sim.send(verifier.start_audit(b"f", n))
        sim.run()
        assert verifier.audit_results == {b"f": False}

    def test_sampled_audit_over_network(self, network):
        sim, owner, verifier = network
        _upload(sim, owner)
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        sim.send(verifier.start_audit(b"f", n, sample_size=2))
        sim.run()
        assert verifier.audit_results[b"f"]

    def test_owner_sem_traffic_is_two_elements_per_block(self, network, params_k4):
        """The paper's signing-communication claim, on honest wire sizes."""
        sim, owner, _ = network
        _upload(sim, owner)
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        element = params_k4.group.g1_element_bytes()
        assert sim.bytes_between("owner", "sem-0") == n * element
        assert sim.bytes_between("sem-0", "owner") == n * element

    def test_concurrent_upload_rejected(self, network):
        sim, owner, _ = network
        owner.start_upload(b"first", b"f1")
        with pytest.raises(RuntimeError):
            owner.start_upload(b"second", b"f2")

    def test_upload_with_latency_channels(self, params_k4, rng):
        sim, owner, verifier = build_protocol_network(
            params_k4,
            rng=rng,
            owner_sem_channel=Channel(latency_s=0.2, anonymous=True),
        )
        _upload(sim, owner)
        assert owner.completed_uploads == [b"f"]
        assert sim.now >= 0.4  # at least one round trip over the slow link


class TestMultiSemProtocol:
    def test_upload_with_full_cluster(self, params_k4, rng):
        sim, owner, verifier = build_protocol_network(params_k4, threshold=2, rng=rng)
        _upload(sim, owner)
        assert owner.completed_uploads == [b"f"]
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        sim.send(verifier.start_audit(b"f", n))
        sim.run()
        assert verifier.audit_results[b"f"]

    def test_tolerates_crashed_sem(self, params_k4, rng):
        sim, owner, verifier = build_protocol_network(params_k4, threshold=2, rng=rng)
        sim.nodes["sem-2"].crash()
        _upload(sim, owner)
        assert owner.completed_uploads == [b"f"]

    def test_insufficient_sems_stalls_without_completion(self, params_k4, rng):
        sim, owner, _ = build_protocol_network(params_k4, threshold=2, rng=rng)
        sim.nodes["sem-0"].crash()
        sim.nodes["sem-1"].crash()
        _upload(sim, owner)
        assert owner.completed_uploads == []  # stalled, not wrong

    def test_multi_sem_traffic_scales_with_w(self, params_k4, rng):
        sim, owner, _ = build_protocol_network(params_k4, threshold=2, rng=rng)
        _upload(sim, owner)
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        element = params_k4.group.g1_element_bytes()
        total_to_sems = sum(sim.bytes_between("owner", f"sem-{j}") for j in range(3))
        assert total_to_sems == 3 * n * element  # w = 3 copies out
