"""Edge cases of the protocol actor layer."""

import pytest

from repro.net import build_protocol_network
from repro.net.message import Message


@pytest.fixture()
def network(params_k4, rng):
    return build_protocol_network(params_k4, rng=rng)


def _upload(sim, owner, data=b"actor edge data " * 4, fid=b"f"):
    for m in owner.start_upload(data, fid):
        sim.send(m)
    sim.run()


class TestCloudNode:
    def test_unknown_file_challenge_errors(self, network):
        sim, owner, verifier = network
        sim.send(verifier.start_audit(b"ghost", 3))
        with pytest.raises(KeyError):
            sim.run()

    def test_multiple_files(self, network):
        sim, owner, verifier = network
        _upload(sim, owner, fid=b"f1")
        _upload(sim, owner, fid=b"f2")
        assert owner.completed_uploads == [b"f1", b"f2"]
        for fid in (b"f1", b"f2"):
            n = sim.nodes["cloud"].server.retrieve(fid).n_blocks
            sim.send(verifier.start_audit(fid, n))
        sim.run()
        assert verifier.audit_results == {b"f1": True, b"f2": True}


class TestVerifierNode:
    def test_repeated_audits_update_results(self, network):
        sim, owner, verifier = network
        _upload(sim, owner)
        n = sim.nodes["cloud"].server.retrieve(b"f").n_blocks
        sim.send(verifier.start_audit(b"f", n))
        sim.run()
        assert verifier.audit_results[b"f"] is True
        sim.nodes["cloud"].server.tamper_block(b"f", 0)
        sim.send(verifier.start_audit(b"f", n))
        sim.run()
        assert verifier.audit_results[b"f"] is False


class TestOwnerNode:
    def test_stray_sign_response_ignored(self, network, group):
        sim, owner, _ = network
        stray = Message(
            sender="sem-0", recipient="owner", msg_type="sign_response",
            payload=[group.g1()],
        )
        sim.send(stray)
        sim.run()  # no pending upload: must be silently dropped
        assert owner.completed_uploads == []

    def test_stray_upload_ack_ignored(self, network):
        sim, owner, _ = network
        sim.send(Message(sender="cloud", recipient="owner",
                         msg_type="upload_ack", payload=b"ghost"))
        sim.run()
        assert owner.completed_uploads == []

    def test_byzantine_single_sem_raises_at_owner(self, params_k4, rng, group):
        """A single-SEM deployment with a bad SEM fails loudly (Eq. 7)."""
        sim, owner, _ = build_protocol_network(params_k4, rng=rng)
        # Replace the SEM node's key after the fact: its signatures no
        # longer match the public key the owner holds.
        sim.nodes["sem-0"]._sk = (sim.nodes["sem-0"]._sk + 1) % group.order
        for m in owner.start_upload(b"bad sem data", b"f"):
            sim.send(m)
        with pytest.raises(ValueError):
            sim.run()

    def test_sequential_uploads_after_completion(self, network):
        sim, owner, _ = network
        _upload(sim, owner, fid=b"a")
        _upload(sim, owner, fid=b"b")  # pending cleared by the ack
        assert owner.completed_uploads == [b"a", b"b"]

    def test_threshold_property(self, network, params_k4, rng):
        _, owner, _ = network
        assert owner.threshold == 1
        sim2, owner2, _ = build_protocol_network(params_k4, threshold=3, rng=rng)
        assert owner2.threshold == 3
