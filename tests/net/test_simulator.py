"""Tests for the discrete-event simulator and node dispatch."""

import random

import pytest

from repro.net.channel import Channel
from repro.net.message import Message
from repro.net.node import Node
from repro.net.simulator import Simulator


class Echo(Node):
    """Replies to 'ping' with 'pong'."""

    def __init__(self, name):
        super().__init__(name)
        self.on("ping", lambda m: self.make_message(m.sender, "pong", m.payload))
        self.on("pong", lambda m: None)


class TestSimulator:
    def _pair(self):
        sim = Simulator()
        sim.add_node(Echo("a"))
        sim.add_node(Echo("b"))
        return sim

    def test_request_response(self):
        sim = self._pair()
        sim.send(Message(sender="a", recipient="b", msg_type="ping", payload=b"x"))
        sim.run()
        assert sim.delivered == 2
        assert sim.nodes["a"].received[0].msg_type == "pong"

    def test_virtual_clock_advances_by_latency(self):
        sim = self._pair()
        sim.connect("a", "b", Channel(latency_s=1.5))
        sim.send(Message(sender="a", recipient="b", msg_type="ping", payload=b"x"))
        sim.run()
        assert sim.now == pytest.approx(3.0)  # ping 1.5 + pong 1.5

    def test_fifo_on_equal_time(self):
        sim = Simulator()
        log = []
        sink = Node("sink")
        sink.on("m", lambda m: log.append(m.payload))
        sim.add_node(sink)
        for i in range(5):
            sim.send(Message(sender="x", recipient="sink", msg_type="m", payload=bytes([i])))
        sim.run()
        assert log == [bytes([i]) for i in range(5)]

    def test_unknown_recipient_raises(self):
        sim = self._pair()
        with pytest.raises(KeyError):
            sim.send(Message(sender="a", recipient="ghost", msg_type="ping"))

    def test_unhandled_type_raises(self):
        sim = self._pair()
        sim.send(Message(sender="a", recipient="b", msg_type="mystery"))
        with pytest.raises(KeyError):
            sim.run()

    def test_crashed_node_swallows(self):
        sim = self._pair()
        sim.nodes["b"].crash()
        sim.send(Message(sender="a", recipient="b", msg_type="ping"))
        sim.run()
        assert sim.nodes["a"].received == []
        sim.nodes["b"].recover()
        sim.send(Message(sender="a", recipient="b", msg_type="ping"))
        sim.run()
        assert sim.nodes["a"].received[0].msg_type == "pong"

    def test_dropped_messages_counted(self):
        sim = Simulator()
        sim.add_node(Echo("a"))
        sim.add_node(Echo("b"))
        sim.connect("a", "b", Channel(drop_rate=1.0, rng=random.Random(1)))
        sim.send(Message(sender="a", recipient="b", msg_type="ping"))
        sim.run()
        assert sim.dropped == 1
        assert sim.delivered == 0

    def test_byte_accounting_per_direction(self):
        sim = self._pair()
        sim.connect("a", "b", Channel())
        sim.send(Message(sender="a", recipient="b", msg_type="ping", payload=b"12345"))
        sim.run()
        assert sim.bytes_between("a", "b") == 5
        assert sim.bytes_between("b", "a") == 5  # pong echoes payload

    def test_total_bytes(self):
        sim = self._pair()
        sim.send(Message(sender="a", recipient="b", msg_type="ping", payload=b"123"))
        sim.run()
        assert sim.total_bytes() == 6  # default channel: ping + pong

    def test_default_template_never_accumulates_bytes(self):
        """Traffic lands on per-pair clones, never the clone template."""
        sim = self._pair()
        sim.send(Message(sender="a", recipient="b", msg_type="ping", payload=b"123"))
        sim.run()
        assert sim._default_channel.stats.bytes_total == 0
        assert sim.total_bytes() == sum(
            ch.stats.bytes_total for ch in sim._channels.values()
        )

    def test_derived_channels_have_independent_rngs(self):
        """connect(bidirectional=True) must not share one RNG across links:
        shared state correlates drop decisions on independent links."""
        sim = self._pair()
        forward = Channel(drop_rate=0.5, rng=random.Random(7))
        sim.connect("a", "b", forward)
        reverse = sim.channel("b", "a")
        assert reverse.rng is not forward.rng
        # Deterministic: reconnecting with the same seed derives the same RNG.
        sim2 = self._pair()
        sim2.connect("a", "b", Channel(drop_rate=0.5, rng=random.Random(7)))
        seq = [sim.channel("b", "a").rng.random() for _ in range(8)]
        seq2 = [sim2.channel("b", "a").rng.random() for _ in range(8)]
        assert seq == seq2

    def test_default_clones_have_independent_rngs(self):
        """Each lazily-cloned per-pair channel derives its own RNG."""
        template = Channel(drop_rate=0.5, rng=random.Random(3))
        sim = Simulator(default_channel=template)
        sim.add_node(Echo("a"))
        sim.add_node(Echo("b"))
        sim.add_node(Echo("c"))
        ab = sim.channel("a", "b")
        ac = sim.channel("a", "c")
        assert ab.rng is not ac.rng
        assert ab.rng is not template.rng
        # Independent streams, not one shared sequence.
        assert [ab.rng.random() for _ in range(4)] != [
            ac.rng.random() for _ in range(4)
        ]

    def test_run_until(self):
        sim = self._pair()
        sim.connect("a", "b", Channel(latency_s=10.0))
        sim.send(Message(sender="a", recipient="b", msg_type="ping"))
        sim.run(until=5.0)
        assert sim.delivered == 0
        sim.run()
        assert sim.delivered == 2

    def test_max_events(self):
        sim = self._pair()
        sim.send(Message(sender="a", recipient="b", msg_type="ping"))
        sim.run(max_events=1)
        assert sim.delivered == 1

    def test_duplicate_node_rejected(self):
        sim = self._pair()
        with pytest.raises(ValueError):
            sim.add_node(Echo("a"))

    def test_multi_reply(self):
        sim = Simulator()
        fanout = Node("fan")
        fanout.on(
            "go",
            lambda m: [
                fanout.make_message("sink", "m", b"1"),
                fanout.make_message("sink", "m", b"2"),
            ],
        )
        seen = []
        sink = Node("sink")
        sink.on("m", lambda m: seen.append(m.payload))
        sim.add_node(fanout)
        sim.add_node(sink)
        sim.send(Message(sender="x", recipient="fan", msg_type="go"))
        sim.run()
        assert seen == [b"1", b"2"]
