"""Tests for simulator timers and owner-side retransmission."""

import random

import pytest

from repro.net import build_protocol_network
from repro.net.channel import Channel
from repro.net.message import Message
from repro.net.node import Node
from repro.net.simulator import Simulator


class TestTimers:
    def test_timer_fires_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]
        assert sim.timers_fired == 1

    def test_timers_interleave_with_messages(self):
        sim = Simulator()
        log = []
        sink = Node("sink")
        sink.on("m", lambda m: log.append(("msg", sim.now)))
        sim.add_node(sink)
        sim.connect("x", "sink", Channel(latency_s=2.0))
        sim.schedule(1.0, lambda: log.append(("timer", sim.now)))
        sim.send(Message(sender="x", recipient="sink", msg_type="m"))
        sim.schedule(3.0, lambda: log.append(("timer", sim.now)))
        sim.run()
        assert log == [("timer", 1.0), ("msg", 2.0), ("timer", 3.0)]

    def test_timer_callbacks_may_send_messages(self):
        sim = Simulator()
        sink = Node("sink")
        seen = []
        sink.on("m", lambda m: seen.append(m.payload))
        sim.add_node(sink)
        sim.schedule(
            1.0,
            lambda: Message(sender="t", recipient="sink", msg_type="m", payload=b"late"),
        )
        sim.run()
        assert seen == [b"late"]

    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        timer_id = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel_timer(timer_id)
        sim.run()
        assert fired == []
        assert sim.timers_fired == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_cancel_after_fire_does_not_leak(self):
        """Cancelling an already-fired timer must be a no-op, not a leak."""
        sim = Simulator()
        fired = []
        timer_id = sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]
        sim.cancel_timer(timer_id)
        assert sim._cancelled_timers == set()
        assert sim._pending_timers == set()

    def test_cancelled_timer_not_counted_as_fired(self):
        sim = Simulator()
        kept = sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        sim.cancel_timer(cancelled)
        sim.run()
        assert sim.timers_fired == 1
        assert sim._cancelled_timers == set()
        # Both ids are gone from the pending set once processed.
        assert sim._pending_timers == set()
        assert kept != cancelled

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        timer_id = sim.schedule(1.0, lambda: None)
        sim.cancel_timer(timer_id)
        sim.cancel_timer(timer_id)
        sim.run()
        assert sim.timers_fired == 0
        assert sim._cancelled_timers == set()

    def test_cancel_unknown_timer_id_is_noop(self):
        sim = Simulator()
        sim.cancel_timer(12345)
        assert sim._cancelled_timers == set()

    def test_nodes_get_sim_reference(self):
        sim = Simulator()
        node = sim.add_node(Node("n"))
        assert node.sim is sim


class _DropFirst(Channel):
    """Deterministically drops the first ``n`` messages, then delivers."""

    def __init__(self, n: int):
        super().__init__()
        self.remaining = n

    def should_drop(self) -> bool:
        if self.remaining > 0:
            self.remaining -= 1
            return True
        return False


class TestRetransmission:
    def _lossy_network(self, params_k4, drop_rate, seed=123):
        rng = random.Random(seed)
        channel_rng = random.Random(seed + 1)
        sim, owner, verifier = build_protocol_network(
            params_k4,
            rng=rng,
            owner_sem_channel=Channel(drop_rate=drop_rate, rng=channel_rng),
            retry_timeout_s=1.0,
            max_retries=10,
        )
        return sim, owner, verifier

    def test_upload_survives_dropped_requests(self, params_k4, rng):
        sim, owner, _ = build_protocol_network(
            params_k4, rng=rng, retry_timeout_s=1.0, max_retries=10
        )
        sim.connect("owner", "sem-0", _DropFirst(2), bidirectional=False)
        for message in owner.start_upload(b"lossy network data " * 5, b"f"):
            sim.send(message)
        sim.run()
        assert owner.completed_uploads == [b"f"]
        assert sim.dropped == 2  # first two requests lost; retries healed them
        assert sim.timers_fired >= 2

    def test_no_retries_without_timeout_configured(self, params_k4, rng):
        sim, owner, _ = build_protocol_network(
            params_k4,
            rng=rng,
            owner_sem_channel=Channel(drop_rate=1.0, rng=random.Random(1)),
        )
        for message in owner.start_upload(b"data", b"f"):
            sim.send(message)
        sim.run()
        assert owner.completed_uploads == []  # stalled: everything dropped

    def test_retries_bounded(self, params_k4):
        sim, owner, _ = self._lossy_network(params_k4, drop_rate=1.0)
        for message in owner.start_upload(b"data", b"f"):
            sim.send(message)
        sim.run()
        assert owner.completed_uploads == []
        assert owner._pending.retries == 10  # gave up at max_retries

    def test_duplicate_sign_responses_harmless(self, params_k4, rng):
        """Retransmitted requests can yield duplicate responses; the owner
        must stay idempotent."""
        sim, owner, _ = build_protocol_network(params_k4, rng=rng, retry_timeout_s=0.5)
        messages = owner.start_upload(b"dup test data " * 3, b"f")
        for message in messages:
            sim.send(message)
            sim.send(message)  # duplicate the request wholesale
        sim.run()
        assert owner.completed_uploads == [b"f"]
        assert sim.nodes["cloud"].server.has_file(b"f")

    def test_upload_retransmitted_when_ack_lost(self, params_k4, rng):
        sim, owner, _ = build_protocol_network(params_k4, rng=rng, retry_timeout_s=1.0)
        # Cloud -> owner acks always dropped; owner -> cloud uploads fine.
        sim.connect("cloud", "owner", Channel(drop_rate=1.0, rng=random.Random(2)),
                    bidirectional=False)
        for message in owner.start_upload(b"ack loss " * 3, b"f"):
            sim.send(message)
        sim.run()
        # The file made it even though the owner never saw an ack.
        assert sim.nodes["cloud"].server.has_file(b"f")
        assert owner.completed_uploads == []
        # And the retransmissions stopped at the bound.
        assert owner._pending.retries == owner.max_retries
