"""Deterministic service metrics: reservoirs, histograms, label export."""

import pytest

from repro.pairing.interface import OperationCounter
from repro.service.metrics import Histogram, LatencyReservoir, ServiceMetrics


class TestLatencyReservoir:
    def test_exact_percentiles_under_capacity(self):
        r = LatencyReservoir(capacity=100)
        for v in range(1, 11):
            r.record(float(v))
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 10.0
        assert r.percentile(50) == pytest.approx(5.5)
        assert r.mean == pytest.approx(5.5)

    def test_empty_reservoir(self):
        r = LatencyReservoir()
        assert r.percentile(99) == 0.0
        assert r.mean == 0.0

    def test_bounded_memory_over_capacity(self):
        r = LatencyReservoir(capacity=16)
        for v in range(1000):
            r.record(float(v))
        assert len(r._samples) <= 16
        assert r.count == 1000

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for v in (1, 2, 3, 64, 100):
            h.record(v)
        snap = h.snapshot()
        assert snap["[1,1]"] == 1
        assert snap["[2,3]"] == 2
        assert snap["[64,127]"] == 2
        assert h.mean == pytest.approx(34.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram().record(-1)


class TestServiceMetrics:
    def test_lifecycle_counters(self):
        m = ServiceMetrics()
        m.on_enqueue(1)
        m.on_enqueue(2)
        m.on_batch(2, 0)
        m.on_complete(4, 0.01, 0.05)
        m.on_complete(4, 0.02, 0.06)
        s = m.summary()
        assert s["submitted"] == 2
        assert s["completed"] == 2
        assert s["signatures_produced"] == 8
        assert s["batches"] == 1
        assert s["queue_high_watermark"] == 2
        assert s["latency_p99_s"] > 0

    def test_to_labels_flattens_scalars(self):
        m = ServiceMetrics()
        m.on_enqueue(1)
        m.on_batch(1, 0)
        m.on_complete(2, 0.5, 1.5)
        counter = OperationCounter()
        m.to_labels(counter)
        assert counter.labels["service.submitted"] == 1
        assert counter.labels["service.latency_p50_s"] == 1_500_000  # µs-scaled
        assert "service.batch_size_hist" not in counter.labels
