"""Deterministic service metrics: reservoirs, histograms, label export."""

import pytest

from repro.pairing.interface import OperationCounter
from repro.service.metrics import Histogram, LatencyReservoir, ServiceMetrics


class TestLatencyReservoir:
    def test_exact_percentiles_under_capacity(self):
        r = LatencyReservoir(capacity=100)
        for v in range(1, 11):
            r.record(float(v))
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 10.0
        assert r.percentile(50) == pytest.approx(5.5)
        assert r.mean == pytest.approx(5.5)

    def test_empty_reservoir(self):
        r = LatencyReservoir()
        assert r.percentile(99) == 0.0
        assert r.mean == 0.0

    def test_bounded_memory_over_capacity(self):
        r = LatencyReservoir(capacity=16)
        for v in range(1000):
            r.record(float(v))
        assert len(r._samples) <= 16
        assert r.count == 1000

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)

    def test_retained_set_is_evenly_spaced(self):
        # Systematic sampling keeps stream indices 0, s, 2s, ... — never a
        # clustered band of replacement slots.
        r = LatencyReservoir(capacity=8)
        for v in range(100):
            r.record(float(v))
        gaps = {b - a for a, b in zip(r._samples, r._samples[1:])}
        assert len(gaps) == 1  # uniform spacing

    def test_percentiles_unbiased_on_trending_100k_stream(self):
        # The old count%capacity overwrite clustered replacements into a
        # narrow index band, skewing percentiles on monotone streams.  On
        # 0..99999 every percentile of an evenly spaced subsample must sit
        # within one stride of the true value.
        n = 100_000
        r = LatencyReservoir(capacity=4096)
        for v in range(n):
            r.record(float(v))
        tolerance = r._stride + 1
        for q in (1, 10, 25, 50, 75, 90, 99):
            true = (q / 100.0) * (n - 1)
            assert r.percentile(q) == pytest.approx(true, abs=tolerance)
        assert r.mean == pytest.approx((n - 1) / 2.0)

    def test_percentiles_on_shifted_distribution_tail(self):
        # A latency regression halfway through the stream must show up in
        # p99 — the retained subsample covers early and late halves alike.
        r = LatencyReservoir(capacity=1024)
        for _ in range(50_000):
            r.record(0.010)
        for _ in range(50_000):
            r.record(0.100)
        assert r.percentile(50) == pytest.approx(0.010, abs=0.091)
        assert r.percentile(99) == pytest.approx(0.100)
        assert r.percentile(25) == pytest.approx(0.010)
        assert r.percentile(75) == pytest.approx(0.100)


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram()
        for v in (1, 2, 3, 64, 100):
            h.record(v)
        snap = h.snapshot()
        assert snap["[1,1]"] == 1
        assert snap["[2,3]"] == 2
        assert snap["[64,127]"] == 2
        assert h.mean == pytest.approx(34.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram().record(-1)


class TestServiceMetrics:
    def test_lifecycle_counters(self):
        m = ServiceMetrics()
        m.on_enqueue(1)
        m.on_enqueue(2)
        m.on_batch(2, 0)
        m.on_complete(4, 0.01, 0.05)
        m.on_complete(4, 0.02, 0.06)
        s = m.summary()
        assert s["submitted"] == 2
        assert s["completed"] == 2
        assert s["signatures_produced"] == 8
        assert s["batches"] == 1
        assert s["queue_high_watermark"] == 2
        assert s["latency_p99_s"] > 0

    def test_to_labels_flattens_scalars(self):
        m = ServiceMetrics()
        m.on_enqueue(1)
        m.on_batch(1, 0)
        m.on_complete(2, 0.5, 1.5)
        counter = OperationCounter()
        m.to_labels(counter)
        assert counter.labels["service.submitted"] == 1
        assert counter.labels["service.latency_p50_s"] == 1_500_000  # µs-scaled
        assert "service.batch_size_hist" not in counter.labels

    def test_to_labels_round_trips_every_scalar(self):
        # Every scalar in summary() must be recoverable from the exported
        # labels: ints verbatim, floats µs-scaled (so undo the scaling).
        m = ServiceMetrics()
        for depth in range(1, 6):
            m.on_enqueue(depth)
        m.on_batch(5, 0)
        m.on_complete(10, 0.25, 0.125)
        m.retries = 3
        m.failovers = 1
        counter = OperationCounter()
        m.to_labels(counter)
        for key, value in m.summary().items():
            if isinstance(value, dict):
                assert f"service.{key}" not in counter.labels
                continue
            exported = counter.labels[f"service.{key}"]
            if isinstance(value, float):
                assert exported / 1_000_000 == pytest.approx(value, abs=1e-6)
            else:
                assert exported == value
