"""Bounded-queue backpressure policies."""

import pytest

from repro.service.queues import BoundedQueue, QueueFullError


class TestBasics:
    def test_fifo_order(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.put(i)
        assert q.take(10) == [0, 1, 2]
        assert q.depth == 0

    def test_take_respects_max_items(self):
        q = BoundedQueue(8)
        for i in range(5):
            q.put(i)
        assert q.take(2) == [0, 1]
        assert q.depth == 3

    def test_peek_does_not_remove(self):
        q = BoundedQueue(2)
        q.put("a")
        assert q.peek_oldest() == "a"
        assert q.depth == 1
        assert BoundedQueue(1).peek_oldest() is None

    def test_high_watermark(self):
        q = BoundedQueue(8)
        for i in range(5):
            q.put(i)
        q.take(5)
        q.put(9)
        assert q.high_watermark == 5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)
        with pytest.raises(ValueError):
            BoundedQueue(4, policy="banana")
        with pytest.raises(ValueError):
            BoundedQueue(4).take(0)


class TestPolicies:
    def test_reject_raises_when_full(self):
        q = BoundedQueue(2, policy="reject")
        q.put(1)
        q.put(2)
        with pytest.raises(QueueFullError):
            q.put(3)
        assert q.rejected == 1
        assert q.take(10) == [1, 2]  # existing entries untouched

    def test_drop_oldest_returns_evicted(self):
        q = BoundedQueue(2, policy="drop-oldest")
        q.put(1)
        q.put(2)
        evicted = q.put(3)
        assert evicted == 1
        assert q.evicted == 1
        assert q.take(10) == [2, 3]

    def test_put_returns_none_when_not_full(self):
        q = BoundedQueue(2, policy="drop-oldest")
        assert q.put(1) is None

    def test_block_times_out_when_nothing_drains(self):
        q = BoundedQueue(1, policy="block")
        q.put(1)
        with pytest.raises(QueueFullError):
            q.put(2, timeout_s=0.01)

    def test_block_admits_after_drain(self):
        import threading

        q = BoundedQueue(1, policy="block")
        q.put(1)
        threading.Timer(0.02, lambda: q.take(1)).start()
        q.put(2, timeout_s=2.0)
        assert q.take(1) == [2]
