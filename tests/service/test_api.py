"""Admission-time contract checks on SignRequest/SignResponse."""

from dataclasses import replace

import pytest

from repro.crypto.blind_bls import blind
from repro.core.blocks import aggregate_block
from repro.service.api import (
    RequestValidationError,
    ResponseStatus,
    SignRequest,
    SignResponse,
    next_request_id,
)


class TestSignRequestValidation:
    def test_valid_blocks_request(self, params_k4, make_request):
        request = make_request(b"a")
        request.validate(params_k4)  # does not raise
        assert request.kind == "blocks"
        assert request.n_items == 2

    def test_valid_blinded_request(self, group, params_k4, make_request, rng):
        source = make_request(b"b")
        blinded = tuple(
            blind(group, aggregate_block(params_k4, b), rng).blinded
            for b in source.blocks
        )
        request = SignRequest(
            request_id=next_request_id(), owner="alice", blinded=blinded
        )
        request.validate(params_k4)
        assert request.kind == "blinded"

    def test_neither_blocks_nor_blinded(self, params_k4):
        request = SignRequest(request_id=next_request_id(), owner="alice")
        with pytest.raises(RequestValidationError):
            request.validate(params_k4)

    def test_both_blocks_and_blinded(self, group, params_k4, make_request, rng):
        source = make_request(b"c")
        blinded = (blind(group, aggregate_block(params_k4, source.blocks[0]), rng).blinded,)
        request = replace(source, blinded=blinded)
        with pytest.raises(RequestValidationError):
            request.validate(params_k4)

    def test_empty_owner(self, params_k4, make_request):
        request = replace(make_request(b"d"), owner="")
        with pytest.raises(RequestValidationError, match="owner"):
            request.validate(params_k4)

    def test_wrong_block_width(self, params_k4, make_request):
        source = make_request(b"e")
        short = replace(source.blocks[0], elements=source.blocks[0].elements[:-1])
        request = replace(source, blocks=(short,))
        with pytest.raises(RequestValidationError, match="elements"):
            request.validate(params_k4)

    def test_element_outside_zp(self, params_k4, make_request):
        source = make_request(b"f")
        bad = replace(source.blocks[0], elements=(params_k4.order,) * params_k4.k)
        request = replace(source, blocks=(bad,))
        with pytest.raises(RequestValidationError, match="Z_p"):
            request.validate(params_k4)

    def test_not_a_block(self, params_k4):
        request = SignRequest(
            request_id=next_request_id(), owner="alice", blocks=(object(),)
        )
        with pytest.raises(RequestValidationError, match="not a Block"):
            request.validate(params_k4)

    def test_blinded_must_live_in_g1(self, group, params_k4):
        request = SignRequest(
            request_id=next_request_id(), owner="alice", blinded=(group.g2(),)
        )
        with pytest.raises(RequestValidationError, match="G1"):
            request.validate(params_k4)


class TestSignResponse:
    def test_ok_property(self):
        ok = SignResponse(request_id=1, status=ResponseStatus.OK)
        bad = SignResponse(request_id=2, status=ResponseStatus.FAILED)
        assert ok.ok and not bad.ok

    def test_request_ids_are_unique(self):
        assert next_request_id() != next_request_id()
