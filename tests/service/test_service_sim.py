"""The service under the discrete-event simulator, faults included.

The headline test is the paper's Section V claim run end-to-end: a
signing round completes while t − 1 of the w = 2t − 1 mediators are
crashed, under injected channel latency — and the final signatures verify
under the organizational master key.
"""

import random

import pytest

from repro.core.blocks import aggregate_block, encode_data
from repro.net.channel import Channel
from repro.service import BatchConfig, FailoverConfig, build_service_network


def verify_response(params, org_pk, data, file_id, response):
    group = params.group
    blocks = encode_data(data, params, file_id)
    assert len(response.signatures) == len(blocks)
    for block, signature in zip(blocks, response.signatures):
        lhs = group.pair(signature, group.g2())
        rhs = group.pair(aggregate_block(params, block), org_pk)
        assert lhs == rhs


class TestSingleSEM:
    def test_round_trip_with_batching(self, params_k4):
        rng = random.Random(21)
        sim, service, clients = build_service_network(
            params_k4,
            n_clients=3,
            rng=rng,
            batch_config=BatchConfig(max_batch=8, max_wait_s=0.02),
            client_service_channel=Channel(latency_s=0.002),
            service_sem_channel=Channel(latency_s=0.002),
        )
        payloads = {}
        for i, client in enumerate(clients):
            data = bytes([i + 1]) * 40
            file_id = b"file-%d" % i
            payloads[client.name] = (data, file_id)
            sim.send(client.request_for_data(data, file_id))
        sim.run()
        org_pk = service._pipeline.org_pk
        for client in clients:
            assert client.failed == []
            (request_id,) = client.completed
            data, file_id = payloads[client.name]
            verify_response(params_k4, org_pk, data, file_id, client.responses[request_id])
        summary = service.metrics.summary()
        assert summary["completed"] == 3
        assert summary["batches"] == 1  # coalesced into one pass
        assert all(r.batch_size == 3 for c in clients for r in c.responses.values())

    def test_size_trigger_flushes_before_timer(self, params_k4):
        rng = random.Random(22)
        sim, service, clients = build_service_network(
            params_k4,
            n_clients=2,
            rng=rng,
            batch_config=BatchConfig(max_batch=2, max_wait_s=10.0),
        )
        for i, client in enumerate(clients):
            sim.send(client.request_for_data(bytes([i + 1]) * 30, b"f%d" % i))
        sim.run()
        assert all(c.completed for c in clients)
        # Responses arrived immediately: nobody waited for the age trigger.
        assert all(latency < 1.0 for c in clients for latency in c.latencies)

    def test_latency_metrics_measured_in_virtual_time(self, params_k4):
        rng = random.Random(23)
        sim, service, clients = build_service_network(
            params_k4,
            n_clients=1,
            rng=rng,
            batch_config=BatchConfig(max_batch=4, max_wait_s=0.05),
            client_service_channel=Channel(latency_s=0.01),
        )
        sim.send(clients[0].request_for_data(b"x" * 30, b"f"))
        sim.run()
        # One-way client->service latency is visible in the client's RTT.
        assert clients[0].latencies[0] >= 0.02
        assert service.metrics.summary()["queue_wait_p50_s"] >= 0.05


class TestThresholdFailover:
    def test_signs_with_t_minus_1_of_w_sems_crashed(self, params_k4):
        """Acceptance: t = 3, w = 5, two SEMs crashed + injected latency."""
        rng = random.Random(31)
        t = 3
        sim, service, clients = build_service_network(
            params_k4,
            threshold=t,
            n_clients=3,
            rng=rng,
            batch_config=BatchConfig(max_batch=8, max_wait_s=0.02),
            failover_config=FailoverConfig(timeout_s=0.5, max_attempts=2),
            client_service_channel=Channel(latency_s=0.004),
            service_sem_channel=Channel(latency_s=0.004),
        )
        for j in range(t - 1):  # crash the maximum tolerable number
            sim.nodes[f"sem-{j}"].crash()
        payloads = {}
        for i, client in enumerate(clients):
            data = bytes([0x40 + i]) * 50
            file_id = b"tf-%d" % i
            payloads[client.name] = (data, file_id)
            sim.send(client.request_for_data(data, file_id))
        sim.run()
        org_pk = service._pipeline.org_pk
        for client in clients:
            assert client.failed == []
            (request_id,) = client.completed
            data, file_id = payloads[client.name]
            verify_response(params_k4, org_pk, data, file_id, client.responses[request_id])

    def test_slow_sem_triggers_retry_and_late_shares_count(self, params_k4):
        rng = random.Random(32)
        sim, service, clients = build_service_network(
            params_k4,
            threshold=2,
            n_clients=2,
            rng=rng,
            batch_config=BatchConfig(max_batch=4, max_wait_s=0.02),
            failover_config=FailoverConfig(timeout_s=0.5, max_attempts=3),
            service_sem_channel=Channel(latency_s=0.005),
        )
        sim.nodes["sem-0"].crash()
        sim.nodes["sem-1"].service_delay_s = 0.6  # first attempt times out
        for i, client in enumerate(clients):
            sim.send(client.request_for_data(bytes([i + 1]) * 30, b"s%d" % i))
        sim.run()
        assert all(c.completed and not c.failed for c in clients)
        summary = service.metrics.summary()
        assert summary["retries"] >= 1
        assert summary["failovers"] >= 1

    def test_byzantine_sem_is_detected_and_survived(self, params_k4):
        rng = random.Random(33)
        sim, service, clients = build_service_network(
            params_k4,
            threshold=2,
            n_clients=1,
            rng=rng,
            batch_config=BatchConfig(max_batch=2, max_wait_s=0.01),
        )
        sim.nodes["sem-0"].fail_mode = "byzantine"
        data, file_id = b"b" * 30, b"byz"
        sim.send(clients[0].request_for_data(data, file_id))
        sim.run()
        (request_id,) = clients[0].completed
        verify_response(
            params_k4,
            service._pipeline.org_pk,
            data,
            file_id,
            clients[0].responses[request_id],
        )

    def test_beyond_tolerance_fails_every_request_loudly(self, params_k4):
        rng = random.Random(34)
        sim, service, clients = build_service_network(
            params_k4,
            threshold=2,
            n_clients=2,
            rng=rng,
            batch_config=BatchConfig(max_batch=4, max_wait_s=0.01),
            failover_config=FailoverConfig(timeout_s=0.2, max_attempts=1),
        )
        sim.nodes["sem-0"].crash()
        sim.nodes["sem-1"].crash()  # t = 2 crashed > t-1 tolerance
        for i, client in enumerate(clients):
            sim.send(client.request_for_data(bytes([i + 1]) * 30, b"x%d" % i))
        sim.run()
        for client in clients:
            assert client.completed == []
            (request_id,) = client.failed
            assert "required" in client.responses[request_id].error

    def test_overload_bounces_requests_under_flood(self, params_k4):
        rng = random.Random(35)
        sim, service, clients = build_service_network(
            params_k4,
            n_clients=1,
            rng=rng,
            batch_config=BatchConfig(max_batch=8, max_wait_s=0.5, queue_capacity=3),
        )
        client = clients[0]
        for n in range(6):
            sim.send(client.request_for_data(bytes([n + 1]) * 30, b"o%d" % n))
        sim.run()
        statuses = sorted(r.status.value for r in client.responses.values())
        assert statuses.count("overloaded") == 3  # capacity 3, six arrivals
        assert statuses.count("ok") == 3
        assert service.metrics.summary()["overloaded"] >= 1
