"""Admission, coalescing triggers, and failure mapping of the batch service."""

from dataclasses import replace

import pytest

from repro.service.api import ResponseStatus, SignRequest, next_request_id
from repro.service.batcher import BatchConfig, BatchingSEMService
from repro.service.pipeline import SigningPipeline


@pytest.fixture()
def clock():
    state = {"now": 0.0}

    def read():
        return state["now"]

    read.advance = lambda dt: state.__setitem__("now", state["now"] + dt)
    return read


@pytest.fixture()
def service(params_k4, sem, rng, clock):
    pipeline = SigningPipeline(params_k4, sem, sem.pk, org_pk_g1=sem.pk_g1, rng=rng)
    return BatchingSEMService(
        params_k4,
        pipeline,
        config=BatchConfig(max_batch=4, max_wait_s=0.05, queue_capacity=6),
        clock=clock,
    )


class TestAdmission:
    def test_invalid_request_rejected_at_the_door(self, service):
        bad = SignRequest(request_id=next_request_id(), owner="alice")
        response = service.submit(bad)
        assert response.status is ResponseStatus.REJECTED
        assert service.queue.depth == 0
        assert service.metrics.rejected == 1

    def test_membership_gate(self, params_k4, sem, rng, clock, make_request):
        pipeline = SigningPipeline(params_k4, sem, sem.pk, org_pk_g1=sem.pk_g1, rng=rng)
        service = BatchingSEMService(
            params_k4, pipeline, membership=lambda credential: False, clock=clock
        )
        response = service.submit(make_request(b"m"))
        assert response.status is ResponseStatus.REJECTED
        assert "member" in response.error

    def test_queued_request_returns_none(self, service, make_request):
        assert service.submit(make_request(b"q")) is None
        assert service.queue.depth == 1

    def test_overload_bounces_with_reject_policy(self, service, make_request):
        for i in range(6):
            assert service.submit(make_request(bytes([i + 1]))) is None
        bounced = service.submit(make_request(b"x"))
        assert bounced.status is ResponseStatus.OVERLOADED
        assert service.metrics.overloaded == 1

    def test_drop_oldest_fails_evicted_request_loudly(
        self, params_k4, sem, rng, clock, make_request
    ):
        pipeline = SigningPipeline(params_k4, sem, sem.pk, org_pk_g1=sem.pk_g1, rng=rng)
        service = BatchingSEMService(
            params_k4,
            pipeline,
            config=BatchConfig(max_batch=4, queue_capacity=2, queue_policy="drop-oldest"),
            clock=clock,
        )
        outcomes = {}
        first = make_request(b"1")
        service.submit(first, on_complete=lambda r: outcomes.__setitem__(r.request_id, r))
        service.submit(make_request(b"2"))
        service.submit(make_request(b"3"))  # evicts the first
        assert outcomes[first.request_id].status is ResponseStatus.OVERLOADED
        assert service.queue.depth == 2


class TestCoalescing:
    def test_size_trigger(self, service, make_request):
        for i in range(3):
            service.submit(make_request(bytes([i + 1])))
        assert not service.batch_ready()
        service.submit(make_request(b"z"))
        assert service.batch_ready()

    def test_age_trigger(self, service, clock, make_request):
        service.submit(make_request(b"a"))
        assert not service.batch_ready()
        clock.advance(0.06)
        assert service.batch_ready()

    def test_flush_without_force_respects_triggers(self, service, make_request):
        service.submit(make_request(b"a"))
        assert service.flush(force=False) == []
        assert service.queue.depth == 1

    def test_flush_takes_at_most_max_batch(self, service, make_request):
        for i in range(6):
            service.submit(make_request(bytes([i + 1])))
        responses = service.flush()
        assert len(responses) == 4
        assert service.queue.depth == 2
        assert all(r.batch_size == 4 for r in responses)

    def test_drain_empties_queue(self, service, make_request):
        for i in range(6):
            service.submit(make_request(bytes([i + 1])))
        responses = service.drain()
        assert len(responses) == 6
        assert all(r.ok for r in responses)
        assert service.queue.depth == 0

    def test_queue_wait_measured_with_clock(self, service, clock, make_request):
        service.submit(make_request(b"w"))
        clock.advance(0.25)
        (response,) = service.flush()
        assert response.queue_wait_s == pytest.approx(0.25)

    def test_flush_on_empty_queue(self, service):
        assert service.flush() == []


class TestFailureMapping:
    def test_crashed_sem_fails_whole_batch(self, service, sem, make_request):
        outcomes = []
        for i in range(2):
            service.submit(make_request(bytes([i + 1])), on_complete=outcomes.append)
        sem.fail_mode = "crash"
        responses = service.flush()
        assert [r.status for r in responses] == [ResponseStatus.FAILED] * 2
        assert [r.status for r in outcomes] == [ResponseStatus.FAILED] * 2
        assert "down" in responses[0].error
        assert service.metrics.failed == 2

    def test_mixed_batch_with_per_request_failure(self, service, sem, make_request):
        # A request whose block widths are valid but whose signature check
        # fails is isolated by the pipeline; the batcher maps it to FAILED
        # while its batchmates succeed.
        good = make_request(b"g")
        service.submit(good)
        victim = make_request(b"v")
        service.submit(victim)
        original = sem.sign_blinded_batch

        def corrupt_last(blinded, credential=None):
            signatures = original(blinded, credential)
            signatures[-1] = signatures[-1] * sem.group.g1()
            return signatures

        sem.sign_blinded_batch = corrupt_last
        responses = {r.request_id: r for r in service.flush()}
        assert responses[good.request_id].ok
        assert responses[victim.request_id].status is ResponseStatus.FAILED
