"""The vectorized signing pass: correctness, isolation, parity of paths."""

import pytest

from repro.core.blocks import aggregate_block
from repro.crypto.blind_bls import blind, verify_blinded
from repro.service.api import SignRequest, next_request_id
from repro.service.pipeline import PipelineError, SigningPipeline


@pytest.fixture()
def pipeline(params_k4, sem, rng):
    return SigningPipeline(params_k4, sem, sem.pk, org_pk_g1=sem.pk_g1, rng=rng)


def assert_final_signatures(params, org_pk, request, signatures):
    """Every σ_i must satisfy e(σ_i, g2) == e(H(id)·∏u^m, pk) (Eq. 6)."""
    group = params.group
    for block, signature in zip(request.blocks, signatures):
        lhs = group.pair(signature, group.g2())
        rhs = group.pair(aggregate_block(params, block), org_pk)
        assert lhs == rhs


class TestBatchPass:
    def test_blocks_requests_get_final_signatures(self, params_k4, sem, pipeline, make_request):
        requests = [make_request(bytes([i]), n_blocks=2) for i in range(1, 4)]
        results = pipeline.sign_batch(requests)
        assert all(r.ok for r in results)
        for request, result in zip(requests, results):
            assert result.request_id == request.request_id
            assert len(result.signatures) == request.n_items
            assert_final_signatures(params_k4, sem.pk, request, result.signatures)

    def test_one_transport_round_trip_per_batch(self, sem, pipeline, make_request):
        before = len(sem.transcript)
        pipeline.sign_batch([make_request(bytes([i]), n_blocks=3) for i in range(4)])
        # 12 signatures but every blinded element in one transcript pass.
        assert len(sem.transcript) == before + 12

    def test_blinded_requests_return_blind_signatures(
        self, group, params_k4, sem, pipeline, make_request, rng
    ):
        source = make_request(b"p", n_blocks=2)
        states = [
            blind(group, aggregate_block(params_k4, b), rng) for b in source.blocks
        ]
        request = SignRequest(
            request_id=next_request_id(),
            owner="alice",
            blinded=tuple(s.blinded for s in states),
        )
        (result,) = pipeline.sign_batch([request])
        assert result.ok
        for state, blind_signature in zip(states, result.signatures):
            assert verify_blinded(group, state.blinded, blind_signature, sem.pk)

    def test_empty_batch(self, pipeline):
        assert pipeline.sign_batch([]) == []

    def test_no_fixed_base_matches(self, params_k4, sem, rng, make_request):
        plain = SigningPipeline(
            params_k4, sem, sem.pk, org_pk_g1=sem.pk_g1, use_fixed_base=False, rng=rng
        )
        request = make_request(b"q", n_blocks=2)
        (result,) = plain.sign_batch([request])
        assert result.ok
        assert_final_signatures(params_k4, sem.pk, request, result.signatures)


class TestFaultIsolation:
    def test_bad_signature_fails_only_its_request(self, params_k4, sem, rng, make_request):
        class CorruptingTransport:
            """Corrupt exactly the first signature of the batch."""

            def __init__(self, sem, group):
                self.sem = sem
                self.group = group

            def sign_blinded_batch(self, blinded, credential=None):
                signatures = self.sem.sign_blinded_batch(blinded, credential)
                signatures[0] = signatures[0] * self.group.g1()
                return signatures

        pipeline = SigningPipeline(
            params_k4,
            CorruptingTransport(sem, params_k4.group),
            sem.pk,
            org_pk_g1=sem.pk_g1,
            rng=rng,
        )
        victim = make_request(b"v", n_blocks=2)
        bystander = make_request(b"w", n_blocks=2)
        bad, good = pipeline.sign_batch([victim, bystander])
        assert not bad.ok and "verification" in bad.error
        assert good.ok
        assert_final_signatures(params_k4, sem.pk, bystander, good.signatures)

    def test_byzantine_sem_fails_whole_batch_loudly(self, params_k4, sem, pipeline, make_request):
        sem.fail_mode = "byzantine"
        results = pipeline.sign_batch([make_request(b"z", n_blocks=2)])
        assert not results[0].ok

    def test_length_mismatch_is_a_pipeline_error(self, pipeline, make_request):
        prepared = pipeline.prepare_batch([make_request(b"m", n_blocks=2)])
        with pytest.raises(PipelineError, match="1 signatures"):
            pipeline.finish_batch(prepared, prepared.blinded[:1])


class TestSequentialBaseline:
    def test_matches_batch_semantics(self, params_k4, sem, pipeline, make_request):
        request = make_request(b"s", n_blocks=3)
        result = pipeline.sign_sequential(request)
        assert result.ok
        assert_final_signatures(params_k4, sem.pk, request, result.signatures)

    def test_detects_byzantine_sem(self, sem, pipeline, make_request):
        sem.fail_mode = "byzantine"
        result = pipeline.sign_sequential(make_request(b"t", n_blocks=1))
        assert not result.ok and "Eq. 4" in result.error


class TestConstruction:
    def test_asymmetric_needs_org_pk_g1(self, params_k4, sem, monkeypatch):
        monkeypatch.setattr(params_k4.group, "is_symmetric", False)
        with pytest.raises(ValueError, match="org_pk_g1"):
            SigningPipeline(params_k4, sem, sem.pk)
