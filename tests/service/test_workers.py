"""Worker pools must agree with the reference aggregation exactly."""

import pytest

from repro.core.blocks import aggregate_block
from repro.ec.fixed_base import build_tables
from repro.service.workers import (
    InlineWorkerPool,
    ProcessWorkerPool,
    make_worker_pool,
)


@pytest.fixture()
def blocks(make_request):
    return list(make_request(b"w", n_blocks=4).blocks)


class TestInline:
    def test_matches_reference(self, params_k4, blocks):
        pool = InlineWorkerPool(params_k4)
        expected = [aggregate_block(params_k4, b) for b in blocks]
        assert pool.aggregate_blocks(blocks) == expected

    def test_with_tables_matches_reference(self, params_k4, blocks):
        tables = build_tables(list(params_k4.u), params_k4.order.bit_length())
        pool = InlineWorkerPool(params_k4, tables=tables)
        expected = [aggregate_block(params_k4, b) for b in blocks]
        assert pool.aggregate_blocks(blocks) == expected

    def test_context_manager(self, params_k4):
        with InlineWorkerPool(params_k4) as pool:
            assert pool.aggregate_blocks([]) == []


class TestFactory:
    def test_default_is_inline(self, params_k4):
        assert isinstance(make_worker_pool(params_k4), InlineWorkerPool)

    def test_rejects_groups_without_serialization(self, params_k4):
        class Opaque:
            pass

        fake = type(params_k4)(
            group=Opaque(), k=params_k4.k, u=params_k4.u, seed=params_k4.seed
        )
        with pytest.raises(TypeError):
            ProcessWorkerPool(fake)
        # ... but the factory degrades gracefully.
        assert isinstance(
            make_worker_pool(fake, prefer_processes=True), InlineWorkerPool
        )


@pytest.mark.slow
class TestProcessPool:
    def test_matches_reference(self, params_k4, blocks):
        try:
            pool = ProcessWorkerPool(params_k4, n_workers=2, chunk_blocks=2)
        except Exception as exc:  # restricted environments lack spawn
            pytest.skip(f"cannot start process pool: {exc}")
        with pool:
            expected = [aggregate_block(params_k4, b) for b in blocks]
            assert pool.aggregate_blocks(blocks) == expected
