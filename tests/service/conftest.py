"""Service-layer fixtures: a permissive SEM and ready-made requests."""

from __future__ import annotations

import pytest

from repro.core.blocks import encode_data
from repro.core.sem import SecurityMediator
from repro.service.api import SignRequest, next_request_id


@pytest.fixture()
def sem(group, rng):
    """A single SEM signing for anyone (membership enforced elsewhere)."""
    return SecurityMediator(group, rng=rng, require_membership=False)


@pytest.fixture()
def make_request(params_k4):
    """Factory for valid blocks-kind requests of ``n_blocks`` blocks."""

    def _make(tag: bytes = b"x", n_blocks: int = 2, owner: str = "alice"):
        data = bytes(n_blocks * params_k4.k * ((params_k4.order.bit_length() - 1) // 8))
        data = bytes((i + tag[0]) % 251 for i in range(len(data)))
        blocks = tuple(encode_data(data, params_k4, b"file-" + tag))
        assert len(blocks) >= n_blocks
        return SignRequest(
            request_id=next_request_id(), owner=owner, blocks=blocks[:n_blocks]
        )

    return _make
