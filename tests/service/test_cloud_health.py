"""Cloud quarantine state machine: the SEM scoreboard pattern, by name.

Mirrors ``TestHealthScoreboard`` in ``test_failover.py`` — trip,
half-open probe, recovery — plus the one deliberate divergence: a cloud
server's *timeout* joins the breaker streak (an unreachable storage
server is indistinguishable from one that lost the data), where a SEM
timeout never quarantines.
"""

from repro.service.cloud_health import CloudScoreboard

NAMES = ("cloud-a", "cloud-b", "cloud-c", "cloud-d")


def _board(threshold=1, rounds=2, names=NAMES):
    return CloudScoreboard(names, threshold=threshold, quarantine_rounds=rounds)


class TestTrip:
    def test_invalid_streak_trips_the_breaker(self):
        board = _board(threshold=2)
        board.begin_round()
        board.record_invalid_name("cloud-b")
        assert not board.is_quarantined_name("cloud-b")  # streak 1 < threshold
        board.record_invalid_name("cloud-b")
        assert board.is_quarantined_name("cloud-b")
        assert board.trips == 1

    def test_timeout_trips_like_invalid(self):
        """The divergence from the SEM scoreboard: timeouts quarantine."""
        board = _board(threshold=2)
        board.begin_round()
        board.record_timeout_name("cloud-c")
        assert not board.is_quarantined_name("cloud-c")
        board.record_timeout_name("cloud-c")
        assert board.is_quarantined_name("cloud-c")
        assert board.trips == 1
        assert board.records[board.index_of["cloud-c"]].timeouts == 2

    def test_mixed_timeout_and_invalid_share_one_streak(self):
        board = _board(threshold=2)
        board.begin_round()
        board.record_timeout_name("cloud-a")
        board.record_invalid_name("cloud-a")
        assert board.is_quarantined_name("cloud-a")

    def test_trip_observers_fire_with_index_round_streak(self):
        fired = []
        board = _board()
        board.on_trip.append(lambda i, r, s: fired.append((i, r, s)))
        board.begin_round()
        board.record_timeout_name("cloud-d")
        assert fired == [(3, 1, 1)]

    def test_already_quarantined_does_not_retrip(self):
        board = _board()
        board.begin_round()
        board.record_timeout_name("cloud-a")
        board.record_timeout_name("cloud-a")
        assert board.trips == 1


class TestHalfOpenAndRecovery:
    def test_contact_order_defers_quarantined(self):
        board = _board()
        board.begin_round()
        board.record_timeout_name("cloud-c")
        board.begin_round()
        healthy, quarantined = board.contact_order()
        assert [board.name_of(i) for i in healthy] == [
            "cloud-a", "cloud-b", "cloud-d"
        ]
        assert [board.name_of(i) for i in quarantined] == ["cloud-c"]

    def test_lapsed_window_readmits_as_probe(self):
        board = _board(rounds=1)
        board.begin_round()
        board.record_timeout_name("cloud-a")
        board.begin_round()
        assert board.is_quarantined_name("cloud-a")
        board.begin_round()
        healthy, quarantined = board.contact_order()
        assert board.index_of["cloud-a"] in healthy and quarantined == []
        assert board.probes == 1

    def test_failed_probe_retrips(self):
        board = _board(rounds=1)
        board.begin_round()
        board.record_timeout_name("cloud-b")
        board.begin_round()
        board.begin_round()
        board.contact_order()  # half-open: cloud-b offered as a probe
        board.record_timeout_name("cloud-b")
        assert board.is_quarantined_name("cloud-b")
        assert board.trips == 2

    def test_valid_probe_clears_streak_and_quarantine(self):
        board = _board()
        board.begin_round()
        board.record_invalid_name("cloud-d")
        assert board.is_quarantined_name("cloud-d")
        board.record_success_name("cloud-d")
        assert not board.is_quarantined_name("cloud-d")
        assert board.quarantined_names() == []


class TestNaming:
    def test_quarantined_names_sorted_by_fleet_order(self):
        board = _board()
        board.begin_round()
        board.record_timeout_name("cloud-d")
        board.record_timeout_name("cloud-b")
        assert board.quarantined_names() == ["cloud-b", "cloud-d"]

    def test_summary_carries_names(self):
        board = _board()
        board.begin_round()
        board.record_timeout_name("cloud-a")
        summary = board.summary()
        assert summary["servers"] == 4
        assert summary["quarantined_names"] == ["cloud-a"]
        assert summary["quarantined"] == 1
