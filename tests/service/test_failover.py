"""The failover state machine and its synchronous driver (Section V)."""

import pytest

from repro.core.blocks import aggregate_block
from repro.core.multi_sem import SEMCluster
from repro.crypto.blind_bls import blind
from repro.service.failover import (
    ArmTimer,
    FailoverConfig,
    FailoverError,
    FailoverMultiSEMClient,
    SendRequest,
    SigningRound,
)


@pytest.fixture()
def cluster(group, rng):
    """w = 5 SEMs, threshold t = 3: tolerates 2 failures."""
    return SEMCluster(group, t=3, rng=rng, require_membership=False)


@pytest.fixture()
def blinded(group, params_k4, make_request, rng):
    request = make_request(b"f", n_blocks=3)
    return [
        blind(group, aggregate_block(params_k4, b), rng).blinded
        for b in request.blocks
    ]


def make_round(cluster, blinded, rng, **config):
    return SigningRound(
        cluster.group,
        cluster.endpoints(),
        cluster.t,
        blinded,
        config=FailoverConfig(**config),
        rng=rng,
    )


def shares_from(cluster, index, blinded):
    return cluster.sems[index].sign_blinded_batch(blinded)


class TestSigningRound:
    def test_start_contacts_fanout_and_arms_timers(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, fanout=3, timeout_s=0.5)
        actions = round_.start()
        sends = [a for a in actions if isinstance(a, SendRequest)]
        timers = [a for a in actions if isinstance(a, ArmTimer)]
        assert [s.endpoint_index for s in sends] == [0, 1, 2]
        assert all(t.delay_s == 0.5 for t in timers)

    def test_fanout_is_clamped_to_at_least_t(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, fanout=1)
        sends = [a for a in round_.start() if isinstance(a, SendRequest)]
        assert len(sends) == cluster.t

    def test_completes_at_exactly_t_valid_responses(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        for j in range(cluster.t):
            round_.on_response(j, shares_from(cluster, j, blinded))
        assert round_.done and round_.result is not None
        # Combined result equals signing under the master key.
        group = cluster.group
        for m, sig in zip(blinded, round_.result):
            assert group.pair(sig, group.g2()) == group.pair(m, cluster.master_pk)

    def test_straggler_responses_are_ignored_after_completion(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        for j in range(cluster.t):
            round_.on_response(j, shares_from(cluster, j, blinded))
        result = list(round_.result)
        assert round_.on_response(3, shares_from(cluster, 3, blinded)) == []
        assert round_.result == result

    def test_duplicate_response_is_idempotent(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        shares = shares_from(cluster, 0, blinded)
        round_.on_response(0, shares)
        assert round_.on_response(0, shares) == []
        assert round_.valid_count == 1

    def test_invalid_shares_mark_endpoint_and_activate_standby(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, fanout=3)
        round_.start()
        wrong = shares_from(cluster, 1, blinded)  # wrong key share for SEM 0
        actions = round_.on_response(0, wrong)
        assert round_.invalid_endpoints == 1
        assert [a.endpoint_index for a in actions if isinstance(a, SendRequest)] == [3]

    def test_short_share_batch_is_invalid(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        round_.on_response(0, shares_from(cluster, 0, blinded)[:-1])
        assert round_.invalid_endpoints == 1

    def test_timeout_retries_with_backoff_then_exhausts(self, cluster, blinded, rng):
        round_ = make_round(
            cluster, blinded, rng,
            fanout=3, max_attempts=2, backoff_base_s=0.25, backoff_factor=2.0,
        )
        round_.start()
        first = round_.on_timeout(0)
        sends = [a for a in first if isinstance(a, SendRequest)]
        assert sends and sends[0].delay_s == pytest.approx(0.25)
        assert round_.retries == 1
        second = round_.on_timeout(0)  # attempts exhausted -> standby
        assert [a.endpoint_index for a in second if isinstance(a, SendRequest)] == [3]

    def test_timeout_after_response_is_a_noop(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        round_.on_response(0, shares_from(cluster, 0, blinded))
        assert round_.on_timeout(0) == []
        assert round_.timeouts == 0

    def test_fails_when_more_than_t_minus_1_sems_are_dead(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, max_attempts=1)
        round_.start()
        for j in range(3):  # 3 of 5 dead > t-1 = 2
            round_.on_timeout(j)
        round_.on_response(3, shares_from(cluster, 3, blinded))
        round_.on_response(4, shares_from(cluster, 4, blinded))
        assert round_.failed_reason is not None
        assert "2 of the required 3" in round_.failed_reason

    def test_used_failover_flag(self, cluster, blinded, rng):
        smooth = make_round(cluster, blinded, rng)
        smooth.start()
        for j in range(cluster.t):
            smooth.on_response(j, shares_from(cluster, j, blinded))
        assert not smooth.used_failover

    def test_threshold_bounds(self, cluster, blinded, rng):
        with pytest.raises(ValueError):
            SigningRound(cluster.group, cluster.endpoints(), 6, blinded)


class TestSynchronousClient:
    def test_signs_through_healthy_cluster(self, cluster, blinded, rng):
        client = FailoverMultiSEMClient.from_cluster(cluster, rng=rng)
        result = client.sign_blinded_batch(blinded)
        group = cluster.group
        for m, sig in zip(blinded, result):
            assert group.pair(sig, group.g2()) == group.pair(m, cluster.master_pk)
        assert client.stats.rounds == 1
        assert client.stats.rounds_with_failover == 0

    def test_tolerates_t_minus_1_crashed(self, cluster, blinded, rng):
        cluster.crash(0)
        cluster.crash(1)  # t-1 = 2 crashed of w = 5
        client = FailoverMultiSEMClient.from_cluster(
            cluster, config=FailoverConfig(max_attempts=1), rng=rng
        )
        result = client.sign_blinded_batch(blinded)
        assert len(result) == len(blinded)
        assert client.stats.rounds_with_failover == 1

    def test_tolerates_byzantine_minority(self, cluster, blinded, rng):
        cluster.corrupt(0)
        cluster.crash(1)
        client = FailoverMultiSEMClient.from_cluster(
            cluster, config=FailoverConfig(max_attempts=1), rng=rng
        )
        result = client.sign_blinded_batch(blinded)
        group = cluster.group
        for m, sig in zip(blinded, result):
            assert group.pair(sig, group.g2()) == group.pair(m, cluster.master_pk)
        assert client.stats.invalid_endpoints == 1

    def test_fails_beyond_tolerance(self, cluster, blinded, rng):
        for j in range(3):  # one too many
            cluster.crash(j)
        client = FailoverMultiSEMClient.from_cluster(
            cluster, config=FailoverConfig(max_attempts=1), rng=rng
        )
        with pytest.raises(FailoverError):
            client.sign_blinded_batch(blinded)

    def test_retry_recovers_a_flaky_sem_and_sleeps_backoff(self, cluster, blinded, rng):
        # SEM 0 times out once then answers; SEMs 1-2 are dead.  The round
        # needs the retried SEM 0 to reach t = 3 valid share batches.
        cluster.crash(1)
        cluster.crash(2)
        endpoints = cluster.endpoints()
        calls = {"n": 0}
        real = endpoints[0].transport

        def flaky(blinded_messages, credential=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TimeoutError("first attempt lost")
            return real(blinded_messages, credential)

        endpoints[0] = type(endpoints[0])(
            name=endpoints[0].name, x=endpoints[0].x,
            share_pk=endpoints[0].share_pk, transport=flaky,
        )
        naps = []
        client = FailoverMultiSEMClient(
            cluster.group, endpoints, cluster.t,
            config=FailoverConfig(max_attempts=2, backoff_base_s=0.125),
            rng=rng, sleep=naps.append,
        )
        result = client.sign_blinded_batch(blinded)
        assert len(result) == len(blinded)
        assert pytest.approx(0.125) in naps
        assert calls["n"] == 2
        assert client.stats.retries >= 1

    def test_requires_transports(self, cluster, blinded, rng):
        endpoints = [
            type(e)(name=e.name, x=e.x, share_pk=e.share_pk, transport=None)
            for e in cluster.endpoints()
        ]
        with pytest.raises(ValueError, match="transport"):
            FailoverMultiSEMClient(cluster.group, endpoints, cluster.t)
