"""The failover state machine and its synchronous driver (Section V)."""

import pytest

from repro.core.blocks import aggregate_block
from repro.core.multi_sem import SEMCluster
from repro.crypto.blind_bls import blind
from repro.service.failover import (
    ArmTimer,
    FailoverConfig,
    FailoverError,
    FailoverMultiSEMClient,
    SendRequest,
    SigningRound,
)


@pytest.fixture()
def cluster(group, rng):
    """w = 5 SEMs, threshold t = 3: tolerates 2 failures."""
    return SEMCluster(group, t=3, rng=rng, require_membership=False)


@pytest.fixture()
def blinded(group, params_k4, make_request, rng):
    request = make_request(b"f", n_blocks=3)
    return [
        blind(group, aggregate_block(params_k4, b), rng).blinded
        for b in request.blocks
    ]


def make_round(cluster, blinded, rng, **config):
    return SigningRound(
        cluster.group,
        cluster.endpoints(),
        cluster.t,
        blinded,
        config=FailoverConfig(**config),
        rng=rng,
    )


def shares_from(cluster, index, blinded):
    return cluster.sems[index].sign_blinded_batch(blinded)


class TestSigningRound:
    def test_start_contacts_fanout_and_arms_timers(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, fanout=3, timeout_s=0.5)
        actions = round_.start()
        sends = [a for a in actions if isinstance(a, SendRequest)]
        timers = [a for a in actions if isinstance(a, ArmTimer)]
        assert [s.endpoint_index for s in sends] == [0, 1, 2]
        assert all(t.delay_s == 0.5 for t in timers)

    def test_fanout_is_clamped_to_at_least_t(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, fanout=1)
        sends = [a for a in round_.start() if isinstance(a, SendRequest)]
        assert len(sends) == cluster.t

    def test_completes_at_exactly_t_valid_responses(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        for j in range(cluster.t):
            round_.on_response(j, shares_from(cluster, j, blinded))
        assert round_.done and round_.result is not None
        # Combined result equals signing under the master key.
        group = cluster.group
        for m, sig in zip(blinded, round_.result):
            assert group.pair(sig, group.g2()) == group.pair(m, cluster.master_pk)

    def test_straggler_responses_are_ignored_after_completion(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        for j in range(cluster.t):
            round_.on_response(j, shares_from(cluster, j, blinded))
        result = list(round_.result)
        assert round_.on_response(3, shares_from(cluster, 3, blinded)) == []
        assert round_.result == result

    def test_duplicate_response_is_idempotent(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        shares = shares_from(cluster, 0, blinded)
        round_.on_response(0, shares)
        assert round_.on_response(0, shares) == []
        assert round_.valid_count == 1

    def test_invalid_shares_mark_endpoint_and_activate_standby(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, fanout=3)
        round_.start()
        wrong = shares_from(cluster, 1, blinded)  # wrong key share for SEM 0
        actions = round_.on_response(0, wrong)
        assert round_.invalid_endpoints == 1
        assert [a.endpoint_index for a in actions if isinstance(a, SendRequest)] == [3]

    def test_short_share_batch_is_invalid(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        round_.on_response(0, shares_from(cluster, 0, blinded)[:-1])
        assert round_.invalid_endpoints == 1

    def test_timeout_retries_with_backoff_then_exhausts(self, cluster, blinded, rng):
        round_ = make_round(
            cluster, blinded, rng,
            fanout=3, max_attempts=2, backoff_base_s=0.25, backoff_factor=2.0,
            backoff_jitter=False,  # assert the exact exponential ladder
        )
        round_.start()
        first = round_.on_timeout(0)
        sends = [a for a in first if isinstance(a, SendRequest)]
        assert sends and sends[0].delay_s == pytest.approx(0.25)
        assert round_.retries == 1
        second = round_.on_timeout(0)  # attempts exhausted -> standby
        assert [a.endpoint_index for a in second if isinstance(a, SendRequest)] == [3]

    def test_jittered_backoff_is_seeded_and_bounded(self, cluster, blinded):
        import random as random_mod

        def retry_delays(seed):
            round_ = make_round(
                cluster, blinded, random_mod.Random(seed),
                max_attempts=4, backoff_base_s=0.25, backoff_cap_s=1.5,
            )
            round_.start()
            delays = []
            for _ in range(3):
                actions = round_.on_timeout(0)
                delays.extend(
                    a.delay_s for a in actions if isinstance(a, SendRequest)
                )
            return delays

        first, replay, other = retry_delays(5), retry_delays(5), retry_delays(6)
        assert len(first) == 3
        assert first == replay  # decorrelated jitter is fully seeded
        assert first != other  # ...but actually random across seeds
        assert all(0.25 <= d <= 1.5 for d in first)  # [base, cap] bounds

    def test_jitter_rng_does_not_perturb_verification_draws(self, cluster, blinded):
        """The jitter stream is derived once at construction: a round that
        never retries consumes nothing extra from the caller's RNG."""
        import random as random_mod

        def smooth_run(seed):
            rng = random_mod.Random(seed)
            round_ = make_round(cluster, blinded, rng)
            round_.start()
            for j in range(cluster.t):
                round_.on_response(j, shares_from(cluster, j, blinded))
            return rng.getrandbits(64)

        assert smooth_run(9) == smooth_run(9)

    def test_timeout_after_response_is_a_noop(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng)
        round_.start()
        round_.on_response(0, shares_from(cluster, 0, blinded))
        assert round_.on_timeout(0) == []
        assert round_.timeouts == 0

    def test_fails_when_more_than_t_minus_1_sems_are_dead(self, cluster, blinded, rng):
        round_ = make_round(cluster, blinded, rng, max_attempts=1)
        round_.start()
        for j in range(3):  # 3 of 5 dead > t-1 = 2
            round_.on_timeout(j)
        round_.on_response(3, shares_from(cluster, 3, blinded))
        round_.on_response(4, shares_from(cluster, 4, blinded))
        assert round_.failed_reason is not None
        assert "2 of the required 3" in round_.failed_reason

    def test_used_failover_flag(self, cluster, blinded, rng):
        smooth = make_round(cluster, blinded, rng)
        smooth.start()
        for j in range(cluster.t):
            smooth.on_response(j, shares_from(cluster, j, blinded))
        assert not smooth.used_failover

    def test_threshold_bounds(self, cluster, blinded, rng):
        with pytest.raises(ValueError):
            SigningRound(cluster.group, cluster.endpoints(), 6, blinded)


class TestHealthScoreboard:
    def _board(self, n=5, threshold=1, rounds=2):
        from repro.service.failover import HealthScoreboard

        return HealthScoreboard(n, threshold=threshold, quarantine_rounds=rounds)

    def test_invalid_streak_trips_the_breaker(self):
        board = self._board(threshold=2)
        board.begin_round()
        board.record_invalid(1)
        assert not board.is_quarantined(1)  # streak 1 < threshold 2
        board.record_invalid(1)
        assert board.is_quarantined(1)
        assert board.trips == 1

    def test_contact_order_defers_quarantined(self):
        board = self._board()
        board.begin_round()
        board.record_invalid(2)
        board.begin_round()
        healthy, quarantined = board.contact_order()
        assert healthy == [0, 1, 3, 4]
        assert quarantined == [2]

    def test_lapsed_window_readmits_as_probe(self):
        board = self._board(rounds=1)
        board.begin_round()
        board.record_invalid(0)
        board.begin_round()
        assert board.is_quarantined(0)  # round 2 <= quarantined_until
        board.begin_round()
        healthy, quarantined = board.contact_order()
        assert 0 in healthy and quarantined == []
        assert board.probes == 1

    def test_success_clears_streak_and_quarantine(self):
        board = self._board()
        board.begin_round()
        board.record_invalid(3)
        assert board.is_quarantined(3)
        board.record_success(3)
        assert not board.is_quarantined(3)
        assert board.summary()["quarantined"] == 0

    def test_round_spanning_quarantine_in_the_sync_client(self, cluster, blinded, rng):
        """A byzantine SEM is contacted (and rejected) in round 1, then
        skipped by the next rounds while healthy endpoints cover t."""
        calls = {"n": 0}
        real = cluster.endpoints()[0].transport

        def counting_byzantine(blinded_messages, credential=None):
            calls["n"] += 1
            return [s * cluster.group.g1() for s in real(blinded_messages, credential)]

        endpoints = cluster.endpoints()
        endpoints[0] = type(endpoints[0])(
            name=endpoints[0].name, x=endpoints[0].x,
            share_pk=endpoints[0].share_pk, transport=counting_byzantine,
        )
        client = FailoverMultiSEMClient(
            cluster.group, endpoints, cluster.t,
            config=FailoverConfig(max_attempts=1, quarantine_rounds=8),
            rng=rng,
        )
        for _ in range(3):
            assert len(client.sign_blinded_batch(blinded)) == len(blinded)
        assert calls["n"] == 1  # rounds 2-3 never paid the byzantine SEM
        assert client.health.trips == 1
        assert client.stats.invalid_endpoints == 1


class TestSynchronousClient:
    def test_signs_through_healthy_cluster(self, cluster, blinded, rng):
        client = FailoverMultiSEMClient.from_cluster(cluster, rng=rng)
        result = client.sign_blinded_batch(blinded)
        group = cluster.group
        for m, sig in zip(blinded, result):
            assert group.pair(sig, group.g2()) == group.pair(m, cluster.master_pk)
        assert client.stats.rounds == 1
        assert client.stats.rounds_with_failover == 0

    def test_tolerates_t_minus_1_crashed(self, cluster, blinded, rng):
        cluster.crash(0)
        cluster.crash(1)  # t-1 = 2 crashed of w = 5
        client = FailoverMultiSEMClient.from_cluster(
            cluster, config=FailoverConfig(max_attempts=1), rng=rng
        )
        result = client.sign_blinded_batch(blinded)
        assert len(result) == len(blinded)
        assert client.stats.rounds_with_failover == 1

    def test_tolerates_byzantine_minority(self, cluster, blinded, rng):
        cluster.corrupt(0)
        cluster.crash(1)
        client = FailoverMultiSEMClient.from_cluster(
            cluster, config=FailoverConfig(max_attempts=1), rng=rng
        )
        result = client.sign_blinded_batch(blinded)
        group = cluster.group
        for m, sig in zip(blinded, result):
            assert group.pair(sig, group.g2()) == group.pair(m, cluster.master_pk)
        assert client.stats.invalid_endpoints == 1

    def test_fails_beyond_tolerance(self, cluster, blinded, rng):
        for j in range(3):  # one too many
            cluster.crash(j)
        client = FailoverMultiSEMClient.from_cluster(
            cluster, config=FailoverConfig(max_attempts=1), rng=rng
        )
        with pytest.raises(FailoverError):
            client.sign_blinded_batch(blinded)

    def test_retry_recovers_a_flaky_sem_and_sleeps_backoff(self, cluster, blinded, rng):
        # SEM 0 times out once then answers; SEMs 1-2 are dead.  The round
        # needs the retried SEM 0 to reach t = 3 valid share batches.
        cluster.crash(1)
        cluster.crash(2)
        endpoints = cluster.endpoints()
        calls = {"n": 0}
        real = endpoints[0].transport

        def flaky(blinded_messages, credential=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TimeoutError("first attempt lost")
            return real(blinded_messages, credential)

        endpoints[0] = type(endpoints[0])(
            name=endpoints[0].name, x=endpoints[0].x,
            share_pk=endpoints[0].share_pk, transport=flaky,
        )
        naps = []
        client = FailoverMultiSEMClient(
            cluster.group, endpoints, cluster.t,
            config=FailoverConfig(
                max_attempts=2, backoff_base_s=0.125, backoff_jitter=False,
            ),
            rng=rng, sleep=naps.append,
        )
        result = client.sign_blinded_batch(blinded)
        assert len(result) == len(blinded)
        assert pytest.approx(0.125) in naps
        assert calls["n"] == 2
        assert client.stats.retries >= 1

    def test_deadline_budget_fails_closed_before_retry_ladders(self, cluster, blinded, rng):
        """Beyond tolerance with huge per-endpoint retry ladders: the round
        deadline bounds total (modeled) time instead of walking them all."""
        for j in range(3):
            cluster.crash(j)
        naps = []
        client = FailoverMultiSEMClient.from_cluster(
            cluster,
            config=FailoverConfig(
                timeout_s=0.5, max_attempts=50, round_deadline_s=3.0,
            ),
            rng=rng, sleep=naps.append,
        )
        with pytest.raises(FailoverError, match="deadline"):
            client.sign_blinded_batch(blinded)
        assert client.stats.deadlines_exceeded == 1
        # Modeled elapsed time (sleeps + timeout charges) stayed near the
        # budget — nowhere near the 50-attempt ladders' worth of retries.
        assert sum(naps) + 0.5 * len(naps) < 10.0

    def test_requires_transports(self, cluster, blinded, rng):
        endpoints = [
            type(e)(name=e.name, x=e.x, share_pk=e.share_pk, transport=None)
            for e in cluster.endpoints()
        ]
        with pytest.raises(ValueError, match="transport"):
            FailoverMultiSEMClient(cluster.group, endpoints, cluster.t)
