"""Tests for blind BLS (paper Eq. 2–5, 7): correctness, blindness,
unlinkability, and batch verification."""

import random

import pytest

from repro.crypto.blind_bls import (
    batch_unblind_verify,
    blind,
    sign_blinded,
    unblind,
    verify_blinded,
)
from repro.crypto.bls import bls_keygen, bls_verify_element


class TestProtocolCorrectness:
    def test_unblinded_signature_is_plain_bls(self, group, rng):
        """Eq. 5: the unblinded signature equals M^y exactly."""
        kp = bls_keygen(group, rng)
        message = group.hash_to_g1(b"block-0")
        state = blind(group, message, rng)
        sigma_tilde = sign_blinded(state.blinded, kp.sk)
        sigma = unblind(group, state, sigma_tilde, kp.pk)
        assert sigma == message**kp.sk
        assert bls_verify_element(group, kp.pk, message, sigma)

    def test_eq4_verification(self, group, rng):
        kp = bls_keygen(group, rng)
        state = blind(group, group.random_g1(rng), rng)
        sigma_tilde = sign_blinded(state.blinded, kp.sk)
        assert verify_blinded(group, state.blinded, sigma_tilde, kp.pk)

    def test_eq4_rejects_bad_signature(self, group, rng):
        kp = bls_keygen(group, rng)
        state = blind(group, group.random_g1(rng), rng)
        bad = sign_blinded(state.blinded, (kp.sk + 1) % group.order)
        assert not verify_blinded(group, state.blinded, bad, kp.pk)

    def test_unblind_check_raises_on_bad(self, group, rng):
        kp = bls_keygen(group, rng)
        state = blind(group, group.random_g1(rng), rng)
        bad = sign_blinded(state.blinded, (kp.sk + 1) % group.order)
        with pytest.raises(ValueError):
            unblind(group, state, bad, kp.pk)

    def test_unblind_without_check_accepts_garbage(self, group, rng):
        kp = bls_keygen(group, rng)
        message = group.random_g1(rng)
        state = blind(group, message, rng)
        bad = group.random_g1(rng)
        sigma = unblind(group, state, bad, kp.pk, check=False)
        assert not bls_verify_element(group, kp.pk, message, sigma)

    def test_fresh_blinding_factor_each_call(self, group, rng):
        message = group.random_g1(rng)
        s1 = blind(group, message, rng)
        s2 = blind(group, message, rng)
        assert s1.r != s2.r
        assert s1.blinded != s2.blinded


class TestBlindness:
    def test_blinded_message_independent_of_message(self, group, rng):
        """m̃ = M·g^r is uniform: statistically indistinguishable across
        very different messages (sanity-check via value spread)."""
        m1 = group.hash_to_g1(b"A" * 100)
        m2 = group.hash_to_g1(b"B")
        blinded1 = {blind(group, m1, rng).blinded.to_bytes() for _ in range(30)}
        blinded2 = {blind(group, m2, rng).blinded.to_bytes() for _ in range(30)}
        # All fresh values distinct, none repeated across the two message sets.
        assert len(blinded1) == 30
        assert len(blinded2) == 30
        assert not blinded1 & blinded2

    def test_perfect_blindness_witness(self, group, rng):
        """For ANY target message M there exists r mapping it to the
        observed blinded value — the signer's view is consistent with every
        message (the unlinkability argument of Section IV-D)."""
        m_real = group.hash_to_g1(b"real")
        state = blind(group, m_real, rng)
        m_other = group.hash_to_g1(b"decoy")
        # Find the r' that would map m_other to the same blinded element:
        # blinded = m_other * g^{r'}  =>  g^{r'} = blinded / m_other.
        quotient = state.blinded / m_other
        # Solvable iff quotient is in <g> — always true in a prime-order group.
        assert (quotient**group.order).is_identity()

    def test_signer_transcript_unlinkable_to_signature(self, group, rng):
        """Given (m̃, σ̃) and a candidate (M, σ), the linking equation holds
        for EVERY candidate signed under the same key, so the transcript
        carries no linking information."""
        kp = bls_keygen(group, rng)
        messages = [group.hash_to_g1(b"m%d" % i) for i in range(3)]
        states = [blind(group, m, rng) for m in messages]
        tildes = [sign_blinded(s.blinded, kp.sk) for s in states]
        sigmas = [unblind(group, s, t, kp.pk) for s, t in zip(states, tildes)]
        # The only public relation is sigma_tilde / sigma = pk^r for SOME r;
        # check it is satisfiable for every (transcript, signature) pairing.
        for t in tildes:
            for sig in sigmas:
                assert ((t / sig) ** group.order).is_identity()


class TestBatchUnblindVerify:
    def _make_batch(self, group, rng, n):
        kp = bls_keygen(group, rng)
        messages = [group.random_g1(rng) for _ in range(n)]
        states = [blind(group, m, rng) for m in messages]
        blinded = [s.blinded for s in states]
        tildes = [sign_blinded(b, kp.sk) for b in blinded]
        return kp, blinded, tildes

    def test_valid_batch(self, group, rng):
        kp, blinded, tildes = self._make_batch(group, rng, 8)
        assert batch_unblind_verify(group, blinded, tildes, kp.pk, rng)

    def test_single_bad_detected(self, group, rng):
        kp, blinded, tildes = self._make_batch(group, rng, 8)
        tildes[3] = tildes[3] * group.g1()
        assert not batch_unblind_verify(group, blinded, tildes, kp.pk, rng)

    def test_two_compensating_errors_detected(self, group, rng):
        """Errors that cancel in an unrandomized product must still fail."""
        kp, blinded, tildes = self._make_batch(group, rng, 4)
        g = group.g1()
        tildes[0] = tildes[0] * g
        tildes[1] = tildes[1] * g.inverse()
        assert not batch_unblind_verify(group, blinded, tildes, kp.pk, rng)

    def test_swapped_pair_detected(self, group, rng):
        kp, blinded, tildes = self._make_batch(group, rng, 4)
        tildes[0], tildes[1] = tildes[1], tildes[0]
        assert not batch_unblind_verify(group, blinded, tildes, kp.pk, rng)

    def test_empty_batch(self, group, rng):
        kp = bls_keygen(group, rng)
        assert batch_unblind_verify(group, [], [], kp.pk, rng)

    def test_length_mismatch(self, group, rng):
        kp = bls_keygen(group, rng)
        with pytest.raises(ValueError):
            batch_unblind_verify(group, [group.g1()], [], kp.pk, rng)

    def test_batch_pairing_count_is_two(self, group, rng):
        from repro.pairing.interface import OperationCounter

        kp, blinded, tildes = self._make_batch(group, rng, 10)
        counter = OperationCounter()
        group.attach_counter(counter)
        try:
            assert batch_unblind_verify(group, blinded, tildes, kp.pk, rng)
        finally:
            group.detach_counter()
        assert counter.pairings == 2  # Eq. 7's whole point
