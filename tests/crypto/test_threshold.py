"""Tests for threshold blind BLS (paper Section V, Eq. 8–14)."""

from itertools import combinations

import pytest

from repro.crypto.blind_bls import blind, unblind
from repro.crypto.threshold import (
    batch_verify_shares,
    combine_shares,
    distribute_key,
    sign_share,
    verify_share,
)
from repro.mathkit.poly import lagrange_basis_at_zero


@pytest.fixture()
def keys(group, rng):
    return distribute_key(group, w=5, t=3, rng=rng)


class TestDistribution:
    def test_share_pks_match_shares(self, group, keys):
        for share, pk in zip(keys.shares, keys.share_pks):
            assert group.g2() ** share.y == pk

    def test_master_pk_consistency(self, group, rng):
        sk = 123456789 % group.order
        keys = distribute_key(group, 5, 3, rng=rng, master_sk=sk)
        assert keys.master_pk == group.g2() ** sk
        assert keys.master_pk_g1 == group.g1() ** sk

    def test_share_for(self, keys):
        assert keys.share_for(2) == keys.shares[2]

    def test_w_t_recorded(self, keys):
        assert keys.w == 5 and keys.t == 3


class TestSignCombine:
    def test_any_t_shares_reconstruct_signature(self, group, rng, keys):
        blinded = group.random_g1(rng)
        all_shares = [
            (keys.shares[j].x, sign_share(blinded, keys.shares[j])) for j in range(keys.w)
        ]
        # Ground truth: signature under the master key.
        master = None
        # Recover master sk only for the test oracle.
        from repro.crypto.shamir import recover_secret

        sk = recover_secret(keys.shares[:3], group.order)
        master = blinded**sk
        for subset in combinations(all_shares, keys.t):
            assert combine_shares(group, list(subset)) == master

    def test_precomputed_basis(self, group, rng, keys):
        blinded = group.random_g1(rng)
        chosen = keys.shares[:3]
        xs = [s.x for s in chosen]
        basis = lagrange_basis_at_zero(xs, group.order)
        shares = [(s.x, sign_share(blinded, s)) for s in chosen]
        assert combine_shares(group, shares, basis=basis) == combine_shares(group, shares)

    def test_too_few_shares_give_wrong_signature(self, group, rng, keys):
        blinded = group.random_g1(rng)
        from repro.crypto.shamir import recover_secret

        sk = recover_secret(keys.shares[:3], group.order)
        master = blinded**sk
        two = [(keys.shares[j].x, sign_share(blinded, keys.shares[j])) for j in range(2)]
        assert combine_shares(group, two) != master

    def test_combine_empty_raises(self, group):
        with pytest.raises(ValueError):
            combine_shares(group, [])

    def test_basis_length_mismatch(self, group, rng, keys):
        blinded = group.random_g1(rng)
        shares = [(keys.shares[0].x, sign_share(blinded, keys.shares[0]))]
        with pytest.raises(ValueError):
            combine_shares(group, shares, basis=[1, 2])

    def test_full_blind_protocol_through_threshold(self, group, rng, keys):
        """Blind -> t share signatures -> combine -> unblind == M^y."""
        from repro.crypto.shamir import recover_secret

        sk = recover_secret(keys.shares[:3], group.order)
        message = group.hash_to_g1(b"threshold block")
        state = blind(group, message, rng)
        shares = [(s.x, sign_share(state.blinded, s)) for s in keys.shares[1:4]]
        sigma_tilde = combine_shares(group, shares)
        sigma = unblind(group, state, sigma_tilde, keys.master_pk)
        assert sigma == message**sk


class TestShareVerification:
    def test_eq10_accepts_honest(self, group, rng, keys):
        blinded = group.random_g1(rng)
        for j in range(keys.w):
            share_sig = sign_share(blinded, keys.shares[j])
            assert verify_share(group, blinded, share_sig, keys.share_pks[j])

    def test_eq10_rejects_wrong_sem(self, group, rng, keys):
        blinded = group.random_g1(rng)
        share_sig = sign_share(blinded, keys.shares[0])
        assert not verify_share(group, blinded, share_sig, keys.share_pks[1])

    def test_eq14_batch_accepts(self, group, rng, keys):
        blinded = [group.random_g1(rng) for _ in range(4)]
        shares_by_sem = {
            j: [sign_share(m, keys.shares[j]) for m in blinded] for j in range(3)
        }
        pks = {j: keys.share_pks[j] for j in range(3)}
        assert batch_verify_shares(group, blinded, shares_by_sem, pks, rng)

    def test_eq14_detects_single_bad_share(self, group, rng, keys):
        blinded = [group.random_g1(rng) for _ in range(4)]
        shares_by_sem = {
            j: [sign_share(m, keys.shares[j]) for m in blinded] for j in range(3)
        }
        shares_by_sem[1][2] = shares_by_sem[1][2] * group.g1()
        pks = {j: keys.share_pks[j] for j in range(3)}
        assert not batch_verify_shares(group, blinded, shares_by_sem, pks, rng)

    def test_eq14_detects_swapped_shares(self, group, rng, keys):
        blinded = [group.random_g1(rng) for _ in range(4)]
        shares_by_sem = {0: [sign_share(m, keys.shares[0]) for m in blinded]}
        shares_by_sem[0][0], shares_by_sem[0][1] = shares_by_sem[0][1], shares_by_sem[0][0]
        pks = {0: keys.share_pks[0]}
        assert not batch_verify_shares(group, blinded, shares_by_sem, pks, rng)

    def test_eq14_pairing_budget(self, group, rng, keys):
        """t + 1 pairings for n·t shares (the paper's Eq. 14 claim)."""
        from repro.pairing.interface import OperationCounter

        t = 3
        blinded = [group.random_g1(rng) for _ in range(5)]
        shares_by_sem = {
            j: [sign_share(m, keys.shares[j]) for m in blinded] for j in range(t)
        }
        pks = {j: keys.share_pks[j] for j in range(t)}
        counter = OperationCounter()
        group.attach_counter(counter)
        try:
            assert batch_verify_shares(group, blinded, shares_by_sem, pks, rng)
        finally:
            group.detach_counter()
        assert counter.pairings == t + 1

    def test_eq14_empty(self, group, rng):
        assert batch_verify_shares(group, [], {}, {}, rng)

    def test_eq14_ragged_rejected(self, group, rng, keys):
        blinded = [group.random_g1(rng) for _ in range(2)]
        shares_by_sem = {0: [sign_share(blinded[0], keys.shares[0])]}
        with pytest.raises(ValueError):
            batch_verify_shares(group, blinded, shares_by_sem, {0: keys.share_pks[0]}, rng)
