"""Tests for the BBS04 group-signature substrate (used by the Knox baseline)."""

import pytest

from repro.crypto.group_sig import BBS04Group


@pytest.fixture(scope="module")
def bbs(group):
    import random

    return BBS04Group(group, rng=random.Random(0xBB5))


@pytest.fixture(scope="module")
def members(bbs):
    return [bbs.issue_member_key() for _ in range(3)]


class TestSignVerify:
    def test_round_trip_every_member(self, bbs, members):
        for member in members:
            sig = bbs.sign(member, b"message")
            assert bbs.verify(b"message", sig)

    def test_wrong_message_rejected(self, bbs, members):
        sig = bbs.sign(members[0], b"message")
        assert not bbs.verify(b"other message", sig)

    def test_tampered_t3_rejected(self, bbs, members, group):
        import dataclasses

        sig = bbs.sign(members[0], b"m")
        bad = dataclasses.replace(sig, t3=sig.t3 * group.g1())
        assert not bbs.verify(b"m", bad)

    def test_tampered_scalar_rejected(self, bbs, members, group):
        import dataclasses

        sig = bbs.sign(members[0], b"m")
        bad = dataclasses.replace(sig, s_x=(sig.s_x + 1) % group.order)
        assert not bbs.verify(b"m", bad)

    def test_tampered_challenge_rejected(self, bbs, members, group):
        import dataclasses

        sig = bbs.sign(members[0], b"m")
        bad = dataclasses.replace(sig, c=(sig.c + 1) % group.order)
        assert not bbs.verify(b"m", bad)

    def test_signatures_randomized(self, bbs, members):
        s1 = bbs.sign(members[0], b"m")
        s2 = bbs.sign(members[0], b"m")
        assert s1.t1 != s2.t1  # fresh α each time

    def test_member_keys_are_sdh_pairs(self, bbs, members, group):
        # e(A, w·g2^x) == e(g1, g2).
        for member in members:
            lhs = group.pair(member.A, bbs.w * group.g2() ** member.x)
            assert lhs == group.pair(group.g1(), group.g2())


class TestAnonymityAndOpening:
    def test_open_identifies_signer(self, bbs, members):
        for index in range(len(members)):
            sig = bbs.sign(members[index], b"payload")
            assert bbs.open(sig) == index

    def test_open_unknown_member(self, bbs, group):
        import random

        outsider = BBS04Group(group, rng=random.Random(1)).issue_member_key()
        # Signature under a different group's parameters decrypts to an A
        # not in this group's roster.
        sig = bbs.sign(outsider, b"x")
        assert bbs.open(sig) is None

    def test_signatures_do_not_reveal_signer_publicly(self, bbs, members):
        """Without the opening key, T3 = A·h^{α+β} is a fresh encryption —
        the same signer's T3 values are unlinkable."""
        sigs = [bbs.sign(members[0], b"m") for _ in range(5)]
        assert len({s.t3.to_bytes() for s in sigs}) == 5

    def test_size_constant_in_group_size(self, bbs, members, group):
        sig_small = bbs.sign(members[0], b"m")
        for _ in range(10):
            bbs.issue_member_key()
        sig_large = bbs.sign(members[0], b"m")
        assert sig_small.size_bytes() == sig_large.size_bytes()

    def test_size_formula(self, bbs, members, group):
        sig = bbs.sign(members[0], b"m")
        scalar = (group.order.bit_length() + 7) // 8
        g1 = group.g1_element_bytes()
        assert sig.size_bytes() == 3 * g1 + 6 * scalar
