"""Property-based tests for threshold blind BLS (hypothesis)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import recover_secret
from repro.crypto.threshold import combine_shares, distribute_key, sign_share
from repro.pairing import toy_group

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def env():
    group = toy_group()
    rng = random.Random(0xA11CE)
    return group, rng


class TestThresholdProperties:
    @_SETTINGS
    @given(data=st.data())
    def test_any_t_of_w_reconstructs(self, env, data):
        group, rng = env
        t = data.draw(st.integers(1, 4))
        w = data.draw(st.integers(t, t + 4))
        keys = distribute_key(group, w, t, rng=rng)
        blinded = group.random_g1(rng)
        master_sk = recover_secret(keys.shares[:t], group.order)
        expected = blinded**master_sk
        subset = data.draw(
            st.sets(st.integers(0, w - 1), min_size=t, max_size=t)
        )
        shares = [(keys.shares[j].x, sign_share(blinded, keys.shares[j])) for j in subset]
        assert combine_shares(group, shares) == expected

    @_SETTINGS
    @given(data=st.data())
    def test_combination_order_irrelevant(self, env, data):
        group, rng = env
        keys = distribute_key(group, 5, 3, rng=rng)
        blinded = group.random_g1(rng)
        indices = [0, 2, 4]
        shares = [(keys.shares[j].x, sign_share(blinded, keys.shares[j])) for j in indices]
        shuffled = list(shares)
        data.draw(st.randoms(use_true_random=False)).shuffle(shuffled)
        assert combine_shares(group, shares) == combine_shares(group, shuffled)

    @_SETTINGS
    @given(data=st.data())
    def test_one_wrong_share_breaks_combination(self, env, data):
        group, rng = env
        keys = distribute_key(group, 5, 3, rng=rng)
        blinded = group.random_g1(rng)
        master_sk = recover_secret(keys.shares[:3], group.order)
        expected = blinded**master_sk
        bad_position = data.draw(st.integers(0, 2))
        shares = []
        for position, share in enumerate(keys.shares[:3]):
            signature = sign_share(blinded, share)
            if position == bad_position:
                signature = signature * group.g1()
            shares.append((share.x, signature))
        assert combine_shares(group, shares) != expected

    @_SETTINGS
    @given(st.integers(1, 2**30))
    def test_share_signing_is_homomorphic(self, env, exponent):
        """sign_share(m^e) == sign_share(m)^e — the linearity the blind
        protocol and the batch checks both lean on."""
        group, rng = env
        keys = distribute_key(group, 3, 2, rng=rng)
        m = group.random_g1(rng)
        share = keys.shares[0]
        assert sign_share(m**exponent, share) == sign_share(m, share) ** exponent
