"""Tests for (w, t)-Shamir secret sharing."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import ShamirShare, recover_secret, split_secret

P = 2**61 - 1


class TestSplitRecover:
    def test_basic_round_trip(self):
        rng = random.Random(1)
        shares = split_secret(42, w=5, t=3, p=P, rng=rng)
        assert recover_secret(shares[:3], P) == 42

    def test_any_t_subset_recovers(self):
        rng = random.Random(2)
        secret = rng.randrange(P)
        shares = split_secret(secret, w=5, t=3, p=P, rng=rng)
        for subset in combinations(shares, 3):
            assert recover_secret(list(subset), P) == secret

    def test_more_than_t_recovers(self):
        rng = random.Random(3)
        shares = split_secret(7, w=5, t=3, p=P, rng=rng)
        assert recover_secret(shares, P) == 7

    def test_paper_w_2t_minus_1(self):
        # The paper's deployment: w = 2t − 1.
        rng = random.Random(4)
        for t in (2, 3, 4):
            w = 2 * t - 1
            shares = split_secret(99, w=w, t=t, p=P, rng=rng)
            assert len(shares) == w
            assert recover_secret(shares[-t:], P) == 99

    def test_t_equals_1(self):
        rng = random.Random(5)
        shares = split_secret(13, w=3, t=1, p=P, rng=rng)
        for s in shares:
            assert recover_secret([s], P) == 13
            assert s.y == 13  # degree-0 polynomial

    def test_t_equals_w(self):
        rng = random.Random(6)
        shares = split_secret(5, w=4, t=4, p=P, rng=rng)
        assert recover_secret(shares, P) == 5

    def test_custom_abscissae(self):
        rng = random.Random(7)
        xs = [10, 20, 30]
        shares = split_secret(77, w=3, t=2, p=P, rng=rng, xs=xs)
        assert [s.x for s in shares] == xs
        assert recover_secret(shares[:2], P) == 77

    @settings(max_examples=25)
    @given(st.integers(0, P - 1))
    def test_property_round_trip(self, secret):
        rng = random.Random(secret & 0xFFFF)
        shares = split_secret(secret, w=7, t=4, p=P, rng=rng)
        picked = rng.sample(shares, 4)
        assert recover_secret(picked, P) == secret


class TestSecrecy:
    def test_fewer_than_t_shares_give_wrong_value(self):
        """t−1 shares interpolate to something unrelated to the secret."""
        rng = random.Random(8)
        misses = 0
        for trial in range(20):
            secret = rng.randrange(P)
            shares = split_secret(secret, w=5, t=3, p=P, rng=rng)
            guess = recover_secret(shares[:2], P)
            if guess != secret:
                misses += 1
        assert misses >= 19  # hitting the secret has probability ~1/p

    def test_t_minus_1_shares_consistent_with_any_secret(self):
        """Information-theoretic secrecy: for any candidate secret there is
        a polynomial matching the observed t−1 shares."""
        rng = random.Random(9)
        shares = split_secret(1234, w=3, t=2, p=P, rng=rng)
        observed = shares[0]
        for candidate in (0, 1, 999, P - 1):
            # A line through (0, candidate) and observed always exists.
            slope = (observed.y - candidate) * pow(observed.x, -1, P) % P
            assert (candidate + slope * observed.x) % P == observed.y


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            split_secret(1, w=3, t=0, p=P)
        with pytest.raises(ValueError):
            split_secret(1, w=3, t=4, p=P)

    def test_field_too_small(self):
        with pytest.raises(ValueError):
            split_secret(1, w=7, t=2, p=7)

    def test_duplicate_abscissae(self):
        with pytest.raises(ValueError):
            split_secret(1, w=2, t=2, p=P, xs=[1, 1])

    def test_zero_abscissa_rejected(self):
        with pytest.raises(ValueError):
            split_secret(1, w=2, t=2, p=P, xs=[0, 1])

    def test_wrong_xs_count(self):
        with pytest.raises(ValueError):
            split_secret(1, w=3, t=2, p=P, xs=[1, 2])

    def test_recover_empty(self):
        with pytest.raises(ValueError):
            recover_secret([], P)

    def test_share_as_point(self):
        s = ShamirShare(3, 9)
        assert s.as_point() == (3, 9)
