"""Tests for the from-scratch ChaCha20 implementation (RFC 8439)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.symmetric import ChaCha20, _quarter_round, chacha20_decrypt, chacha20_encrypt

KEY = bytes(range(32))
NONCE = bytes(12)


class TestRfc8439Vectors:
    def test_quarter_round_vector(self):
        # RFC 8439 section 2.1.1.
        state = [0x11111111, 0x01020304, 0x9B8D6F43, 0x01234567] + [0] * 12
        _quarter_round(state, 0, 1, 2, 3)
        assert state[0] == 0xEA2A92F4
        assert state[1] == 0xCB1CF8CE
        assert state[2] == 0x4581472E
        assert state[3] == 0x5881C4BB

    def test_block_function_vector(self):
        # RFC 8439 section 2.3.2: key 00..1f, nonce 000000090000004a00000000,
        # counter 1.
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        cipher = ChaCha20(key, nonce, initial_counter=1)
        block = cipher._block(1)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expected

    def test_encryption_vector(self):
        # RFC 8439 section 2.4.2.
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = chacha20_encrypt(key, nonce, plaintext, counter=1)
        assert ciphertext[:16] == bytes.fromhex("6e2e359a2568f98041ba0728dd0d6981")
        assert ciphertext[-16:] == bytes.fromhex("0bbf74a35be6b40b8eedf2785e42874d")
        assert len(ciphertext) == 114


class TestRoundTrip:
    def test_encrypt_decrypt(self):
        pt = b"the paper's data privacy layer" * 10
        ct = chacha20_encrypt(KEY, NONCE, pt)
        assert ct != pt
        assert chacha20_decrypt(KEY, NONCE, ct) == pt

    def test_empty(self):
        assert chacha20_encrypt(KEY, NONCE, b"") == b""

    def test_exact_block_boundary(self):
        for size in (63, 64, 65, 128, 129):
            pt = bytes(size)
            assert len(chacha20_encrypt(KEY, NONCE, pt)) == size
            assert chacha20_decrypt(KEY, NONCE, chacha20_encrypt(KEY, NONCE, pt)) == pt

    @given(st.binary(max_size=500))
    def test_round_trip_property(self, pt):
        assert chacha20_decrypt(KEY, NONCE, chacha20_encrypt(KEY, NONCE, pt)) == pt

    def test_wrong_key_garbles(self):
        pt = b"sensitive health record"
        ct = chacha20_encrypt(KEY, NONCE, pt)
        other = bytes([KEY[0] ^ 1]) + KEY[1:]
        assert chacha20_decrypt(other, NONCE, ct) != pt

    def test_nonce_matters(self):
        pt = b"same plaintext"
        n2 = bytes(11) + b"\x01"
        assert chacha20_encrypt(KEY, NONCE, pt) != chacha20_encrypt(KEY, n2, pt)

    def test_counter_offset(self):
        pt = bytes(128)
        full = chacha20_encrypt(KEY, NONCE, pt, counter=1)
        tail = chacha20_encrypt(KEY, NONCE, pt[64:], counter=2)
        assert full[64:] == tail


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            ChaCha20(b"short", NONCE)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            ChaCha20(KEY, b"short")

    def test_keystream_length(self):
        c = ChaCha20(KEY, NONCE)
        for n in (0, 1, 63, 64, 65, 200):
            assert len(c.keystream(n)) == n
