"""Tests for BLS signatures."""

import pytest

from repro.crypto.bls import (
    bls_aggregate,
    bls_batch_verify,
    bls_keygen,
    bls_sign,
    bls_sign_element,
    bls_verify,
    bls_verify_element,
)


class TestSignVerify:
    def test_round_trip(self, group, rng):
        kp = bls_keygen(group, rng)
        sig = bls_sign(group, kp.sk, b"message")
        assert bls_verify(group, kp.pk, b"message", sig)

    def test_wrong_message_rejected(self, group, rng):
        kp = bls_keygen(group, rng)
        sig = bls_sign(group, kp.sk, b"message")
        assert not bls_verify(group, kp.pk, b"other", sig)

    def test_wrong_key_rejected(self, group, rng):
        kp1 = bls_keygen(group, rng)
        kp2 = bls_keygen(group, rng)
        sig = bls_sign(group, kp1.sk, b"message")
        assert not bls_verify(group, kp2.pk, b"message", sig)

    def test_tampered_signature_rejected(self, group, rng):
        kp = bls_keygen(group, rng)
        sig = bls_sign(group, kp.sk, b"message") * group.g1()
        assert not bls_verify(group, kp.pk, b"message", sig)

    def test_identity_signature_rejected(self, group, rng):
        kp = bls_keygen(group, rng)
        assert not bls_verify(group, kp.pk, b"message", group.g1_identity())

    def test_sign_element_form(self, group, rng):
        kp = bls_keygen(group, rng)
        element = group.random_g1(rng)
        sig = bls_sign_element(element, kp.sk)
        assert bls_verify_element(group, kp.pk, element, sig)

    def test_keygen_distinct(self, group, rng):
        assert bls_keygen(group, rng).sk != bls_keygen(group, rng).sk

    def test_determinism(self, group, rng):
        kp = bls_keygen(group, rng)
        assert bls_sign(group, kp.sk, b"m") == bls_sign(group, kp.sk, b"m")


class TestAggregation:
    def test_aggregate_same_key(self, group, rng):
        kp = bls_keygen(group, rng)
        msgs = [b"m1", b"m2", b"m3"]
        sigs = [bls_sign(group, kp.sk, m) for m in msgs]
        agg_sig = bls_aggregate(sigs)
        agg_elt = group.hash_to_g1(b"m1") * group.hash_to_g1(b"m2") * group.hash_to_g1(b"m3")
        assert bls_verify_element(group, kp.pk, agg_elt, agg_sig)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            bls_aggregate([])

    def test_aggregate_single(self, group, rng):
        kp = bls_keygen(group, rng)
        sig = bls_sign(group, kp.sk, b"x")
        assert bls_aggregate([sig]) == sig


class TestBatchVerify:
    def test_valid_batch(self, group, rng):
        kp = bls_keygen(group, rng)
        elements = [group.random_g1(rng) for _ in range(5)]
        sigs = [bls_sign_element(e, kp.sk) for e in elements]
        assert bls_batch_verify(group, kp.pk, elements, sigs, rng)

    def test_one_bad_signature_detected(self, group, rng):
        kp = bls_keygen(group, rng)
        elements = [group.random_g1(rng) for _ in range(5)]
        sigs = [bls_sign_element(e, kp.sk) for e in elements]
        sigs[2] = sigs[2] * group.g1()
        assert not bls_batch_verify(group, kp.pk, elements, sigs, rng)

    def test_swapped_signatures_detected(self, group, rng):
        """Unrandomized batch checks accept swapped sigs; ours must not."""
        kp = bls_keygen(group, rng)
        elements = [group.random_g1(rng) for _ in range(3)]
        sigs = [bls_sign_element(e, kp.sk) for e in elements]
        sigs[0], sigs[1] = sigs[1], sigs[0]
        assert not bls_batch_verify(group, kp.pk, elements, sigs, rng)

    def test_empty_batch_true(self, group, rng):
        kp = bls_keygen(group, rng)
        assert bls_batch_verify(group, kp.pk, [], [], rng)

    def test_length_mismatch(self, group, rng):
        kp = bls_keygen(group, rng)
        with pytest.raises(ValueError):
            bls_batch_verify(group, kp.pk, [group.g1()], [], rng)

    def test_batch_of_one(self, group, rng):
        kp = bls_keygen(group, rng)
        e = group.random_g1(rng)
        assert bls_batch_verify(group, kp.pk, [e], [bls_sign_element(e, kp.sk)], rng)
