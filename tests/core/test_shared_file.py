"""Tests for the multi-owner shared-file workflow (paper §IV-C)."""

import pytest

from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.shared_file import Contribution, SharedFileBuilder, build_shared_file
from repro.core.verifier import PublicVerifier


@pytest.fixture()
def env(group, params_k4, rng):
    sem = SecurityMediator(group, rng=rng, require_membership=False)
    owners = [DataOwner(params_k4, sem.pk, rng=rng) for _ in range(3)]
    cloud = CloudServer(params_k4, rng=rng)
    verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
    return sem, owners, cloud, verifier


def _contributions(owners):
    return [
        Contribution(owner=owners[0], payload=b"alice wrote the intro " * 3),
        Contribution(owner=owners[1], payload=b"bob wrote the middle " * 4),
        Contribution(owner=owners[2], payload=b"cleo wrote the end " * 2),
    ]


class TestSharedFile:
    def test_build_and_audit(self, env, params_k4):
        sem, owners, cloud, verifier = env
        shared = build_shared_file(params_k4, b"doc", sem, _contributions(owners))
        cloud.store(shared)
        ch = verifier.generate_challenge(b"doc", len(shared.blocks))
        assert verifier.verify(ch, cloud.generate_proof(b"doc", ch))

    def test_cross_author_challenge(self, env, params_k4):
        """One challenge spans blocks of all three authors — verification
        neither knows nor cares (single org key)."""
        sem, owners, cloud, verifier = env
        shared = build_shared_file(params_k4, b"doc", sem, _contributions(owners))
        cloud.store(shared)
        ch = verifier.generate_challenge(b"doc", len(shared.blocks), sample_size=3)
        assert verifier.verify(ch, cloud.generate_proof(b"doc", ch))

    def test_indistinguishable_from_single_owner(self, env, params_k4):
        """The paper's claim, literally: a multi-owner file is identical to
        the same bytes signed by one member."""
        sem, owners, cloud, verifier = env
        contributions = _contributions(owners)
        shared = build_shared_file(params_k4, b"doc", sem, contributions)
        # Reconstruct the exact concatenated padded payload...
        builder = SharedFileBuilder(params_k4, b"doc", sem)
        rows = []
        for c in contributions:
            rows.extend(builder._pack_elements(c.payload))
        # ...and have a single owner sign the same blocks.
        from repro.core.blocks import Block, make_block_id

        solo_blocks = [
            Block(block_id=make_block_id(b"doc", i), elements=e) for i, e in enumerate(rows)
        ]
        solo_sigs = []
        for block in solo_blocks:
            state = owners[0].blind_block(block)
            solo_sigs.append(
                owners[0].unblind(state, sem.sign_blinded(state.blinded, None))
            )
        assert list(shared.blocks) == solo_blocks
        assert list(shared.signatures) == solo_sigs  # bit-for-bit identical

    def test_tamper_any_authors_block_detected(self, env, params_k4):
        sem, owners, cloud, verifier = env
        shared = build_shared_file(params_k4, b"doc", sem, _contributions(owners))
        cloud.store(shared)
        for position in (0, len(shared.blocks) - 1):
            cloud2 = CloudServer(params_k4)
            cloud2.store(shared)
            cloud2.tamper_block(b"doc", position)
            ch = verifier.generate_challenge(b"doc", len(shared.blocks))
            assert not verifier.verify(ch, cloud2.generate_proof(b"doc", ch))

    def test_incremental_append(self, env, params_k4):
        sem, owners, _, _ = env
        builder = SharedFileBuilder(params_k4, b"doc", sem)
        n1 = builder.append(Contribution(owner=owners[0], payload=b"part one"))
        n2 = builder.append(Contribution(owner=owners[1], payload=b"part two " * 5))
        assert builder.n_blocks == n1 + n2
        shared = builder.build()
        assert len(shared.blocks) == n1 + n2

    def test_author_bookkeeping_stays_local(self, env, params_k4):
        sem, owners, _, _ = env
        builder = SharedFileBuilder(params_k4, b"doc", sem)
        builder.append(Contribution(owner=owners[1], payload=b"x"))
        shared = builder.build()
        assert builder.author_of(0) is owners[1]
        # The uploaded artifact has no author-related fields at all.
        assert set(shared.__dataclass_fields__) == {
            "file_id", "blocks", "signatures", "encrypted", "nonce",
        }

    def test_empty_build_rejected(self, env, params_k4):
        sem, _, _, _ = env
        with pytest.raises(ValueError):
            SharedFileBuilder(params_k4, b"doc", sem).build()

    def test_block_ids_sequential_across_authors(self, env, params_k4):
        from repro.core.blocks import make_block_id

        sem, owners, _, _ = env
        shared = build_shared_file(params_k4, b"doc", sem, _contributions(owners))
        for i, block in enumerate(shared.blocks):
            assert block.block_id == make_block_id(b"doc", i)
