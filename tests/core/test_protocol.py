"""Tests for the SemPdpSystem facade and dynamic group management."""

import pytest

from repro.core import SemPdpSystem
from repro.core.sem import RevokedMemberError, UnknownMemberError


@pytest.fixture()
def system(group, rng):
    return SemPdpSystem.create(group, k=4, rng=rng)


class TestFacade:
    def test_upload_and_audit(self, system):
        alice = system.enroll("alice")
        receipt = system.upload(alice, b"shared data " * 10, b"f1")
        assert receipt.n_blocks > 0
        assert system.audit(b"f1")
        assert system.audit(b"f1", sample_size=2)

    def test_audit_detects_corruption(self, system):
        alice = system.enroll("alice")
        system.upload(alice, b"shared data " * 10, b"f1")
        system.cloud.tamper_block(b"f1", 0)
        assert not system.audit(b"f1")

    def test_multiple_files_multiple_owners(self, system):
        alice = system.enroll("alice")
        bob = system.enroll("bob")
        system.upload(alice, b"alice data", b"fa")
        system.upload(bob, b"bob data", b"fb")
        assert system.audit(b"fa") and system.audit(b"fb")

    def test_encrypted_upload(self, system):
        alice = system.enroll("alice")
        receipt = system.upload(alice, b"secret", b"f", encrypt_key=bytes(32))
        assert receipt.encrypted and receipt.nonce is not None
        assert system.audit(b"f")

    def test_create_requires_exactly_one_sem_kind(self, system):
        with pytest.raises(ValueError):
            SemPdpSystem(
                params=system.params,
                manager=system.manager,
                cloud=system.cloud,
                verifier=system.verifier,
                sem=None,
                cluster=None,
            )

    def test_nonbatch_upload(self, system):
        alice = system.enroll("alice")
        system.upload(alice, b"data", b"f", batch=False)
        assert system.audit(b"f")

    def test_small_exponent_audit(self, system):
        alice = system.enroll("alice")
        system.upload(alice, b"data " * 20, b"f")
        assert system.audit(b"f", beta_bits=16)

    def test_verify_on_upload_deployment(self, group, rng):
        system = SemPdpSystem.create(group, k=2, verify_on_upload=True, rng=rng)
        alice = system.enroll("alice")
        system.upload(alice, b"checked on arrival", b"f")
        assert system.cloud.has_file(b"f")


class TestMultiSemFacade:
    def test_threshold_deployment(self, group, rng):
        system = SemPdpSystem.create(group, k=3, threshold=2, rng=rng)
        alice = system.enroll("alice")
        system.upload(alice, b"clustered " * 5, b"f")
        assert system.audit(b"f")

    def test_audit_unchanged_after_sem_failures(self, group, rng):
        """Challenge/Response/Verify are independent of the SEM count."""
        system = SemPdpSystem.create(group, k=3, threshold=2, rng=rng)
        alice = system.enroll("alice")
        system.upload(alice, b"data " * 5, b"f")
        system.cluster.crash(0)  # failures after upload don't affect audits
        assert system.audit(b"f")

    def test_upload_with_failures(self, group, rng):
        system = SemPdpSystem.create(group, k=3, threshold=2, rng=rng)
        alice = system.enroll("alice")
        system.cluster.crash(1)
        system.upload(alice, b"data", b"f")
        assert system.audit(b"f")


class TestDynamicGroups:
    def test_enroll_and_revoke(self, system):
        alice = system.enroll("alice")
        system.upload(alice, b"pre-revocation data", b"f1")
        system.revoke("alice")
        with pytest.raises(RevokedMemberError):
            system.upload(alice, b"post-revocation data", b"f2")

    def test_signatures_survive_revocation(self, system):
        """The paper's instant-revocation property: stored data stays
        auditable with NO re-signing after membership changes."""
        alice = system.enroll("alice")
        system.upload(alice, b"alice's contribution", b"f1")
        stored_before = list(system.cloud.retrieve(b"f1").signatures)
        system.revoke("alice")
        assert system.audit(b"f1")
        assert list(system.cloud.retrieve(b"f1").signatures) == stored_before

    def test_new_member_joins_later(self, system):
        system.enroll("alice")
        carol = system.enroll("carol")
        system.upload(carol, b"carol data", b"fc")
        assert system.audit(b"fc")

    def test_double_enroll_rejected(self, system):
        system.enroll("alice")
        with pytest.raises(ValueError):
            system.enroll("alice")

    def test_revoke_unknown_member(self, system):
        with pytest.raises(KeyError):
            system.revoke("nobody")

    def test_unenrolled_owner_rejected(self, system, params_k4, rng):
        from repro.core.owner import DataOwner

        stranger = DataOwner(system.params, system.org_pk, rng=rng)
        with pytest.raises(UnknownMemberError):
            system.upload(stranger, b"data", b"f")

    def test_manager_state(self, system):
        system.enroll("alice")
        system.enroll("bob")
        assert system.manager.member_count == 2
        assert system.manager.is_enrolled("alice")
        system.revoke("alice")
        assert system.manager.member_count == 1
        assert not system.manager.is_enrolled("alice")

    def test_revocation_propagates_to_cluster(self, group, rng):
        system = SemPdpSystem.create(group, k=2, threshold=2, rng=rng)
        alice = system.enroll("alice")
        system.revoke("alice")
        with pytest.raises(RevokedMemberError):
            system.upload(alice, b"data", b"f")
