"""Tests for block encoding and the aggregate-and-hash map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    Block,
    aggregate_block,
    decode_data,
    encode_data,
    make_block_id,
)


class TestEncodeDecode:
    def test_round_trip(self, params_k4):
        data = b"hello shared cloud storage" * 7
        blocks = encode_data(data, params_k4, b"fid")
        assert decode_data(blocks, params_k4) == data

    def test_empty_data(self, params_k4):
        blocks = encode_data(b"", params_k4, b"fid")
        assert len(blocks) >= 1
        assert decode_data(blocks, params_k4) == b""

    def test_single_byte(self, params_k4):
        assert decode_data(encode_data(b"x", params_k4, b"f"), params_k4) == b"x"

    def test_exact_block_multiple(self, params_k4):
        size = params_k4.block_bytes() * 3 - 8  # minus length header
        data = bytes(range(256)) * (size // 256) + bytes(size % 256)
        blocks = encode_data(data, params_k4, b"f")
        assert len(blocks) == 3
        assert decode_data(blocks, params_k4) == data

    def test_elements_below_order(self, params_k4):
        data = b"\xff" * 200
        for block in encode_data(data, params_k4, b"f"):
            assert all(0 <= e < params_k4.order for e in block.elements)

    def test_block_count_formula(self, params_k4):
        data = bytes(1000)
        blocks = encode_data(data, params_k4, b"f")
        import math

        expected = math.ceil((1000 + 8) / params_k4.block_bytes())
        assert len(blocks) == expected

    def test_block_ids_sequential(self, params_k4):
        blocks = encode_data(bytes(100), params_k4, b"myfile")
        for index, block in enumerate(blocks):
            assert block.block_id == make_block_id(b"myfile", index)

    def test_k1_encoding(self, params_k1):
        data = b"one element per block"
        assert decode_data(encode_data(data, params_k1, b"f"), params_k1) == data

    def test_decode_rejects_truncation(self, params_k4):
        with pytest.raises(ValueError):
            decode_data([], params_k4)

    def test_decode_rejects_corrupt_header(self, params_k4):
        blocks = encode_data(b"abc", params_k4, b"f")
        # Largest in-range element: decodes to a length far beyond the data.
        huge = ((1 << (8 * params_k4.element_bytes())) - 1, *blocks[0].elements[1:])
        corrupted = [Block(block_id=blocks[0].block_id, elements=huge)] + blocks[1:]
        with pytest.raises(ValueError):
            decode_data(corrupted, params_k4)

    def test_decode_rejects_out_of_range_element(self, params_k4):
        blocks = encode_data(b"abc", params_k4, b"f")
        too_big = (1 << (8 * params_k4.element_bytes()), *blocks[0].elements[1:])
        corrupted = [Block(block_id=blocks[0].block_id, elements=too_big)] + blocks[1:]
        with pytest.raises(ValueError):
            decode_data(corrupted, params_k4)

    @settings(max_examples=30)
    @given(st.binary(max_size=300))
    def test_round_trip_property(self, data):
        from repro.core.params import setup
        from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup

        params = _cached_params()
        blocks = encode_data(data, params, b"f")
        assert decode_data(blocks, params) == data


_PARAMS_CACHE = []


def _cached_params():
    if not _PARAMS_CACHE:
        from repro.core.params import setup
        from repro.pairing import toy_group

        _PARAMS_CACHE.append(setup(toy_group(), k=3))
    return _PARAMS_CACHE[0]


class TestBlock:
    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            Block(block_id=b"x", elements=())

    def test_block_is_frozen(self, params_k4):
        block = encode_data(b"data", params_k4, b"f")[0]
        with pytest.raises(Exception):
            block.elements = ()


class TestAggregateBlock:
    def test_matches_formula(self, params_k4):
        block = encode_data(b"some data here", params_k4, b"f")[0]
        group = params_k4.group
        expected = group.hash_to_g1(block.block_id)
        for u, m in zip(params_k4.u, block.elements):
            expected = expected * u**m
        assert aggregate_block(params_k4, block) == expected

    def test_wrong_width_rejected(self, params_k4):
        bad = Block(block_id=b"x", elements=(1, 2))
        with pytest.raises(ValueError):
            aggregate_block(params_k4, bad)

    def test_zero_elements_skip_exponentiation(self, params_k4):
        zero_block = Block(block_id=b"z", elements=(0,) * params_k4.k)
        assert aggregate_block(params_k4, zero_block) == params_k4.group.hash_to_g1(b"z")

    def test_aggregate_is_linear_in_exponent(self, params_k4):
        """The homomorphic property the Response algorithm relies on."""
        group = params_k4.group
        p = params_k4.order
        b1 = Block(block_id=b"i1", elements=(1, 2, 3, 4))
        b2 = Block(block_id=b"i2", elements=(5, 6, 7, 8))
        beta1, beta2 = 11, 13
        combined_elements = tuple((beta1 * a + beta2 * b) % p for a, b in zip(b1.elements, b2.elements))
        lhs = aggregate_block(params_k4, b1) ** beta1 * aggregate_block(params_k4, b2) ** beta2
        rhs = group.hash_to_g1(b"i1") ** beta1 * group.hash_to_g1(b"i2") ** beta2
        for u, m in zip(params_k4.u, combined_elements):
            rhs = rhs * u**m
        assert lhs == rhs

    def test_distinct_blocks_distinct_aggregates(self, params_k4):
        blocks = encode_data(bytes(range(200)), params_k4, b"f")
        aggregates = {aggregate_block(params_k4, b).to_bytes() for b in blocks}
        assert len(aggregates) == len(blocks)
