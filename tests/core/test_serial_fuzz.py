"""Robustness fuzzing of the binary codecs: malformed input must fail
with ValueError — never crash with arbitrary exceptions or loop forever."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serial import (
    decode_challenge,
    decode_response,
    decode_signed_file,
)

_SETTINGS = settings(max_examples=60, deadline=None)


class TestCodecFuzz:
    @_SETTINGS
    @given(st.binary(max_size=200))
    def test_signed_file_decoder_never_crashes(self, params_k4, data):
        try:
            decode_signed_file(data, params_k4)
        except ValueError:
            pass  # the only acceptable failure mode

    @_SETTINGS
    @given(st.binary(max_size=200))
    def test_challenge_decoder_never_crashes(self, params_k4, data):
        try:
            decode_challenge(data, params_k4)
        except ValueError:
            pass

    @_SETTINGS
    @given(st.binary(max_size=200))
    def test_response_decoder_never_crashes(self, params_k4, data):
        try:
            decode_response(data, params_k4)
        except ValueError:
            pass

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.binary(min_size=1, max_size=40), st.integers(0, 60))
    def test_bitflips_in_valid_encoding_rejected_or_roundtrip(
        self, group, params_k4, rng, payload, flip_at
    ):
        """Flipping a byte of a valid encoding either fails cleanly or
        still decodes to *some* structurally valid object (it must never
        crash)."""
        from repro.core.owner import DataOwner
        from repro.core.sem import SecurityMediator
        from repro.core.serial import encode_signed_file

        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        signed = owner.sign_file(payload, b"fz", sem)
        data = bytearray(encode_signed_file(signed, params_k4))
        data[flip_at % len(data)] ^= 0x5A
        try:
            decode_signed_file(bytes(data), params_k4)
        except ValueError:
            pass
