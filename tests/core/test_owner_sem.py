"""Tests of the owner ↔ SEM signing workflow (Blind/Sign/Unblind)."""

import pytest

from repro.core.blocks import aggregate_block
from repro.core.group_mgmt import MemberCredential
from repro.core.owner import DataOwner
from repro.core.sem import RevokedMemberError, SecurityMediator, UnknownMemberError
from repro.crypto.bls import bls_verify_element


@pytest.fixture()
def sem(group, rng):
    return SecurityMediator(group, rng=rng, require_membership=False)


@pytest.fixture()
def owner(params_k4, sem, rng):
    return DataOwner(params_k4, sem.pk, rng=rng)


class TestSignFile:
    def test_signatures_verify_under_sem_key(self, params_k4, sem, owner):
        signed = owner.sign_file(b"shared medical records " * 5, b"f1", sem)
        for block, sig in zip(signed.blocks, signed.signatures):
            element = aggregate_block(params_k4, block)
            assert bls_verify_element(params_k4.group, sem.pk, element, sig)

    def test_batch_and_nonbatch_agree(self, params_k4, sem, rng):
        data = b"identical data"
        o1 = DataOwner(params_k4, sem.pk, rng=rng)
        batch = o1.sign_file(data, b"f", sem, batch=True)
        nonbatch = o1.sign_file(data, b"f", sem, batch=False)
        # Signatures are deterministic functions of (block, sk).
        assert batch.signatures == nonbatch.signatures

    def test_batch_verification_catches_bad_sem(self, params_k4, rng, group):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        sem.fail_mode = "byzantine"
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        with pytest.raises(ValueError):
            owner.sign_file(b"data", b"f", sem, batch=True)

    def test_per_signature_verification_catches_bad_sem(self, params_k4, rng, group):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        sem.fail_mode = "byzantine"
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        with pytest.raises(ValueError):
            owner.sign_file(b"data", b"f", sem, batch=False)

    def test_stats_accumulate(self, params_k4, sem, owner, group):
        signed = owner.sign_file(b"x" * 300, b"f", sem)
        n = len(signed.blocks)
        element = group.g1_element_bytes()
        assert owner.stats.blocks == n
        assert owner.stats.bytes_to_sem == n * element
        assert owner.stats.bytes_from_sem == n * element

    def test_encryption_layer(self, params_k4, sem, owner):
        key = bytes(32)
        plaintext = b"secret patient data " * 4
        signed = owner.sign_file(plaintext, b"f", sem, encrypt_key=key)
        assert signed.encrypted and signed.nonce is not None
        from repro.core.blocks import decode_data

        stored = decode_data(list(signed.blocks), params_k4)
        assert stored != plaintext
        assert DataOwner.decrypt_file(stored, key, signed.nonce) == plaintext

    def test_signed_file_invariant(self, params_k4, sem, owner):
        signed = owner.sign_file(b"d", b"f", sem)
        from repro.core.owner import SignedFile

        with pytest.raises(ValueError):
            SignedFile(file_id=b"f", blocks=signed.blocks, signatures=signed.signatures[:-1])


class TestBlindUnblindPrimitives:
    def test_blind_block_hides_aggregate(self, params_k4, owner):
        from repro.core.blocks import encode_data

        block = encode_data(b"data", params_k4, b"f")[0]
        state = owner.blind_block(block)
        assert state.blinded != aggregate_block(params_k4, block)

    def test_unblind_checks_by_default(self, params_k4, sem, owner, group):
        from repro.core.blocks import encode_data

        block = encode_data(b"data", params_k4, b"f")[0]
        state = owner.blind_block(block)
        with pytest.raises(ValueError):
            owner.unblind(state, group.random_g1(), check=True)


class TestMembershipEnforcement:
    def test_unknown_member_rejected(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng)  # membership required
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        with pytest.raises(UnknownMemberError):
            owner.sign_file(b"data", b"f", sem)

    def test_enrolled_member_accepted(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng)
        credential = MemberCredential.fresh(rng)
        sem.add_member(credential)
        owner = DataOwner(params_k4, sem.pk, credential=credential, rng=rng)
        signed = owner.sign_file(b"data", b"f", sem)
        assert len(signed.signatures) == len(signed.blocks)

    def test_revoked_member_rejected(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng)
        credential = MemberCredential.fresh(rng)
        sem.add_member(credential)
        sem.remove_member(credential)
        owner = DataOwner(params_k4, sem.pk, credential=credential, rng=rng)
        with pytest.raises(RevokedMemberError):
            owner.sign_file(b"data", b"f", sem)

    def test_crashed_sem_raises_connection_error(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        sem.fail_mode = "crash"
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        with pytest.raises(ConnectionError):
            owner.sign_file(b"data", b"f", sem)

    def test_serves_predicate(self, group, rng):
        sem = SecurityMediator(group, rng=rng)
        credential = MemberCredential.fresh(rng)
        assert not sem.serves(credential)
        sem.add_member(credential)
        assert sem.serves(credential)


class TestSEMTranscript:
    def test_transcript_contains_only_blinded_values(self, group, params_k4, rng):
        """The SEM's view must not include any block aggregate."""
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        signed = owner.sign_file(b"private data " * 3, b"f", sem)
        aggregates = {aggregate_block(params_k4, b).to_bytes() for b in signed.blocks}
        seen = {entry.blinded.to_bytes() for entry in sem.transcript}
        assert not aggregates & seen

    def test_transcript_length(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        signed = owner.sign_file(b"x" * 100, b"f", sem)
        assert len(sem.transcript) == len(signed.blocks)
