"""Tests for Setup (system parameter generation)."""

import pytest

from repro.core.params import setup


class TestSetup:
    def test_k_elements_generated(self, group):
        params = setup(group, k=6)
        assert len(params.u) == 6
        assert params.k == 6

    def test_u_elements_distinct_and_nontrivial(self, group):
        params = setup(group, k=8)
        serialized = {u.to_bytes() for u in params.u}
        assert len(serialized) == 8
        assert all(not u.is_identity() for u in params.u)

    def test_u_elements_in_subgroup(self, group):
        params = setup(group, k=3)
        assert all((u**group.order).is_identity() for u in params.u)

    def test_deterministic_from_seed(self, group):
        a = setup(group, k=3, seed=b"seed-1")
        b = setup(group, k=3, seed=b"seed-1")
        assert [u.to_bytes() for u in a.u] == [u.to_bytes() for u in b.u]

    def test_different_seeds_differ(self, group):
        a = setup(group, k=3, seed=b"seed-1")
        b = setup(group, k=3, seed=b"seed-2")
        assert a.u[0] != b.u[0]

    def test_rejects_bad_k(self, group):
        with pytest.raises(ValueError):
            setup(group, k=0)

    def test_order_property(self, group):
        params = setup(group, k=1)
        assert params.order == group.order

    def test_element_and_block_bytes(self, group):
        params = setup(group, k=5)
        assert params.element_bytes() == (group.order.bit_length() - 1) // 8
        assert params.block_bytes() == 5 * params.element_bytes()

    def test_prefix_stability(self, group):
        """u_1..u_k are a prefix of u_1..u_{k+1} (same derivation)."""
        small = setup(group, k=2, seed=b"s")
        large = setup(group, k=4, seed=b"s")
        assert [u.to_bytes() for u in small.u] == [u.to_bytes() for u in large.u[:2]]
