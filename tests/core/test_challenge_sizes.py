"""Tests for challenge/response size accounting (paper Section VI-A2)."""

import pytest

from repro.core.challenge import Challenge, ProofResponse


def _challenge(c, id_len=12, beta=1000):
    return Challenge(
        indices=tuple(range(c)),
        block_ids=tuple(b"i" * id_len for _ in range(c)),
        betas=tuple(beta + i for i in range(c)),
    )


class TestChallengeSizes:
    def test_paper_size_formula(self):
        ch = _challenge(10)
        # c(|id| + |p|) with the default |id| = |p|.
        assert ch.paper_size_bits(160) == 10 * (160 + 160)

    def test_paper_size_custom_id_bits(self):
        ch = _challenge(10)
        assert ch.paper_size_bits(160, id_bits=20) == 10 * (20 + 160)

    def test_wire_size_counts_actual_bytes(self):
        ch = _challenge(4, id_len=5, beta=300)  # 300 -> 2 bytes each
        assert ch.wire_size_bytes() == 4 * 5 + 4 * 2

    def test_wire_size_minimum_one_byte_per_beta(self):
        ch = Challenge(indices=(0,), block_ids=(b"x",), betas=(1,))
        assert ch.wire_size_bytes() == 1 + 1

    def test_len(self):
        assert len(_challenge(7)) == 7


class TestResponseSizes:
    def test_paper_size_formula(self, group):
        resp = ProofResponse(sigma=group.g1(), alphas=(1, 2, 3))
        assert resp.paper_size_bits(160) == (3 + 1) * 160

    def test_wire_size(self, group):
        resp = ProofResponse(sigma=group.g1(), alphas=(1, 2, 3))
        scalar = (group.order.bit_length() + 7) // 8
        assert resp.wire_size_bytes() == len(group.g1().to_bytes()) + 3 * scalar

    def test_response_constant_in_challenge_size(self, group):
        """The PDP selling point: response size depends on k only."""
        small = ProofResponse(sigma=group.g1(), alphas=tuple(range(4)))
        # Response for a 10x bigger challenge has identical size.
        assert small.paper_size_bits(160) == ProofResponse(
            sigma=group.g1() ** 99, alphas=tuple(range(100, 104))
        ).paper_size_bits(160)
