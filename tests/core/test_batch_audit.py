"""Tests for batch auditing multiple files (verify_batch) and the
fixed-base owner path."""

import pytest

from repro.core.accounting import CostTracker
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier


@pytest.fixture()
def multi_file(group, params_k4, rng):
    sem = SecurityMediator(group, rng=rng, require_membership=False)
    owner = DataOwner(params_k4, sem.pk, rng=rng)
    cloud = CloudServer(params_k4, rng=rng)
    verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
    audits = []
    for i in range(4):
        fid = b"file-%d" % i
        signed = owner.sign_file(b"content %d " % i * 10, fid, sem)
        cloud.store(signed)
        ch = verifier.generate_challenge(fid, len(signed.blocks))
        audits.append((ch, cloud.generate_proof(fid, ch)))
    return sem, cloud, verifier, audits


class TestBatchAudit:
    def test_all_honest_accepts(self, multi_file, rng):
        _, _, verifier, audits = multi_file
        assert verifier.verify_batch(audits, rng)

    def test_empty_batch(self, multi_file, rng):
        _, _, verifier, _ = multi_file
        assert verifier.verify_batch([], rng)

    def test_single_audit_batch(self, multi_file, rng):
        _, _, verifier, audits = multi_file
        assert verifier.verify_batch(audits[:1], rng)

    def test_one_bad_file_fails_batch(self, multi_file, rng, group):
        from repro.core.challenge import ProofResponse

        _, _, verifier, audits = multi_file
        ch, proof = audits[2]
        audits[2] = (ch, ProofResponse(sigma=proof.sigma * group.g1(), alphas=proof.alphas))
        assert not verifier.verify_batch(audits, rng)

    def test_compensating_errors_fail(self, multi_file, rng, group):
        """Random weights defeat error cancellation across files."""
        from repro.core.challenge import ProofResponse

        _, _, verifier, audits = multi_file
        g = group.g1()
        ch0, p0 = audits[0]
        ch1, p1 = audits[1]
        audits[0] = (ch0, ProofResponse(sigma=p0.sigma * g, alphas=p0.alphas))
        audits[1] = (ch1, ProofResponse(sigma=p1.sigma * g.inverse(), alphas=p1.alphas))
        assert not verifier.verify_batch(audits, rng)

    def test_wrong_alpha_count_rejected(self, multi_file, rng):
        from repro.core.challenge import ProofResponse

        _, _, verifier, audits = multi_file
        ch, proof = audits[0]
        audits[0] = (ch, ProofResponse(sigma=proof.sigma, alphas=proof.alphas[:-1]))
        assert not verifier.verify_batch(audits, rng)

    def test_two_pairings_for_l_files(self, multi_file, rng, group):
        _, _, verifier, audits = multi_file
        with CostTracker(group) as tracker:
            assert verifier.verify_batch(audits, rng)
        assert tracker.pairings == 2  # regardless of L = 4 files

    def test_matches_individual_verdicts(self, multi_file, rng):
        _, _, verifier, audits = multi_file
        individually = all(verifier.verify(ch, proof) for ch, proof in audits)
        assert verifier.verify_batch(audits, rng) == individually


class TestFixedBaseOwner:
    def test_same_signatures_as_plain_owner(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        plain = DataOwner(params_k4, sem.pk, rng=rng)
        fast = DataOwner(params_k4, sem.pk, rng=rng, use_fixed_base=True)
        data = b"either path, same signatures " * 4
        assert plain.sign_file(data, b"f", sem).signatures == fast.sign_file(
            data, b"f", sem
        ).signatures

    def test_fixed_base_skips_u_exponentiations(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        fast = DataOwner(params_k4, sem.pk, rng=rng, use_fixed_base=True)
        data = bytes(range(1, 150))
        with CostTracker(group) as tracker:
            signed = fast.sign_file(data, b"f", sem, batch=True)
        n = len(signed.blocks)
        # Bind's k u-exponentiations are gone; what remains per block is
        # blinding (1), SEM sign (1), batch share (2), recover (1).
        assert tracker.exp_g1 <= 5 * n

    def test_audits_pass_end_to_end(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        fast = DataOwner(params_k4, sem.pk, rng=rng, use_fixed_base=True)
        cloud = CloudServer(params_k4, rng=rng)
        verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
        cloud.store(fast.sign_file(b"fast-signed data " * 6, b"f", sem))
        ch = verifier.generate_challenge(b"f", cloud.retrieve(b"f").n_blocks)
        assert verifier.verify(ch, cloud.generate_proof(b"f", ch))
