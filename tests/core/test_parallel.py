"""Parallel fan-out invariants: bit-identical results, exact op parity.

The tentpole contract: at any ``--workers`` value a seeded run produces
byte-for-byte the same signatures and proofs, and the merged per-worker
operation counters reconcile exactly with a single-process run — so the
cost table and the regression gate never see the worker count.
"""

import random

import pytest

from repro.core import SemPdpSystem
from repro.core.parallel import MIN_PARALLEL_ITEMS, WorkerPool, chunk_ranges, default_workers
from repro.core.params import setup
from repro.obs import Observability
from repro.obs.exporters import model_equivalent_exp, phase_cost_rows
from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup
from repro.pairing.interface import OperationCounter


def _fresh_group():
    return TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS["toy-64"])


class TestChunkRanges:
    def test_covers_exactly(self):
        for n_items in (0, 1, 7, 8, 100):
            for n_chunks in (1, 2, 3, 8, 200):
                ranges = chunk_ranges(n_items, n_chunks)
                flat = [i for lo, hi in ranges for i in range(lo, hi)]
                assert flat == list(range(n_items))

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in chunk_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_never_more_chunks_than_items(self):
        assert len(chunk_ranges(3, 16)) == 3
        assert chunk_ranges(0, 4) == []

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestPoolMsm:
    def test_matches_multi_exp_point_and_ops(self):
        group = _fresh_group()
        params = setup(group, 4)
        rng = random.Random(3)
        elements = [group.random_g1(rng) for _ in range(24)]
        exponents = [rng.randrange(group.order) for _ in range(24)] + [0] * 0
        serial_counter = OperationCounter()
        group.attach_counter(serial_counter)
        expected = group.multi_exp(elements, exponents)
        serial_ops = serial_counter.snapshot()
        group.detach_counter()

        pool_counter = OperationCounter()
        group.attach_counter(pool_counter)
        with WorkerPool(params, 2) as pool:
            result = pool.msm(elements, exponents)
        pool_ops = pool_counter.snapshot()
        group.detach_counter()
        assert result.point == expected.point
        assert pool_ops == serial_ops

    def test_inline_below_threshold(self):
        group = _fresh_group()
        params = setup(group, 4)
        rng = random.Random(4)
        n = MIN_PARALLEL_ITEMS - 1
        elements = [group.random_g1(rng) for _ in range(n)]
        exponents = [rng.randrange(group.order) for _ in range(n)]
        with WorkerPool(params, 4) as pool:
            result = pool.msm(elements, exponents)
            assert pool._pool is None  # no processes were forked
        assert result.point == group.multi_exp(elements, exponents).point

    def test_validation(self):
        group = _fresh_group()
        params = setup(group, 4)
        with WorkerPool(params, 2) as pool:
            with pytest.raises(ValueError, match="equal length"):
                pool.msm([group.g1()], [1, 2])
            with pytest.raises(ValueError, match="at least one term"):
                pool.msm([], [])

    def test_hash_msm_matches_serial(self):
        group = _fresh_group()
        params = setup(group, 4)
        rng = random.Random(5)
        ids = [b"block-%d" % i for i in range(20)]
        betas = [rng.randrange(1, group.order) for _ in range(20)]
        serial = group.multi_exp([group.hash_to_g1(i) for i in ids], betas)
        counter = OperationCounter()
        group.attach_counter(counter)
        with WorkerPool(params, 3) as pool:
            result = pool.hash_msm(ids, betas)
        group.detach_counter()
        assert result.point == serial.point
        assert counter.hash_to_g1 == 20
        assert counter.exp_g1_msm == 20


def _run_system(workers, data, table_cache_dir=None):
    group = _fresh_group()
    obs = Observability.create()
    with SemPdpSystem.create(group, k=4, rng=random.Random(11), obs=obs,
                             workers=workers,
                             table_cache_dir=table_cache_dir) as system:
        owner = system.enroll("alice")
        system.upload(owner, data, b"file-1")
        ok = system.audit(b"file-1")
        stored = system.cloud._files[b"file-1"]
        signatures = [sig.point for sig in stored.signatures]
    group.detach_counter()
    rows = {
        r["phase"]: (r["exp"], r["pair"]) for r in phase_cost_rows(obs.tracer, k=4)
    }
    return ok, signatures, rows, obs


DATA = b"shared document payload " * 40


class TestEndToEndInvariance:
    def test_bit_identical_signatures_and_equal_costs(self):
        ok1, sigs1, rows1, _ = _run_system(1, DATA)
        ok2, sigs2, rows2, _ = _run_system(2, DATA)
        ok3, sigs3, rows3, _ = _run_system(3, DATA)
        assert ok1 and ok2 and ok3
        assert sigs1 == sigs2 == sigs3
        assert rows1 == rows2 == rows3

    def test_cached_tables_change_nothing(self, tmp_path):
        ok_a, sigs_a, rows_a, _ = _run_system(1, DATA)
        # First parallel run populates the cache, second loads it.
        ok_b, sigs_b, rows_b, _ = _run_system(2, DATA, table_cache_dir=tmp_path)
        ok_c, sigs_c, rows_c, _ = _run_system(2, DATA, table_cache_dir=tmp_path)
        assert ok_a and ok_b and ok_c
        assert sigs_a == sigs_b == sigs_c
        for phase in ("proofgen", "proofverify"):
            assert rows_a[phase] == rows_b[phase] == rows_c[phase]
        # Sign uses fixed-base lookups under the cache but the
        # model-equivalent totals still reconcile exactly.
        assert rows_a["sign"] == rows_b["sign"] == rows_c["sign"]

    def test_worker_spans_cover_fanned_out_ops(self):
        _, _, _, obs = _run_system(2, DATA)
        worker_spans = [s for s in obs.tracer.spans if s.name.endswith(".worker")]
        assert worker_spans, "fan-out should record per-worker spans"
        fanned = sum(
            model_equivalent_exp(span.op_counts()) for span in worker_spans
        )
        assert fanned > 0

    def test_cost_table_reconciles_under_parallelism(self):
        _, _, rows, obs = _run_system(2, DATA)
        modeled = [r for r in phase_cost_rows(obs.tracer, k=4)
                   if r["predicted_exp"] is not None]
        assert {r["phase"] for r in modeled} == {"sign", "proofgen", "proofverify"}
        for row in modeled:
            assert row["exp"] == row["predicted_exp"], row
            assert row["pair"] == row["predicted_pair"], row
