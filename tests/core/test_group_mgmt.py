"""Dedicated tests for the group manager and credentials."""

import pytest

from repro.core.group_mgmt import GroupManager, MemberCredential
from repro.core.sem import SecurityMediator


class TestMemberCredential:
    def test_fresh_tokens_distinct(self, rng):
        assert MemberCredential.fresh(rng).token != MemberCredential.fresh(rng).token

    def test_token_length(self, rng):
        assert len(MemberCredential.fresh(rng).token) == 16

    def test_system_randomness_path(self):
        assert len(MemberCredential.fresh().token) == 16

    def test_frozen(self, rng):
        credential = MemberCredential.fresh(rng)
        with pytest.raises(Exception):
            credential.token = b"forged"


class TestGroupManager:
    def test_join_propagates_to_all_sems(self, group, rng):
        sems = [SecurityMediator(group, rng=rng) for _ in range(3)]
        manager = GroupManager(sems=sems, rng=rng)
        credential = manager.join("alice")
        assert all(sem.serves(credential) for sem in sems)

    def test_late_registered_sem_learns_existing_members(self, group, rng):
        manager = GroupManager(rng=rng)
        credential = manager.join("alice")
        late_sem = SecurityMediator(group, rng=rng)
        manager.register_sem(late_sem)
        assert late_sem.serves(credential)

    def test_revocation_propagates(self, group, rng):
        sems = [SecurityMediator(group, rng=rng) for _ in range(2)]
        manager = GroupManager(sems=sems, rng=rng)
        credential = manager.join("alice")
        manager.revoke("alice")
        assert not any(sem.serves(credential) for sem in sems)

    def test_member_count_and_enrollment(self, rng):
        manager = GroupManager(rng=rng)
        manager.join("a")
        manager.join("b")
        assert manager.member_count == 2
        assert manager.is_enrolled("a") and not manager.is_enrolled("c")

    def test_double_join_rejected(self, rng):
        manager = GroupManager(rng=rng)
        manager.join("a")
        with pytest.raises(ValueError):
            manager.join("a")

    def test_revoke_unknown_rejected(self, rng):
        with pytest.raises(KeyError):
            GroupManager(rng=rng).revoke("ghost")

    def test_rejoin_after_revocation_gets_fresh_credential(self, group, rng):
        sem = SecurityMediator(group, rng=rng)
        manager = GroupManager(sems=[sem], rng=rng)
        old = manager.join("alice")
        manager.revoke("alice")
        new = manager.join("alice")
        assert new.token != old.token
        assert sem.serves(new)
        assert not sem.serves(old)  # the old credential stays dead

    def test_manager_knows_identity_sems_do_not(self, group, rng):
        """The accountability/anonymity split: only the manager can map a
        credential back to a member id."""
        sem = SecurityMediator(group, rng=rng)
        manager = GroupManager(sems=[sem], rng=rng)
        credential = manager.join("alice")
        assert manager._members["alice"] == credential
        # The SEM stores only raw tokens, no names anywhere.
        assert credential.token in sem._members
        assert not any(
            isinstance(entry, str) for entry in sem._members
        )
