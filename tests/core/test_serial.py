"""Tests for the canonical binary serialization of protocol objects."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.challenge import Challenge, ProofResponse
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.serial import (
    decode_challenge,
    decode_response,
    decode_signed_file,
    encode_challenge,
    encode_response,
    encode_signed_file,
    read_varint,
    write_varint,
)
from repro.core.verifier import PublicVerifier


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_round_trip(self, value):
        stream = io.BytesIO()
        write_varint(stream, value)
        stream.seek(0)
        assert read_varint(stream) == value

    @settings(max_examples=50)
    @given(st.integers(0, 2**64))
    def test_round_trip_property(self, value):
        stream = io.BytesIO()
        write_varint(stream, value)
        stream.seek(0)
        assert read_varint(stream) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(io.BytesIO(), -1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            read_varint(io.BytesIO(b"\x80"))

    def test_compactness(self):
        stream = io.BytesIO()
        write_varint(stream, 127)
        assert len(stream.getvalue()) == 1


@pytest.fixture()
def deployment(group, params_k4, rng):
    sem = SecurityMediator(group, rng=rng, require_membership=False)
    owner = DataOwner(params_k4, sem.pk, rng=rng)
    signed = owner.sign_file(b"serialize me " * 7, b"sf", sem)
    verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
    return sem, owner, signed, verifier


class TestSignedFileCodec:
    def test_round_trip(self, deployment, params_k4):
        _, _, signed, _ = deployment
        data = encode_signed_file(signed, params_k4)
        decoded = decode_signed_file(data, params_k4)
        assert decoded.file_id == signed.file_id
        assert decoded.blocks == signed.blocks
        assert list(decoded.signatures) == list(signed.signatures)
        assert decoded.encrypted == signed.encrypted

    def test_round_trip_encrypted(self, deployment, params_k4, group, rng):
        sem, owner, _, _ = deployment
        signed = owner.sign_file(b"secret", b"sf2", sem, encrypt_key=bytes(32))
        decoded = decode_signed_file(encode_signed_file(signed, params_k4), params_k4)
        assert decoded.encrypted
        assert decoded.nonce == signed.nonce

    def test_decoded_file_still_audits(self, deployment, params_k4, rng):
        """Serialization must preserve cryptographic validity end to end."""
        from repro.core.cloud import CloudServer

        sem, _, signed, verifier = deployment
        decoded = decode_signed_file(encode_signed_file(signed, params_k4), params_k4)
        cloud = CloudServer(params_k4, rng=rng)
        cloud.store(decoded)
        ch = verifier.generate_challenge(b"sf", len(decoded.blocks))
        assert verifier.verify(ch, cloud.generate_proof(b"sf", ch))

    def test_wrong_magic_rejected(self, deployment, params_k4):
        _, _, signed, _ = deployment
        data = bytearray(encode_signed_file(signed, params_k4))
        data[0] ^= 0xFF
        with pytest.raises(ValueError):
            decode_signed_file(bytes(data), params_k4)

    def test_k_mismatch_rejected(self, deployment, params_k4, params_k8):
        _, _, signed, _ = deployment
        data = encode_signed_file(signed, params_k4)
        with pytest.raises(ValueError):
            decode_signed_file(data, params_k8)

    def test_deterministic(self, deployment, params_k4):
        _, _, signed, _ = deployment
        assert encode_signed_file(signed, params_k4) == encode_signed_file(signed, params_k4)


class TestChallengeCodec:
    def test_round_trip(self, deployment, params_k4):
        _, _, signed, verifier = deployment
        ch = verifier.generate_challenge(b"sf", len(signed.blocks), sample_size=3)
        decoded = decode_challenge(encode_challenge(ch, params_k4), params_k4)
        assert decoded == ch

    def test_wrong_magic(self, params_k4):
        with pytest.raises(ValueError):
            decode_challenge(b"XXXXXX\x00", params_k4)


class TestResponseCodec:
    def test_round_trip(self, deployment, params_k4, rng):
        from repro.core.cloud import CloudServer

        _, _, signed, verifier = deployment
        cloud = CloudServer(params_k4, rng=rng)
        cloud.store(signed)
        ch = verifier.generate_challenge(b"sf", len(signed.blocks))
        proof = cloud.generate_proof(b"sf", ch)
        decoded = decode_response(encode_response(proof, params_k4), params_k4)
        assert decoded.sigma == proof.sigma
        assert decoded.alphas == proof.alphas
        # And the decoded proof still verifies.
        assert verifier.verify(ch, decoded)

    def test_wrong_magic(self, params_k4):
        with pytest.raises(ValueError):
            decode_response(b"NOPE!!", params_k4)
