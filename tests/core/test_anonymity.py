"""Anonymity properties (the paper's central claim).

Three angles:
1. Public verifiers see only organization-keyed material — signatures of
   different members are *identically distributed* (in fact identical
   functions of the block), so nothing distinguishes members.
2. The SEM's transcript cannot be linked to stored signatures.
3. The multi-owner scenario: per-block author attribution is impossible.
"""

import pytest

from repro.core import SemPdpSystem
from repro.core.blocks import aggregate_block


@pytest.fixture()
def system(group, rng):
    return SemPdpSystem.create(group, k=3, rng=rng)


class TestVerifierSideAnonymity:
    def test_same_block_same_signature_regardless_of_member(self, system):
        """If Alice and Bob sign identical content under the same block ids,
        the verification metadata is bit-for-bit identical: a verifier
        provably cannot attribute blocks to members."""
        alice = system.enroll("alice")
        bob = system.enroll("bob")
        data = b"identical block content"
        signed_a = alice.sign_file(data, b"same-file", system.sem)
        signed_b = bob.sign_file(data, b"same-file", system.sem)
        assert list(signed_a.signatures) == list(signed_b.signatures)

    def test_verification_uses_only_org_key(self, system):
        """Audits never touch member credentials or identities."""
        alice = system.enroll("alice")
        system.upload(alice, b"data " * 5, b"f")
        assert system.verifier.org_pk == system.org_pk
        assert system.audit(b"f")

    def test_multi_owner_file_indistinguishable(self, system, params_k4):
        """Blocks signed by different members within one file carry
        signatures under the same key — the multi-owner scenario of
        Section IV-C."""
        alice = system.enroll("alice")
        bob = system.enroll("bob")
        # Each uploads separate files; signatures on any block only depend
        # on block content + org key.
        system.upload(alice, b"A" * 40, b"fa")
        system.upload(bob, b"B" * 40, b"fb")
        group = system.params.group
        for fid in (b"fa", b"fb"):
            stored = system.cloud.retrieve(fid)
            for block, sig in zip(stored.blocks, stored.signatures):
                lhs = group.pair(sig, group.g2())
                rhs = group.pair(aggregate_block(system.params, block), system.org_pk)
                assert lhs == rhs  # only the ORG key appears


class TestSemSideAnonymityAndPrivacy:
    def test_sem_never_sees_block_aggregates(self, system):
        alice = system.enroll("alice")
        system.upload(alice, b"private medical data " * 3, b"f")
        stored = system.cloud.retrieve(b"f")
        aggregates = {
            aggregate_block(system.params, b).to_bytes() for b in stored.blocks
        }
        sem_view = {e.blinded.to_bytes() for e in system.sem.transcript}
        assert not aggregates & sem_view

    def test_sem_never_sees_stored_signatures(self, system):
        alice = system.enroll("alice")
        system.upload(alice, b"private data " * 3, b"f")
        stored_sigs = {s.to_bytes() for s in system.cloud.retrieve(b"f").signatures}
        sem_out = {e.blind_signature.to_bytes() for e in system.sem.transcript}
        assert not stored_sigs & sem_out

    def test_transcript_consistent_with_every_block(self, system):
        """Unlinkability: for every (transcript entry, stored block) pair a
        valid blinding factor exists, so the SEM cannot link requests to
        blocks even with unbounded computation."""
        alice = system.enroll("alice")
        system.upload(alice, b"linkability test data " * 2, b"f")
        group = system.params.group
        stored = system.cloud.retrieve(b"f")
        for entry in system.sem.transcript:
            for block in stored.blocks:
                quotient = entry.blinded / aggregate_block(system.params, block)
                # In a prime-order group every element is g^r for some r.
                assert (quotient**group.order).is_identity()

    def test_blinded_requests_carry_no_member_identifier(self, system):
        """Two members' signing requests are drawn from the same
        distribution (both uniform in G1)."""
        alice = system.enroll("alice")
        bob = system.enroll("bob")
        system.upload(alice, b"from alice", b"fa")
        system.upload(bob, b"from bob", b"fb")
        blinded = [e.blinded.to_bytes() for e in system.sem.transcript]
        assert len(set(blinded)) == len(blinded)  # all fresh, no structure


class TestContrastWithSW08:
    def test_sw08_leaks_owner_identity(self, group, params_k4, rng):
        """The baseline's verification is keyed by the OWNER's public key:
        distinguishing owners is trivial (this is the leak SEM-PDP fixes)."""
        from repro.baselines.sw08 import SW08Owner, SW08Verifier
        from repro.core.cloud import CloudServer

        alice = SW08Owner(params_k4, rng=rng)
        bob = SW08Owner(params_k4, rng=rng)
        cloud = CloudServer(params_k4, rng=rng)
        cloud.store(alice.sign_file(b"data", b"fa"))
        cloud.store(bob.sign_file(b"data", b"fb"))
        verifier_for_alice = SW08Verifier(params_k4, alice.pk, rng=rng)
        ch = verifier_for_alice.generate_challenge(b"fa", cloud.retrieve(b"fa").n_blocks)
        assert verifier_for_alice.verify(ch, cloud.generate_proof(b"fa", ch))
        # The SAME proof under Bob's key fails: the key identifies the owner.
        verifier_for_bob = SW08Verifier(params_k4, bob.pk, rng=rng)
        ch_b = verifier_for_bob.generate_challenge(b"fa", cloud.retrieve(b"fa").n_blocks)
        assert not verifier_for_bob.verify(ch_b, cloud.generate_proof(b"fa", ch_b))
