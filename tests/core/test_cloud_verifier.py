"""Tests for CloudServer (Response) and PublicVerifier (Challenge/Verify)."""

import pytest

from repro.core.challenge import Challenge, ProofResponse
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import (
    PublicVerifier,
    blocks_needed_for_detection,
    detection_probability,
)


@pytest.fixture()
def deployment(group, params_k4, rng):
    sem = SecurityMediator(group, rng=rng, require_membership=False)
    owner = DataOwner(params_k4, sem.pk, rng=rng)
    cloud = CloudServer(params_k4, org_pk=sem.pk, rng=rng)
    verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
    signed = owner.sign_file(b"cloud stored shared data " * 10, b"file", sem)
    cloud.store(signed)
    return sem, owner, cloud, verifier, signed


class TestChallengeGeneration:
    def test_full_challenge(self, deployment):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        assert len(ch) == len(signed.blocks)
        assert sorted(ch.indices) == list(range(len(signed.blocks)))

    def test_sampled_challenge(self, deployment):
        _, _, _, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks), sample_size=3)
        assert len(ch) == 3
        assert all(0 <= i < len(signed.blocks) for i in ch.indices)

    def test_sample_larger_than_n_clamps(self, deployment):
        _, _, _, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks), sample_size=10**6)
        assert len(ch) == len(signed.blocks)

    def test_small_exponent_challenge(self, deployment):
        _, _, _, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks), beta_bits=16)
        assert all(0 < b < (1 << 16) for b in ch.betas)

    def test_betas_nonzero(self, deployment):
        _, _, _, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        assert all(b != 0 for b in ch.betas)

    def test_challenge_validation(self):
        with pytest.raises(ValueError):
            Challenge(indices=(0, 0), block_ids=(b"a", b"b"), betas=(1, 2))
        with pytest.raises(ValueError):
            Challenge(indices=(0,), block_ids=(b"a", b"b"), betas=(1, 2))


class TestResponseAndVerify:
    def test_honest_proof_verifies(self, deployment):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        assert verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_sampled_proof_verifies(self, deployment):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks), sample_size=4)
        assert verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_small_exponents_verify(self, deployment):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks), beta_bits=16)
        assert verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_single_block_challenge(self, deployment):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks), sample_size=1)
        assert verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_empty_challenge_rejected(self, deployment, params_k4):
        _, _, cloud, _, _ = deployment
        empty = Challenge(indices=(), block_ids=(), betas=())
        with pytest.raises(ValueError):
            cloud.generate_proof(b"file", empty)

    def test_wrong_alpha_count_rejected(self, deployment):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        proof = cloud.generate_proof(b"file", ch)
        bad = ProofResponse(sigma=proof.sigma, alphas=proof.alphas[:-1])
        assert not verifier.verify(ch, bad)


class TestTamperDetection:
    def test_tampered_block_detected(self, deployment):
        _, _, cloud, verifier, signed = deployment
        cloud.tamper_block(b"file", 2)
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        assert not verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_tampered_signature_detected(self, deployment):
        _, _, cloud, verifier, signed = deployment
        cloud.tamper_signature(b"file", 1)
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        assert not verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_dropped_block_detected(self, deployment):
        _, _, cloud, verifier, signed = deployment
        cloud.drop_block(b"file", 0)
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        assert not verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_unsampled_corruption_missed(self, deployment):
        """Sampling that avoids the corrupt block accepts — by design."""
        _, _, cloud, verifier, signed = deployment
        last = len(signed.blocks) - 1
        cloud.tamper_block(b"file", last)
        ch = verifier.generate_challenge(b"file", last)  # never samples `last`
        assert verifier.verify(ch, cloud.generate_proof(b"file", ch))

    def test_forged_sigma_rejected(self, deployment, group):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        proof = cloud.generate_proof(b"file", ch)
        forged = ProofResponse(sigma=group.random_g1(), alphas=proof.alphas)
        assert not verifier.verify(ch, forged)

    def test_shifted_alphas_rejected(self, deployment, params_k4):
        _, _, cloud, verifier, signed = deployment
        ch = verifier.generate_challenge(b"file", len(signed.blocks))
        proof = cloud.generate_proof(b"file", ch)
        shifted = (proof.alphas[-1],) + proof.alphas[:-1]
        assert not verifier.verify(ch, ProofResponse(sigma=proof.sigma, alphas=shifted))

    def test_replayed_response_fails_fresh_challenge(self, deployment):
        """Fresh random betas make recorded responses worthless."""
        _, _, cloud, verifier, signed = deployment
        ch1 = verifier.generate_challenge(b"file", len(signed.blocks))
        old = cloud.generate_proof(b"file", ch1)
        ch2 = verifier.generate_challenge(b"file", len(signed.blocks))
        assert ch1.betas != ch2.betas
        assert not verifier.verify(ch2, old)


class TestUploadAdmission:
    def test_valid_upload_accepted(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        cloud = CloudServer(params_k4, org_pk=sem.pk, verify_on_upload=True, rng=rng)
        cloud.store(owner.sign_file(b"data", b"f", sem))
        assert cloud.has_file(b"f")

    def test_forged_upload_rejected(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        impostor_sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, impostor_sem.pk, rng=rng)
        cloud = CloudServer(params_k4, org_pk=sem.pk, verify_on_upload=True, rng=rng)
        signed = owner.sign_file(b"data", b"f", impostor_sem)
        with pytest.raises(PermissionError):
            cloud.store(signed)

    def test_verify_on_upload_requires_key(self, params_k4, rng):
        cloud = CloudServer(params_k4, verify_on_upload=True, rng=rng)
        sem = SecurityMediator(params_k4.group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        with pytest.raises(ValueError):
            cloud.store(owner.sign_file(b"d", b"f", sem))

    def test_storage_accounting(self, deployment, group):
        _, _, cloud, _, signed = deployment
        stored = cloud.retrieve(b"file")
        assert stored.n_blocks == len(signed.blocks)
        assert stored.signature_storage_bytes() == len(signed.blocks) * group.g1_element_bytes()
        assert cloud.stored_files == 1


class TestDetectionProbability:
    def test_formula(self):
        assert detection_probability(0.0, 100) == 0.0
        assert detection_probability(1.0, 1) == 1.0
        assert abs(detection_probability(0.01, 460) - (1 - 0.99**460)) < 1e-12

    def test_paper_c460_claim(self):
        """c = 460 detects 1% corruption with > 99% probability (Table II)."""
        assert detection_probability(0.01, 460) > 0.99

    def test_blocks_needed(self):
        assert blocks_needed_for_detection(0.01, 0.99) == 459  # ceil(ln.01/ln.99)
        assert detection_probability(0.01, blocks_needed_for_detection(0.01, 0.99)) >= 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            detection_probability(-0.1, 10)
        with pytest.raises(ValueError):
            blocks_needed_for_detection(0.0, 0.5)
        with pytest.raises(ValueError):
            blocks_needed_for_detection(0.5, 1.0)

    def test_monotonicity(self):
        probs = [detection_probability(0.05, c) for c in (1, 10, 50, 100)]
        assert probs == sorted(probs)
