"""Operation-count accounting: measured Exp/Pair tallies versus the
closed-form expressions behind Table I."""

import pytest

from repro.core.accounting import CostTracker
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier


def _nonzero_elements(signed):
    return sum(1 for b in signed.blocks for e in b.elements if e)


class TestSigningCounts:
    def test_basic_scheme_pairings(self, group, params_k4, rng):
        """Per-signature Eq. 4 verification costs 2 pairings per block."""
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        data = b"count my operations " * 5
        with CostTracker(group) as tracker:
            signed = owner.sign_file(data, b"f", sem, batch=False)
        n = len(signed.blocks)
        assert tracker.pairings == 2 * n

    def test_optimized_scheme_two_pairings_total(self, group, params_k4, rng):
        """Eq. 7 batch verification: 2 pairings regardless of n."""
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        with CostTracker(group) as tracker:
            owner.sign_file(b"count my operations " * 5, b"f", sem, batch=True)
        assert tracker.pairings == 2

    def test_basic_exp_counts_match_formula(self, group, params_k4, rng):
        """n(k+3) Exp_G1 — minus skipped zero elements (an implementation
        optimization the formula counts conservatively)."""
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        data = bytes(range(1, 250))  # avoid zero bytes so blocks are dense
        with CostTracker(group) as tracker:
            signed = owner.sign_file(data, b"f", sem, batch=False)
        n = len(signed.blocks)
        k = params_k4.k
        nonzero = _nonzero_elements(signed)
        # Bind: nonzero u-exps + n blinding exps; Sign: n; Unblind: n.
        expected = nonzero + 3 * n
        assert tracker.exp_g1 == expected
        assert expected <= n * (k + 3)  # the paper's bound

    def test_optimized_exp_counts_within_formula(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        data = bytes(range(1, 250))
        with CostTracker(group) as tracker:
            signed = owner.sign_file(data, b"f", sem, batch=True)
        n = len(signed.blocks)
        # Bind + Sign + batch(2n) + recover(n): <= n(k+5).
        assert tracker.exp_g1 <= n * (params_k4.k + 5)
        assert tracker.pairings == 2

    def test_multi_sem_optimized_pairings(self, group, params_k4, rng):
        """Eq. 14 budget: t + 1 pairings for share verification plus the
        final Eq. 7 batch check (2 more)."""
        from repro.core.multi_sem import MultiSEMClient, SEMCluster

        t = 3
        cluster = SEMCluster(group, t=t, rng=rng, require_membership=False)
        client = MultiSEMClient(cluster, batch=True, rng=rng)
        owner = DataOwner(params_k4, cluster.master_pk, rng=rng)
        with CostTracker(group) as tracker:
            owner.sign_file(
                b"multi sem counting " * 4, b"f", client, sem_pk_g1=cluster.master_pk_g1
            )
        # t per-SEM batch checks (2 pairings each, incremental validation)
        # + final Eq. 7 check (2): bounded by 2(t + 1).
        assert tracker.pairings <= 2 * (t + 1)


class TestVerificationCounts:
    def test_verification_two_pairings(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        cloud = CloudServer(params_k4, rng=rng)
        verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
        cloud.store(owner.sign_file(b"data " * 30, b"f", sem))
        n = cloud.retrieve(b"f").n_blocks
        ch = verifier.generate_challenge(b"f", n)
        proof = cloud.generate_proof(b"f", ch)
        with CostTracker(group) as tracker:
            assert verifier.verify(ch, proof)
        assert tracker.pairings == 2
        # (c + k) exponentiations (zero alphas skipped).
        assert tracker.exp_g1 <= n + params_k4.k

    def test_response_exponentiations(self, group, params_k4, rng):
        """The cloud's Response: one exponentiation per challenged block."""
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        cloud = CloudServer(params_k4, rng=rng)
        verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
        cloud.store(owner.sign_file(b"data " * 30, b"f", sem))
        c = 4
        ch = verifier.generate_challenge(b"f", cloud.retrieve(b"f").n_blocks, sample_size=c)
        with CostTracker(group) as tracker:
            cloud.generate_proof(b"f", ch)
        assert tracker.exp_g1 == c


class TestCostTracker:
    def test_nesting_restores_previous_counter(self, group):
        outer = CostTracker(group)
        with outer:
            _ = group.g1() ** 2
            with CostTracker(group) as inner:
                _ = group.g1() ** 2
            _ = group.g1() ** 2
        assert inner.exp_g1 == 1
        assert outer.exp_g1 == 2  # inner ops not double-counted

    def test_elapsed_time_positive(self, group):
        with CostTracker(group) as t:
            _ = group.g1() ** 12345
        assert t.elapsed_seconds > 0

    def test_record_bytes(self, group):
        t = CostTracker(group)
        t.record_bytes("owner->sem", 100)
        t.record_bytes("owner->sem", 50)
        assert t.bytes_sent == {"owner->sem": 150}

    def test_summary_shape(self, group):
        with CostTracker(group) as t:
            pass
        summary = t.summary()
        assert {"exp_g1", "pairings", "elapsed_seconds", "bytes_sent"} <= set(summary)
