"""Tests for the multi-SEM deployment (Section V): failover, byzantine
tolerance, and equality with the single-SEM signatures."""

import pytest

from repro.core.blocks import aggregate_block
from repro.core.multi_sem import InsufficientSharesError, MultiSEMClient, SEMCluster
from repro.core.owner import DataOwner
from repro.crypto.bls import bls_verify_element


@pytest.fixture()
def cluster(group, rng):
    return SEMCluster(group, t=3, rng=rng, require_membership=False)  # w = 5


class TestClusterSetup:
    def test_w_default_is_2t_minus_1(self, cluster):
        assert cluster.w == 5
        assert len(cluster.sems) == 5

    def test_explicit_w(self, group, rng):
        c = SEMCluster(group, t=2, w=4, rng=rng)
        assert c.w == 4

    def test_bad_threshold(self, group, rng):
        with pytest.raises(ValueError):
            SEMCluster(group, t=3, w=2, rng=rng)

    def test_sems_hold_share_keys(self, cluster, group):
        for sem, share_pk in zip(cluster.sems, cluster.key_shares.share_pks):
            assert sem.pk == share_pk

    def test_master_pk_not_any_share_pk(self, cluster):
        assert cluster.master_pk not in cluster.key_shares.share_pks


class TestSigning:
    def _sign(self, params, cluster, rng, batch=True, data=b"multi-sem data " * 5):
        client = MultiSEMClient(cluster, batch=batch, rng=rng)
        owner = DataOwner(params, cluster.master_pk, rng=rng)
        return owner.sign_file(data, b"f", client, sem_pk_g1=cluster.master_pk_g1)

    def test_signatures_verify_under_master_key(self, params_k4, cluster, rng):
        signed = self._sign(params_k4, cluster, rng)
        for block, sig in zip(signed.blocks, signed.signatures):
            assert bls_verify_element(
                params_k4.group, cluster.master_pk, aggregate_block(params_k4, block), sig
            )

    def test_identical_to_single_sem_signatures(self, params_k4, group, rng):
        """Section V: the final signature is the same in either mode."""
        from repro.core.sem import SecurityMediator
        from repro.crypto.shamir import recover_secret

        cluster = SEMCluster(group, t=2, rng=rng, require_membership=False)
        master_sk = recover_secret(cluster.key_shares.shares[:2], group.order)
        single = SecurityMediator(group, sk=master_sk, rng=rng, require_membership=False)
        data = b"same data either way"
        owner1 = DataOwner(params_k4, cluster.master_pk, rng=rng)
        multi_signed = owner1.sign_file(
            data, b"f", MultiSEMClient(cluster, rng=rng), sem_pk_g1=cluster.master_pk_g1
        )
        owner2 = DataOwner(params_k4, single.pk, rng=rng)
        single_signed = owner2.sign_file(data, b"f", single)
        assert multi_signed.signatures == single_signed.signatures

    def test_per_share_verification_mode(self, params_k4, cluster, rng):
        signed = self._sign(params_k4, cluster, rng, batch=False)
        assert len(signed.signatures) == len(signed.blocks)

    def test_tolerates_t_minus_1_crashes(self, params_k4, cluster, rng):
        cluster.crash(0)
        cluster.crash(1)
        signed = self._sign(params_k4, cluster, rng)
        for block, sig in zip(signed.blocks, signed.signatures):
            assert bls_verify_element(
                params_k4.group, cluster.master_pk, aggregate_block(params_k4, block), sig
            )

    def test_tolerates_byzantine_sems(self, params_k4, cluster, rng):
        cluster.corrupt(0)
        cluster.corrupt(1)
        signed = self._sign(params_k4, cluster, rng)
        assert bls_verify_element(
            params_k4.group,
            cluster.master_pk,
            aggregate_block(params_k4, signed.blocks[0]),
            signed.signatures[0],
        )

    def test_mixed_crash_and_byzantine(self, params_k4, cluster, rng):
        cluster.crash(2)
        cluster.corrupt(4)
        signed = self._sign(params_k4, cluster, rng)
        assert len(signed.signatures) == len(signed.blocks)

    def test_too_many_failures_raise(self, params_k4, cluster, rng):
        for j in range(3):  # t = 3: only 2 healthy SEMs remain
            cluster.crash(j)
        with pytest.raises(InsufficientSharesError):
            self._sign(params_k4, cluster, rng)

    def test_byzantine_majority_detected_not_accepted(self, params_k4, cluster, rng):
        for j in range(3):
            cluster.corrupt(j)
        with pytest.raises(InsufficientSharesError):
            self._sign(params_k4, cluster, rng)

    def test_heal_restores_service(self, params_k4, cluster, rng):
        for j in range(3):
            cluster.crash(j)
        cluster.heal(0)
        signed = self._sign(params_k4, cluster, rng)
        assert signed.signatures


class TestMembershipPropagation:
    def test_member_added_to_all_sems(self, cluster, rng):
        from repro.core.group_mgmt import MemberCredential

        credential = MemberCredential.fresh(rng)
        cluster.add_member(credential)
        assert all(sem.serves(credential) for sem in cluster.sems)

    def test_member_removed_from_all_sems(self, cluster, rng):
        from repro.core.group_mgmt import MemberCredential

        credential = MemberCredential.fresh(rng)
        cluster.add_member(credential)
        cluster.remove_member(credential)
        assert not any(sem.serves(credential) for sem in cluster.sems)
