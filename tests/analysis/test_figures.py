"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.calibrate import UnitCosts
from repro.analysis.cost_model import CostModel
from repro.analysis.figures import Series, figure_4a, figure_5b, figure_6a, figure_6b, render_chart

UNITS = UnitCosts(exp_g1=0.001, pair=0.08, mul_g1=1e-5, hash_g1=5e-4, mul_zp=1e-7)
MODEL = CostModel(UNITS)


class TestRenderChart:
    def test_basic_render(self):
        chart = render_chart(
            "title", [1.0, 2.0, 3.0], [Series("s", [1.0, 2.0, 3.0])], width=20, height=6
        )
        assert chart.startswith("title")
        assert "* s" in chart
        lines = chart.splitlines()
        assert len(lines) == 1 + 6 + 2 + 1  # title + grid + axis + legend

    def test_monotone_series_plots_monotone(self):
        chart = render_chart(
            "t", [0.0, 1.0], [Series("up", [0.0, 10.0])], width=10, height=5
        )
        rows = chart.splitlines()[1:6]
        first_col = min(i for i, row in enumerate(rows) if "*" in row)
        # The max point appears on the top row.
        assert "*" in rows[0]
        assert first_col == 0

    def test_multiple_series_distinct_markers(self):
        chart = render_chart(
            "t", [1.0, 2.0], [Series("a", [1, 2]), Series("b", [2, 1])],
            width=12, height=5,
        )
        assert "* a" in chart and "o b" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            render_chart("t", [], [])
        with pytest.raises(ValueError):
            render_chart("t", [1.0], [Series("s", [1.0, 2.0])])

    def test_all_zero_series(self):
        chart = render_chart("t", [1.0, 2.0], [Series("z", [0.0, 0.0])])
        assert "z" in chart  # renders without dividing by zero

    def test_unit_label(self):
        chart = render_chart("t", [1.0], [Series("s", [5.0])], y_unit="MB")
        assert "MB |" in chart


class TestPaperFigures:
    def test_figure_4a_contains_all_series(self):
        chart = figure_4a(MODEL, MODEL, [20, 100, 200])
        for label in ("Our Scheme", "Our Scheme*", "SW08"):
            assert label in chart

    def test_figure_5b(self):
        chart = figure_5b(MODEL, [2, 3, 4], [100, 1000])
        assert "k=100" in chart and "k=1000" in chart

    def test_figure_6a(self):
        chart = figure_6a(MODEL, [100, 500, 1000])
        assert "w=5" in chart

    def test_figure_6b(self):
        chart = figure_6b(MODEL, [100, 500, 1000])
        assert "signatures" in chart

    def test_make_figures_tool_runs(self, tmp_path, monkeypatch, capsys):
        import runpy
        import sys

        monkeypatch.setattr(sys, "argv",
                            ["make_figures.py", "--fast", "--out", str(tmp_path)])
        import pathlib

        tool = pathlib.Path(__file__).parent.parent.parent / "tools" / "make_figures.py"
        try:
            runpy.run_path(str(tool), run_name="__main__")
        except SystemExit as exc:
            assert exc.code == 0
        out = capsys.readouterr().out
        assert "Fig 4(a)" in out and "Fig 6(b)" in out
