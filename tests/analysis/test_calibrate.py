"""Tests for machine calibration."""

from repro.analysis.calibrate import UnitCosts, calibrate


class TestCalibrate:
    def test_all_units_positive(self, group, rng):
        units = calibrate(group, repeats=3, rng=rng)
        for value in units.as_dict().values():
            assert value > 0

    def test_relative_magnitudes(self, group, rng):
        """A pairing costs more than a group multiplication; an
        exponentiation costs more than a Z_p multiplication."""
        units = calibrate(group, repeats=5, rng=rng)
        assert units.pair > units.mul_g1
        assert units.exp_g1 > units.mul_zp

    def test_as_dict_keys(self):
        units = UnitCosts(exp_g1=1, pair=2, mul_g1=3, hash_g1=4, mul_zp=5)
        assert set(units.as_dict()) == {"exp_g1", "pair", "mul_g1", "hash_g1", "mul_zp"}

    def test_frozen(self):
        import dataclasses

        units = UnitCosts(exp_g1=1, pair=2, mul_g1=3, hash_g1=4, mul_zp=5)
        try:
            units.exp_g1 = 9
            raised = False
        except dataclasses.FrozenInstanceError:
            raised = True
        assert raised
