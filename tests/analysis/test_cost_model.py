"""Tests for the closed-form cost model (Table I / Fig. 6 / Table II)."""

import pytest

from repro.analysis.calibrate import UnitCosts
from repro.analysis.cost_model import (
    PAPER_DATA_BYTES,
    CostModel,
    oruta_sign_counts,
    oruta_verification_counts,
    sw08_exp_counts,
    table1_exp_pair_counts,
    verification_counts,
)

# Synthetic units with the paper-era PBC cost ratio (pairing ~80x a G1
# exponentiation, which is what makes "Our Scheme" ~2.5x slower than
# "Our Scheme*" at k = 100 in Figure 4(a)).
UNITS = UnitCosts(exp_g1=0.001, pair=0.08, mul_g1=0.00001, hash_g1=0.0005, mul_zp=1e-7)


@pytest.fixture()
def model():
    return CostModel(UNITS)


class TestTable1Formulas:
    def test_single_basic(self):
        c = table1_exp_pair_counts(n=100, k=10)
        assert c.exp_g1 == 100 * 13
        assert c.pair == 200

    def test_single_optimized(self):
        c = table1_exp_pair_counts(n=100, k=10, optimized=True)
        assert c.exp_g1 == 100 * 15
        assert c.pair == 2

    def test_multi_basic(self):
        c = table1_exp_pair_counts(n=100, k=10, t=3)
        assert c.exp_g1 == 100 * (10 + 7)
        assert c.pair == 600

    def test_multi_optimized(self):
        c = table1_exp_pair_counts(n=100, k=10, t=3, optimized=True)
        assert c.exp_g1 == 100 * (10 + 14)
        assert c.pair == 4

    def test_seconds_linear(self):
        c = table1_exp_pair_counts(n=10, k=5)
        assert c.seconds(UNITS) == pytest.approx(10 * 8 * UNITS.exp_g1 + 20 * UNITS.pair)

    def test_per_block_ms(self):
        c = table1_exp_pair_counts(n=10, k=5)
        assert c.per_block_ms(10, UNITS) == pytest.approx(c.seconds(UNITS) * 100)

    def test_baseline_formulas(self):
        assert sw08_exp_counts(10, 5).exp_g1 == 60
        assert oruta_sign_counts(10, 5, 4).exp_g1 == 10 * (5 + 7)
        assert verification_counts(460, 1000).exp_g1 == 1460
        assert verification_counts(460, 1000).pair == 2
        assert oruta_verification_counts(460, 1000, 10).pair == 11


class TestWorkloadGeometry:
    def test_paper_block_count(self, model):
        """2 GB at k = 1000, |p| = 160 -> ~100,000 blocks (Table II)."""
        n = model.n_blocks(1000)
        assert 100_000 <= n <= 110_000

    def test_block_count_inverse_in_k(self, model):
        assert model.n_blocks(100) == pytest.approx(10 * model.n_blocks(1000), rel=0.01)


class TestFigure6Curves:
    def test_k100_signing_comm_is_about_40mb(self, model):
        """Figure 6(a): k = 100 -> ~40 MB."""
        mb = model.signing_communication_bytes(100) / 1024**2
        assert 40 <= mb <= 43

    def test_k1000_signing_comm_is_about_4mb(self, model):
        mb = model.signing_communication_bytes(1000) / 1024**2
        assert 4 <= mb <= 4.3

    def test_multi_sem_scales_with_w(self, model):
        """Figure 6(a): w = 5, k = 1000 -> ~20 MB."""
        single = model.signing_communication_bytes(1000, w=1)
        five = model.signing_communication_bytes(1000, w=5)
        assert five == 5 * single
        assert 20 <= five / 1024**2 <= 21.5

    def test_storage_k100_is_20mb(self, model):
        """Figure 6(b): storage falls as 1/k; k = 100 -> ~20 MB."""
        mb = model.signature_storage_bytes(100) / 1024**2
        assert 20 <= mb <= 21.5

    def test_storage_monotone_decreasing(self, model):
        values = [model.signature_storage_bytes(k) for k in (100, 200, 500, 1000)]
        assert values == sorted(values, reverse=True)

    def test_oruta_storage_d_times_larger(self, model):
        assert model.oruta_signature_storage_bytes(1000, d=10) == 10 * model.signature_storage_bytes(1000)

    def test_knox_storage_constant_factor(self, model):
        assert model.knox_signature_storage_bytes(1000) == 10 * model.signature_storage_bytes(1000)


class TestTable2:
    def test_sampling_speedup(self, model):
        """c = 460 cuts verification cost dramatically versus all blocks."""
        n = model.n_blocks(1000)
        full = model.verification_seconds(n, 1000)
        sampled = model.verification_seconds(460, 1000)
        assert full / sampled > 50

    def test_communication_drops_with_sampling(self, model):
        n = model.n_blocks(1000)
        full = model.verification_communication_bytes(n, 1000)
        sampled = model.verification_communication_bytes(460, 1000)
        assert full > 40 * sampled

    def test_full_challenge_about_2mb(self, model):
        """Paper: 2.27 MB at n = 100,000 (consistent with |id| = 20 bits)."""
        n = model.n_blocks(1000)
        mb = model.verification_communication_bytes(n, 1000) / 1024**2
        assert 2.0 <= mb <= 2.6

    def test_oruta_response_larger(self, model):
        ours = model.verification_communication_bytes(460, 1000)
        oruta = model.oruta_verification_communication_bytes(460, 1000, d=10)
        assert oruta > ours


class TestSigningTimes:
    def test_optimized_close_to_sw08(self, model):
        """Figure 4(a)'s punchline: batch unblinding ~= SW08 signing."""
        ours = model.signing_per_block_ms(100, optimized=True)
        sw08 = model.sw08_per_block_ms(100)
        assert ours / sw08 < 1.1

    def test_basic_much_slower_than_optimized(self, model):
        basic = model.signing_per_block_ms(100)
        optimized = model.signing_per_block_ms(100, optimized=True)
        assert basic > 2 * optimized

    def test_multi_sem_mild_overhead(self, model):
        """Figure 4(b): multi-SEM (t = 3) close to single-SEM."""
        single = model.signing_per_block_ms(100, optimized=True)
        multi = model.signing_per_block_ms(100, t=3, optimized=True)
        assert 1.0 < multi / single < 1.5

    def test_times_increase_with_k(self, model):
        times = [model.signing_per_block_ms(k, optimized=True) for k in (20, 100, 200)]
        assert times == sorted(times)

    def test_default_data_size(self, model):
        assert model.data_bytes == PAPER_DATA_BYTES
