"""End-to-end tests for the dynamic-data extension."""

import pytest

from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.dynamics import DynamicCloudServer, DynamicFileClient, DynamicVerifier
from repro.dynamics.dynamic_file import make_dynamic_block_id


@pytest.fixture()
def dyn(group, params_k4, rng):
    sem = SecurityMediator(group, rng=rng, require_membership=False)
    owner = DataOwner(params_k4, sem.pk, rng=rng)
    client = DynamicFileClient(params_k4, owner, sem, b"dyn")
    cloud = DynamicCloudServer(params_k4)
    verifier = DynamicVerifier(params_k4, sem.pk)
    blocks, sigs, mutation = client.create([b"chunk-%d" % i for i in range(6)])
    cloud.create_file(b"dyn", blocks, sigs, mutation)
    return sem, owner, client, cloud, verifier


def _audit(cloud, verifier, rng, sample=None, min_epoch=None):
    ch = verifier.generate_challenge(cloud.n_blocks(b"dyn"), sample_size=sample, rng=rng)
    proof = cloud.generate_proof(b"dyn", ch)
    return verifier.verify(b"dyn", ch, proof, min_epoch=min_epoch)


class TestCreateAndAudit:
    def test_initial_audit(self, dyn, rng):
        _, _, _, cloud, verifier = dyn
        assert _audit(cloud, verifier, rng)

    def test_sampled_audit(self, dyn, rng):
        _, _, _, cloud, verifier = dyn
        assert _audit(cloud, verifier, rng, sample=2)

    def test_block_ids_carry_serial_and_version(self, dyn):
        _, _, _, cloud, _ = dyn
        assert cloud.block(b"dyn", 0).block_id == make_dynamic_block_id(b"dyn", 0, 0)

    def test_create_rejects_root_mismatch(self, group, params_k4, rng):
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        client = DynamicFileClient(params_k4, owner, sem, b"f")
        cloud = DynamicCloudServer(params_k4)
        blocks, sigs, mutation = client.create([b"a", b"b"])
        with pytest.raises(ValueError):
            cloud.create_file(b"f", blocks[:1], sigs[:1], mutation)


class TestMutations:
    def test_update_then_audit(self, dyn, rng):
        _, _, client, cloud, verifier = dyn
        cloud.apply(b"dyn", client.update(2, b"edited content"))
        assert _audit(cloud, verifier, rng)
        # version bumped in the identifier
        assert cloud.block(b"dyn", 2).block_id == make_dynamic_block_id(b"dyn", 2, 1)

    def test_insert_then_audit(self, dyn, rng):
        _, _, client, cloud, verifier = dyn
        cloud.apply(b"dyn", client.insert(3, b"inserted block"))
        assert cloud.n_blocks(b"dyn") == 7
        assert _audit(cloud, verifier, rng)
        # fresh serial, version 0
        assert cloud.block(b"dyn", 3).block_id == make_dynamic_block_id(b"dyn", 6, 0)

    def test_append(self, dyn, rng):
        _, _, client, cloud, verifier = dyn
        cloud.apply(b"dyn", client.append(b"appended"))
        assert cloud.n_blocks(b"dyn") == 7
        assert _audit(cloud, verifier, rng)

    def test_delete_then_audit(self, dyn, rng):
        _, _, client, cloud, verifier = dyn
        cloud.apply(b"dyn", client.delete(0))
        assert cloud.n_blocks(b"dyn") == 5
        assert _audit(cloud, verifier, rng)

    def test_interleaved_mutations(self, dyn, rng):
        _, _, client, cloud, verifier = dyn
        cloud.apply(b"dyn", client.update(0, b"v1 of block 0"))
        cloud.apply(b"dyn", client.insert(1, b"wedge"))
        cloud.apply(b"dyn", client.delete(4))
        cloud.apply(b"dyn", client.update(1, b"wedge v2"))
        assert _audit(cloud, verifier, rng)

    def test_only_touched_block_resigned(self, dyn, rng):
        """Dynamics must NOT re-sign untouched blocks (the efficiency
        property the paper's revocation discussion celebrates)."""
        sem, _, client, cloud, verifier = dyn
        before = len(sem.transcript)
        cloud.apply(b"dyn", client.update(2, b"edit"))
        # One block signature + one root signature.
        assert len(sem.transcript) == before + 2

    def test_epoch_monotone(self, dyn):
        _, _, client, cloud, _ = dyn
        e0 = cloud.epoch(b"dyn")
        cloud.apply(b"dyn", client.update(0, b"x"))
        assert cloud.epoch(b"dyn") == e0 + 1

    def test_payload_too_large_rejected(self, dyn, params_k4):
        _, _, client, _, _ = dyn
        with pytest.raises(ValueError):
            client.update(0, b"z" * (params_k4.block_bytes() + 1))


class TestAttacks:
    def test_tampered_block_detected(self, dyn, rng):
        _, _, _, cloud, verifier = dyn
        cloud.tamper_block(b"dyn", 1)
        assert not _audit(cloud, verifier, rng)

    def test_replayed_stale_block_detected(self, dyn, rng):
        """The rollback attack: serve the pre-update block with its
        once-valid signature.  The Merkle root pins the current version."""
        _, _, client, cloud, verifier = dyn
        old_block = cloud.block(b"dyn", 2)
        old_sig = cloud._files[b"dyn"].signatures[2]
        cloud.apply(b"dyn", client.update(2, b"new version"))
        cloud.rollback_block(b"dyn", 2, old_block, old_sig)
        assert not _audit(cloud, verifier, rng)

    def test_whole_file_rollback_detected_by_epoch(self, dyn, rng):
        """A cloud serving a fully consistent OLD state passes structural
        checks but fails the verifier's epoch monotonicity requirement."""
        import copy

        _, _, client, cloud, verifier = dyn
        snapshot = copy.deepcopy(cloud._files[b"dyn"])
        cloud.apply(b"dyn", client.update(1, b"newer data"))
        new_epoch = cloud.epoch(b"dyn")
        cloud._files[b"dyn"] = snapshot  # full rollback
        assert _audit(cloud, verifier, rng)  # structurally consistent...
        assert not _audit(cloud, verifier, rng, min_epoch=new_epoch)  # ...but stale

    def test_wrong_position_path_rejected(self, dyn, rng):
        _, _, _, cloud, verifier = dyn
        ch = verifier.generate_challenge(cloud.n_blocks(b"dyn"), rng=rng)
        proof = cloud.generate_proof(b"dyn", ch)
        import dataclasses

        # Swap two Merkle paths: identifiers no longer match positions.
        paths = list(proof.paths)
        paths[0], paths[1] = paths[1], paths[0]
        bad = dataclasses.replace(proof, paths=tuple(paths))
        assert not verifier.verify(b"dyn", ch, bad)

    def test_forged_root_signature_rejected(self, dyn, rng, group):
        _, _, _, cloud, verifier = dyn
        ch = verifier.generate_challenge(cloud.n_blocks(b"dyn"), rng=rng)
        proof = cloud.generate_proof(b"dyn", ch)
        import dataclasses

        bad = dataclasses.replace(proof, root_signature=group.random_g1(rng))
        assert not verifier.verify(b"dyn", ch, bad)

    def test_divergent_mutation_rejected_by_cloud(self, dyn):
        """An honest cloud cross-checks the owner's root before accepting."""
        _, _, client, cloud, _ = dyn
        mutation = client.update(0, b"for a different state")
        import dataclasses

        diverged = dataclasses.replace(mutation, position=1)
        with pytest.raises(ValueError):
            cloud.apply(b"dyn", diverged)


class TestAnonymityPreserved:
    def test_sem_sees_only_blinded_requests(self, dyn):
        """Dynamics route every signature (blocks AND roots) through the
        blind protocol: the SEM transcript stays content-free."""
        sem, _, client, cloud, _ = dyn
        cloud.apply(b"dyn", client.update(0, b"secret new content"))
        from repro.core.blocks import aggregate_block

        aggregates = {
            aggregate_block(client.params, cloud.block(b"dyn", i)).to_bytes()
            for i in range(cloud.n_blocks(b"dyn"))
        }
        seen = {entry.blinded.to_bytes() for entry in sem.transcript}
        assert not aggregates & seen
