"""Tests for the Merkle hash tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.merkle import MerklePath, MerkleTree


def leaves(n):
    return [b"leaf-%d" % i for i in range(n)]


class TestConstruction:
    def test_empty_tree_root_stable(self):
        assert MerkleTree().root == MerkleTree().root
        assert len(MerkleTree()) == 0

    def test_single_leaf(self):
        t = MerkleTree([b"only"])
        assert len(t) == 1
        assert MerkleTree.verify_path(t.root, b"only", t.prove(0))

    def test_root_depends_on_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_vs_node_domain_separation(self):
        """A two-leaf tree's root is never reproducible as a single leaf."""
        t = MerkleTree([b"a", b"b"])
        attack = MerkleTree([t.root])
        assert attack.root != t.root

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33])
    def test_all_paths_verify(self, n):
        t = MerkleTree(leaves(n))
        for i in range(n):
            assert MerkleTree.verify_path(t.root, t.leaf(i), t.prove(i))

    @pytest.mark.parametrize("n", [2, 3, 5, 9])
    def test_wrong_leaf_rejected(self, n):
        t = MerkleTree(leaves(n))
        for i in range(n):
            assert not MerkleTree.verify_path(t.root, b"wrong", t.prove(i))

    def test_wrong_position_rejected(self):
        t = MerkleTree(leaves(8))
        path = t.prove(3)
        moved = MerklePath(index=5, siblings=path.siblings)
        assert not MerkleTree.verify_path(t.root, t.leaf(3), moved)

    def test_path_from_other_tree_rejected(self):
        t1 = MerkleTree(leaves(8))
        t2 = MerkleTree([b"x-%d" % i for i in range(8)])
        assert not MerkleTree.verify_path(t1.root, t2.leaf(0), t2.prove(0))

    def test_prove_out_of_range(self):
        t = MerkleTree(leaves(3))
        with pytest.raises(IndexError):
            t.prove(3)


class TestMutation:
    def test_update_changes_root(self):
        t = MerkleTree(leaves(5))
        before = t.root
        t.update(2, b"changed")
        assert t.root != before
        assert MerkleTree.verify_path(t.root, b"changed", t.prove(2))

    def test_update_equals_fresh_build(self):
        t = MerkleTree(leaves(6))
        t.update(1, b"x")
        fresh = MerkleTree([b"leaf-0", b"x"] + leaves(6)[2:])
        assert t.root == fresh.root

    def test_insert(self):
        t = MerkleTree(leaves(4))
        t.insert(2, b"new")
        assert len(t) == 5
        assert t.leaf(2) == b"new"
        assert MerkleTree.verify_path(t.root, b"new", t.prove(2))
        assert MerkleTree.verify_path(t.root, b"leaf-2", t.prove(3))

    def test_insert_bounds(self):
        t = MerkleTree(leaves(2))
        with pytest.raises(IndexError):
            t.insert(5, b"x")
        t.insert(2, b"end")  # == len is allowed (append)
        assert t.leaf(2) == b"end"

    def test_append(self):
        t = MerkleTree()
        for i in range(5):
            t.append(b"leaf-%d" % i)
        assert t.root == MerkleTree(leaves(5)).root

    def test_delete(self):
        t = MerkleTree(leaves(5))
        t.delete(1)
        assert len(t) == 4
        assert t.leaves() == [b"leaf-0", b"leaf-2", b"leaf-3", b"leaf-4"]
        for i in range(4):
            assert MerkleTree.verify_path(t.root, t.leaf(i), t.prove(i))

    def test_old_path_invalid_after_mutation(self):
        t = MerkleTree(leaves(8))
        old_path = t.prove(0)
        old_leaf = t.leaf(0)
        t.update(5, b"moved on")
        assert not MerkleTree.verify_path(t.root, old_leaf, old_path)


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=40))
    def test_every_leaf_provable(self, raw_leaves):
        t = MerkleTree(raw_leaves)
        for i, leaf in enumerate(raw_leaves):
            assert MerkleTree.verify_path(t.root, leaf, t.prove(i))

    @settings(max_examples=20)
    @given(
        st.lists(st.binary(min_size=1, max_size=8), min_size=2, max_size=20),
        st.data(),
    )
    def test_mutations_match_fresh_builds(self, raw_leaves, data):
        t = MerkleTree(raw_leaves)
        working = list(raw_leaves)
        index = data.draw(st.integers(0, len(working) - 1))
        new_leaf = data.draw(st.binary(min_size=1, max_size=8))
        t.update(index, new_leaf)
        working[index] = new_leaf
        assert t.root == MerkleTree(working).root
        t.delete(index)
        del working[index]
        assert t.root == MerkleTree(working).root

    def test_path_size(self):
        t = MerkleTree(leaves(16))
        path = t.prove(0)
        assert len(path.siblings) == 4  # log2(16)
        assert path.wire_size_bytes() == 8 + 4 * 32
