"""Tests for the anonymous-credential (single-use token) layer."""

import pytest

from repro.credentials import CredentialIssuer, TokenVerifier, TokenWallet


@pytest.fixture()
def issuer(group, rng):
    issuer = CredentialIssuer(group, rng=rng, quota_per_member=8)
    issuer.enroll("alice")
    issuer.enroll("bob")
    return issuer


@pytest.fixture()
def verifier(group, issuer):
    return TokenVerifier(group=group, issuer_pk=issuer.pk)


def _wallet(group, issuer, name, rng):
    return TokenWallet(group, name, issuer.pk, issuer_pk_g1=issuer.pk_g1, rng=rng)


class TestWithdrawSpend:
    def test_round_trip(self, group, issuer, verifier, rng):
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer, count=3)
        assert len(wallet) == 3
        token = wallet.spend()
        assert verifier.accept(token)
        assert len(wallet) == 2

    def test_double_spend_rejected(self, group, issuer, verifier, rng):
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer)
        token = wallet.spend()
        assert verifier.accept(token)
        assert not verifier.accept(token)

    def test_forged_token_rejected(self, group, issuer, verifier, rng):
        from repro.credentials.anon_tokens import AnonymousToken

        forged = AnonymousToken(epoch=0, serial=b"x" * 16, signature=group.random_g1(rng))
        assert not verifier.accept(forged)

    def test_token_under_wrong_issuer_rejected(self, group, issuer, rng):
        other = CredentialIssuer(group, rng=rng)
        other.enroll("mallory")
        wallet = _wallet(group, other, "mallory", rng)
        wallet.withdraw(other)
        verifier = TokenVerifier(group=group, issuer_pk=issuer.pk)
        assert not verifier.accept(wallet.spend())

    def test_empty_wallet(self, group, issuer, rng):
        wallet = _wallet(group, issuer, "alice", rng)
        with pytest.raises(LookupError):
            wallet.spend()

    def test_non_member_cannot_withdraw(self, group, issuer, rng):
        wallet = _wallet(group, issuer, "mallory", rng)
        with pytest.raises(PermissionError):
            wallet.withdraw(issuer)

    def test_quota_enforced(self, group, issuer, rng):
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer, count=8)
        with pytest.raises(RuntimeError):
            wallet.withdraw(issuer)


class TestRevocation:
    def test_revocation_kills_outstanding_tokens(self, group, issuer, verifier, rng):
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer, count=2)
        issuer.revoke("bob")  # ANY revocation bumps the epoch
        verifier.advance_epoch(issuer.epoch)
        assert not verifier.accept(wallet.spend())

    def test_surviving_members_rewithdraw(self, group, issuer, verifier, rng):
        issuer.revoke("bob")
        verifier.advance_epoch(issuer.epoch)
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer)
        assert verifier.accept(wallet.spend())

    def test_revoked_member_cannot_rewithdraw(self, group, issuer, rng):
        issuer.revoke("bob")
        wallet = _wallet(group, issuer, "bob", rng)
        with pytest.raises(PermissionError):
            wallet.withdraw(issuer)

    def test_epoch_monotonicity(self, verifier):
        verifier.advance_epoch(3)
        with pytest.raises(ValueError):
            verifier.advance_epoch(2)

    def test_quota_resets_per_epoch(self, group, issuer, rng):
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer, count=8)
        issuer.revoke("bob")
        wallet.withdraw(issuer, count=8)  # fresh epoch, fresh quota
        assert len(wallet) == 16


class TestUnlinkability:
    def test_issuer_view_is_blinded(self, group, issuer, rng):
        """What the issuer signs is a blinded element, never T itself."""
        from repro.credentials.anon_tokens import _token_element

        seen = []
        original = issuer.sign_withdrawal

        def spy(member_id, blinded):
            seen.append(blinded.to_bytes())
            return original(member_id, blinded)

        issuer.sign_withdrawal = spy
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer, count=3)
        elements = {
            _token_element(group, t.epoch, t.serial).to_bytes() for t in wallet._tokens
        }
        assert not elements & set(seen)

    def test_spent_tokens_carry_no_member_field(self, group, issuer, verifier, rng):
        """The token dataclass structurally contains no member identity."""
        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer)
        token = wallet.spend()
        assert set(token.__dataclass_fields__) == {"epoch", "serial", "signature"}

    def test_two_members_tokens_indistinguishable(self, group, issuer, verifier, rng):
        """Both members' tokens verify identically; serials are uniform."""
        alice = _wallet(group, issuer, "alice", rng)
        bob = _wallet(group, issuer, "bob", rng)
        alice.withdraw(issuer, count=2)
        bob.withdraw(issuer, count=2)
        tokens = [alice.spend(), bob.spend(), alice.spend(), bob.spend()]
        assert all(verifier.accept(t) for t in tokens)
        assert len({t.serial for t in tokens}) == 4


class TestIntegrationWithSem:
    def test_sem_gated_by_anonymous_tokens(self, group, params_k4, rng):
        """Wire the token layer in front of the SEM's signing service."""
        from repro.core.owner import DataOwner
        from repro.core.sem import SecurityMediator

        issuer = CredentialIssuer(group, rng=rng)
        issuer.enroll("alice")
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        gate = TokenVerifier(group=group, issuer_pk=issuer.pk)

        class TokenGatedSem:
            def sign_blinded_batch(self, blinded, credential):
                if not gate.accept(credential):
                    raise PermissionError("invalid or spent token")
                return sem.sign_blinded_batch(blinded, None)

        wallet = _wallet(group, issuer, "alice", rng)
        wallet.withdraw(issuer, count=2)
        owner = DataOwner(params_k4, sem.pk, credential=wallet.spend(), rng=rng)
        signed = owner.sign_file(b"token-gated upload", b"f", TokenGatedSem())
        assert len(signed.signatures) == len(signed.blocks)
        # Re-using the same token for another file fails (single-use).
        with pytest.raises(PermissionError):
            owner.sign_file(b"second upload", b"f2", TokenGatedSem())
        # A fresh token restores service.
        owner.credential = wallet.spend()
        owner.sign_file(b"second upload", b"f2", TokenGatedSem())
