"""Population model: member attribution and size sampling.

The cohort is the simulated unit; a million members cost nothing until
they issue requests.  What matters is that attribution is honest (member
ids drawn across the whole population) and sizes respect the clamp that
keeps heavy-tailed draws CI-affordable.
"""

from __future__ import annotations

import random

from repro.scenarios.population import Population, sample_size_bytes
from repro.scenarios.schema import ArrivalSpec, CohortSpec, SizeSpec


def cohort(members: int, sizes: SizeSpec) -> CohortSpec:
    return CohortSpec(
        name="crowd", members=members, target="org",
        arrival=ArrivalSpec(kind="poisson", rate_rps=1.0),
        file_sizes=sizes,
    )


class TestSizeSampling:
    def test_fixed(self):
        spec = SizeSpec(kind="fixed", bytes=96, max_bytes=128)
        rng = random.Random(1)
        assert all(sample_size_bytes(spec, rng) == 96 for _ in range(10))

    def test_uniform_bounds(self):
        spec = SizeSpec(kind="uniform", min_bytes=32, max_bytes=64)
        rng = random.Random(2)
        draws = [sample_size_bytes(spec, rng) for _ in range(500)]
        assert min(draws) >= 32 and max(draws) <= 64
        assert len(set(draws)) > 10

    def test_pareto_clamped_at_max(self):
        # alpha = 1.1 throws enormous raw draws; the clamp must hold anyway.
        spec = SizeSpec(kind="pareto", min_bytes=32, max_bytes=256, alpha=1.1)
        rng = random.Random(3)
        draws = [sample_size_bytes(spec, rng) for _ in range(2000)]
        assert max(draws) == 256          # the tail hits the clamp
        assert min(draws) >= 32

    def test_lognormal_positive(self):
        spec = SizeSpec(kind="lognormal", median_bytes=128, sigma=1.0,
                        max_bytes=4096)
        rng = random.Random(4)
        draws = [sample_size_bytes(spec, rng) for _ in range(2000)]
        assert all(1 <= d <= 4096 for d in draws)
        # Median of the clamped sample stays near the spec median.
        assert 64 <= sorted(draws)[len(draws) // 2] <= 256


class TestPopulation:
    def test_million_member_attribution(self):
        pop = Population(cohort(1_000_000, SizeSpec(kind="fixed", bytes=64)),
                         random.Random(5))
        members = {pop.next_request()[0] for _ in range(300)}
        # Uniform draws over 1M ids: 300 requests, collisions vanishingly rare.
        assert pop.distinct_members == len(members) >= 299
        assert max(members) > 500_000     # the whole id space is reachable
        stats = pop.stats()
        assert stats["members"] == 1_000_000
        assert stats["requests"] == 300
        assert stats["bytes_total"] == 300 * 64

    def test_small_cohort_reuses_members(self):
        pop = Population(cohort(3, SizeSpec(kind="fixed", bytes=64)),
                         random.Random(6))
        for _ in range(50):
            member, size = pop.next_request()
            assert 0 <= member < 3 and size == 64
        assert pop.distinct_members == 3

    def test_deterministic_given_seed(self):
        spec = cohort(10_000, SizeSpec(kind="uniform", min_bytes=32,
                                       max_bytes=512))
        a = Population(spec, random.Random(7))
        b = Population(spec, random.Random(7))
        assert [a.next_request() for _ in range(100)] \
            == [b.next_request() for _ in range(100)]
