"""Validator rejection tests: every broken document names its broken path.

The schema is the subsystem's contract — by the time a ``Scenario``
exists the compiler runs with no defensive checks, so everything illegal
must die here, with a path a user can find in their YAML.
"""

from __future__ import annotations

import pytest

from repro.scenarios import ScenarioError, scenario_from_dict


def err(doc) -> ScenarioError:
    with pytest.raises(ScenarioError) as exc_info:
        scenario_from_dict(doc)
    return exc_info.value


class TestDocumentShape:
    def test_base_doc_is_valid(self, doc):
        scenario = scenario_from_dict(doc)
        assert scenario.name == "test-base"
        assert scenario.total_requests_budget == 6

    def test_unknown_top_level_key(self, doc):
        doc["wrokload"] = doc.pop("workload")
        assert "wrokload" in str(err(doc))

    def test_unknown_settings_key(self, doc):
        doc["settings"]["durationn_s"] = 1.0
        e = err(doc)
        assert e.path == "settings" and "durationn_s" in e.problem

    def test_unknown_cohort_key(self, doc):
        doc["workload"]["cohorts"][0]["uploads"] = ["cloud"]
        assert "workload.cohorts[0]" in str(err(doc))

    def test_non_numeric_field(self, doc):
        doc["settings"]["duration_s"] = "fast"
        assert "settings.duration_s" in str(err(doc))

    def test_empty_workload(self, doc):
        doc["workload"]["cohorts"] = []
        assert "at least one cohort" in str(err(doc))

    def test_bad_name_characters(self, doc):
        doc["name"] = "spaces are bad"
        assert "alphanumerics" in str(err(doc))


class TestArrivalValidation:
    def test_unknown_kind(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {"kind": "flood"}
        assert "unknown arrival kind" in str(err(doc))

    def test_negative_rate(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "poisson", "rate_rps": -5.0}
        assert "must be positive" in str(err(doc))

    def test_rate_and_per_user_are_exclusive(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "poisson", "rate_rps": 10.0, "per_user_rps": 0.1}
        assert "exactly one" in str(err(doc))

    def test_mmpp_needs_burst_rate(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "mmpp", "rate_rps": 10.0}
        assert "burst_rate_rps" in str(err(doc))

    def test_mmpp_burst_below_base(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "mmpp", "rate_rps": 100.0, "burst_rate_rps": 10.0}
        assert ">=" in str(err(doc))

    def test_pareto_tail_index(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "pareto", "rate_rps": 10.0, "alpha": 0.9}
        assert "alpha" in str(err(doc))

    def test_diurnal_phase_range(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "diurnal", "rate_rps": 10.0, "phase": 1.5}
        assert "phase" in str(err(doc))

    def test_closed_concurrency_exceeds_members(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "closed", "concurrency": 50}
        assert "exceeds" in str(err(doc))


class TestSizeValidation:
    def test_unknown_kind(self, doc):
        doc["workload"]["cohorts"][0]["file_sizes"] = {"kind": "zipf"}
        assert "unknown size kind" in str(err(doc))

    def test_fixed_above_clamp(self, doc):
        doc["workload"]["cohorts"][0]["file_sizes"] = {
            "kind": "fixed", "bytes": 9000, "max_bytes": 4096}
        assert "[1, max_bytes]" in str(err(doc))

    def test_uniform_inverted_bounds(self, doc):
        doc["workload"]["cohorts"][0]["file_sizes"] = {
            "kind": "uniform", "min_bytes": 512, "max_bytes": 64}
        assert "min_bytes <= max_bytes" in str(err(doc))


class TestTopologyValidation:
    def test_threshold_exceeds_group_size(self, doc):
        doc["topology"]["sem_groups"][0].update(w=2, t=3)
        assert "t=3 exceeds group size w=2" in str(err(doc))

    def test_initial_crashed_below_threshold(self, doc):
        doc["topology"]["sem_groups"][0].update(w=3, t=2, initial_crashed=2)
        assert "can never sign" in str(err(doc))

    def test_dangling_cohort_target(self, doc):
        doc["workload"]["cohorts"][0]["target"] = "ghost"
        assert "unknown SEM group 'ghost'" in str(err(doc))

    def test_dangling_upload_cloud(self, doc):
        doc["workload"]["cohorts"][0]["upload_to"] = ["nimbus"]
        assert "unknown cloud 'nimbus'" in str(err(doc))

    def test_verifier_audits_unknown_cloud(self, doc):
        doc["topology"]["verifiers"] = [{"name": "tpa", "audits": "nimbus"}]
        assert "audits unknown cloud" in str(err(doc))

    def test_link_unknown_endpoint(self, doc):
        doc["topology"]["links"] = [{"src": "writers", "dst": "ghost"}]
        assert "unknown endpoint 'ghost'" in str(err(doc))

    def test_duplicate_topology_names(self, doc):
        doc["topology"]["clouds"] = [{"name": "org"}]
        assert "duplicate topology name" in str(err(doc))

    def test_duplicate_cohort_names(self, doc):
        doc["workload"]["cohorts"].append(
            dict(doc["workload"]["cohorts"][0]))
        assert "duplicate cohort name" in str(err(doc))

    def test_drop_rate_must_be_sub_one(self, doc):
        doc["topology"]["default_link"] = {"drop_rate": 1.0}
        assert "drop_rate" in str(err(doc))

    def test_cloud_signed_by_two_groups(self, doc):
        doc["topology"]["sem_groups"].append({"name": "org2", "w": 1, "t": 1})
        doc["topology"]["clouds"] = [{"name": "cloud"}]
        doc["workload"]["cohorts"][0]["upload_to"] = ["cloud"]
        doc["workload"]["cohorts"].append({
            "name": "others", "members": 2, "target": "org2",
            "arrival": {"kind": "batch"}, "upload_to": ["cloud"],
        })
        assert "one cloud, one signing group" in str(err(doc))


class TestSettingsValidation:
    def test_unknown_param_set(self, doc):
        doc["settings"]["param_set"] = "prod-4096"
        assert "unknown param_set" in str(err(doc))

    def test_unknown_metric_group(self, doc):
        doc["settings"]["metrics"] = ["latency", "vibes"]
        assert "unknown metric group" in str(err(doc))

    def test_negative_envelope_bound(self, doc):
        doc["settings"]["envelope"] = {"max_p99_latency_s": -0.1}
        assert "non-negative" in str(err(doc))

    def test_unknown_fault_kind(self, doc):
        doc["settings"]["faults"] = [{"kind": "meteor", "node": "svc-org"}]
        assert "settings.faults[0]" in str(err(doc))

    def test_fault_targets_unknown_node(self, doc):
        doc["settings"]["faults"] = [
            {"kind": "crash", "node": "sem-org-9", "at": 0.0}]
        e = err(doc)
        assert "unknown node 'sem-org-9'" in e.problem
        # The diagnosis lists the legal names (the compile contract).
        assert "svc-org" in e.problem and "sem-org-0" in e.problem

    def test_fault_link_pattern_unknown_node(self, doc):
        doc["settings"]["faults"] = [
            {"kind": "partition", "links": [["c-writers", "svc-ghost"]],
             "at": 0.0}]
        assert "svc-ghost" in str(err(doc))

    def test_fault_link_wildcard_allowed(self, doc):
        doc["settings"]["faults"] = [
            {"kind": "slow", "links": [["*", "svc-org"]],
             "at": 0.0, "delay_s": 0.01}]
        scenario = scenario_from_dict(doc)
        assert scenario.settings.faults[0].kind == "slow"


class TestNodeNameContract:
    def test_compiled_names(self, doc):
        doc["topology"]["sem_groups"][0].update(w=3, t=2)
        doc["topology"]["clouds"] = [{"name": "cloud"}]
        doc["topology"]["verifiers"] = [{"name": "tpa", "audits": "cloud"}]
        names = scenario_from_dict(doc).node_names()
        assert names == {"svc-org", "sem-org-0", "sem-org-1", "sem-org-2",
                         "c-writers", "cloud", "tpa"}
