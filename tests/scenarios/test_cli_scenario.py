"""The ``repro-pdp scenario`` command group and ``serve-sim --scenario``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "scenarios"

GOOD_YAML = """\
name: cli-good
workload:
  cohorts:
    - name: writers
      members: 3
      target: org
      arrival: {kind: batch, requests_per_member: 2}
      file_sizes: {kind: fixed, bytes: 64, max_bytes: 64}
topology:
  sem_groups:
    - {name: org, w: 1, t: 1}
settings:
  duration_s: 0.5
  seed: 1
  max_requests: 6
  envelope: {min_completed: 6, max_failed: 0}
"""

BAD_YAML = GOOD_YAML.replace("w: 1, t: 1", "w: 1, t: 3")


@pytest.fixture()
def good(tmp_path) -> Path:
    path = tmp_path / "good.yaml"
    path.write_text(GOOD_YAML)
    return path


@pytest.fixture()
def bad(tmp_path) -> Path:
    path = tmp_path / "bad.yaml"
    path.write_text(BAD_YAML)
    return path


class TestValidate:
    def test_valid_document(self, good, capsys):
        assert main(["scenario", "validate", str(good)]) == 0
        assert "ok — 'cli-good'" in capsys.readouterr().out

    def test_invalid_document(self, bad, capsys):
        assert main(["scenario", "validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and "t=3 exceeds group size w=1" in out

    def test_mixed_batch_reports_every_failure(self, good, bad, capsys):
        assert main(["scenario", "validate", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["scenario", "validate", str(tmp_path / "nope.yaml")]) == 1
        assert "no such scenario file" in capsys.readouterr().out


class TestRun:
    def test_run_passes_envelope(self, good, capsys):
        assert main(["scenario", "run", str(good)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "digest" in out

    def test_run_fails_envelope(self, tmp_path, capsys):
        path = tmp_path / "strict.yaml"
        path.write_text(GOOD_YAML.replace("min_completed: 6",
                                          "min_completed: 999"))
        assert main(["scenario", "run", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_report_out(self, good, tmp_path, capsys):
        report_path = tmp_path / "verdict.json"
        assert main(["scenario", "run", str(good),
                     "--report-out", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro-scenario-verdict-v1"
        assert report["verdict"] == "pass"
        assert report["metrics"]["completed"] == 6

    def test_seed_override_changes_digest(self, good, capsys):
        assert main(["scenario", "run", str(good)]) == 0
        base = capsys.readouterr().out
        assert main(["scenario", "run", str(good), "--seed", "99"]) == 0
        reseeded = capsys.readouterr().out

        def digest(out: str) -> str:
            return next(line for line in out.splitlines() if "digest" in line)

        assert digest(base) != digest(reseeded)


class TestList:
    def test_lists_corpus(self, capsys):
        assert main(["scenario", "list", "--dir", str(CORPUS)]) == 0
        out = capsys.readouterr().out
        assert "paper_table1.yaml" in out
        assert "million_user_diurnal.yaml" in out

    def test_empty_directory(self, tmp_path, capsys):
        assert main(["scenario", "list", "--dir", str(tmp_path)]) == 0
        assert "no scenario documents" in capsys.readouterr().out


class TestServeSimFrontDoor:
    def test_scenario_flag_routes_to_engine(self, good, capsys):
        assert main(["serve-sim", "--scenario", str(good)]) == 0
        out = capsys.readouterr().out
        assert "cli-good" in out and "PASS" in out

    def test_legacy_flags_still_work(self, capsys):
        assert main(["serve-sim", "--clients", "2", "--requests", "2",
                     "--seed", "3"]) == 0
        assert "completed" in capsys.readouterr().out
