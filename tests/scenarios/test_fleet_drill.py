"""Fleet durability drills: the storage pipeline under the scenario engine.

A ``topology.fleet`` scenario runs no compiled node graph — the
erasure-coded :class:`~repro.erasure.fleet.FleetStore` is driven directly
on the simulator timer wheel, with chaos ``crash`` faults toggling whole
cloud servers.  These tests pin the two verdicts the corpus documents
claim: losing up to ``parity`` servers is survivable and self-healing
(within the durability envelope, bit-identical on a double run, repairs
offline-verifiable), and losing ``parity + 1`` fails closed with the
quarantine pager going off.
"""

from __future__ import annotations

import copy

import pytest

from repro.scenarios import ScenarioError, ScenarioRunner, run_scenario, scenario_from_dict

SURVIVABLE_DOC = {
    "name": "drill-one-loss",
    "topology": {
        "fleet": {
            "servers": 4, "parity": 2, "spares": 1, "files": 1,
            "file_size": 256, "audit_period_s": 0.1,
            "quarantine_threshold": 1, "quarantine_rounds": 3,
        },
    },
    "settings": {
        "duration_s": 0.6, "seed": 17, "param_set": "toy-64", "k": 4,
        "faults": [{"kind": "crash", "node": "fleet-s1", "at": 0.15}],
        "envelope": {
            "max_unrecoverable_files": 0,
            "min_repaired_slices": 1,
            "max_post_repair_audit_failures": 0,
            "max_repair_duration_s": 0.2,
            "max_virtual_duration_s": 1.0,
        },
    },
}

OVERLOSS_DOC = {
    "name": "drill-overloss",
    "topology": {"fleet": dict(SURVIVABLE_DOC["topology"]["fleet"])},
    "settings": {
        "duration_s": 0.6, "seed": 17, "param_set": "toy-64", "k": 4,
        "faults": [
            {"kind": "crash", "node": "fleet-s0", "at": 0.15},
            {"kind": "crash", "node": "fleet-s1", "at": 0.15},
            {"kind": "crash", "node": "fleet-s2", "at": 0.15},
        ],
        "envelope": {"max_unrecoverable_files": 0,
                     "max_virtual_duration_s": 1.0},
    },
}

QUARANTINE_SLO = {
    "objectives": [{
        "name": "quarantine-burn", "signal": "quarantine", "target": 0.90,
        "windows": [{"long_s": 0.3, "short_s": 0.1, "burn_rate": 2.0,
                     "severity": "page"}],
    }],
    "expected_alerts": [],
}


class TestSurvivableLoss:
    def test_repairs_within_the_durability_envelope(self):
        result = run_scenario(scenario_from_dict(SURVIVABLE_DOC))
        assert result.passed, [v.check for v in result.violations]
        fleet = result.fleet
        assert fleet["unrecoverable_files"] == 0
        assert fleet["repaired_slices"] >= 1
        assert fleet["post_repair_audit_failures"] == 0
        assert fleet["quarantine_trips"] == 1
        assert 0.0 < fleet["repair_duration_s"] <= 0.2

    def test_double_run_is_bit_identical(self):
        first = run_scenario(scenario_from_dict(SURVIVABLE_DOC))
        second = run_scenario(scenario_from_dict(SURVIVABLE_DOC))
        assert first.digest() == second.digest()
        assert first.deterministic_view()["fleet"] == \
            second.deterministic_view()["fleet"]

    def test_repairs_are_offline_verifiable(self, tmp_path):
        from repro.obs.ledger import Ledger, verify_ledger

        ledger = Ledger(path=tmp_path / "drill.jsonl")
        runner = ScenarioRunner(scenario_from_dict(SURVIVABLE_DOC),
                                ledger=ledger)
        result = runner.run()
        assert result.passed
        report = verify_ledger(ledger.path)
        assert report.ok, report.errors
        assert report.counts["repair_begin"] >= 1
        assert report.counts["repair_complete"] == report.counts["repair_begin"]
        assert report.counts["cloud_quarantine"] == 1
        assert report.audits_rechecked > 0 and report.audit_mismatches == 0
        assert report.open_repairs == []
        assert result.ledger["hash"] == report.head


class TestOverloss:
    def test_fails_closed_on_durability(self):
        result = run_scenario(scenario_from_dict(OVERLOSS_DOC))
        assert not result.passed
        assert [v.check for v in result.violations] == \
            ["max_unrecoverable_files"]
        assert result.fleet["unrecoverable_files"] == 1

    def test_quarantine_pager_fires_and_is_expected(self):
        doc = copy.deepcopy(OVERLOSS_DOC)
        doc["name"] = "drill-overloss-page"
        doc["slos"] = copy.deepcopy(QUARANTINE_SLO)
        doc["slos"]["expected_alerts"] = ["quarantine-burn:page"]
        result = run_scenario(scenario_from_dict(doc))
        assert "quarantine-burn:page" in (result.fired_alerts or [])
        # The only violation is durability — the page was declared, so no
        # unexpected/missing-alert violations pile on.
        assert [v.check for v in result.violations] == \
            ["max_unrecoverable_files"]

    def test_survivable_run_stays_quiet_on_the_same_slo(self):
        doc = copy.deepcopy(SURVIVABLE_DOC)
        doc["name"] = "drill-one-loss-slo"
        doc["slos"] = copy.deepcopy(QUARANTINE_SLO)
        result = run_scenario(scenario_from_dict(doc))
        assert result.passed, [v.check for v in result.violations]
        assert result.fired_alerts == []


class TestFleetSchema:
    def test_unknown_fleet_key_rejected(self):
        doc = copy.deepcopy(SURVIVABLE_DOC)
        doc["topology"]["fleet"]["stripe_width"] = 9
        with pytest.raises(ScenarioError, match="unknown keys"):
            scenario_from_dict(doc)

    def test_parity_must_leave_a_data_shard(self):
        doc = copy.deepcopy(SURVIVABLE_DOC)
        doc["topology"]["fleet"]["parity"] = 4
        with pytest.raises(ScenarioError):
            scenario_from_dict(doc)

    def test_fleet_names_join_the_fault_namespace(self):
        scenario = scenario_from_dict(SURVIVABLE_DOC)
        assert "fleet-s1" in scenario.node_names()
        doc = copy.deepcopy(SURVIVABLE_DOC)
        doc["settings"]["faults"] = [
            {"kind": "crash", "node": "no-such-server", "at": 0.1}]
        with pytest.raises(ScenarioError):
            scenario_from_dict(doc)
