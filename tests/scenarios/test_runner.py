"""End-to-end runs through the scenario runner: verdicts, envelopes, faults.

Small documents (single-digit request budgets, toy-64 params) so the
whole module stays in tier-1 time, while still exercising the full
pipeline: compile -> drive -> collect -> envelope -> report.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    EnvelopeSpec,
    VERDICT_SCHEMA,
    check_envelope,
    run_scenario,
    scenario_from_dict,
)


class TestHappyPath:
    def test_batch_cohort_completes_budget(self, doc):
        result = run_scenario(scenario_from_dict(doc))
        assert result.issued == result.completed == 6
        assert result.failed == 0
        assert result.passed
        assert result.latency_p99_s > 0
        assert result.ops.get("exp_g1", 0) > 0

    def test_upload_and_audit_pipeline(self, doc):
        doc["topology"]["clouds"] = [{"name": "cloud"}]
        doc["topology"]["verifiers"] = [
            {"name": "tpa", "audits": "cloud", "period_s": 0.1}]
        doc["workload"]["cohorts"][0]["upload_to"] = ["cloud"]
        result = run_scenario(scenario_from_dict(doc))
        assert result.completed == 6
        assert result.clouds["cloud"]["files_stored"] == 6
        tpa = result.verifiers["tpa"]
        assert tpa["audits_passed"] > 0 and tpa["audits_failed"] == 0

    def test_global_budget_caps_cohorts(self, doc):
        doc["settings"]["max_requests"] = 4     # below the 3x2 batch demand
        result = run_scenario(scenario_from_dict(doc))
        assert result.issued == result.completed == 4


class TestEnvelope:
    def test_violation_fails_run(self, doc):
        doc["settings"]["envelope"] = {"min_completed": 999}
        result = run_scenario(scenario_from_dict(doc))
        assert not result.passed
        assert any(v.check == "min_completed" for v in result.violations)
        rendered = result.violations[0].render()
        assert "999" in rendered and "6" in rendered

    def test_check_envelope_direct(self, doc):
        result = run_scenario(scenario_from_dict(doc))
        assert check_envelope(result, EnvelopeSpec()) == []
        violations = check_envelope(result, EnvelopeSpec(
            max_p99_latency_s=1e-9, max_failed=0, min_completed=1))
        assert [v.check for v in violations] == ["max_p99_latency_s"]

    def test_op_cost_envelope_uses_model_units(self, doc):
        result = run_scenario(scenario_from_dict(doc))
        model = result.model_ops()
        assert model["exp"] > 0
        # A bound right at the observed cost passes; epsilon below fails.
        per_req = model["exp"] / result.issued
        assert check_envelope(result, EnvelopeSpec(
            max_exp_per_request=per_req)) == []
        violations = check_envelope(result, EnvelopeSpec(
            max_exp_per_request=per_req * 0.99))
        assert [v.check for v in violations] == ["max_exp_per_request"]

    def test_report_document(self, doc):
        doc["settings"]["envelope"] = {"min_completed": 6, "max_failed": 0}
        result = run_scenario(scenario_from_dict(doc))
        report = result.to_report()
        assert report["schema"] == VERDICT_SCHEMA
        assert report["scenario"] == "test-base"
        assert report["verdict"] == "pass"
        assert report["checks"] == ["max_failed", "min_completed"]
        assert report["digest"] == result.digest()


class TestFaultAxis:
    def test_crash_failover_still_completes(self, doc):
        doc["topology"]["sem_groups"][0].update(w=3, t=2)
        doc["settings"]["failover"] = {"timeout_s": 0.02}
        doc["settings"]["faults"] = [
            {"kind": "crash", "node": "sem-org-0", "at": 0.0, "until": 0.4}]
        result = run_scenario(scenario_from_dict(doc))
        assert result.completed == 6 and result.failed == 0
        assert sum(result.fault_counts.values()) > 0

    def test_partition_drops_are_counted(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "poisson", "rate_rps": 40.0}
        doc["settings"]["max_requests"] = 12
        doc["settings"]["duration_s"] = 1.0
        doc["settings"]["faults"] = [
            {"kind": "partition", "links": [["c-writers", "svc-org"]],
             "at": 0.2, "until": 0.6}]
        result = run_scenario(scenario_from_dict(doc))
        assert result.dropped_messages > 0
        assert result.lost > 0
        assert 0.0 < result.drop_rate < 1.0

    def test_initial_crash_within_tolerance(self, doc):
        doc["topology"]["sem_groups"][0].update(
            w=3, t=2, initial_crashed=1)
        doc["settings"]["failover"] = {"timeout_s": 0.02}
        result = run_scenario(scenario_from_dict(doc))
        assert result.completed == 6


class TestClosedLoop:
    def test_closed_cohort_respects_concurrency(self, doc):
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "closed", "concurrency": 2, "think_time_s": 0.01}
        doc["workload"]["cohorts"][0]["members"] = 5
        doc["settings"]["max_requests"] = 8
        result = run_scenario(scenario_from_dict(doc))
        assert result.issued == result.completed == 8
