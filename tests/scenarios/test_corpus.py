"""The committed scenario corpus: every document validates, names are
unique, and the flagship scenarios keep the properties their comments
advertise.  (CI's scenario-smoke job *runs* the corpus; here we keep
tier-1 fast and check the documents themselves.)
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenarios import discover_scenarios, load_scenario, run_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS_DIR = REPO_ROOT / "scenarios"
CORPUS = discover_scenarios(CORPUS_DIR)


def test_corpus_is_substantial():
    assert len(CORPUS) >= 8


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.name)
def test_document_validates(path):
    scenario = load_scenario(path)
    assert scenario.description, f"{path.name} needs a description"
    assert scenario.settings.envelope.checks, \
        f"{path.name} needs at least one acceptance check"


def test_scenario_names_are_unique():
    names = [load_scenario(p).name for p in CORPUS]
    assert len(names) == len(set(names))


def test_million_user_scenario_scale():
    scenario = load_scenario(CORPUS_DIR / "million_user_diurnal.yaml")
    assert scenario.workload.total_members >= 1_000_000
    (cohort,) = scenario.workload.cohorts
    assert cohort.arrival.kind == "diurnal"
    # Cost scales with the budget, not the population: the document stays
    # CI-runnable because the request cap is small.
    assert scenario.total_requests_budget <= 500


def test_paper_table1_runs_inside_its_envelope():
    # The flagship paper-faithful document actually executes and passes —
    # one full run is cheap (single SEM, 8 requests, toy-64 params).
    result = run_scenario(load_scenario(CORPUS_DIR / "paper_table1.yaml"))
    assert result.passed, [v.render() for v in result.violations]
    assert result.completed == 8
