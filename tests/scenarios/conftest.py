"""Shared builders for scenario-engine tests.

``base_doc()`` returns a minimal *valid* scenario document; rejection
tests mutate one field and assert the validator names the broken path,
runner tests tweak the workload shape.  Deep-copying per test keeps the
mutations independent.
"""

from __future__ import annotations

import copy

import pytest


def base_doc() -> dict:
    return {
        "name": "test-base",
        "workload": {
            "cohorts": [
                {
                    "name": "writers",
                    "members": 3,
                    "target": "org",
                    "arrival": {"kind": "batch", "requests_per_member": 2},
                    "file_sizes": {"kind": "fixed", "bytes": 64, "max_bytes": 64},
                },
            ],
        },
        "topology": {
            "sem_groups": [{"name": "org", "w": 1, "t": 1}],
        },
        "settings": {
            "duration_s": 0.5,
            "seed": 1,
            "param_set": "toy-64",
            "k": 4,
            "max_requests": 6,
        },
    }


@pytest.fixture()
def doc() -> dict:
    return copy.deepcopy(base_doc())
