"""The serve-sim flag shim: legacy flags become one scenario document.

``scenario_from_legacy_args`` must map every flag onto its scenario
field (the runner's dedicated legacy compiler keeps the historical
byte-for-byte wiring), and ``warn_if_mixed`` must detect non-default
flags next to ``--scenario`` — once per process, listing the offenders.
"""

from __future__ import annotations

import argparse

import pytest

import repro.scenarios.legacy as legacy_mod
from repro.scenarios import ScenarioError, scenario_from_legacy_args, warn_if_mixed
from repro.scenarios.legacy import LEGACY_FLAG_DEFAULTS


def legacy_args(**overrides) -> argparse.Namespace:
    values = dict(LEGACY_FLAG_DEFAULTS)
    values.update(overrides)
    return argparse.Namespace(**values)


class TestScenarioSynthesis:
    def test_defaults_map_to_single_sem(self):
        scenario = scenario_from_legacy_args(legacy_args())
        assert scenario.legacy
        assert scenario.name == "serve-sim-legacy"
        (group,) = scenario.topology.sem_groups
        assert group.name == "main" and (group.w, group.t) == (1, 1)
        (cohort,) = scenario.workload.cohorts
        assert cohort.name == "clients" and cohort.members == 2
        assert cohort.arrival.kind == "batch"
        assert cohort.arrival.requests_per_member == 2
        assert scenario.settings.max_requests == 4

    def test_threshold_expands_to_paper_deployment(self):
        # The paper deploys w = 2t - 1 (tolerates t - 1 unavailable).
        scenario = scenario_from_legacy_args(legacy_args(threshold=3))
        (group,) = scenario.topology.sem_groups
        assert (group.w, group.t) == (5, 3)

    def test_flags_land_in_settings(self):
        scenario = scenario_from_legacy_args(legacy_args(
            seed=9, k=6, max_batch=8, max_wait=0.05, timeout=0.2,
            latency=0.01, drop_rate=0.02, file_bytes=128,
            round_deadline=2.5))
        s = scenario.settings
        assert s.seed == 9 and s.k == 6
        assert s.batch.max_batch == 8 and s.batch.max_wait_s == 0.05
        assert s.failover.timeout_s == 0.2
        assert s.failover.round_deadline_s == 2.5
        link = scenario.topology.default_link
        assert link.latency_s == 0.01 and link.drop_rate == 0.02
        (cohort,) = scenario.workload.cohorts
        assert cohort.file_sizes.bytes == 128

    def test_crash_maps_to_initial_crashed(self):
        scenario = scenario_from_legacy_args(legacy_args(threshold=2, crash=1))
        assert scenario.topology.sem_groups[0].initial_crashed == 1

    def test_illegal_crash_rejected_by_schema(self):
        # Crashing 2 of w=3 leaves fewer than t=2 live mediators.
        with pytest.raises(ScenarioError):
            scenario_from_legacy_args(legacy_args(threshold=2, crash=2))


class TestMixingWarning:
    @pytest.fixture(autouse=True)
    def reset_warning_latch(self):
        legacy_mod._warned_mixed = False
        yield
        legacy_mod._warned_mixed = False

    def test_default_flags_are_quiet(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert warn_if_mixed(legacy_args()) == []

    def test_overridden_flags_are_detected(self):
        with pytest.warns(DeprecationWarning, match="--clients.*--seed"):
            overridden = warn_if_mixed(legacy_args(clients=5, seed=3))
        assert sorted(overridden) == ["clients", "seed"]

    def test_warns_once_per_process(self):
        import warnings

        with pytest.warns(DeprecationWarning):
            warn_if_mixed(legacy_args(clients=5))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Still *detects*, but no second warning.
            assert warn_if_mixed(legacy_args(clients=5)) == ["clients"]
