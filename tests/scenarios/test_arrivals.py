"""Statistical checks on the seeded arrival processes.

Each sampler is driven by a fixed-seed ``random.Random``, so these are
deterministic assertions about large-sample statistics, not flaky
tolerance games: same seed, same draws, same means.  What we check is
the *shape contract* from the module docstring — all open-loop kinds hit
the same long-run mean rate; they differ in dispersion and modulation.
"""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro.scenarios.arrivals import (
    DiurnalProcess,
    MMPPProcess,
    ParetoProcess,
    PoissonProcess,
    make_arrival_process,
)
from repro.scenarios.schema import ArrivalSpec, ScenarioError

N = 20_000


def gaps(process, n=N) -> list[float]:
    return [process.next_interarrival() for _ in range(n)]


def cv(values) -> float:
    return statistics.pstdev(values) / statistics.fmean(values)


class TestPoisson:
    def test_mean_rate(self):
        sample = gaps(PoissonProcess(50.0, random.Random(101)))
        assert statistics.fmean(sample) == pytest.approx(1 / 50.0, rel=0.03)

    def test_memoryless_dispersion(self):
        sample = gaps(PoissonProcess(50.0, random.Random(102)))
        assert cv(sample) == pytest.approx(1.0, abs=0.05)


class TestMMPP:
    RATES = dict(base_rate=20.0, burst_rate=200.0,
                 mean_burst_s=0.5, mean_idle_s=2.0)

    def test_long_run_mean_is_sojourn_weighted(self):
        # Time-weighted rate: (idle_s*base + burst_s*burst) / (idle_s + burst_s).
        r = self.RATES
        expected = ((r["mean_idle_s"] * r["base_rate"]
                     + r["mean_burst_s"] * r["burst_rate"])
                    / (r["mean_idle_s"] + r["mean_burst_s"]))
        sample = gaps(MMPPProcess(rng=random.Random(103), **self.RATES))
        observed = len(sample) / sum(sample)
        assert observed == pytest.approx(expected, rel=0.10)

    def test_overdispersed_vs_poisson(self):
        sample = gaps(MMPPProcess(rng=random.Random(104), **self.RATES))
        assert cv(sample) > 1.3


class TestPareto:
    def test_mean_rate(self):
        # alpha = 2.5 has finite variance, so the sample mean converges.
        sample = gaps(ParetoProcess(10.0, alpha=2.5, rng=random.Random(105)))
        assert statistics.fmean(sample) == pytest.approx(0.1, rel=0.05)

    def test_tail_index(self):
        # P(X > c*x_m) = c^-alpha for a Pareto tail; check one decade out.
        alpha = 1.5
        process = ParetoProcess(10.0, alpha=alpha, rng=random.Random(106))
        sample = gaps(process, n=50_000)
        c = 10.0
        expected = c ** -alpha
        observed = sum(g > c * process.x_m for g in sample) / len(sample)
        assert observed == pytest.approx(expected, rel=0.15)

    def test_heavier_than_exponential(self):
        sample = gaps(ParetoProcess(10.0, alpha=1.4, rng=random.Random(107)))
        assert cv(sample) > 1.5


class TestDiurnal:
    def test_long_run_mean(self):
        process = DiurnalProcess(100.0, peak_ratio=3.0, period_s=1.0,
                                 phase=0.0, rng=random.Random(108))
        sample = gaps(process)
        assert len(sample) / sum(sample) == pytest.approx(100.0, rel=0.05)

    def test_rate_profile_bounds(self):
        process = DiurnalProcess(100.0, peak_ratio=3.0, period_s=1.0,
                                 phase=0.0, rng=random.Random(109))
        depth = (3.0 - 1.0) / (3.0 + 1.0)
        rates = [process.rate_at(t / 200.0) for t in range(200)]
        assert max(rates) == pytest.approx(100.0 * (1 + depth), rel=1e-3)
        assert min(rates) == pytest.approx(100.0 * (1 - depth), rel=1e-3)

    def test_windowed_modulation(self):
        # With phase 0 the sinusoid is positive on the first half-period:
        # arrivals there must outnumber the second half, ~(1 + 2d/pi)/(1 - 2d/pi).
        process = DiurnalProcess(100.0, peak_ratio=3.0, period_s=1.0,
                                 phase=0.0, rng=random.Random(110))
        first = second = 0
        t = 0.0
        for _ in range(N):
            t += process.next_interarrival()
            if t % 1.0 < 0.5:
                first += 1
            else:
                second += 1
        depth = 0.5
        expected = (1 + 2 * depth / math.pi) / (1 - 2 * depth / math.pi)
        assert first / second == pytest.approx(expected, rel=0.10)


class TestFactory:
    def test_per_user_rate_scales_with_members(self):
        spec = ArrivalSpec(kind="poisson", per_user_rps=0.0002)
        process = make_arrival_process(spec, members=1_000_000,
                                       rng=random.Random(111))
        sample = gaps(process, n=5_000)
        assert len(sample) / sum(sample) == pytest.approx(200.0, rel=0.05)

    def test_each_kind_maps_to_its_class(self):
        rng = random.Random(112)
        cases = [
            (ArrivalSpec(kind="poisson", rate_rps=10.0), PoissonProcess),
            (ArrivalSpec(kind="mmpp", rate_rps=10.0, burst_rate_rps=100.0),
             MMPPProcess),
            (ArrivalSpec(kind="pareto", rate_rps=10.0, alpha=1.5), ParetoProcess),
            (ArrivalSpec(kind="diurnal", rate_rps=10.0), DiurnalProcess),
        ]
        for spec, cls in cases:
            assert isinstance(make_arrival_process(spec, 10, rng), cls)

    def test_batch_has_no_interarrival_process(self):
        spec = ArrivalSpec(kind="batch")
        with pytest.raises(ScenarioError):
            make_arrival_process(spec, 10, random.Random(113))

    def test_same_seed_same_stream(self):
        a = gaps(PoissonProcess(50.0, random.Random(7)), n=100)
        b = gaps(PoissonProcess(50.0, random.Random(7)), n=100)
        assert a == b
