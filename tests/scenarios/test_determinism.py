"""Determinism and RNG-stream independence: the engine's core promise.

A scenario result's deterministic plane must be a pure function of the
document — two runs in one process, or on two machines, produce the same
digest.  And streams must be *independent*: adding a cohort or reordering
topology entries must not perturb anyone else's draws, which is what the
hash-derived per-component seeding buys.
"""

from __future__ import annotations

import copy

from repro.scenarios import (
    compile_scenario,
    derive_rng,
    derive_seed,
    run_scenario,
    scenario_from_dict,
)

MILLION_USER_DOC = {
    "name": "determinism-million",
    "workload": {
        "cohorts": [
            {
                "name": "planet",
                "members": 1_200_000,
                "target": "org",
                "arrival": {"kind": "diurnal", "per_user_rps": 0.00025,
                            "peak_ratio": 3.0, "period_s": 2.0, "phase": 0.25},
                "file_sizes": {"kind": "lognormal", "median_bytes": 96,
                               "sigma": 0.6, "max_bytes": 512},
                "upload_to": ["cloud"],
            },
        ],
    },
    "topology": {
        "sem_groups": [{"name": "org", "w": 3, "t": 2}],
        "clouds": [{"name": "cloud"}],
        "verifiers": [{"name": "tpa", "audits": "cloud", "period_s": 0.25}],
    },
    "settings": {"duration_s": 0.6, "seed": 42, "max_requests": 40},
}


class TestSeedDerivation:
    def test_pure_function_of_path(self):
        assert derive_seed(1, "cohort", "a") == derive_seed(1, "cohort", "a")
        assert derive_seed(1, "cohort", "a") != derive_seed(1, "cohort", "b")
        assert derive_seed(1, "cohort", "a") != derive_seed(2, "cohort", "a")
        assert derive_seed(1, "link", "a", "b") != derive_seed(1, "link", "b", "a")

    def test_no_concatenation_collisions(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_derived_rngs_are_reproducible(self):
        a = derive_rng(7, "cohort", "x")
        b = derive_rng(7, "cohort", "x")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


class TestRunDeterminism:
    def test_million_user_double_run_digest(self):
        first = run_scenario(scenario_from_dict(MILLION_USER_DOC))
        second = run_scenario(scenario_from_dict(MILLION_USER_DOC))
        assert first.issued == first.completed == 40
        assert first.cohorts["planet"]["members"] == 1_200_000
        assert first.cohorts["planet"]["distinct_members"] > 35
        assert first.digest() == second.digest()
        assert first.deterministic_view() == second.deterministic_view()

    def test_wall_time_excluded_from_digest(self):
        result = run_scenario(scenario_from_dict(MILLION_USER_DOC))
        assert result.wall_s > 0
        assert "wall_s" not in result.deterministic_view()

    def test_seed_changes_digest(self):
        doc = copy.deepcopy(MILLION_USER_DOC)
        doc["settings"]["seed"] = 43
        baseline = run_scenario(scenario_from_dict(MILLION_USER_DOC))
        reseeded = run_scenario(scenario_from_dict(doc))
        assert baseline.digest() != reseeded.digest()


class TestSLODeterminism:
    def test_double_run_alert_timeline_and_metering_bit_identical(self):
        doc = copy.deepcopy(MILLION_USER_DOC)
        doc["name"] = "determinism-slo"
        doc["slos"] = {
            "objectives": [
                {"name": "availability", "signal": "availability",
                 "target": 0.95},
                {"name": "sign-cost", "signal": "op_budget", "op": "exp",
                 "target": 0.99, "budget_per_request": 120.0},
            ],
            "expected_alerts": [],
        }
        first = run_scenario(scenario_from_dict(doc))
        second = run_scenario(scenario_from_dict(doc))
        # The whole SLO plane is deterministic: every alert transition,
        # every metering record, every budget row — bit-identical.
        assert first.alerts == second.alerts
        assert first.fired_alerts == second.fired_alerts
        assert first.error_budgets == second.error_budgets
        assert first.metering == second.metering
        assert first.metering_close == second.metering_close
        assert first.digest() == second.digest()

    def test_slo_block_participates_in_the_digest(self):
        plain = run_scenario(scenario_from_dict(MILLION_USER_DOC))
        doc = copy.deepcopy(MILLION_USER_DOC)
        doc["slos"] = {
            "objectives": [{"name": "availability",
                            "signal": "availability", "target": 0.95}],
            "expected_alerts": [],
        }
        with_slo = run_scenario(scenario_from_dict(doc))
        assert with_slo.fired_alerts == []
        assert with_slo.error_budgets  # budget rows present
        assert plain.digest() != with_slo.digest()


class TestStreamIndependence:
    def test_compiled_streams_are_distinct(self, doc):
        doc["topology"]["sem_groups"][0].update(w=3, t=2)
        doc["topology"]["default_link"] = {"latency_s": 0.005,
                                           "drop_rate": 0.01}
        compiled = compile_scenario(scenario_from_dict(doc))
        compiled.assert_independent_streams()

    def test_added_cohort_does_not_shift_existing_streams(self, doc):
        """The regression hash-derivation prevents: 'same scenario plus one
        cohort' must leave the original cohort's arrivals untouched."""
        doc["workload"]["cohorts"][0]["members"] = 500
        doc["workload"]["cohorts"][0]["arrival"] = {
            "kind": "poisson", "rate_rps": 30.0}
        doc["settings"]["duration_s"] = 0.4
        doc["settings"]["max_requests"] = 64      # budget not the binding cap
        solo = run_scenario(scenario_from_dict(doc))

        grown = copy.deepcopy(doc)
        grown["workload"]["cohorts"].append({
            "name": "newcomers", "members": 2, "target": "org",
            "arrival": {"kind": "poisson", "rate_rps": 5.0},
            "file_sizes": {"kind": "fixed", "bytes": 64, "max_bytes": 64},
        })
        both = run_scenario(scenario_from_dict(grown))

        # The original cohort's arrival-side numbers are bit-identical —
        # its streams derive from (seed, "cohort", "writers"), never from
        # how many other cohorts the document declares.  (Latencies may
        # shift through shared-service queueing; counts must not.)
        solo_stats = solo.cohorts["writers"]
        both_stats = both.cohorts["writers"]
        for key in ("issued", "distinct_members", "bytes_total", "members"):
            assert solo_stats[key] == both_stats[key]
        assert both.cohorts["newcomers"]["issued"] >= 1
