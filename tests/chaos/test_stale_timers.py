"""Stale-timer safety: a finished round must not be haunted by its timers.

Every fan-out round arms one timeout timer per contacted SEM (plus the
optional round-deadline timer).  Once the round completes — t valid share
batches, or a terminal failure — those outstanding timers are cancelled on
the simulator's wheel, and any that already popped are ignored by the
state machine.  Without both layers, a stale ArmTimer would double-count
``timeouts`` and could resurrect retries against a round that no longer
exists.
"""

from __future__ import annotations

import random

from repro.net.channel import Channel
from repro.service import BatchConfig, FailoverConfig, build_service_network


def build(params, *, threshold=2, round_deadline_s=None, timeout_s=1.0,
          max_attempts=3, seed=61):
    return build_service_network(
        params,
        threshold=threshold,
        n_clients=1,
        rng=random.Random(seed),
        batch_config=BatchConfig(max_batch=4, max_wait_s=0.02),
        failover_config=FailoverConfig(
            timeout_s=timeout_s,
            max_attempts=max_attempts,
            round_deadline_s=round_deadline_s,
        ),
        client_service_channel=Channel(latency_s=0.005),
        service_sem_channel=Channel(latency_s=0.005),
    )


class TestCompletedRoundCancelsTimers:
    def test_healthy_round_fires_no_sem_timers(self, params_k4):
        """All 3 SEMs answer in ~10ms against a 1s timeout: the 3 armed
        ArmTimers (plus the deadline timer) must be cancelled, so the only
        timer that ever fires is the service's flush timer."""
        sim, service, clients = build(params_k4, round_deadline_s=30.0)
        sim.send(clients[0].request_for_data(b"x" * 40, b"st0"))
        sim.run()
        assert clients[0].completed and not clients[0].failed
        assert sim.timers_fired == 1  # the flush timer, nothing else
        assert not sim._pending_timers  # nothing armed survives the run
        assert service.metrics.summary()["retries"] == 0

    def test_no_double_counted_timeouts_after_completion(self, params_k4):
        """sem-0 is slow enough to time out once; the round completes on
        the other SEMs.  sem-0's retry timer outlives the round — it must
        be cancelled, not fire on_timeout into a finished machine."""
        sim, service, clients = build(params_k4, timeout_s=0.05, max_attempts=5)
        sim.nodes["sem-0"].service_delay_s = 10.0  # never answers in time
        sim.send(clients[0].request_for_data(b"y" * 40, b"st1"))
        sim.run()
        assert clients[0].completed and not clients[0].failed
        # sem-0 timed out at most max_attempts times while the round was
        # live; after completion, the cancelled retry timers add nothing.
        assert service.metrics.summary()["retries"] <= 4
        assert not service._rounds  # the round is gone...
        assert not sim._pending_timers  # ...and so are all of its timers

    def test_deadline_timer_cancelled_on_success(self, params_k4):
        """The round-deadline timer of a round that completed must not fire
        later and mark the (already successful) round as failed."""
        sim, service, clients = build(params_k4, round_deadline_s=5.0)
        sim.send(clients[0].request_for_data(b"z" * 40, b"st2"))
        sim.run()
        assert clients[0].completed and not clients[0].failed
        assert sim.now < 5.0  # the run drained without waiting out the budget
        assert not sim._pending_timers

    def test_deadline_fails_round_closed_in_sim(self, params_k4):
        """Beyond tolerance with huge per-attempt retry ladders: the round
        deadline (not the ladder) bounds the failure time."""
        sim, service, clients = build(
            params_k4, timeout_s=0.5, max_attempts=50, round_deadline_s=2.0,
        )
        sim.nodes["sem-0"].crash()
        sim.nodes["sem-1"].crash()  # t = 2 crashed of w = 3: beyond tolerance
        sim.send(clients[0].request_for_data(b"w" * 40, b"st3"))
        sim.run()
        (request_id,) = clients[0].failed
        assert "deadline" in clients[0].responses[request_id].error
        # The failure landed at the deadline, far before the ~25s the two
        # 50-attempt retry ladders would have taken.
        assert sim.now < 5.0
        assert not service._rounds
