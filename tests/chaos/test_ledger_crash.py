"""Ledger crash drill: kill mid-run, restart, lose no finalized entry.

The tamper-evident ledger follows the signing journal's crash discipline
(PR 4): every append is a flushed line-write, so an entry is *finalized*
the moment ``append`` returns.  The drill kills a live service run
mid-round (in-memory state dropped, a torn half-line left behind by the
append that was racing the crash), reopens the chain, and requires:

* zero finalized entries lost — everything appended before the kill is
  on disk and chain-verifies;
* the torn tail is truncated away on reopen, never misread as tamper;
* the restarted instance extends the *same* chain, and the combined
  pre-kill + post-restart history verifies end to end.
"""

import random

from repro.net.channel import Channel
from repro.obs.ledger import Ledger, read_ledger, verify_ledger
from repro.service import BatchConfig, FailoverConfig, build_service_network


def build_network(params, ledger, seed=61):
    return build_service_network(
        params,
        threshold=2,
        n_clients=2,
        rng=random.Random(seed),
        batch_config=BatchConfig(max_batch=8, max_wait_s=0.02),
        failover_config=FailoverConfig(timeout_s=0.2, max_attempts=2),
        client_service_channel=Channel(latency_s=0.005),
        service_sem_channel=Channel(latency_s=0.005),
        ledger=ledger,
    )


class TestKillRestart:
    def test_zero_finalized_entries_lost(self, tmp_path, params_k4):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path, epoch_len=8)
        ledger.ensure_genesis({"drill": "kill-restart", "seed": 61})
        sim, service, clients = build_network(params_k4, ledger)
        for i, client in enumerate(clients):
            sim.send(client.request_for_data(bytes([i + 1]) * 40, b"lc-%d" % i))
        # Run past admission (sign_request entries finalized) but kill
        # before the round closes.
        sim.run(until=0.012)
        finalized = ledger.head()
        assert ledger.counts.get("sign_request") == 2
        on_disk, torn = read_ledger(path)
        assert not torn and len(on_disk) == finalized["entries"]

        # The crash: all in-memory state gone, plus the classic torn
        # half-line from an append that was racing the kill.
        del sim, service, clients, ledger
        with open(path, "a") as fh:
            fh.write('{"seq": 99, "kind": "round", "bo')

        reopened = Ledger(path, epoch_len=8)
        assert reopened.torn_tail  # recovery saw (and truncated) the tear
        assert reopened.head() == finalized  # zero finalized entries lost
        report = verify_ledger(path)
        assert report.ok
        assert report.entries == finalized["entries"]

    def test_restart_extends_the_same_chain(self, tmp_path, params_k4):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path, epoch_len=8)
        ledger.ensure_genesis({"drill": "restart", "seed": 61})
        sim, service, clients = build_network(params_k4, ledger)
        for i, client in enumerate(clients):
            sim.send(client.request_for_data(bytes([i + 1]) * 40, b"lr-%d" % i))
        sim.run(until=0.012)
        head_before = ledger.head()
        del sim, service, clients, ledger  # crash

        reopened = Ledger(path, epoch_len=8)
        assert not reopened.ensure_genesis({"drill": "restart", "seed": 61})
        sim2, service2, clients2 = build_network(params_k4, reopened, seed=62)
        for i, client in enumerate(clients2):
            sim2.send(client.request_for_data(bytes([i + 7]) * 40, b"rr-%d" % i))
        sim2.run()
        assert all(len(c.completed) == 1 for c in clients2)
        after = reopened.head()
        assert after["entries"] > head_before["entries"]
        # One unbroken chain across the crash: the full history verifies
        # and the pre-kill prefix is byte-identical on disk.
        report = verify_ledger(path, expect_head=after["hash"])
        assert report.ok
        entries, _ = read_ledger(path)
        assert entries[head_before["entries"] - 1]["hash"] == head_before["hash"]

    def test_fsync_mode_survives_the_same_drill(self, tmp_path, params_k4):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path, epoch_len=8, fsync=True)
        ledger.ensure_genesis({"drill": "fsync", "seed": 61})
        sim, _, clients = build_network(params_k4, ledger)
        sim.send(clients[0].request_for_data(b"f" * 40, b"fs-0"))
        sim.run(until=0.012)
        finalized = ledger.head()
        del sim, clients, ledger
        reopened = Ledger(path, epoch_len=8)
        assert reopened.head() == finalized
        assert verify_ledger(path, expect_head=finalized["hash"]).ok
