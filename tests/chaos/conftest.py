"""Chaos harness: run a committed fault plan end to end and report facts.

Each plan JSON in ``plans/`` carries a ``scenario`` block (threshold,
workload shape, failover policy, expectations).  The harness here builds
the service network, installs the plan, drives the workload in waves, and
returns a :class:`ChaosRun` the tests assert against — including a
deterministic digest, so replaying the same plan + seed must reproduce
the run bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.core.blocks import aggregate_block, encode_data
from repro.net.channel import Channel
from repro.net.faults import FaultPlan
from repro.service import BatchConfig, FailoverConfig, build_service_network

PLAN_DIR = Path(__file__).parent / "plans"
PLAN_PATHS = sorted(PLAN_DIR.glob("*.json"))


@dataclass
class ChaosRun:
    """Everything a chaos acceptance test asserts against."""

    plan: FaultPlan
    scenario: dict
    sim: object
    service: object
    clients: list
    injector: object
    payloads: dict = field(default_factory=dict)  # request_id -> (data, file_id)

    def digest(self) -> dict:
        """Deterministic fingerprint of the run (request-id free)."""
        return {
            "virtual_time": round(self.sim.now, 9),
            "delivered": self.sim.delivered,
            "dropped": self.sim.dropped,
            "bytes": self.sim.total_bytes(),
            "injected": dict(sorted(self.injector.counts.items())),
            "completed": sorted(len(c.completed) for c in self.clients),
            "failed": sorted(len(c.failed) for c in self.clients),
            "health": self.service.health.summary(),
        }

    def verify_signatures(self, params) -> int:
        """Pairing-check every completed response; returns signatures seen.

        e(sigma_i, g2) == e(H(id_i) * prod u_l^{m_il}, org_pk) — the
        unbatched form of the Eq. 7 check the pipeline already ran.
        """
        group = params.group
        org_pk = self.service._pipeline.org_pk
        checked = 0
        for client in self.clients:
            for request_id in client.completed:
                response = client.responses[request_id]
                data, file_id = self.payloads[request_id]
                blocks = encode_data(data, params, file_id)
                assert len(response.signatures) == len(blocks)
                for block, signature in zip(blocks, response.signatures):
                    lhs = group.pair(signature, group.g2())
                    rhs = group.pair(aggregate_block(params, block), org_pk)
                    assert lhs == rhs, f"bad signature for request {request_id}"
                    checked += 1
        return checked


def run_plan(plan_path, params, seed: int | None = None) -> ChaosRun:
    """Build the network, install the plan, drive the scenario workload."""
    plan = FaultPlan.from_file(plan_path, seed=seed)
    scenario = plan.meta.get("scenario", {})
    threshold = scenario.get("threshold", 2)
    n_clients = scenario.get("clients", 1)
    waves = scenario.get("waves", 1)
    rng = random.Random(scenario.get("net_seed", 0xBAD5EED))
    channel = Channel(latency_s=0.005)
    sim, service, clients = build_service_network(
        params,
        threshold=threshold,
        n_clients=n_clients,
        rng=rng,
        batch_config=BatchConfig(max_batch=8, max_wait_s=0.02),
        failover_config=FailoverConfig(
            timeout_s=scenario.get("timeout_s", 0.1),
            max_attempts=scenario.get("max_attempts", 3),
            round_deadline_s=scenario.get("round_deadline_s"),
        ),
        client_service_channel=channel,
        service_sem_channel=channel,
    )
    injector = plan.install(sim)
    run = ChaosRun(
        plan=plan, scenario=scenario, sim=sim, service=service,
        clients=clients, injector=injector,
    )
    for wave in range(waves):
        for i, client in enumerate(clients):
            data = bytes([(17 * wave + i + 1) % 251]) * 40
            file_id = b"chaos-%d-%d" % (wave, i)
            message = client.request_for_data(data, file_id)
            run.payloads[message.payload.request_id] = (data, file_id)
            sim.send(message)
        sim.run()  # each wave drains fully -> one round per batch
    return run


@pytest.fixture(params=PLAN_PATHS, ids=[p.stem for p in PLAN_PATHS])
def plan_path(request):
    return request.param
