"""Unit tests of the fault-injection primitives themselves."""

from __future__ import annotations

import random

import pytest

from repro.net.channel import Channel
from repro.net.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    corrupt_payload,
)
from repro.net.message import Message
from repro.net.node import Node
from repro.net.simulator import Simulator


def make_message(sender="a", recipient="b", payload=b"hello", msg_type="t"):
    return Message(
        sender=sender, recipient=recipient, msg_type=msg_type,
        payload=payload, size_bytes=len(payload),
    )


def make_injector(*faults, seed=0):
    return FaultInjector(FaultPlan(faults=list(faults), seed=seed),
                         rng=random.Random(seed))


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            Fault(kind="meteor", node="sem-0")

    def test_node_kind_needs_node(self):
        with pytest.raises(FaultPlanError, match="needs a 'node'"):
            Fault(kind="crash")

    def test_link_kind_needs_links(self):
        with pytest.raises(FaultPlanError, match="needs 'links'"):
            Fault(kind="partition")

    def test_window_ordering(self):
        with pytest.raises(FaultPlanError, match="until"):
            Fault(kind="crash", node="n", at=2.0, until=1.0)

    def test_rate_bounds(self):
        with pytest.raises(FaultPlanError, match="rate"):
            Fault(kind="slow", links=(("a", "b"),), rate=1.5)

    def test_unknown_fault_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault fields"):
            FaultPlan.from_dict({"faults": [{"kind": "crash", "node": "n", "sev": 9}]})


class TestFaultMatching:
    def test_wildcard_and_exact(self):
        fault = Fault(kind="partition", links=(("service", "*"),))
        assert fault.matches("service", "sem-0")
        assert fault.matches("sem-3", "service")  # bidirectional default
        assert not fault.matches("client-0", "sem-0")

    def test_unidirectional(self):
        fault = Fault(kind="partition", links=(("a", "b"),), bidirectional=False)
        assert fault.matches("a", "b")
        assert not fault.matches("b", "a")

    def test_window(self):
        fault = Fault(kind="slow", links=(("a", "b"),), at=1.0, until=2.0)
        assert not fault.active(0.5)
        assert fault.active(1.0)
        assert not fault.active(2.0)  # half-open window


class TestInjectorLinkFaults:
    def test_partition_drops(self):
        injector = make_injector(Fault(kind="partition", links=(("a", "b"),)))
        assert injector.apply(make_message(), Channel(), now=0.0) == []
        assert injector.counts["partition"] == 1

    def test_duplicate_delivers_twice(self):
        injector = make_injector(
            Fault(kind="duplicate", links=(("a", "b"),), delay_s=0.02)
        )
        channel = Channel()
        deliveries = injector.apply(make_message(), channel, now=0.0)
        assert len(deliveries) == 2
        assert deliveries[0][0] == 0.0
        assert deliveries[1][0] == pytest.approx(0.02)
        assert channel.stats.duplicated == 1

    def test_reorder_holds_back(self):
        injector = make_injector(
            Fault(kind="reorder", links=(("a", "b"),), delay_s=0.1)
        )
        channel = Channel()
        ((delay, _),) = injector.apply(make_message(), channel, now=0.0)
        assert 0.0 <= delay <= 0.1
        assert channel.stats.reordered == 1

    def test_slow_adds_fixed_delay(self):
        injector = make_injector(Fault(kind="slow", links=(("a", "b"),), delay_s=0.25))
        ((delay, _),) = injector.apply(make_message(), Channel(), now=0.0)
        assert delay == pytest.approx(0.25)

    def test_corrupt_marks_channel_unauthenticated(self):
        injector = make_injector(Fault(kind="corrupt", links=(("a", "b"),)))
        channel = Channel(authenticated=True)
        message = make_message(payload=b"payload")
        ((_, delivered),) = injector.apply(message, channel, now=0.0)
        assert delivered.payload != b"payload"
        assert message.payload == b"payload"  # original untouched
        assert channel.authenticated is False
        assert channel.stats.corrupted == 1

    def test_inactive_fault_is_a_passthrough(self):
        injector = make_injector(
            Fault(kind="partition", links=(("a", "b"),), at=5.0)
        )
        message = make_message()
        assert injector.apply(message, Channel(), now=0.0) == [(0.0, message)]

    def test_rate_is_seeded(self):
        fault = Fault(kind="partition", links=(("a", "b"),), rate=0.5)
        outcomes = []
        for _ in range(2):
            injector = make_injector(fault, seed=42)
            outcomes.append(
                [len(injector.apply(make_message(), Channel(), 0.0)) for _ in range(32)]
            )
        assert outcomes[0] == outcomes[1]
        assert 0 < sum(n == 0 for n in outcomes[0]) < 32  # both fates occur


class TestCorruptPayload:
    def test_group_element_stays_on_curve_but_differs(self, group, rng):
        element = group.hash_to_g1(b"m")
        corrupted = corrupt_payload(element, rng)
        assert corrupted != element
        assert corrupted.which == "g1"

    def test_containers_corrupt_one_element(self, rng):
        payload = [1, 2, 3]
        corrupted = corrupt_payload(payload, rng)
        assert payload == [1, 2, 3]
        assert sum(a != b for a, b in zip(payload, corrupted)) == 1

    def test_scalar_types(self, rng):
        assert corrupt_payload(True, rng) is False
        assert corrupt_payload(7, rng) != 7
        assert corrupt_payload("s", rng) != "s"
        assert corrupt_payload(b"", rng) != b""

    def test_unknown_type_unchanged(self, rng):
        marker = object()
        assert corrupt_payload(marker, rng) is marker


class TestFaultPlanJSON:
    def test_round_trip(self):
        plan = FaultPlan(
            faults=[
                Fault(kind="crash", node="sem-0", at=0.1, until=0.5),
                Fault(kind="corrupt", links=(("a", "b"),), rate=0.3, delay_s=0.01),
            ],
            seed=99,
            name="rt",
            meta={"scenario": {"expect": "complete"}},
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.faults == plan.faults
        assert clone.seed == 99
        assert clone.name == "rt"
        assert clone.meta["scenario"] == {"expect": "complete"}

    def test_seed_override(self):
        plan = FaultPlan.from_json('{"seed": 1, "faults": []}', seed=77)
        assert plan.seed == 77

    def test_install_rejects_unknown_node(self):
        sim = Simulator()
        plan = FaultPlan(faults=[Fault(kind="crash", node="ghost")])
        with pytest.raises(FaultPlanError, match="unknown node"):
            plan.install(sim)

    def test_install_rejects_non_byzantine_capable_node(self):
        sim = Simulator()
        sim.add_node(Node("plain"))
        plan = FaultPlan(faults=[Fault(kind="byzantine", node="plain")])
        with pytest.raises(FaultPlanError, match="byzantine"):
            plan.install(sim)


class TestSimulatorIntegration:
    def _echo_pair(self):
        sim = Simulator()
        received = []

        class Sink(Node):
            def __init__(self, name):
                super().__init__(name)
                self.on("t", lambda m: received.append((sim.now, m.payload)))

        sim.add_node(Node("a"))
        sim.add_node(Sink("b"))
        return sim, received

    def test_partition_window_drops_then_heals(self):
        sim, received = self._echo_pair()
        plan = FaultPlan(
            faults=[Fault(kind="partition", links=(("a", "b"),), at=0.0, until=1.0)]
        )
        plan.install(sim)
        sim.send(make_message(payload=b"lost"))
        sim.schedule(1.5, lambda: make_message(payload=b"heals"))
        sim.run()
        assert [p for _, p in received] == [b"heals"]
        assert sim.dropped == 1

    def test_duplicate_and_crash_timers(self):
        sim, received = self._echo_pair()
        plan = FaultPlan(faults=[
            Fault(kind="duplicate", links=(("a", "b"),), delay_s=0.01),
            Fault(kind="crash", node="b", at=0.5, until=0.6),
        ])
        injector = plan.install(sim)
        sim.send(make_message(payload=b"dup"))
        sim.schedule(0.55, lambda: make_message(payload=b"while-down"))
        sim.schedule(0.7, lambda: make_message(payload=b"after-restart"))
        sim.run()
        payloads = [p for _, p in received]
        assert payloads.count(b"dup") == 2
        assert b"while-down" not in payloads  # both copies land mid-crash
        assert payloads.count(b"after-restart") == 2
        assert injector.counts == {"duplicate": 3, "crash": 1, "restart": 1}
