"""Chaos acceptance: every committed plan holds the paper's availability bar.

Two theorems under test, straight from Section V:

* up to t − 1 faulty SEMs (any mix of crashed, byzantine, partitioned,
  slow, or lied-to-by-the-wire): every request completes with signatures
  that pass the pairing check under the organizational master key;
* t or more faulty: every request fails **closed** within the round
  deadline budget — no hangs, and never a signature that does not verify.

And one property of the harness itself: a plan + seed is a total
description of the run — replaying it reproduces every counter exactly.
"""

from __future__ import annotations

from tests.chaos.conftest import PLAN_PATHS, run_plan


class TestAcceptance:
    def test_scenario_expectation_holds(self, plan_path, params_k4):
        run = run_plan(plan_path, params_k4)
        scenario = run.scenario
        expected = len(run.payloads)
        assert expected > 0
        if scenario["expect"] == "complete":
            for client in run.clients:
                assert client.failed == [], (
                    f"{run.plan.name}: {client.name} failed "
                    f"{[run.clients[0].responses[i].error for i in client.failed]}"
                )
            completed = sum(len(c.completed) for c in run.clients)
            assert completed == expected
            assert run.verify_signatures(params_k4) > 0
        else:  # fail_closed
            for client in run.clients:
                assert client.completed == []
                for request_id in client.failed:
                    assert client.responses[request_id].error
            failed = sum(len(c.failed) for c in run.clients)
            assert failed == expected
            # Fail-closed means bounded: the round died by its deadline (or
            # earlier, when every endpoint resolved), not on a retry tail.
            deadline = scenario["round_deadline_s"]
            assert run.sim.now <= deadline + 1.0
        for kind in scenario.get("expect_injected", ()):
            assert run.injector.counts.get(kind, 0) >= 1, (
                f"{run.plan.name}: fault kind {kind!r} never fired "
                f"(counts: {run.injector.counts})"
            )
        health = run.service.health.summary()
        assert health["trips"] >= scenario.get("min_trips", 0)
        assert health["invalid_total"] >= scenario.get("min_invalid", 0)
        assert run.service.metrics.summary()["retries"] >= scenario.get("min_retries", 0)

    def test_replay_is_deterministic(self, plan_path, params_k4):
        first = run_plan(plan_path, params_k4)
        second = run_plan(plan_path, params_k4)
        assert first.digest() == second.digest()

    def test_seed_override_reaches_the_injector(self, params_k4):
        plan_path = next(p for p in PLAN_PATHS if p.stem == "wire_chaos")
        run = run_plan(plan_path, params_k4, seed=0xFEED)
        assert run.plan.seed == 0xFEED
        # The overridden seed still yields a valid, completing run.
        assert all(not c.failed for c in run.clients)


class TestNoBadSignatures:
    def test_byzantine_shares_never_reach_clients(self, params_k4):
        """Even while quarantine is warming up, every delivered signature
        verifies — byzantine share batches die at the Eq. 14 check."""
        plan_path = next(p for p in PLAN_PATHS if p.stem == "byzantine_quarantine")
        run = run_plan(plan_path, params_k4)
        completed = sum(len(c.completed) for c in run.clients)
        assert completed == len(run.payloads)
        assert run.verify_signatures(params_k4) >= completed  # >= 1 block each

    def test_quarantine_reduces_byzantine_contact(self, params_k4):
        """The second wave must not pay sem-1 again: the scoreboard moved
        it to last-resort standby after its first invalid batch."""
        plan_path = next(p for p in PLAN_PATHS if p.stem == "byzantine_quarantine")
        run = run_plan(plan_path, params_k4)
        byzantine = run.sim.nodes["sem-1"]
        health = run.service.health.summary()
        assert health["trips"] >= 1
        assert health["rounds"] >= 2
        # Wave 1 contacts sem-1 (and trips the breaker); wave 2 does not.
        assert byzantine.signed_batches == 1
