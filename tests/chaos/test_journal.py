"""Crash-recoverable signing: journal semantics and the kill/restart drill.

The headline invariant: a service instance killed mid-round and rebuilt
over the same journal loses **zero** requests and signs **zero** requests
twice — accepted-but-unfinished work replays idempotently, and completed
work is answered from the journal's cached response without re-signing.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.blocks import aggregate_block, encode_data
from repro.net.channel import Channel
from repro.service import (
    BatchConfig,
    FailoverConfig,
    JournalError,
    SigningJournal,
    build_service_network,
)
from repro.service.api import ResponseStatus, SignRequest, SignResponse


def make_blocks_request(params, request_id=1, tag=b"j"):
    data = bytes((i + tag[0]) % 251 for i in range(40))
    blocks = tuple(encode_data(data, params, b"file-" + tag))
    return SignRequest(request_id=request_id, owner="alice", blocks=blocks)


class TestJournalUnit:
    def test_accept_complete_round_trip(self, tmp_path, params_k4, group):
        path = tmp_path / "sign.journal"
        journal = SigningJournal(path, group=group)
        request = make_blocks_request(params_k4, request_id=41)
        journal.record_accepted(request)
        assert journal.is_pending(41)
        sig = group.hash_to_g1(b"sig")
        journal.record_terminal(
            SignResponse(request_id=41, status=ResponseStatus.OK, signatures=(sig,))
        )
        reloaded = SigningJournal(path, group=group)
        assert reloaded.pending() == []
        cached = reloaded.completed_response(41)
        assert cached.ok
        assert cached.signatures == (sig,)

    def test_pending_survives_reload_with_payload_intact(self, tmp_path, params_k4, group):
        path = tmp_path / "sign.journal"
        journal = SigningJournal(path, group=group)
        request = make_blocks_request(params_k4, request_id=42)
        journal.record_accepted(request)
        (recovered,) = SigningJournal(path, group=group).pending()
        assert recovered == request  # byte-for-byte, frozen-dataclass equality

    def test_blinded_requests_round_trip(self, tmp_path, group):
        path = tmp_path / "sign.journal"
        journal = SigningJournal(path, group=group)
        blinded = (group.hash_to_g1(b"m0"), group.hash_to_g1(b"m1"))
        journal.record_accepted(
            SignRequest(request_id=43, owner="bob", blinded=blinded)
        )
        (recovered,) = SigningJournal(path, group=group).pending()
        assert recovered.blinded == blinded

    def test_terminal_without_accept_is_ignored(self, tmp_path, group):
        journal = SigningJournal(tmp_path / "j", group=group)
        journal.record_terminal(
            SignResponse(request_id=9, status=ResponseStatus.REJECTED, error="no")
        )
        assert journal.summary()["completed"] == 0

    def test_double_records_are_idempotent(self, tmp_path, params_k4, group):
        path = tmp_path / "j"
        journal = SigningJournal(path, group=group)
        request = make_blocks_request(params_k4, request_id=44)
        journal.record_accepted(request)
        journal.record_accepted(request)
        response = SignResponse(request_id=44, status=ResponseStatus.FAILED, error="x")
        journal.record_terminal(response)
        journal.record_terminal(response)
        lines = path.read_text().splitlines()
        assert len(lines) == 2

    def test_torn_tail_is_tolerated(self, tmp_path, params_k4, group):
        path = tmp_path / "j"
        journal = SigningJournal(path, group=group)
        journal.record_accepted(make_blocks_request(params_k4, request_id=45))
        with open(path, "a") as fh:
            fh.write('{"rec": "done", "id": 45, "stat')  # crash mid-append
        reloaded = SigningJournal(path, group=group)
        assert reloaded.torn_lines == 1
        assert [r.request_id for r in reloaded.pending()] == [45]

    def test_mid_file_corruption_raises(self, tmp_path, params_k4, group):
        path = tmp_path / "j"
        journal = SigningJournal(path, group=group)
        journal.record_accepted(make_blocks_request(params_k4, request_id=46))
        original = path.read_text()
        path.write_text("not json\n" + original)
        with pytest.raises(JournalError, match="line 1"):
            SigningJournal(path, group=group)

    def test_unknown_record_kind_raises(self, tmp_path, group):
        path = tmp_path / "j"
        path.write_text(json.dumps({"rec": "mystery", "id": 1}) + "\n")
        with pytest.raises(JournalError, match="mystery"):
            SigningJournal(path, group=group)


def build_network(params, journal, seed=51):
    return build_service_network(
        params,
        threshold=2,
        n_clients=2,
        rng=random.Random(seed),
        batch_config=BatchConfig(max_batch=8, max_wait_s=0.02),
        failover_config=FailoverConfig(timeout_s=0.2, max_attempts=2),
        client_service_channel=Channel(latency_s=0.005),
        service_sem_channel=Channel(latency_s=0.005),
        journal=journal,
    )


class TestKillRestart:
    def test_zero_lost_zero_duplicate_signatures(self, tmp_path, params_k4, group):
        """Kill the service mid-round; a replacement instance over the same
        journal finishes every request exactly once."""
        path = tmp_path / "sign.journal"
        journal = SigningJournal(path, group=group)
        sim, service, clients = build_network(params_k4, journal)
        payloads = {}
        for i, client in enumerate(clients):
            data = bytes([i + 1]) * 40
            file_id = b"kr-%d" % i
            message = client.request_for_data(data, file_id)
            payloads[message.payload.request_id] = (data, file_id)
            sim.send(message)
        # Run just past admission (requests journaled) but kill before any
        # reply: accepted > 0, completed == 0.
        sim.run(until=0.012)
        assert journal.summary()["accepted"] == 2
        assert journal.summary()["completed"] == 0
        del sim, service, clients  # the crash: all in-memory state gone

        # Restart: a fresh instance over the reloaded journal.
        reloaded = SigningJournal(path, group=group)
        sim2, service2, clients2 = build_network(params_k4, reloaded, seed=52)
        assert service2.recover() == 2
        sim2.run()
        assert reloaded.summary()["pending"] == 0
        assert reloaded.replayed == 2
        # Zero lost: every journaled request has exactly one OK response.
        group_ = params_k4.group
        org_pk = service2._pipeline.org_pk
        responded = [
            request_id
            for client in clients2
            for request_id in client.completed
        ]
        assert sorted(responded) == sorted(payloads)
        # Zero duplicates: one batch signed the two replayed requests once.
        assert service2.metrics.summary()["batches"] == 1
        for client in clients2:
            for request_id in client.completed:
                data, file_id = payloads[request_id]
                response = client.responses[request_id]
                for block, signature in zip(
                    encode_data(data, params_k4, file_id), response.signatures
                ):
                    assert group_.pair(signature, group_.g2()) == group_.pair(
                        aggregate_block(params_k4, block), org_pk
                    )

    def test_resubmitting_a_completed_id_returns_cached_response(
        self, tmp_path, params_k4, group
    ):
        path = tmp_path / "sign.journal"
        journal = SigningJournal(path, group=group)
        sim, service, clients = build_network(params_k4, journal)
        message = clients[0].request_for_data(b"z" * 40, b"dup")
        request = message.payload
        sim.send(message)
        sim.run()
        assert clients[0].completed == [request.request_id]
        batches_before = service.metrics.summary()["batches"]
        # The duplicate (e.g. a client retry after a lost reply) is answered
        # from the journal without a new signing round.
        cached = service.service.submit(request)
        assert cached is not None and cached.ok
        assert cached.signatures == clients[0].responses[request.request_id].signatures
        sim.run()
        assert service.metrics.summary()["batches"] == batches_before

    def test_restart_after_partial_completion(self, tmp_path, params_k4, group):
        """Kill after some requests completed: only the unfinished replay."""
        path = tmp_path / "sign.journal"
        journal = SigningJournal(path, group=group)
        sim, service, clients = build_network(params_k4, journal)
        first = clients[0].request_for_data(b"a" * 40, b"p0")
        sim.send(first)
        sim.run()  # first request completes cleanly
        assert journal.summary() == {
            "accepted": 1, "completed": 1, "pending": 0,
            "replayed": 0, "torn_lines": 0,
        }
        second = clients[1].request_for_data(b"b" * 40, b"p1")
        sim.send(second)
        sim.run(until=sim.now + 0.012)  # admitted, not yet signed
        assert journal.summary()["pending"] == 1

        reloaded = SigningJournal(path, group=group)
        sim2, service2, clients2 = build_network(params_k4, reloaded, seed=53)
        assert service2.recover() == 1  # only the in-flight request replays
        sim2.run()
        assert reloaded.summary()["pending"] == 0
        completed = [i for c in clients2 for i in c.completed]
        assert completed == [second.payload.request_id]
