"""Precompute cache: fast builds match generic ones; corruption never lies.

The acceptance bar from the issue: a corrupt or truncated cache file falls
back to a rebuild — it may cost time, it must never produce wrong answers.
"""

import json
import random

import pytest

from repro.ec.fixed_base import FixedBaseTable
from repro.ec.precompute import (
    PrecomputeCacheError,
    build_tables_fast,
    cache_key,
    cache_path,
    load_or_build,
    load_tables,
    save_tables,
)


@pytest.fixture()
def bases(group):
    rng = random.Random(29)
    return [group.random_g1(rng) for _ in range(3)]


BITS = 64


def _assert_tables_correct(group, bases, tables):
    rng = random.Random(31)
    exponents = [0, 1, 5, (1 << BITS) - 1] + [rng.getrandbits(BITS) for _ in range(3)]
    for base, table in zip(bases, tables):
        for e in exponents:
            assert table.power(e) == base**e


class TestFastBuild:
    def test_matches_generic_builder(self, group, bases):
        fast = build_tables_fast(bases, BITS)
        generic = [FixedBaseTable(base, BITS) for base in bases]
        for f, g in zip(fast, generic):
            assert f._table == g._table
        _assert_tables_correct(group, bases, fast)

    def test_identity_base(self, group):
        identity = group.g1_identity()
        (table,) = build_tables_fast([identity], BITS)
        assert table.power(12345) == identity

    def test_empty_input(self):
        assert build_tables_fast([], BITS) == []

    def test_window_widths(self, group, bases):
        for window in (1, 2, 3, 5):
            tables = build_tables_fast(bases[:1], BITS, window=window)
            _assert_tables_correct(group, bases[:1], tables)


class TestCacheRoundTrip:
    def test_miss_then_hit(self, group, bases, tmp_path):
        tables, status = load_or_build(tmp_path, group, bases, BITS)
        assert status == "miss"
        _assert_tables_correct(group, bases, tables)
        again, status = load_or_build(tmp_path, group, bases, BITS)
        assert status == "hit"
        for a, b in zip(tables, again):
            assert a._table == b._table

    def test_no_cache_dir(self, group, bases):
        tables, status = load_or_build(None, group, bases, BITS)
        assert status == "uncached"
        _assert_tables_correct(group, bases, tables)

    def test_distinct_geometry_distinct_keys(self, group, bases):
        k1 = cache_key(group, bases, BITS, 4)
        assert cache_key(group, bases, BITS, 5) != k1
        assert cache_key(group, bases, BITS + 8, 4) != k1
        assert cache_key(group, bases[:2], BITS, 4) != k1

    def test_save_load_explicit(self, group, bases, tmp_path):
        tables = build_tables_fast(bases, BITS)
        path = tmp_path / "tables.json"
        save_tables(path, group, tables, BITS)
        loaded = load_tables(path, group, bases, BITS, 4)
        for a, b in zip(tables, loaded):
            assert a._table == b._table


class TestCorruptionFallsBackToRebuild:
    def _cached(self, group, bases, tmp_path):
        load_or_build(tmp_path, group, bases, BITS)
        return cache_path(tmp_path, cache_key(group, bases, BITS, 4))

    def test_truncated_file(self, group, bases, tmp_path):
        path = self._cached(group, bases, tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        tables, status = load_or_build(tmp_path, group, bases, BITS)
        assert status == "rebuilt"
        _assert_tables_correct(group, bases, tables)

    def test_garbage_file(self, group, bases, tmp_path):
        path = self._cached(group, bases, tmp_path)
        path.write_text("not json at all {")
        tables, status = load_or_build(tmp_path, group, bases, BITS)
        assert status == "rebuilt"
        _assert_tables_correct(group, bases, tables)

    def test_tampered_point_fails_checksum(self, group, bases, tmp_path):
        path = self._cached(group, bases, tmp_path)
        doc = json.loads(path.read_text())
        doc["tables"][0]["rows"][0][0][0] += 1
        path.write_text(json.dumps(doc))
        with pytest.raises(PrecomputeCacheError, match="checksum"):
            load_tables(path, group, bases, BITS, 4)
        tables, status = load_or_build(tmp_path, group, bases, BITS)
        assert status == "rebuilt"
        _assert_tables_correct(group, bases, tables)

    def test_tampered_point_with_fixed_checksum_fails_curve_check(
        self, group, bases, tmp_path
    ):
        from repro.ec.precompute import _payload_checksum

        path = self._cached(group, bases, tmp_path)
        doc = json.loads(path.read_text())
        del doc["checksum"]
        doc["tables"][0]["rows"][0][0][0] = (doc["tables"][0]["rows"][0][0][0] + 1) % group.q
        doc["checksum"] = _payload_checksum(doc)
        path.write_text(json.dumps(doc))
        with pytest.raises(PrecomputeCacheError, match="not on the curve"):
            load_tables(path, group, bases, BITS, 4)

    def test_wrong_bases_rejected(self, group, bases, tmp_path):
        path = self._cached(group, bases, tmp_path)
        rng = random.Random(37)
        others = [group.random_g1(rng) for _ in range(3)]
        with pytest.raises(PrecomputeCacheError, match="different bases"):
            load_tables(path, group, others, BITS, 4)

    def test_wrong_exponent_bits_rejected(self, group, bases, tmp_path):
        path = self._cached(group, bases, tmp_path)
        with pytest.raises(PrecomputeCacheError, match="exponent size"):
            load_tables(path, group, bases, BITS + 8, 4)
