"""Tests for the generic short-Weierstrass group law."""

import pytest

from repro.mathkit.field import PrimeField
from repro.ec.curve import EllipticCurve

# A small curve with known order: y² = x³ + 7 over F_37 (secp-like toy).
F = PrimeField(37)
CURVE = EllipticCurve(F(0), F(7), F(0))


def _points_on_curve():
    points = [CURVE.infinity()]
    for x in range(37):
        for y in range(37):
            lhs = y * y % 37
            rhs = (x**3 + 7) % 37
            if lhs == rhs:
                points.append(CURVE.point(F(x), F(y)))
    return points


ALL_POINTS = _points_on_curve()
ORDER = len(ALL_POINTS)


class TestGroupLaw:
    def test_point_validation(self):
        with pytest.raises(ValueError):
            CURVE.point(F(1), F(1))

    def test_identity(self):
        inf = CURVE.infinity()
        for p in ALL_POINTS[:10]:
            assert p + inf == p
            assert inf + p == p

    def test_inverse(self):
        for p in ALL_POINTS[1:6]:
            assert (p + (-p)).infinity

    def test_commutativity(self):
        a, b = ALL_POINTS[1], ALL_POINTS[5]
        assert a + b == b + a

    def test_associativity_exhaustive_sample(self):
        import random

        rng = random.Random(1)
        for _ in range(30):
            a, b, c = rng.choice(ALL_POINTS), rng.choice(ALL_POINTS), rng.choice(ALL_POINTS)
            assert (a + b) + c == a + (b + c)

    def test_double_matches_add(self):
        for p in ALL_POINTS[1:8]:
            assert p.double() == p + p

    def test_group_order_annihilates(self):
        for p in ALL_POINTS[1:8]:
            assert (ORDER * p).infinity

    def test_scalar_mul_matches_repeated_add(self):
        p = ALL_POINTS[1]
        acc = CURVE.infinity()
        for n in range(12):
            assert n * p == acc
            acc = acc + p

    def test_negative_scalar(self):
        p = ALL_POINTS[1]
        assert (-3) * p == -(3 * p)

    def test_closure(self):
        point_set = set(ALL_POINTS)
        a, b = ALL_POINTS[2], ALL_POINTS[9]
        assert a + b in point_set

    def test_subtraction(self):
        a, b = ALL_POINTS[2], ALL_POINTS[9]
        assert (a - b) + b == a

    def test_two_torsion_doubling(self):
        # Points with y == 0 are 2-torsion: doubling gives infinity.
        for p in ALL_POINTS[1:]:
            if p.y == F(0):
                assert p.double().infinity

    def test_hash_and_eq(self):
        a = ALL_POINTS[3]
        same = CURVE.point(a.x, a.y)
        assert hash(a) == hash(same)
        assert a == same
        assert CURVE.infinity() == CURVE.infinity()
        assert a != CURVE.infinity()

    def test_mul_non_int_not_implemented(self):
        with pytest.raises(TypeError):
            ALL_POINTS[1] * 1.5

    def test_repr(self):
        assert "infinity" in repr(CURVE.infinity())
        assert "CurvePoint" in repr(ALL_POINTS[1])


class TestOverFp2:
    """The group law must also work over extension-field coordinates."""

    def test_twisted_curve_arithmetic(self):
        from repro.mathkit.fp2 import QuadraticExtension

        p = 103  # 103 % 4 == 3
        F2 = QuadraticExtension(p)
        curve = EllipticCurve(F2(1), F2(0), F2(0))  # y² = x³ + x over F_p²
        # Find a point by brute force over a small slice.
        found = None
        for a in range(p):
            rhs = F2(a) * F2(a) * F2(a) + F2(a)
            for y0 in range(p):
                cand = F2(y0)
                if cand * cand == rhs:
                    found = curve.point(F2(a), cand)
                    break
            if found:
                break
        assert found is not None
        assert (found + found) == found.double()
        assert found.double().is_on_curve()
