"""Property tests: naive, Straus, and Pippenger MSM agree on every input.

The issue's acceptance bar — all three algorithms agree on negative
scalars, zero scalars, identity points, a single term, and duplicated
points — plus the raw-Jacobian backend used by the pairing group and the
dispatcher's crossover behavior.
"""

import random

import pytest

from repro.ec.curve import EllipticCurve
from repro.ec.jacobian import batch_inverse, batch_normalize, jac_msm
from repro.ec.scalar_mul import (
    estimate_crossover,
    multi_scalar_mul,
    multi_scalar_mul_naive,
    multi_scalar_mul_pippenger,
    multi_scalar_mul_straus,
    pippenger_crossover,
    pippenger_window,
    set_pippenger_crossover,
)
from repro.mathkit.field import PrimeField
from repro.mathkit.ntheory import sqrt_mod

Q = 1000003
F = PrimeField(Q)
CURVE = EllipticCurve(F(2), F(3), F(0))


def _points(count, rng):
    out = []
    x = 1
    while len(out) < count:
        rhs = (x**3 + 2 * x + 3) % Q
        y = sqrt_mod(rhs, Q)
        if y is not None:
            pt = CURVE.point(F(x), F(y))
            out.append(-pt if rng.random() < 0.5 else pt)
        x += 1
    return out


ALGORITHMS = [
    multi_scalar_mul_naive,
    multi_scalar_mul_straus,
    multi_scalar_mul_pippenger,
    multi_scalar_mul,
]


def _assert_all_agree(points, scalars):
    expected = multi_scalar_mul_naive(points, scalars)
    for algorithm in ALGORITHMS[1:]:
        assert algorithm(points, scalars) == expected, algorithm.__name__
    return expected


class TestAgreement:
    def test_random_inputs(self):
        rng = random.Random(7)
        for n in (1, 2, 3, 7, 20, 40):
            points = _points(n, rng)
            scalars = [rng.randrange(-(1 << 64), 1 << 64) for _ in range(n)]
            _assert_all_agree(points, scalars)

    def test_negative_scalars(self):
        rng = random.Random(8)
        points = _points(6, rng)
        scalars = [-1, -(1 << 40), -3, -7, -255, -(Q + 1)]
        _assert_all_agree(points, scalars)

    def test_zero_scalars(self):
        rng = random.Random(9)
        points = _points(5, rng)
        assert _assert_all_agree(points, [0] * 5) == CURVE.infinity()
        mixed = [0, 5, 0, -3, 0]
        _assert_all_agree(points, mixed)

    def test_identity_points(self):
        rng = random.Random(10)
        points = _points(4, rng)
        points[1] = CURVE.infinity()
        points[3] = CURVE.infinity()
        _assert_all_agree(points, [3, 12345, -7, 9])

    def test_single_term(self):
        rng = random.Random(11)
        (pt,) = _points(1, rng)
        for scalar in (0, 1, -1, 2, 1 << 63, -(1 << 63)):
            _assert_all_agree([pt], [scalar])

    def test_duplicated_points(self):
        rng = random.Random(12)
        (pt,) = _points(1, rng)
        points = [pt] * 8
        scalars = [rng.randrange(1 << 32) for _ in range(8)]
        result = _assert_all_agree(points, scalars)
        assert result == sum(scalars) * pt

    def test_pippenger_explicit_windows(self):
        rng = random.Random(13)
        points = _points(10, rng)
        scalars = [rng.getrandbits(64) for _ in range(10)]
        expected = multi_scalar_mul_naive(points, scalars)
        for window in (1, 2, 3, 5, 8):
            assert multi_scalar_mul_pippenger(points, scalars, window) == expected


class TestValidation:
    def test_length_mismatch(self):
        rng = random.Random(14)
        points = _points(2, rng)
        for algorithm in ALGORITHMS:
            with pytest.raises(ValueError, match="equal length"):
                algorithm(points, [1])

    def test_empty(self):
        for algorithm in ALGORITHMS:
            with pytest.raises(ValueError, match="at least one term"):
                algorithm([], [])

    def test_bad_window(self):
        rng = random.Random(15)
        points = _points(1, rng)
        with pytest.raises(ValueError, match="window"):
            multi_scalar_mul_pippenger(points, [3], window=0)


class TestCrossoverDispatch:
    def test_modeled_crossover_is_sane(self):
        assert 2 <= estimate_crossover() <= 4096
        assert pippenger_crossover() >= 1

    def test_set_crossover_round_trip(self):
        previous = set_pippenger_crossover(5)
        try:
            assert pippenger_crossover() == 5
        finally:
            set_pippenger_crossover(previous)
        assert pippenger_crossover() == previous

    def test_set_crossover_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_pippenger_crossover(0)

    def test_dispatch_agrees_on_both_sides(self):
        rng = random.Random(16)
        points = _points(12, rng)
        scalars = [rng.getrandbits(48) for _ in range(12)]
        expected = multi_scalar_mul_naive(points, scalars)
        previous = set_pippenger_crossover(4)  # forces Pippenger at n=12
        try:
            assert multi_scalar_mul(points, scalars) == expected
            set_pippenger_crossover(100)  # forces Straus at n=12
            assert multi_scalar_mul(points, scalars) == expected
        finally:
            set_pippenger_crossover(previous)

    def test_window_model_monotone_floor(self):
        assert pippenger_window(0) == 1
        for n in (1, 10, 100, 1000, 10000):
            assert pippenger_window(n) >= 1
        assert pippenger_window(10000) >= pippenger_window(10)


class TestJacobianBackend:
    def test_jac_msm_matches_group_exponentiation(self, group):
        rng = random.Random(17)
        elements = [group.random_g1(rng) for _ in range(20)]
        scalars = [rng.randrange(-group.order, group.order) for _ in range(20)]
        acc = None
        for el, sc in zip(elements, scalars):
            term = el ** (sc % group.order)
            acc = term if acc is None else acc * term
        result = jac_msm([el.point for el in elements],
                         [sc % group.order for sc in scalars], group.q)
        assert result == acc.point

    def test_jac_msm_skips_identity_and_zero(self, group):
        rng = random.Random(18)
        el = group.random_g1(rng)
        assert jac_msm([None, el.point], [5, 0], group.q) is None

    def test_batch_inverse_matches_pow(self, group):
        rng = random.Random(19)
        values = [rng.randrange(1, group.q) for _ in range(9)]
        expected = [pow(v, -1, group.q) for v in values]
        assert batch_inverse(values, group.q) == expected

    def test_batch_normalize_round_trip(self, group):
        rng = random.Random(20)
        pts = [group.random_g1(rng).point for _ in range(5)]
        jacs = [(x, y, 1) for x, y in pts]
        # Scale each by a random z to make normalization non-trivial.
        scaled = []
        for (x, y, z), _ in zip(jacs, pts):
            s = rng.randrange(2, group.q)
            scaled.append((x * s * s % group.q, y * s * s * s % group.q, s))
        normalized = batch_normalize(scaled, group.q)
        assert normalized == pts
