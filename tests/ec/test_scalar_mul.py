"""Tests for wNAF and multi-scalar multiplication."""

import random

import pytest

from repro.ec.curve import EllipticCurve
from repro.ec.scalar_mul import _wnaf_digits, multi_scalar_mul, scalar_mul_wnaf
from repro.mathkit.field import PrimeField

F = PrimeField(1000003)
CURVE = EllipticCurve(F(2), F(3), F(0))


def _find_point():
    from repro.mathkit.ntheory import sqrt_mod

    for x in range(1, 1000):
        rhs = (x**3 + 2 * x + 3) % 1000003
        y = sqrt_mod(rhs, 1000003)
        if y is not None:
            return CURVE.point(F(x), F(y))
    raise AssertionError("no point found")


P_BASE = _find_point()


class TestWnafDigits:
    def test_zero(self):
        assert _wnaf_digits(0, 4) == []

    def test_reconstruction(self):
        rng = random.Random(2)
        for _ in range(50):
            n = rng.getrandbits(64)
            for width in (2, 3, 4, 5):
                digits = _wnaf_digits(n, width)
                assert sum(d << i for i, d in enumerate(digits)) == n

    def test_nonzero_digits_are_odd(self):
        digits = _wnaf_digits(0xDEADBEEF, 4)
        assert all(d % 2 == 1 for d in digits if d != 0)

    def test_digit_bounds(self):
        for width in (2, 3, 4, 5):
            digits = _wnaf_digits(0xABCDEF0123456789, width)
            half = 1 << (width - 1)
            assert all(-half < d < half for d in digits)


class TestWnafMul:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 16, 255, 12345, 999331])
    def test_matches_double_and_add(self, n):
        assert scalar_mul_wnaf(P_BASE, n) == n * P_BASE

    def test_random_scalars(self):
        rng = random.Random(3)
        for _ in range(20):
            n = rng.getrandbits(40)
            assert scalar_mul_wnaf(P_BASE, n) == n * P_BASE

    def test_negative(self):
        assert scalar_mul_wnaf(P_BASE, -17) == (-17) * P_BASE

    @pytest.mark.parametrize("width", [2, 3, 4, 6])
    def test_widths(self, width):
        assert scalar_mul_wnaf(P_BASE, 987654321, width=width) == 987654321 * P_BASE


class TestMultiScalarMul:
    def test_matches_naive(self):
        rng = random.Random(5)
        points = [n * P_BASE for n in (1, 2, 5, 11)]
        scalars = [rng.getrandbits(30) for _ in points]
        expected = CURVE.infinity()
        for pt, sc in zip(points, scalars):
            expected = expected + sc * pt
        assert multi_scalar_mul(points, scalars) == expected

    def test_single_term(self):
        assert multi_scalar_mul([P_BASE], [7]) == 7 * P_BASE

    def test_zero_scalars(self):
        assert multi_scalar_mul([P_BASE, P_BASE], [0, 0]).infinity

    def test_negative_scalars(self):
        assert multi_scalar_mul([P_BASE, 2 * P_BASE], [-3, 5]) == (-3) * P_BASE + 10 * P_BASE

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multi_scalar_mul([P_BASE], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            multi_scalar_mul([], [])

    def test_many_terms(self):
        rng = random.Random(6)
        points = [n * P_BASE for n in range(1, 33)]
        scalars = [rng.getrandbits(20) for _ in points]
        expected = CURVE.infinity()
        for pt, sc in zip(points, scalars):
            expected = expected + sc * pt
        assert multi_scalar_mul(points, scalars) == expected
