"""Tests for try-and-increment hash-to-curve."""

import pytest

from repro.ec.hash_to_curve import _hash_to_int, hash_to_curve_try_increment
from repro.mathkit.ntheory import sqrt_mod

# y² = x³ + x over a 3-mod-4 prime (the type-A curve shape).
P = 10007
A, B = 1, 0


def _hash(message: bytes):
    return hash_to_curve_try_increment(message, P, A, B, 1, sqrt_mod)


class TestHashToInt:
    def test_deterministic(self):
        assert _hash_to_int(b"m", 0, 128, b"d") == _hash_to_int(b"m", 0, 128, b"d")

    def test_counter_changes_output(self):
        assert _hash_to_int(b"m", 0, 128, b"d") != _hash_to_int(b"m", 1, 128, b"d")

    def test_domain_separation(self):
        assert _hash_to_int(b"m", 0, 128, b"d1") != _hash_to_int(b"m", 0, 128, b"d2")

    def test_bit_bound(self):
        for bits in (8, 100, 256, 300, 512):
            assert _hash_to_int(b"x", 3, bits, b"d").bit_length() <= bits


class TestHashToCurve:
    def test_point_on_curve(self):
        x, y = _hash(b"hello")
        assert (y * y - (x**3 + A * x + B)) % P == 0

    def test_deterministic(self):
        assert _hash(b"msg") == _hash(b"msg")

    def test_different_messages_differ(self):
        assert _hash(b"msg1") != _hash(b"msg2")

    def test_canonical_root_even(self):
        _, y = _hash(b"anything")
        assert y % 2 == 0

    def test_distribution_over_many_messages(self):
        # All hashes land on the curve; x-coordinates should not collide
        # for distinct short messages (overwhelming probability).
        seen = set()
        for i in range(50):
            x, y = _hash(b"m%d" % i)
            assert (y * y - (x**3 + x)) % P == 0
            seen.add((x, y))
        assert len(seen) >= 45  # tiny field, a couple of collisions tolerable

    def test_max_attempts_exhaustion(self):
        # With max_attempts=0 nothing can be found.
        with pytest.raises(RuntimeError):
            hash_to_curve_try_increment(b"m", P, A, B, 1, sqrt_mod, max_attempts=0)

    def test_domain_parameter(self):
        a = hash_to_curve_try_increment(b"m", P, A, B, 1, sqrt_mod, domain=b"d1")
        b = hash_to_curve_try_increment(b"m", P, A, B, 1, sqrt_mod, domain=b"d2")
        assert a != b

    def test_large_prime_field(self):
        big_p = 2**127 - 1  # 2^127-1 % 4 == 3
        x, y = hash_to_curve_try_increment(b"big", big_p, 1, 0, 1, sqrt_mod)
        assert (y * y - (x**3 + x)) % big_p == 0
