"""Tests for fixed-base precomputed exponentiation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import aggregate_block, encode_data
from repro.ec.fixed_base import FixedBaseTable, aggregate_with_tables, build_tables


@pytest.fixture(scope="module")
def table(group):
    import random

    base = group.g1() ** random.Random(3).randrange(2, group.order)
    return base, FixedBaseTable(base, group.order.bit_length(), window=4)


class TestFixedBaseTable:
    def test_matches_plain_pow(self, group, table):
        base, t = table
        for e in (1, 2, 3, 15, 16, 17, 255, 0xDEADBEEF, group.order - 1):
            assert t.power(e) == base**e

    def test_zero_exponent(self, group, table):
        _, t = table
        assert t.power(0).is_identity()

    def test_exponent_reduced_mod_order(self, group, table):
        base, t = table
        assert t.power(group.order + 7) == base**7

    @settings(max_examples=30)
    @given(st.integers(0, 2**64 - 1))
    def test_property_matches_pow(self, e):
        import random

        from repro.pairing import toy_group

        group = toy_group()
        base = group.g1() ** 12345
        t = _cached_table(group, base)
        assert t.power(e) == base**e

    def test_window_sizes(self, group):
        base = group.g1() ** 777
        bits = group.order.bit_length()
        for window in (1, 2, 3, 5, 8):
            t = FixedBaseTable(base, bits, window=window)
            assert t.power(0xABCDEF) == base**0xABCDEF

    def test_bad_window(self, group):
        with pytest.raises(ValueError):
            FixedBaseTable(group.g1(), 64, window=0)

    def test_storage_accounting(self, group):
        t = FixedBaseTable(group.g1(), 64, window=4)
        assert t.digits == 16
        assert t.storage_points() == 16 * 15

    def test_uses_no_exponentiations(self, group, table):
        """The whole point: powers come out as multiplications only."""
        from repro.pairing.interface import OperationCounter

        _, t = table
        counter = OperationCounter()
        group.attach_counter(counter)
        try:
            t.power(0x123456789ABCDEF)
        finally:
            group.detach_counter()
        assert counter.exp_g1 == 0
        assert counter.mul_g1 > 0


_TABLE_CACHE = {}


def _cached_table(group, base):
    key = base.to_bytes()
    if key not in _TABLE_CACHE:
        _TABLE_CACHE[key] = FixedBaseTable(base, group.order.bit_length(), window=4)
    return _TABLE_CACHE[key]


class TestAggregateWithTables:
    def test_matches_plain_aggregate(self, params_k4):
        tables = build_tables(list(params_k4.u), params_k4.order.bit_length())
        for block in encode_data(bytes(range(1, 150)), params_k4, b"f"):
            assert aggregate_with_tables(params_k4, block, tables) == aggregate_block(
                params_k4, block
            )

    def test_wrong_table_count(self, params_k4):
        tables = build_tables(list(params_k4.u[:-1]), params_k4.order.bit_length())
        block = encode_data(b"x", params_k4, b"f")[0]
        with pytest.raises(ValueError):
            aggregate_with_tables(params_k4, block, tables)

    def test_signatures_from_fast_aggregates_verify(self, group, params_k4, rng):
        """Fast aggregation composes with the full signing pipeline."""
        from repro.crypto.bls import bls_keygen, bls_verify_element

        kp = bls_keygen(group, rng)
        tables = build_tables(list(params_k4.u), params_k4.order.bit_length())
        block = encode_data(b"fast path", params_k4, b"f")[0]
        element = aggregate_with_tables(params_k4, block, tables)
        assert bls_verify_element(group, kp.pk, element, element**kp.sk)
