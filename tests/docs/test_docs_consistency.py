"""The documentation stays true: CLI invocations parse, links resolve.

Four checks keep the prose and the code from drifting apart:

* every ``repro-pdp ...`` command shown in a fenced code block of the
  documentation parses against the real argparse tree;
* every relative markdown link (and ``#anchor``) in README/DESIGN/
  EXPERIMENTS/docs/*.md points at a file (and heading) that exists;
* the bench ``--suite`` help text names exactly the registered suites;
* every ``repro.<module>:<Symbol>`` code anchor in docs/PROTOCOL.md
  imports and resolves, so the protocol narrative cannot rot.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.obs.bench import SUITES

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "DESIGN.md", REPO / "EXPERIMENTS.md"]
    + list((REPO / "docs").glob("*.md"))
)


def _fenced_blocks(text: str) -> list[str]:
    return re.findall(r"```[a-z]*\n(.*?)```", text, flags=re.DOTALL)


def _documented_commands() -> list[tuple[str, str]]:
    """Every ``repro-pdp ...`` line in a fenced block, per source file."""
    commands = []
    for path in DOC_FILES:
        for block in _fenced_blocks(path.read_text()):
            # Join backslash line continuations before scanning.
            joined = re.sub(r"\\\n\s*", " ", block)
            for line in joined.splitlines():
                line = line.strip()
                if not line.startswith("repro-pdp"):
                    continue
                # Keep only the repro-pdp command of a shell pipeline.
                line = re.split(r"\s(?:&&|\|\||\|)\s", line)[0].strip()
                commands.append((path.name, line))
    return commands


DOCUMENTED = _documented_commands()


def test_docs_actually_document_the_cli():
    assert len(DOCUMENTED) >= 8, DOCUMENTED


@pytest.mark.parametrize(
    "source,command", DOCUMENTED, ids=[f"{s}:{c[:60]}" for s, c in DOCUMENTED]
)
def test_documented_invocation_parses(source, command):
    argv = shlex.split(command, comments=True)[1:]
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse reports errors via sys.exit
        pytest.fail(f"{source}: `{command}` does not parse (exit {exc.code})")
    assert callable(args.fn)


def test_bench_suite_help_matches_registry():
    parser = build_parser()
    # Find the bench run --suite help string through the subparser tree.
    bench = next(
        a for a in parser._subparsers._group_actions[0].choices.items()
        if a[0] == "bench"
    )[1]
    run = bench._subparsers._group_actions[0].choices["run"]
    suite_action = next(a for a in run._actions if "--suite" in a.option_strings)
    documented = set(re.findall(r"[a-z0-9_]+", suite_action.help)) - {
        "suite", "name", "or", "all",
    }
    assert documented == set(SUITES), (
        f"--suite help names {sorted(documented)}, registry has {sorted(SUITES)}"
    )


def test_docs_document_the_scenario_engine():
    """The scenario command group is load-bearing documentation: at least
    one documented invocation per subcommand must appear (and therefore
    parse, via test_documented_invocation_parses)."""
    scenario_lines = [c for _, c in DOCUMENTED if c.startswith("repro-pdp scenario")]
    for sub in ("validate", "run", "list"):
        assert any(f"scenario {sub}" in line for line in scenario_lines), (
            f"no doc shows `repro-pdp scenario {sub} ...`: {scenario_lines}"
        )


def test_docs_document_the_ledger_commands():
    """The flight-recorder verification workflow must be documented: at
    least one parseable invocation per ledger subcommand."""
    ledger_lines = [c for _, c in DOCUMENTED if c.startswith("repro-pdp ledger")]
    for sub in ("verify", "show", "head"):
        assert any(f"ledger {sub}" in line for line in ledger_lines), (
            f"no doc shows `repro-pdp ledger {sub} ...`: {ledger_lines}"
        )
    # The recorder itself must be shown attached to a run.
    assert any("--ledger" in c for _, c in DOCUMENTED), (
        "no doc shows a run with --ledger PATH"
    )


def test_docs_referenced_scenarios_exist_and_validate():
    """Every ``scenarios/*.yaml`` path the docs mention is a real,
    schema-valid document in the committed corpus."""
    from repro.scenarios import load_scenario

    pattern = re.compile(r"scenarios/[\w.-]+\.(?:ya?ml|json)")
    referenced = set()
    for path in DOC_FILES:
        referenced.update(pattern.findall(path.read_text()))
    assert referenced, "docs never reference a scenario document"
    for rel in sorted(referenced):
        target = REPO / rel
        assert target.exists(), f"docs reference {rel}, which does not exist"
        load_scenario(target)  # raises ScenarioError on an invalid document


def test_docs_document_the_dynamic_tier():
    """The dynamic-data workflow must be documented end to end: create,
    audit, status, and at least one batched update invocation (all of
    which therefore parse, via test_documented_invocation_parses), plus
    the committed dynamic scenario corpus."""
    lines = [c for _, c in DOCUMENTED]
    for needle in ("dynamic create", "dynamic audit", "dynamic status"):
        assert any(needle in line for line in lines), (
            f"no doc shows `repro-pdp {needle} ...`"
        )
    assert any(line.startswith("repro-pdp update ") for line in lines), (
        "no doc shows a `repro-pdp update <member> <file> ...` batch"
    )
    corpus = "".join(p.read_text() for p in DOC_FILES)
    for name in ("dynamic_churn", "dynamic_log_append", "dynamic_hot_block"):
        assert f"scenarios/{name}.yaml" in corpus, (
            f"docs never reference scenarios/{name}.yaml"
        )


_CODE_ANCHOR = re.compile(r"`(repro\.[\w.]+):([\w.]+)`")


def test_protocol_code_anchors_resolve():
    """docs/PROTOCOL.md annotates every flow step with
    ``repro.<module>:<Symbol>.<attr>`` anchors; each one must import and
    getattr-resolve against the current tree."""
    import importlib

    refs = sorted(set(_CODE_ANCHOR.findall(
        (REPO / "docs" / "PROTOCOL.md").read_text())))
    assert len(refs) >= 30, f"PROTOCOL.md lost its code anchors: {refs}"
    broken = []
    for module, symbol in refs:
        try:
            obj = importlib.import_module(module)
            for part in symbol.split("."):
                obj = getattr(obj, part)
        except (ImportError, AttributeError) as exc:
            broken.append(f"{module}:{symbol} ({exc})")
    assert not broken, "stale PROTOCOL.md anchors: " + "; ".join(broken)


def test_protocol_names_every_dynamic_ledger_kind():
    """The update lifecycle's ledger records are part of the documented
    contract; PROTOCOL.md must name each kind the dynamic tier writes."""
    text = (REPO / "docs" / "PROTOCOL.md").read_text()
    for kind in ("dyn_create", "dyn_update_begin", "dyn_update_commit",
                 "dyn_audit"):
        assert f"`{kind}`" in text, f"PROTOCOL.md never names {kind}"


def _github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (lowercase, punctuation dropped)."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # linked headings
    heading = heading.lower()
    heading = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence and re.match(r"#{1,6}\s", line):
            anchors.add(_github_anchor(line.lstrip("#")))
    return anchors


_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")


@pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_relative_links_resolve(path):
    text = path.read_text()
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = (path.parent / file_part).resolve() if file_part else path
        if not dest.exists():
            broken.append(f"{target}: {file_part} does not exist")
            continue
        if anchor and dest.suffix == ".md" and anchor not in _anchors(dest):
            broken.append(f"{target}: no heading for #{anchor} in {dest.name}")
    assert not broken, f"{path.name}: " + "; ".join(broken)


def test_readme_mentions_every_top_level_command():
    readme = (REPO / "README.md").read_text()
    parser = build_parser()
    commands = parser._subparsers._group_actions[0].choices
    missing = [name for name in commands if name not in readme]
    assert not missing, f"README.md never mentions: {missing}"
