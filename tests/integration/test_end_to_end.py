"""Full-stack integration tests on mid-size (test-80) parameters, plus a
multi-actor scenario stitching every subsystem together."""

import random

import pytest

from repro.core import SemPdpSystem
from repro.core.params import setup


class TestMidSizeParameters:
    """test-80: |r| = 80, |q| = 160 — structurally identical to paper-160."""

    def test_full_protocol(self, test80_group):
        rng = random.Random(1)
        system = SemPdpSystem.create(test80_group, k=4, rng=rng)
        alice = system.enroll("alice")
        system.upload(alice, b"mid-size parameter run " * 10, b"f")
        assert system.audit(b"f")
        assert system.audit(b"f", sample_size=3)
        system.cloud.tamper_block(b"f", 1)
        assert not system.audit(b"f")

    def test_multi_sem_on_mid_size(self, test80_group):
        rng = random.Random(2)
        system = SemPdpSystem.create(test80_group, k=4, threshold=2, rng=rng)
        alice = system.enroll("alice")
        system.cluster.crash(0)
        system.upload(alice, b"threshold on test-80", b"f")
        assert system.audit(b"f")

    def test_serialization_on_mid_size(self, test80_group):
        from repro.core.serial import decode_signed_file, encode_signed_file

        rng = random.Random(3)
        system = SemPdpSystem.create(test80_group, k=4, rng=rng)
        alice = system.enroll("alice")
        system.upload(alice, b"serialize mid-size", b"f")
        stored = system.cloud.retrieve(b"f")
        from repro.core.owner import SignedFile

        signed = SignedFile(
            file_id=b"f", blocks=tuple(stored.blocks), signatures=tuple(stored.signatures)
        )
        round_tripped = decode_signed_file(
            encode_signed_file(signed, system.params), system.params
        )
        assert round_tripped.blocks == signed.blocks


class TestOrganizationScenario:
    """A week in the life of an organization, end to end."""

    def test_story(self, group):
        rng = random.Random(9)
        org = SemPdpSystem.create(group, k=6, threshold=2, verify_on_upload=True, rng=rng)

        # Monday: three members join and upload.
        members = {name: org.enroll(name) for name in ("ana", "ben", "cleo")}
        files = {}
        for i, (name, owner) in enumerate(members.items()):
            fid = b"doc-%d" % i
            org.upload(owner, f"{name}'s contribution ".encode() * 12, fid)
            files[name] = fid

        # Tuesday: an auditor checks everything in one batch.
        from repro.core.challenge import Challenge
        audits = []
        for fid in files.values():
            stored = org.cloud.retrieve(fid)
            ch = org.verifier.generate_challenge(fid, stored.n_blocks)
            audits.append((ch, org.cloud.generate_proof(fid, ch)))
        assert org.verifier.verify_batch(audits, rng)

        # Wednesday: a SEM crashes; service continues.
        org.cluster.crash(1)
        org.upload(members["ana"], b"midweek addendum " * 6, b"doc-3")
        assert org.audit(b"doc-3")

        # Thursday: ben leaves; his files stay valid, his credential dies.
        org.revoke("ben")
        assert org.audit(files["ben"])
        with pytest.raises(Exception):
            org.upload(members["ben"], b"no longer allowed", b"doc-4")

        # Friday: the cloud misplaces a block and is caught.
        org.cloud.drop_block(files["cleo"], 0)
        assert not org.audit(files["cleo"])

        # Anonymity held throughout: every stored signature verifies under
        # the single organization key and nothing else.
        from repro.core.blocks import aggregate_block

        g = org.params.group
        for fid in (b"doc-0", b"doc-1", b"doc-3"):
            stored = org.cloud.retrieve(fid)
            for block, sig in zip(stored.blocks, stored.signatures):
                assert g.pair(sig, g.g2()) == g.pair(
                    aggregate_block(org.params, block), org.org_pk
                )


class TestCrossParameterIsolation:
    def test_signatures_do_not_transfer_between_parameter_sets(self, group, test80_group):
        """A signature under one parameter universe is garbage in another."""
        rng = random.Random(4)
        params_a = setup(group, k=2, seed=b"universe-a")
        params_b = setup(group, k=2, seed=b"universe-b")
        from repro.core.cloud import CloudServer
        from repro.core.owner import DataOwner
        from repro.core.sem import SecurityMediator
        from repro.core.verifier import PublicVerifier

        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_a, sem.pk, rng=rng)
        signed = owner.sign_file(b"signed under universe a", b"f", sem)
        cloud_b = CloudServer(params_b, rng=rng)
        cloud_b.store(signed)  # cloud accepts blindly (no verify_on_upload)
        verifier_b = PublicVerifier(params_b, sem.pk, rng=rng)
        ch = verifier_b.generate_challenge(b"f", len(signed.blocks))
        assert not verifier_b.verify(ch, cloud_b.generate_proof(b"f", ch))
