"""Property-based tests of protocol-level invariants (hypothesis).

These complement the example-based unit tests with randomized structure:
arbitrary payloads, arbitrary challenge subsets, arbitrary tamper
positions — the invariants must hold for all of them.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.blocks import make_block_id
from repro.core.challenge import Challenge
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.params import setup
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier
from repro.pairing import toy_group

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class _Deployment:
    """One shared deployment; hypothesis draws payloads/subsets against it."""

    def __init__(self):
        rng = random.Random(77)
        self.group = toy_group()
        self.params = setup(self.group, k=3)
        self.sem = SecurityMediator(self.group, rng=rng, require_membership=False)
        self.owner = DataOwner(self.params, self.sem.pk, rng=rng)
        self.cloud = CloudServer(self.params, rng=rng)
        self.verifier = PublicVerifier(self.params, self.sem.pk, rng=rng)
        self.rng = rng


@pytest.fixture(scope="module")
def dep():
    return _Deployment()


class TestArbitraryPayloads:
    @_SETTINGS
    @given(data=st.binary(min_size=0, max_size=400))
    def test_any_payload_signs_and_audits(self, dep, data):
        fid = b"prop-%d" % (hash(data) & 0xFFFF)
        signed = dep.owner.sign_file(data, fid, dep.sem)
        dep.cloud.store(signed)
        ch = dep.verifier.generate_challenge(fid, len(signed.blocks))
        assert dep.verifier.verify(ch, dep.cloud.generate_proof(fid, ch))

    @_SETTINGS
    @given(data=st.binary(min_size=1, max_size=300), key=st.binary(min_size=32, max_size=32))
    def test_encrypting_never_breaks_audits(self, dep, data, key):
        fid = b"enc-%d" % (hash((data, key)) & 0xFFFF)
        signed = dep.owner.sign_file(data, fid, dep.sem, encrypt_key=key)
        dep.cloud.store(signed)
        ch = dep.verifier.generate_challenge(fid, len(signed.blocks))
        assert dep.verifier.verify(ch, dep.cloud.generate_proof(fid, ch))


class TestArbitraryChallenges:
    @pytest.fixture(scope="class")
    def stored(self, dep):
        data = bytes(range(1, 250))
        signed = dep.owner.sign_file(data, b"fixed", dep.sem)
        dep.cloud.store(signed)
        return len(signed.blocks)

    @_SETTINGS
    @given(data=st.data())
    def test_any_subset_any_betas_verifies(self, dep, stored, data):
        n = stored
        size = data.draw(st.integers(1, n))
        indices = sorted(data.draw(
            st.sets(st.integers(0, n - 1), min_size=size, max_size=size)
        ))
        betas = [
            data.draw(st.integers(1, dep.params.order - 1)) for _ in indices
        ]
        ch = Challenge(
            indices=tuple(indices),
            block_ids=tuple(make_block_id(b"fixed", i) for i in indices),
            betas=tuple(betas),
        )
        assert dep.verifier.verify(ch, dep.cloud.generate_proof(b"fixed", ch))

    @_SETTINGS
    @given(data=st.data())
    def test_challenged_tamper_always_detected(self, dep, stored, data):
        """If the tampered block IS challenged, detection is certain."""
        n = stored
        victim = data.draw(st.integers(0, n - 1))
        fid = b"victim-%d" % victim
        payload = bytes(range(1, 250))
        signed = dep.owner.sign_file(payload, fid, dep.sem)
        dep.cloud.store(signed)
        dep.cloud.tamper_block(fid, victim)
        others = data.draw(st.sets(st.integers(0, n - 1), max_size=3))
        indices = sorted(others | {victim})
        ch = Challenge(
            indices=tuple(indices),
            block_ids=tuple(make_block_id(fid, i) for i in indices),
            betas=tuple(
                data.draw(st.integers(1, dep.params.order - 1)) for _ in indices
            ),
        )
        assert not dep.verifier.verify(ch, dep.cloud.generate_proof(fid, ch))


class TestResponseLinearity:
    """The algebraic heart of PDP: responses are linear in the challenge."""

    @pytest.fixture(scope="class")
    def stored(self, dep):
        signed = dep.owner.sign_file(bytes(range(1, 200)), b"lin", dep.sem)
        dep.cloud.store(signed)
        return len(signed.blocks)

    @_SETTINGS
    @given(data=st.data())
    def test_merging_challenges_merges_responses(self, dep, stored, data):
        """proof(β) * proof(β') == proof(β + β') for same-index challenges."""
        n = stored
        indices = tuple(sorted(data.draw(
            st.sets(st.integers(0, n - 1), min_size=1, max_size=4)
        )))
        ids = tuple(make_block_id(b"lin", i) for i in indices)
        p = dep.params.order
        betas1 = tuple(data.draw(st.integers(1, p - 1)) for _ in indices)
        betas2 = tuple(data.draw(st.integers(1, p - 1)) for _ in indices)
        merged = tuple((a + b) % p for a, b in zip(betas1, betas2))
        if any(b == 0 for b in merged):
            return  # Challenge requires nonzero betas; skip the null case
        r1 = dep.cloud.generate_proof(b"lin", Challenge(indices, ids, betas1))
        r2 = dep.cloud.generate_proof(b"lin", Challenge(indices, ids, betas2))
        rm = dep.cloud.generate_proof(b"lin", Challenge(indices, ids, merged))
        assert rm.sigma == r1.sigma * r2.sigma
        assert rm.alphas == tuple(
            (a + b) % p for a, b in zip(r1.alphas, r2.alphas)
        )
