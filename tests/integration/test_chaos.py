"""Chaos testing: random failures may stall the protocol but can never
make it produce a wrong result.

Safety property under arbitrary crash/drop schedules: if an upload
completes, its signatures verify; if an audit completes, its verdict is
correct for the actual stored state.  Liveness is only required when the
failure budget stays within the design threshold.
"""

import random

import pytest

from repro.core.blocks import aggregate_block
from repro.net import build_protocol_network
from repro.net.channel import Channel


def _chaos_run(params, seed):
    rng = random.Random(seed)
    threshold = rng.choice([None, 2])
    sim, owner, verifier = build_protocol_network(
        params,
        threshold=threshold,
        rng=rng,
        owner_sem_channel=Channel(drop_rate=rng.choice([0.0, 0.3]), rng=rng),
        retry_timeout_s=1.0,
        max_retries=5,
    )
    # Randomly crash SEMs (possibly beyond the threshold).
    sem_names = [n for n in sim.nodes if n.startswith("sem-")]
    for name in sem_names:
        if rng.random() < 0.3:
            sim.nodes[name].crash()
    for message in owner.start_upload(b"chaos payload " * 6, b"f"):
        sim.send(message)
    sim.run()
    return sim, owner, verifier


class TestChaos:
    @pytest.mark.parametrize("seed", range(12))
    def test_safety_under_random_failures(self, params_k4, seed):
        sim, owner, verifier = _chaos_run(params_k4, seed)
        if owner.completed_uploads:
            # Completed => stored data must be genuinely valid.
            stored = sim.nodes["cloud"].server.retrieve(b"f")
            group = params_k4.group
            org_pk = verifier.verifier.org_pk
            for block, sig in zip(stored.blocks, stored.signatures):
                assert group.pair(sig, group.g2()) == group.pair(
                    aggregate_block(params_k4, block), org_pk
                )
            # And audits agree.
            sim.send(verifier.start_audit(b"f", stored.n_blocks))
            sim.run()
            assert verifier.audit_results[b"f"] is True
        else:
            # Stalled => nothing half-written at the cloud.
            assert not sim.nodes["cloud"].server.has_file(b"f")

    @pytest.mark.parametrize("seed", range(6))
    def test_liveness_within_failure_budget(self, params_k4, seed):
        """With failures <= t-1 and a retrying owner, uploads complete."""
        rng = random.Random(1000 + seed)
        sim, owner, verifier = build_protocol_network(
            params_k4,
            threshold=2,  # w = 3, tolerates 1 failure
            rng=rng,
            owner_sem_channel=Channel(drop_rate=0.25, rng=rng),
            retry_timeout_s=1.0,
            max_retries=25,
        )
        victim = rng.choice(["sem-0", "sem-1", "sem-2"])
        sim.nodes[victim].crash()
        for message in owner.start_upload(b"liveness payload " * 4, b"f"):
            sim.send(message)
        sim.run()
        assert owner.completed_uploads == [b"f"]
