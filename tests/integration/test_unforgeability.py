"""Consolidated unforgeability negatives: everything an adversary without
the signing key might plausibly try, against every verification path."""

import pytest

from repro.core.blocks import Block, aggregate_block, make_block_id
from repro.core.challenge import Challenge, ProofResponse
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier


@pytest.fixture()
def world(group, params_k4, rng):
    sem = SecurityMediator(group, rng=rng, require_membership=False)
    owner = DataOwner(params_k4, sem.pk, rng=rng)
    cloud = CloudServer(params_k4, rng=rng)
    verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
    signed = owner.sign_file(bytes(range(1, 200)), b"f", sem)
    cloud.store(signed)
    return sem, owner, cloud, verifier, signed


class TestSignatureForgeries:
    def test_signature_transplant_between_blocks(self, world, params_k4, rng):
        """Valid signatures are bound to their block: swapping two stored
        signatures breaks every challenge touching either block."""
        _, _, cloud, verifier, signed = world
        stored = cloud.retrieve(b"f")
        stored.signatures[0], stored.signatures[1] = (
            stored.signatures[1],
            stored.signatures[0],
        )
        ch = verifier.generate_challenge(b"f", stored.n_blocks)
        assert not verifier.verify(ch, cloud.generate_proof(b"f", ch))

    def test_signature_reuse_across_files(self, world, params_k4, rng):
        """A signature from file f cannot vouch for the same bytes in g
        (H(id) binds the file id)."""
        sem, owner, cloud, verifier, signed = world
        fake_blocks = [
            Block(block_id=make_block_id(b"g", i), elements=b.elements)
            for i, b in enumerate(signed.blocks)
        ]
        from repro.core.owner import SignedFile

        forged = SignedFile(
            file_id=b"g", blocks=tuple(fake_blocks), signatures=signed.signatures
        )
        cloud.store(forged)
        ch = verifier.generate_challenge(b"g", len(fake_blocks))
        assert not verifier.verify(ch, cloud.generate_proof(b"g", ch))

    def test_scaled_signature_rejected(self, world, params_k4, rng, group):
        _, _, cloud, verifier, signed = world
        ch = verifier.generate_challenge(b"f", len(signed.blocks), sample_size=2)
        proof = cloud.generate_proof(b"f", ch)
        scaled = ProofResponse(sigma=proof.sigma**2, alphas=proof.alphas)
        assert not verifier.verify(ch, scaled)
        doubled_alphas = tuple(2 * a % params_k4.order for a in proof.alphas)
        # Scaling sigma AND alphas still fails: H(id)^beta terms don't scale.
        both = ProofResponse(sigma=proof.sigma**2, alphas=doubled_alphas)
        assert not verifier.verify(ch, both)

    def test_identity_sigma_rejected(self, world, params_k4, group):
        _, _, cloud, verifier, signed = world
        ch = verifier.generate_challenge(b"f", len(signed.blocks))
        proof = cloud.generate_proof(b"f", ch)
        forged = ProofResponse(sigma=group.g1_identity(), alphas=proof.alphas)
        assert not verifier.verify(ch, forged)

    def test_zero_alphas_rejected(self, world, params_k4):
        _, _, cloud, verifier, signed = world
        ch = verifier.generate_challenge(b"f", len(signed.blocks))
        proof = cloud.generate_proof(b"f", ch)
        zeroed = ProofResponse(sigma=proof.sigma, alphas=(0,) * params_k4.k)
        assert not verifier.verify(ch, zeroed)


class TestMixAndMatchAttacks:
    def test_proof_for_subset_fails_superset_challenge(self, world):
        """A proof computed over fewer blocks than challenged fails."""
        _, _, cloud, verifier, signed = world
        full = verifier.generate_challenge(b"f", len(signed.blocks))
        partial = Challenge(
            indices=full.indices[:2],
            block_ids=full.block_ids[:2],
            betas=full.betas[:2],
        )
        small_proof = cloud.generate_proof(b"f", partial)
        assert not verifier.verify(full, small_proof)

    def test_two_valid_proofs_cannot_be_merged_naively(self, world, group, params_k4):
        """σ1·σ2 with concatenated alphas is not a valid proof for the
        union challenge (the alphas must be recomputed jointly)."""
        _, _, cloud, verifier, signed = world
        n = len(signed.blocks)
        ch1 = verifier.generate_challenge(b"f", n, sample_size=2)
        ch2 = verifier.generate_challenge(b"f", n, sample_size=2)
        p1 = cloud.generate_proof(b"f", ch1)
        p2 = cloud.generate_proof(b"f", ch2)
        if set(ch1.indices) & set(ch2.indices):
            pytest.skip("sampled overlapping indices; union ill-defined")
        union = Challenge(
            indices=ch1.indices + ch2.indices,
            block_ids=ch1.block_ids + ch2.block_ids,
            betas=ch1.betas + ch2.betas,
        )
        merged = ProofResponse(
            sigma=p1.sigma * p2.sigma,
            alphas=p1.alphas,  # an attacker must pick SOME k alphas
        )
        # NOTE: summing the alpha vectors IS valid (linearity) — tested
        # positively in test_properties — but reusing either one alone fails:
        assert not verifier.verify(union, merged)

    def test_cross_organization_signatures_rejected(self, group, params_k4, rng):
        """Signatures from a different organization's SEM never verify."""
        sem_a = SecurityMediator(group, rng=rng, require_membership=False)
        sem_b = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem_b.pk, rng=rng)
        signed = owner.sign_file(b"other org data", b"f", sem_b)
        cloud = CloudServer(params_k4, rng=rng)
        cloud.store(signed)
        verifier_a = PublicVerifier(params_k4, sem_a.pk, rng=rng)
        ch = verifier_a.generate_challenge(b"f", len(signed.blocks))
        assert not verifier_a.verify(ch, cloud.generate_proof(b"f", ch))

    def test_blinded_element_is_not_a_signature(self, world, group, params_k4, rng):
        """The SEM's transcript values (blinded messages / blind sigs) are
        useless as verification metadata for any block."""
        sem, owner, cloud, verifier, signed = world
        entry = sem.transcript[0]
        stored = cloud.retrieve(b"f")
        stored.signatures[0] = entry.blind_signature
        ch = verifier.generate_challenge(b"f", stored.n_blocks)
        assert not verifier.verify(ch, cloud.generate_proof(b"f", ch))
