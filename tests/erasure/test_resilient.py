"""End-to-end tests for erasure-coded resilient storage."""

import pytest

from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier
from repro.erasure import ResilientStore

PAYLOAD = b"erasure coded shared payload " * 8


@pytest.fixture()
def store(group, params_k4, rng):
    sem = SecurityMediator(group, rng=rng, require_membership=False)
    owner = DataOwner(params_k4, sem.pk, rng=rng)
    cloud = CloudServer(params_k4, rng=rng)
    verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
    rs = ResilientStore(params_k4, owner, sem, cloud, verifier, parity=3, rng=rng)
    rs.store(PAYLOAD, b"f")
    return rs


class TestStoreAndAudit:
    def test_coded_blocks_count(self, store):
        stored = store.cloud.retrieve(b"f")
        assert stored.n_blocks == store._data_blocks[b"f"] + 3

    def test_clean_audit_passes(self, store):
        assert store.audit(b"f")

    def test_parity_blocks_audit_like_data_blocks(self, store, rng):
        """Verifiers cannot tell parity from data — same signatures, same
        equation (a nice anonymity-adjacent property of this integration)."""
        stored = store.cloud.retrieve(b"f")
        parity_start = store._data_blocks[b"f"]
        ch = store.verifier.generate_challenge(b"f", stored.n_blocks)
        assert store.verifier.verify(ch, store.cloud.generate_proof(b"f", ch))
        for position in range(parity_start, stored.n_blocks):
            ch = store._single_block_challenge(b"f", position)
            assert store.verifier.verify(ch, store.cloud.generate_proof(b"f", ch))

    def test_retrieve_clean(self, store):
        assert store.retrieve(b"f") == PAYLOAD


class TestLocalization:
    def test_no_corruption_empty(self, store):
        assert store.locate_corruption(b"f") == []

    def test_locates_exact_positions(self, store):
        store.cloud.tamper_block(b"f", 1)
        store.cloud.tamper_block(b"f", 4)
        assert store.locate_corruption(b"f") == [1, 4]

    def test_sampled_audit_fails_then_localize(self, store):
        store.cloud.tamper_block(b"f", 0)
        assert not store.audit(b"f")  # cheap check trips
        assert store.locate_corruption(b"f") == [0]  # scrub pins it down


class TestBinarySplitSchedule:
    """`locate_corruption` is group testing, not a per-block scrub."""

    def _counting(self, store):
        counts = {"checks": 0, "challenged": 0}
        real = store.verifier.verify

        def verify(challenge, proof):
            counts["checks"] += 1
            counts["challenged"] += len(challenge)
            return real(challenge, proof)

        store.verifier.verify = verify
        return counts

    def test_clean_file_costs_one_aggregate_check(self, store):
        counts = self._counting(store)
        assert store.locate_corruption(b"f") == []
        assert counts["checks"] == 1  # one range check certifies the file

    def test_single_corruption_is_logarithmic(self, store):
        import math

        store.cloud.tamper_block(b"f", 4)
        n = store.cloud.retrieve(b"f").n_blocks
        counts = self._counting(store)
        assert store.locate_corruption(b"f") == [4]
        # Root + two children per level down one path: ~2·log2(n), and in
        # particular strictly fewer checks than the old n-challenge scrub.
        assert counts["checks"] <= 2 * math.ceil(math.log2(n)) + 1
        assert counts["checks"] < n

    def test_schedule_is_deterministic(self, group, params_k4):
        """Same seed → the exact same (range, size) visit sequence."""
        import random

        def run():
            rng = random.Random(0xC0FFEE)
            sem = SecurityMediator(group, rng=rng, require_membership=False)
            owner = DataOwner(params_k4, sem.pk, rng=rng)
            cloud = CloudServer(params_k4, rng=rng)
            verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
            rs = ResilientStore(params_k4, owner, sem, cloud, verifier,
                                parity=3, rng=rng)
            rs.store(PAYLOAD, b"f")
            cloud.tamper_block(b"f", 1)
            cloud.tamper_block(b"f", 6)
            visited = []
            real = verifier.verify

            def verify(challenge, proof):
                visited.append(challenge.indices)
                return real(challenge, proof)

            verifier.verify = verify
            assert rs.locate_corruption(b"f") == [1, 6]
            return visited

        assert run() == run()

    def test_localize_span_records_cost(self, group, params_k4, rng):
        from repro.obs import Observability

        obs = Observability.create()
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        owner = DataOwner(params_k4, sem.pk, rng=rng)
        cloud = CloudServer(params_k4, rng=rng)
        verifier = PublicVerifier(params_k4, sem.pk, rng=rng)
        rs = ResilientStore(params_k4, owner, sem, cloud, verifier,
                            parity=3, rng=rng, obs=obs)
        rs.store(PAYLOAD, b"f")
        cloud.tamper_block(b"f", 2)
        rs.locate_corruption(b"f")
        (span,) = obs.tracer.find("repair.localize")
        assert span.attributes["corrupt"] == 1
        assert span.attributes["challenges"] >= 2
        assert span.attributes["blocks"] == cloud.retrieve(b"f").n_blocks


class TestRepair:
    def test_repair_within_parity_budget(self, store):
        for position in (0, 2, 5):
            store.cloud.tamper_block(b"f", position)
        report = store.repair(b"f")
        assert report.repaired
        assert report.corrupt_positions == (0, 2, 5)
        assert report.resigned_blocks == 3
        assert store.audit(b"f")
        assert store.retrieve(b"f") == PAYLOAD

    def test_repaired_blocks_have_valid_signatures(self, store):
        store.cloud.tamper_block(b"f", 1)
        store.repair(b"f")
        assert store.locate_corruption(b"f") == []

    def test_repair_beyond_budget_fails_gracefully(self, store):
        stored = store.cloud.retrieve(b"f")
        n = stored.n_blocks
        victims = list(range(4))  # parity = 3: one too many
        for position in victims:
            store.cloud.tamper_block(b"f", position)
        report = store.repair(b"f")
        assert not report.repaired
        assert len(report.corrupt_positions) == 4

    def test_repair_noop_when_clean(self, store):
        report = store.repair(b"f")
        assert report.repaired and report.resigned_blocks == 0

    def test_retrieve_through_corruption_without_repair(self, store):
        store.cloud.tamper_block(b"f", 2)
        assert store.retrieve(b"f") == PAYLOAD

    def test_signature_tampering_also_located_and_repaired(self, store):
        store.cloud.tamper_signature(b"f", 3)
        assert store.locate_corruption(b"f") == [3]
        report = store.repair(b"f")
        assert report.repaired
        assert store.audit(b"f")
