"""Tests for the Reed-Solomon erasure code over Z_p."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.reed_solomon import ReedSolomonCode

P = 2**61 - 1


def _random_words(rng, count, width=3):
    return [tuple(rng.randrange(P) for _ in range(width)) for _ in range(count)]


class TestEncodeDecode:
    def test_systematic(self):
        rng = random.Random(1)
        words = _random_words(rng, 4)
        code = ReedSolomonCode(4, 2, P)
        coded = code.encode(words)
        assert coded[:4] == words
        assert len(coded) == 6

    def test_no_parity_passthrough(self):
        rng = random.Random(2)
        words = _random_words(rng, 3)
        code = ReedSolomonCode(3, 0, P)
        assert code.encode(words) == words

    def test_any_k_subset_decodes(self):
        rng = random.Random(3)
        words = _random_words(rng, 3)
        code = ReedSolomonCode(3, 2, P)
        coded = code.encode(words)
        for subset in combinations(range(5), 3):
            available = {i: coded[i] for i in subset}
            assert code.decode(available) == words

    def test_decode_with_extra_words(self):
        rng = random.Random(4)
        words = _random_words(rng, 4)
        code = ReedSolomonCode(4, 3, P)
        coded = code.encode(words)
        assert code.decode(dict(enumerate(coded))) == words

    def test_insufficient_words_raise(self):
        code = ReedSolomonCode(3, 2, P)
        with pytest.raises(ValueError):
            code.decode({0: (1,), 1: (2,)})

    def test_out_of_range_index(self):
        code = ReedSolomonCode(2, 1, P)
        with pytest.raises(ValueError):
            code.decode({0: (1,), 5: (2,)})

    def test_wrong_word_count(self):
        code = ReedSolomonCode(3, 1, P)
        with pytest.raises(ValueError):
            code.encode([(1,), (2,)])

    def test_ragged_words_rejected(self):
        code = ReedSolomonCode(2, 1, P)
        with pytest.raises(ValueError):
            code.encode([(1, 2), (3,)])

    def test_single_data_word(self):
        code = ReedSolomonCode(1, 3, P)
        coded = code.encode([(7, 8)])
        # A degree-0 polynomial: every coded word equals the data word.
        assert all(word == (7, 8) for word in coded)
        assert code.decode({3: coded[3]}) == [(7, 8)]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 1, P)
        with pytest.raises(ValueError):
            ReedSolomonCode(1, -1, P)
        with pytest.raises(ValueError):
            ReedSolomonCode(5, 5, 7)  # field too small

    def test_parity_word_recompute(self):
        rng = random.Random(5)
        words = _random_words(rng, 3)
        code = ReedSolomonCode(3, 2, P)
        coded = code.encode(words)
        assert code.parity_word(0, words) == coded[3]
        assert code.parity_word(1, words) == coded[4]

    @settings(max_examples=25)
    @given(st.data())
    def test_property_mds(self, data):
        """Any data-sized subset of coded words reconstructs (MDS)."""
        k = data.draw(st.integers(1, 5))
        m = data.draw(st.integers(0, 4))
        width = data.draw(st.integers(1, 3))
        words = [
            tuple(data.draw(st.integers(0, P - 1)) for _ in range(width))
            for _ in range(k)
        ]
        code = ReedSolomonCode(k, m, P)
        coded = code.encode(words)
        survivors = data.draw(
            st.sets(st.integers(0, k + m - 1), min_size=k, max_size=k)
        )
        assert code.decode({i: coded[i] for i in survivors}) == words

    def test_no_parity_round_trip(self):
        """parity=0 is the degenerate identity code — and must still
        decode, not just encode: the fleet uses RS(width, width) when a
        caller asks for zero fault tolerance."""
        rng = random.Random(7)
        words = _random_words(rng, 4)
        code = ReedSolomonCode(4, 0, P)
        coded = code.encode(words)
        assert coded == words
        assert code.decode(dict(enumerate(coded))) == words
        with pytest.raises(ValueError):
            code.decode({i: coded[i] for i in range(3)})  # any loss is fatal

    def test_single_data_word_interpolation(self):
        """data=1: a constant polynomial, recoverable from ANY one coded
        word — the widest replication the code degenerates into."""
        rng = random.Random(8)
        (word,) = _random_words(rng, 1)
        code = ReedSolomonCode(1, 5, P)
        coded = code.encode([word])
        for index in range(6):
            assert code.decode({index: coded[index]}) == [word]

    def test_seeded_exact_survivor_decoding(self):
        """Seeded sweep over geometries: a random survivor set of size
        exactly ``data`` — the MDS bound, no slack — always round-trips,
        and the chosen sets are reproducible from the seed."""
        rng = random.Random(0xFEED)
        for data_shards in (1, 2, 3, 5, 8):
            for parity in (1, 2, 4):
                code = ReedSolomonCode(data_shards, parity, P)
                words = _random_words(rng, data_shards, width=2)
                coded = code.encode(words)
                for _ in range(5):
                    survivors = rng.sample(
                        range(data_shards + parity), data_shards
                    )
                    available = {i: coded[i] for i in survivors}
                    assert code.decode(available) == words

    def test_corrupted_word_breaks_decode_consistency(self):
        """RS is an erasure code: decoding from a set containing a wrong
        word gives wrong output — localization (via PDP audits) is what
        turns corruption into erasure."""
        rng = random.Random(6)
        words = _random_words(rng, 3)
        code = ReedSolomonCode(3, 1, P)
        coded = code.encode(words)
        bad = {0: coded[0], 1: coded[1], 2: tuple((e + 1) % P for e in coded[2])}
        assert code.decode(bad) != words
