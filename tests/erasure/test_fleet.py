"""Erasure-coded multi-cloud fleet: stripe, audit, quarantine, repair.

Every test drives a small seeded RS(4,2) fleet (four active servers, one
coded slot each, two tolerated losses, one warm spare) built by
:func:`~repro.erasure.fleet.build_demo_fleet` — the same constructor the
CLI, the bench suite, and the scenario drill share.
"""

import pytest

from repro.erasure.fleet import ServerUnavailable, build_demo_fleet
from repro.erasure.placement import slice_file_id
from repro.obs.ledger import Ledger, verify_ledger

PAYLOAD = b"fleet payload shared across coded slots " * 6
FILE = b"fleet-file"


def _fleet(ledger=None, servers=4, parity=2, spares=1, seed=11, files=1):
    fleet = build_demo_fleet(servers=servers, parity=parity, spares=spares,
                             seed=seed, ledger=ledger)
    for i in range(files):
        fleet.store(PAYLOAD, FILE if files == 1 else FILE + b"-%d" % i)
    return fleet


class TestStore:
    def test_one_slice_per_active_server(self):
        fleet = _fleet()
        placement = fleet.placements.get(FILE)
        assert placement.servers == fleet.active_names
        assert placement.width == 4 and placement.data_shards == 2
        for slot, name in enumerate(placement.servers):
            assert fleet.handles[name].has_file(placement.slice_id(slot))

    def test_slice_ids_derive_from_file_and_slot_only(self):
        """Signatures survive re-homing because the slice identity does
        not mention the server that happens to hold it."""
        fleet = _fleet()
        placement = fleet.placements.get(FILE)
        for slot in range(placement.width):
            assert placement.slice_id(slot) == slice_file_id(FILE, slot)

    def test_retrieve_round_trips(self):
        assert _fleet().retrieve(FILE) == PAYLOAD

    def test_retrieve_survives_parity_losses(self):
        fleet = _fleet()
        fleet.set_online("cloud-s0", False)
        fleet.set_online("cloud-s2", False)
        assert fleet.reconstructible(FILE)
        assert fleet.retrieve(FILE) == PAYLOAD

    def test_retrieve_fails_closed_beyond_parity(self):
        fleet = _fleet()
        for name in ("cloud-s0", "cloud-s1", "cloud-s2"):
            fleet.set_online(name, False)
        assert not fleet.reconstructible(FILE)
        with pytest.raises(ValueError, match="unrecoverable"):
            fleet.retrieve(FILE)

    def test_offline_handle_raises(self):
        fleet = _fleet()
        fleet.set_online("cloud-s1", False)
        with pytest.raises(ServerUnavailable):
            fleet.handles["cloud-s1"].retrieve(b"x")


class TestAudit:
    def test_clean_round_aggregates_ok(self):
        fleet = _fleet(files=2)
        report = fleet.audit_round()
        assert report.checks == 4 * 2  # every (server, file) slice
        assert report.failures == 0 and report.timeouts == 0
        assert report.aggregate_ok is True
        assert report.passed

    def test_dead_server_times_out_and_quarantines(self):
        fleet = _fleet()
        fleet.set_online("cloud-s2", False)
        report = fleet.audit_round()
        assert report.timeouts == 1 and not report.passed
        assert fleet.scoreboard.quarantined_names() == ["cloud-s2"]
        follow_up = fleet.audit_round()
        assert follow_up.skipped_servers == ("cloud-s2",)

    def test_tampered_slice_fails_eq6_and_quarantines(self):
        fleet = _fleet()
        placement = fleet.placements.get(FILE)
        fleet.handles["cloud-s3"].server.tamper_block(placement.slice_id(3), 0)
        report = fleet.audit_round()
        assert report.failures == 1
        (bad,) = [v for v in report.verdicts if v.status == "invalid"]
        assert bad.server == "cloud-s3" and bad.slot == 3
        assert fleet.scoreboard.quarantined_names() == ["cloud-s3"]


class TestRepair:
    def test_lost_server_rehomes_to_spare(self, tmp_path):
        ledger = Ledger(path=tmp_path / "fleet.jsonl")
        fleet = _fleet(ledger=ledger)
        fleet.set_online("cloud-s1", False)
        fleet.audit_round()
        report = fleet.repair()
        assert report.repaired and not report.unrecoverable
        (task,) = report.completed
        assert task.source == "cloud-s1" and task.target == "cloud-s4"
        assert "cloud-s4" in fleet.placements.get(FILE).servers
        assert report.reaudits_passed == 1
        assert fleet.retrieve(FILE) == PAYLOAD
        verification = verify_ledger(ledger.path)
        assert verification.ok, verification.errors
        assert verification.counts["repair_begin"] == 1
        assert verification.counts["repair_complete"] == 1
        assert verification.counts["cloud_quarantine"] == 1
        assert verification.open_repairs == []

    def test_repair_targets_recovered_server_in_place(self):
        fleet = _fleet()
        placement = fleet.placements.get(FILE)
        fleet.handles["cloud-s0"].server.tamper_block(placement.slice_id(0), 1)
        fleet.audit_round()  # invalid proof quarantines cloud-s0
        report = fleet.repair()
        (task,) = report.completed
        assert task.source == "cloud-s0" and task.target == "cloud-s0"
        assert fleet.placements.get(FILE).servers == fleet.active_names
        follow = fleet.audit_round()  # window not lapsed: still skipped
        assert follow.skipped_servers == ("cloud-s0",) and follow.passed
        fleet.scoreboard.record_success_name("cloud-s0")
        after = fleet.audit_round()
        assert after.skipped_servers == () and after.passed

    def test_beyond_parity_is_unrecoverable_not_wrong(self, tmp_path):
        ledger = Ledger(path=tmp_path / "fleet.jsonl")
        fleet = _fleet(ledger=ledger)
        for name in ("cloud-s0", "cloud-s1", "cloud-s2"):
            fleet.set_online(name, False)
        fleet.audit_round()
        report = fleet.repair()
        assert not report.repaired and not report.completed
        assert len(report.unrecoverable) == 3
        verification = verify_ledger(ledger.path)
        assert verification.ok, verification.errors
        assert verification.counts["repair_failed"] == 3
        assert verification.open_repairs == []

    def test_one_spare_absorbs_one_slot_per_file(self):
        """Two dead servers, one spare: the second task must fail at
        execution time (the spare already took the first slot), not
        silently double-place."""
        fleet = _fleet(files=1)
        fleet.set_online("cloud-s0", False)
        fleet.set_online("cloud-s1", False)
        fleet.audit_round()
        report = fleet.repair()
        assert len(report.completed) == 1 and len(report.unrecoverable) == 1
        servers = fleet.placements.get(FILE).servers
        assert len(set(servers)) == len(servers)  # never doubled up


class TestCrashResume:
    def test_resume_finishes_open_repair_idempotently(self, tmp_path):
        ledger = Ledger(path=tmp_path / "fleet.jsonl")
        fleet = _fleet(ledger=ledger)
        fleet.set_online("cloud-s3", False)
        fleet.audit_round()

        real = ledger.append

        def power_cut(kind, body):
            if kind == "repair_slice":
                raise RuntimeError("power cut mid-repair")
            return real(kind, body)

        ledger.append = power_cut
        with pytest.raises(RuntimeError, match="power cut"):
            fleet.repair()
        ledger.append = real

        # The chain now ends with a repair_begin and no completion: the
        # verifier tolerates it but surfaces the open repair.
        mid = verify_ledger(ledger.path)
        assert mid.ok, mid.errors
        assert len(mid.open_repairs) == 1

        resumed = fleet.resume_repairs()
        assert resumed.repaired
        (task,) = resumed.completed
        assert task.source == "cloud-s3" and task.target == "cloud-s4"
        assert fleet.retrieve(FILE) == PAYLOAD

        done = verify_ledger(ledger.path)
        assert done.ok, done.errors
        # The crashed attempt stays open forever (its completion was never
        # written); the resumed attempt begins and completes cleanly.
        assert done.counts["repair_begin"] == 2
        assert done.counts["repair_complete"] == 1
        assert done.open_repairs == mid.open_repairs

    def test_resume_with_clean_ledger_is_a_noop(self, tmp_path):
        ledger = Ledger(path=tmp_path / "fleet.jsonl")
        fleet = _fleet(ledger=ledger)
        fleet.set_online("cloud-s2", False)
        fleet.audit_round()
        fleet.repair()
        report = fleet.resume_repairs()
        assert report.tasks == [] and report.slices_rebuilt == 0


class TestDeterminism:
    def test_same_seed_same_ledger_head(self, tmp_path):
        def run(path):
            ledger = Ledger(path=path)
            fleet = _fleet(ledger=ledger)
            fleet.set_online("cloud-s1", False)
            fleet.audit_round()
            fleet.repair()
            return ledger.head()["hash"]

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")
