"""Tests for F_p² = F_p[i]/(i² + 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mathkit.fp2 import Fp2Element, QuadraticExtension

P = 2**89 - 1  # Mersenne prime, 89 % 4 == ... (2^89-1) % 4 == 3
F2 = QuadraticExtension(P)

coords = st.integers(0, P - 1)


def elem(a, b):
    return F2(a, b)


class TestConstruction:
    def test_requires_3_mod_4(self):
        with pytest.raises(ValueError):
            QuadraticExtension(13)  # 13 % 4 == 1

    def test_identities(self):
        assert F2.zero().is_zero()
        assert F2.one().is_one()
        assert F2.i() * F2.i() == F2(-1)

    def test_random(self):
        import random

        e = F2.random(random.Random(2))
        assert 0 <= e.a < P and 0 <= e.b < P


class TestArithmetic:
    @given(coords, coords, coords, coords)
    def test_mul_commutes(self, a, b, c, d):
        assert elem(a, b) * elem(c, d) == elem(c, d) * elem(a, b)

    @given(coords, coords)
    def test_square_matches_mul(self, a, b):
        x = elem(a, b)
        assert x.square() == x * x

    @given(coords, coords)
    def test_inverse(self, a, b):
        x = elem(a, b)
        if x.is_zero():
            return
        assert (x * x.inverse()).is_one()
        assert (x / x).is_one()

    @given(coords, coords)
    def test_conjugate_norm(self, a, b):
        x = elem(a, b)
        assert (x * x.conjugate()) == F2(x.norm())

    def test_int_scalar_mul(self):
        assert elem(2, 3) * 4 == elem(8, 12)
        assert 4 * elem(2, 3) == elem(8, 12)

    def test_pow_known(self):
        x = elem(0, 1)
        assert x**2 == elem(-1, 0)
        assert x**4 == F2.one()

    def test_pow_negative(self):
        x = elem(5, 7)
        assert (x**-3) * (x**3) == F2.one()

    @given(coords, coords)
    def test_frobenius_is_p_power(self, a, b):
        x = elem(a, b)
        assert x.frobenius() == x**P

    @given(coords, coords)
    def test_fermat_order(self, a, b):
        x = elem(a, b)
        if x.is_zero():
            return
        assert (x ** (P * P - 1)).is_one()

    def test_neg_sub(self):
        x = elem(3, 4)
        assert x + (-x) == F2.zero()
        assert x - x == F2.zero()


class TestProtocol:
    def test_hash_consistency(self):
        assert hash(elem(1, 2)) == hash(elem(1 + P, 2 + P))

    def test_repr(self):
        assert "Fp2" in repr(elem(1, 2))

    def test_extension_eq(self):
        assert QuadraticExtension(P) == QuadraticExtension(P)
        assert hash(QuadraticExtension(P)) == hash(QuadraticExtension(P))
