"""Tests for the generic polynomial extension fields (BN254 tower)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathkit.tower import ExtFieldSpec

P = 21888242871839275222246405745257275088696311157297823662689037894645226208583
FQ2 = ExtFieldSpec(P, (1, 0))  # u² + 1
FQ12 = ExtFieldSpec(P, (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0))

coords = st.integers(0, P - 1)


class TestFQ2:
    def test_gen_squares_to_minus_one(self):
        u = FQ2.gen()
        assert u * u == FQ2(P - 1)

    def test_identity_elements(self):
        assert FQ2.zero().is_zero()
        assert FQ2.one().is_one()
        assert (FQ2.one() * FQ2([3, 4])) == FQ2([3, 4])

    def test_int_coercion(self):
        assert FQ2(5) == FQ2([5, 0])
        assert FQ2([1, 2]) + 1 == FQ2([2, 2])
        assert 2 * FQ2([1, 2]) == FQ2([2, 4])

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FQ2([1, 2, 3])

    @given(coords, coords)
    def test_inverse(self, a, b):
        x = FQ2([a, b])
        if x.is_zero():
            return
        assert (x * x.inverse()).is_one()
        assert (x / x).is_one()

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            FQ2.zero().inverse()

    @given(coords, coords, coords, coords)
    def test_mul_commutative(self, a, b, c, d):
        assert FQ2([a, b]) * FQ2([c, d]) == FQ2([c, d]) * FQ2([a, b])

    def test_division_forms(self):
        x = FQ2([3, 4])
        assert x / 2 * 2 == x
        assert (1 / x) * x == FQ2.one()
        assert (2 - x) + x == FQ2(2)

    def test_pow_negative(self):
        x = FQ2([3, 4])
        assert x**-2 * x**2 == FQ2.one()


class TestFQ12:
    def test_modulus_relation(self):
        w = FQ12.gen()
        # w¹² = 18w⁶ − 82.
        lhs = w**12
        rhs = 18 * w**6 - FQ12(82)
        assert lhs == rhs

    def test_associativity_sample(self):
        w = FQ12.gen()
        a = w**5 + FQ12(3)
        b = w**7 + FQ12(11)
        c = w**2 - FQ12(1)
        assert (a * b) * c == a * (b * c)

    def test_inverse_round_trip(self):
        w = FQ12.gen()
        x = w**9 + 5 * w**3 + FQ12(7)
        assert (x * x.inverse()).is_one()

    @settings(max_examples=10, deadline=None)
    @given(st.lists(coords, min_size=12, max_size=12))
    def test_inverse_property(self, coeffs):
        x = FQ12(coeffs)
        if x.is_zero():
            return
        assert (x * x.inverse()).is_one()

    def test_distributivity(self):
        w = FQ12.gen()
        a, b, c = w + FQ12(1), w**3, w**6 + FQ12(2)
        assert a * (b + c) == a * b + a * c

    def test_spec_equality(self):
        assert FQ12 == ExtFieldSpec(P, (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0))
        assert FQ2 != FQ12
