"""Tests for polynomials over Z_p and Lagrange interpolation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathkit.poly import (
    Polynomial,
    lagrange_basis_at_zero,
    lagrange_interpolate_at_zero,
)

P = 2**61 - 1


class TestPolynomial:
    def test_degree(self):
        assert Polynomial([1, 2, 3], P).degree == 2
        assert Polynomial([5], P).degree == 0
        assert Polynomial([0], P).degree == -1
        assert Polynomial([1, 0, 0], P).degree == 0  # trailing zeros trimmed

    def test_evaluate_horner(self):
        f = Polynomial([1, 2, 3], P)  # 1 + 2x + 3x²
        assert f(0) == 1
        assert f(1) == 6
        assert f(2) == 1 + 4 + 12

    def test_call_alias(self):
        f = Polynomial([7], P)
        assert f(123) == f.evaluate(123) == 7

    def test_add(self):
        f = Polynomial([1, 2], P)
        g = Polynomial([3, 4, 5], P)
        assert (f + g)(10) == (f(10) + g(10)) % P

    def test_mul(self):
        f = Polynomial([1, 1], P)  # 1 + x
        g = Polynomial([1, P - 1], P)  # 1 - x
        assert f * g == Polynomial([1, 0, P - 1], P)  # 1 - x²

    def test_scalar_mul(self):
        f = Polynomial([1, 2], P)
        assert (f * 3)(5) == (3 * f(5)) % P
        assert (3 * f)(5) == (3 * f(5)) % P

    def test_cross_field_rejected(self):
        with pytest.raises(ValueError):
            Polynomial([1], P) + Polynomial([1], 101)
        with pytest.raises(ValueError):
            Polynomial([1], P) * Polynomial([1], 101)

    @given(st.lists(st.integers(0, P - 1), min_size=1, max_size=6), st.integers(0, P - 1))
    def test_evaluation_matches_naive(self, coeffs, x):
        f = Polynomial(coeffs, P)
        naive = sum(c * pow(x, i, P) for i, c in enumerate(coeffs)) % P
        assert f(x) == naive


class TestLagrange:
    def test_basis_sums_to_one_for_constant(self):
        # Interpolating the constant polynomial 1 must give 1.
        xs = [1, 2, 3, 4]
        basis = lagrange_basis_at_zero(xs, P)
        assert sum(basis) % P == 1

    def test_recovers_f0(self):
        rng = random.Random(4)
        for degree in range(5):
            coeffs = [rng.randrange(P) for _ in range(degree + 1)]
            f = Polynomial(coeffs, P)
            xs = rng.sample(range(1, 100), degree + 1)
            points = [(x, f(x)) for x in xs]
            assert lagrange_interpolate_at_zero(points, P) == coeffs[0]

    def test_more_points_than_degree_ok(self):
        f = Polynomial([42, 7], P)
        points = [(x, f(x)) for x in (1, 2, 3, 4, 5)]
        assert lagrange_interpolate_at_zero(points, P) == 42

    def test_duplicate_abscissae_rejected(self):
        with pytest.raises(ValueError):
            lagrange_basis_at_zero([1, 1], P)

    def test_basis_independent_of_polynomial(self):
        # Eq. 11's point: the basis only depends on the xs.
        xs = [3, 6, 9]
        assert lagrange_basis_at_zero(xs, P) == lagrange_basis_at_zero(xs, P)

    @settings(max_examples=20)
    @given(st.integers(0, P - 1), st.integers(0, P - 1), st.integers(0, P - 1))
    def test_quadratic_property(self, a0, a1, a2):
        f = Polynomial([a0, a1, a2], P)
        points = [(x, f(x)) for x in (11, 22, 33)]
        assert lagrange_interpolate_at_zero(points, P) == a0
