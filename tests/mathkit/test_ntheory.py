"""Unit and property tests for repro.mathkit.ntheory."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathkit.ntheory import (
    crt,
    egcd,
    inverse_mod,
    is_prime,
    jacobi_symbol,
    next_prime,
    random_prime,
    sqrt_mod,
)

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]
SMALL_COMPOSITES = [0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 49, 91, 221]
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]
LARGE_PRIMES = [
    (1 << 127) - 1,  # Mersenne
    2**255 - 19,  # Curve25519 field prime
    0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,  # P-256
]


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_zero_cases(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5

    @given(st.integers(1, 10**12), st.integers(1, 10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestInverseMod:
    def test_known(self):
        assert inverse_mod(3, 7) == 5

    def test_round_trip(self):
        p = 1009
        for a in range(1, 50):
            assert a * inverse_mod(a, p) % p == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ZeroDivisionError):
            inverse_mod(6, 9)

    def test_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            inverse_mod(0, 7)

    @given(st.integers(2, 10**9))
    def test_inverse_property(self, n):
        a = n * 2 + 1
        m = 2**61 - 1  # prime
        assert a * inverse_mod(a, m) % m == 1


class TestIsPrime:
    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_small_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("n", SMALL_COMPOSITES)
    def test_small_composites(self, n):
        assert not is_prime(n)

    @pytest.mark.parametrize("n", CARMICHAELS)
    def test_carmichael_numbers_rejected(self, n):
        assert not is_prime(n)

    @pytest.mark.parametrize("p", LARGE_PRIMES)
    def test_large_primes(self, p):
        assert is_prime(p)

    def test_large_composite(self):
        assert not is_prime((2**127 - 1) * (2**89 - 1))

    def test_negative(self):
        assert not is_prime(-7)

    def test_product_of_two_close_primes(self):
        p = next_prime(10**15)
        q = next_prime(p)
        assert not is_prime(p * q)


class TestNextPrime:
    def test_sequence(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(7) == 11
        assert next_prime(10) == 11

    def test_large(self):
        p = next_prime(10**12)
        assert is_prime(p)
        assert p > 10**12


class TestRandomPrime:
    def test_bit_length(self):
        rng = random.Random(1)
        for bits in [8, 16, 64, 128]:
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_deterministic_with_seed(self):
        assert random_prime(64, random.Random(5)) == random_prime(64, random.Random(5))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_prime(1)


class TestJacobi:
    def test_known_values(self):
        # (a/7) for a = 1..6: QRs mod 7 are {1,2,4}.
        assert [jacobi_symbol(a, 7) for a in range(1, 7)] == [1, 1, -1, 1, -1, -1]

    def test_zero(self):
        assert jacobi_symbol(0, 7) == 0
        assert jacobi_symbol(21, 7) == 0

    def test_even_modulus_raises(self):
        with pytest.raises(ValueError):
            jacobi_symbol(3, 8)

    @given(st.integers(0, 10**9))
    def test_multiplicativity(self, a):
        n = 1000003  # prime
        assert jacobi_symbol(a * a, n) in (0, 1)


class TestSqrtMod:
    @pytest.mark.parametrize("p", [7, 11, 13, 17, 10007, 1000003, 2**61 - 1])
    def test_round_trip(self, p):
        rng = random.Random(p)
        for _ in range(20):
            x = rng.randrange(p)
            root = sqrt_mod(x * x % p, p)
            assert root is not None
            assert root * root % p == x * x % p

    def test_non_residue_none(self):
        # 3 is not a QR mod 7.
        assert sqrt_mod(3, 7) is None

    def test_zero(self):
        assert sqrt_mod(0, 13) == 0

    def test_p_equals_3_mod_4_branch(self):
        p = 10007  # 10007 % 4 == 3
        assert p % 4 == 3
        root = sqrt_mod(4, p)
        assert root * root % p == 4

    def test_tonelli_shanks_branch(self):
        p = 1000003 * 0 + 13  # placeholder to keep explicit values below
        p = 17  # 17 % 4 == 1 -> Tonelli-Shanks path
        assert p % 4 == 1
        for a in range(1, p):
            root = sqrt_mod(a, p)
            if root is not None:
                assert root * root % p == a

    def test_highly_2_adic_prime(self):
        # p - 1 = 2^32 * 3 * 5 * 17 * 257 * 65537: stresses Tonelli-Shanks.
        p = (1 << 32) * 3 * 5 * 17 * 257 * 65537 + 1
        assert is_prime(p)
        rng = random.Random(3)
        for _ in range(5):
            x = rng.randrange(1, p)
            got = sqrt_mod(x * x % p, p)
            assert got * got % p == x * x % p


class TestCrt:
    def test_basic(self):
        assert crt([2, 3], [3, 5]) == 8

    def test_three_moduli(self):
        x = crt([1, 2, 3], [5, 7, 11])
        assert x % 5 == 1 and x % 7 == 2 and x % 11 == 3

    def test_not_coprime_raises(self):
        with pytest.raises(ValueError):
            crt([1, 2], [4, 6])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            crt([1], [3, 5])

    def test_empty(self):
        with pytest.raises(ValueError):
            crt([], [])

    @settings(max_examples=25)
    @given(st.integers(0, 10**6))
    def test_reconstruction(self, x):
        moduli = [101, 103, 107, 109]
        residues = [x % m for m in moduli]
        assert crt(residues, moduli) == x % (101 * 103 * 107 * 109)
