"""Tests for the prime-field element wrapper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mathkit.field import FieldElement, PrimeField

P = 2**61 - 1
F = PrimeField(P)

elements = st.integers(0, P - 1)


class TestConstruction:
    def test_reduction(self):
        assert F(P + 5).value == 5
        assert F(-1).value == P - 1

    def test_zero_one(self):
        assert F.zero().value == 0
        assert F.one().value == 1

    def test_rejects_bad_characteristic(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_random_in_range(self):
        import random

        rng = random.Random(9)
        for _ in range(10):
            assert 0 <= F.random(rng).value < P

    def test_random_nonzero(self):
        import random

        rng = random.Random(9)
        assert all(F.random_nonzero(rng).value != 0 for _ in range(20))


class TestArithmetic:
    @given(elements, elements)
    def test_add_commutes(self, a, b):
        assert F(a) + F(b) == F(b) + F(a)

    @given(elements, elements)
    def test_sub_add_inverse(self, a, b):
        assert (F(a) - F(b)) + F(b) == F(a)

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert F(a) * (F(b) + F(c)) == F(a) * F(b) + F(a) * F(c)

    @given(elements)
    def test_division_round_trip(self, a):
        if a == 0:
            return
        assert (F(a) / F(a)) == F.one()
        assert F(a).inverse() * F(a) == F.one()

    def test_int_mixing(self):
        assert F(5) + 3 == F(8)
        assert 3 + F(5) == F(8)
        assert F(5) - 3 == F(2)
        assert 7 - F(5) == F(2)
        assert F(5) * 2 == F(10)
        assert 10 / F(5) == F(2)

    def test_pow(self):
        assert F(3) ** 4 == F(81)
        # Fermat: a^(p-1) == 1.
        assert F(123456) ** (P - 1) == F.one()

    def test_neg(self):
        assert -F(5) + F(5) == F.zero()

    def test_cross_field_rejected(self):
        other = PrimeField(101)
        with pytest.raises(ValueError):
            F(1) + other(1)


class TestProtocol:
    def test_bool(self):
        assert not F(0)
        assert F(1)

    def test_int_conversion(self):
        assert int(F(42)) == 42

    def test_hash_eq_consistency(self):
        assert hash(F(7)) == hash(F(P + 7))
        assert len({F(1), F(1), F(2)}) == 2

    def test_eq_with_int(self):
        assert F(5) == 5
        assert F(5) == 5 + P

    def test_repr(self):
        assert "FieldElement" in repr(F(3))

    def test_field_eq_and_hash(self):
        assert PrimeField(P) == PrimeField(P)
        assert hash(PrimeField(P)) == hash(PrimeField(P))
        assert PrimeField(P) != PrimeField(101)
