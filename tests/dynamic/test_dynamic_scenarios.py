"""The dynamic workload axis: schema, drill determinism, envelope checks."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenarios import load_scenario, run_scenario
from repro.scenarios.loader import ScenarioError, parse_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]

MINIMAL = """
name: dyn-mini
description: tiny churn drill for unit tests

workload:
  dynamic:
    profile: {profile}
    target: sem
    files: 1
    initial_blocks: 4
    block_bytes: 8
    batches: 2
    ops_per_batch: 2
    update_period_s: 0.1
    audit_every: 1
    sample_size: 2

topology:
  sem_groups:
    - name: sem

settings:
  duration_s: 1.0
  seed: 5
  param_set: toy-64
  k: 4
  envelope:
    min_update_batches: 2
    max_resigned_blocks_per_batch: 2
    min_dynamic_audits: 2
"""


class TestSchema:
    def test_minimal_document_parses(self):
        scenario = parse_scenario(MINIMAL.format(profile="churn"))
        spec = scenario.workload.dynamic
        assert spec is not None and spec.profile == "churn"
        assert set(scenario.settings.envelope.checks) == {
            "min_update_batches", "max_resigned_blocks_per_batch",
            "min_dynamic_audits"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ScenarioError, match="profile"):
            parse_scenario(MINIMAL.format(profile="mystery"))

    def test_unknown_target_rejected(self):
        doc = MINIMAL.format(profile="churn").replace("target: sem",
                                                      "target: ghost")
        with pytest.raises(ScenarioError, match="unknown SEM group"):
            parse_scenario(doc)

    def test_cohorts_and_dynamic_are_exclusive(self):
        doc = MINIMAL.format(profile="churn").replace(
            "workload:\n", "workload:\n"
            "  cohorts:\n"
            "    - name: extra\n"
            "      members: 1\n"
            "      target: sem\n"
            "      arrival: {kind: poisson, rate_rps: 1.0}\n"
            "      file_sizes: {kind: fixed, bytes: 8, max_bytes: 8}\n"
            "      max_requests: 1\n")
        with pytest.raises(ScenarioError, match="not both"):
            parse_scenario(doc)


class TestDrill:
    @pytest.mark.parametrize("profile", ["churn", "log_append", "hot_block"])
    def test_profiles_run_and_pass(self, profile):
        result = run_scenario(parse_scenario(MINIMAL.format(profile=profile)))
        assert result.passed, [v.render() for v in result.violations]
        dyn = result.dynamic
        assert dyn["profile"] == profile
        assert dyn["update_batches"] == 2
        assert dyn["audits_done"] == 2 and dyn["audits_failed"] == 0
        # The batched-re-signing claim as measured by the drill: no batch
        # re-signed more blocks than it had ops.
        assert dyn["max_resigned_per_batch"] <= 2

    def test_double_run_is_bit_identical(self):
        doc = MINIMAL.format(profile="churn")
        first = run_scenario(parse_scenario(doc))
        second = run_scenario(parse_scenario(doc))
        assert first.digest() == second.digest()

    def test_log_append_grows_exactly(self):
        result = run_scenario(parse_scenario(MINIMAL.format(
            profile="log_append")))
        (state,) = result.dynamic["files"].values()
        assert state["count"] == 4 + 2 * 2     # initial + batches × ops
        assert state["epoch"] == 2

    def test_envelope_breach_fails_run(self):
        doc = MINIMAL.format(profile="churn").replace(
            "min_update_batches: 2", "min_update_batches: 99")
        result = run_scenario(parse_scenario(doc))
        assert not result.passed
        assert result.violations[0].check == "min_update_batches"


class TestCommittedCorpus:
    @pytest.mark.parametrize("name", ["dynamic_churn.yaml",
                                      "dynamic_log_append.yaml",
                                      "dynamic_hot_block.yaml"])
    def test_committed_dynamic_scenarios_pass(self, name):
        result = run_scenario(load_scenario(REPO_ROOT / "scenarios" / name))
        assert result.passed, [v.render() for v in result.violations]
        assert result.dynamic["update_batches"] > 0
