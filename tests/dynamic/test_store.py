"""DynamicStore + DynamicAuditor: verified updates, adversarial replays."""

from __future__ import annotations

import pytest

from repro.core.challenge import Challenge
from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.dynamic import (
    DynamicAuditor,
    DynamicFileError,
    DynamicStore,
    UpdateOp,
)
from repro.dynamic.persist import decode_dynamic_file, encode_dynamic_file

FID = b"doc/alpha"


@pytest.fixture()
def tier(params_k4, rng):
    sem = SecurityMediator(params_k4.group, rng=rng, require_membership=False)
    owner = DataOwner(params_k4, sem.pk, rng=rng)
    store = DynamicStore(params_k4, sem, owner)
    auditor = DynamicAuditor(params_k4, sem.pk, rng=rng)
    receipt = store.create(FID, [b"block-%02d" % i for i in range(8)])
    auditor.pin_receipt(receipt)
    return store, auditor


def fresh_proof_passes(store, auditor, sample=4):
    challenge = auditor.generate_challenge(FID, sample_size=sample)
    proof = store.generate_proof(FID, challenge)
    return auditor.verify(FID, challenge, proof)


class TestLifecycle:
    def test_create_then_audit(self, tier):
        store, auditor = tier
        assert fresh_proof_passes(store, auditor)

    def test_update_ops_and_versions(self, tier):
        store, auditor = tier
        state = store.file_state(FID)
        serial_before, version_before = state.slots[2]
        receipt = store.update(FID, [
            UpdateOp("modify", 2, b"edited"),
            UpdateOp("insert", 0, b"preface"),
            UpdateOp("append", payload=b"tail"),
            UpdateOp("delete", 5),
        ])
        auditor.pin_receipt(receipt)
        assert receipt.epoch_after == 1
        assert receipt.count == 9            # 8 + insert + append - delete
        assert receipt.signed_blocks == 3    # deletes sign nothing
        # Modify bumps the version, keeps the serial (insert shifted it to 3).
        assert state.slots[3] == (serial_before, version_before + 1)
        assert fresh_proof_passes(store, auditor)

    def test_batch_of_k_signs_exactly_k(self, tier):
        store, _ = tier
        for k in (1, 3, 5):
            ops = [UpdateOp("modify", i, b"edit-%d" % i) for i in range(k)]
            assert store.update(FID, ops).signed_blocks == k

    def test_empty_batch_rejected(self, tier):
        store, _ = tier
        with pytest.raises(DynamicFileError):
            store.update(FID, [])

    def test_out_of_range_ops_rejected(self, tier):
        store, _ = tier
        with pytest.raises(DynamicFileError):
            store.update(FID, [UpdateOp("modify", 8, b"x")])
        with pytest.raises(DynamicFileError):
            store.update(FID, [UpdateOp("delete", 99)])


class TestAdversarial:
    def test_stale_root_replay_fails(self, tier):
        """A proof captured before an update cannot satisfy an auditor
        whose pin has advanced — epoch, root, and count all moved."""
        store, auditor = tier
        challenge = auditor.generate_challenge(FID, sample_size=4)
        stale = store.generate_proof(FID, challenge)
        receipt = store.update(FID, [UpdateOp("modify", 0, b"new")])
        auditor.pin_receipt(receipt)
        assert auditor.verify(FID, challenge, stale) is False

    def test_stale_pin_rejects_fresh_state(self, tier):
        """The dual direction: a cloud that applied an update the TPA
        never sanctioned fails against the old pin."""
        store, auditor = tier
        store.update(FID, [UpdateOp("modify", 0, b"unsanctioned")])
        assert fresh_proof_passes(store, auditor) is False

    def test_index_shift_fails_rank_check(self, tier):
        """Answer position p with the (valid!) block, signature, and path
        of position p+1: Eq. 6 holds over what was sent, but the rank
        path derives p+1, not p."""
        store, auditor = tier
        challenge = Challenge(indices=(2,), block_ids=(b"",), betas=(7,))
        shifted = Challenge(indices=(3,), block_ids=(b"",), betas=(7,))
        proof = store.generate_proof(FID, shifted)
        assert auditor.verify(FID, challenge, proof) is False

    def test_delete_then_replay_neighbor(self, tier):
        """Delete block i; the cloud replays the old proof in which the
        dead block's neighbor stood at the challenged rank."""
        store, auditor = tier
        challenge = auditor.generate_challenge(FID, sample_size=3)
        ghost = store.generate_proof(FID, challenge)
        receipt = store.update(FID, [UpdateOp("delete", 2)])
        auditor.pin_receipt(receipt)
        assert auditor.verify(FID, challenge, ghost) is False
        # An honest proof over the shifted file passes immediately.
        fresh = auditor.generate_challenge(FID, sample_size=3)
        assert auditor.verify(FID, fresh, store.generate_proof(FID, fresh))

    def test_tampered_block_fails_eq6(self, tier):
        """Rank paths authenticate position, Eq. 6 catches content."""
        store, auditor = tier
        store.tamper_block(FID, 1)
        challenge = Challenge(indices=(1,), block_ids=(b"",), betas=(5,))
        proof = store.generate_proof(FID, challenge)
        assert auditor.verify(FID, challenge, proof) is False

    def test_foreign_block_id_rejected(self, tier):
        store, auditor = tier
        challenge = auditor.generate_challenge(FID, sample_size=2)
        proof = store.generate_proof(FID, challenge)
        forged = type(proof)(
            file_id=proof.file_id, epoch=proof.epoch, count=proof.count,
            root=proof.root, root_signature=proof.root_signature,
            block_ids=(b"other#" + proof.block_ids[0],) + proof.block_ids[1:],
            paths=proof.paths, response=proof.response,
        )
        assert auditor.verify(FID, challenge, forged) is False


class TestPersist:
    def test_round_trip_preserves_proofs(self, tier, params_k4):
        store, auditor = tier
        store.update(FID, [UpdateOp("append", payload=b"persisted")])
        state = store.file_state(FID)
        blob = encode_dynamic_file(state, params_k4)
        revived = decode_dynamic_file(blob, params_k4)
        assert revived.epoch == state.epoch
        assert revived.root == state.root
        assert revived.count == state.count

    def test_adopted_state_keeps_updating(self, tier, params_k4):
        store, auditor = tier
        blob = encode_dynamic_file(store.file_state(FID), params_k4)
        sibling = DynamicStore(params_k4, store.sem, store.owner)
        sibling.adopt(decode_dynamic_file(blob, params_k4))
        receipt = sibling.update(FID, [UpdateOp("modify", 4, b"resumed")])
        auditor.pin_receipt(receipt)
        challenge = auditor.generate_challenge(FID, sample_size=4)
        assert auditor.verify(FID, challenge,
                              sibling.generate_proof(FID, challenge))
