"""Update lifecycles on the hash-chained ledger, replayed offline.

Every batch is fenced by ``dyn_update_begin`` / ``dyn_update_commit``;
``verify_ledger`` replays each file's rank tree from the recorded ops,
so a forged root transition is caught without any crypto context, and a
batch left open by a mid-batch crash is surfaced as resumable — the
exact state the store's idempotent retry clears.
"""

from __future__ import annotations

import pytest

from repro.core.owner import DataOwner
from repro.core.sem import SecurityMediator
from repro.dynamic import DynamicStore, UpdateOp
from repro.dynamic.rank_tree import RankTree
from repro.obs.ledger import Ledger, verify_ledger

FID = b"doc/ledgered"


def make_tier(params, rng, ledger, sem_wrap=None):
    sem = SecurityMediator(params.group, rng=rng, require_membership=False)
    owner = DataOwner(params, sem.pk, rng=rng)
    front = sem if sem_wrap is None else sem_wrap(sem)
    return DynamicStore(params, front, owner, ledger=ledger)


class TestLifecycle:
    def test_create_and_updates_replay_clean(self, params_k4, rng, tmp_path):
        path = tmp_path / "led.jsonl"
        store = make_tier(params_k4, rng, Ledger(path))
        store.create(FID, [b"b%d" % i for i in range(4)])
        store.update(FID, [UpdateOp("modify", 1, b"v2")])
        store.update(FID, [UpdateOp("insert", 0, b"head"),
                           UpdateOp("delete", 4)])
        report = verify_ledger(path)
        assert report.ok, report.errors
        assert report.updates_checked == 5      # create + 2 × (begin, commit)
        assert report.open_updates == []

    def test_forged_root_transition_is_flagged(self, tmp_path):
        """Hand-forge a commit whose root-after does not follow from its
        begin's recorded ops — structural replay alone must catch it."""
        path = tmp_path / "led.jsonl"
        ledger = Ledger(path)
        leaves = [b"a", b"b", b"c"]
        tree = RankTree(list(leaves))
        ledger.append("dyn_create", {
            "file": FID.hex(), "epoch": 0, "count": 3,
            "root": tree.root.hex(),
            "leaves": [leaf.hex() for leaf in leaves],
        })
        ledger.append("dyn_update_begin", {
            "file": FID.hex(), "batch": "forged#e1",
            "epoch_before": 0, "root_before": tree.root.hex(),
            "ops": [{"op": "modify", "position": 1, "leaf": b"evil".hex()}],
        })
        ledger.append("dyn_update_commit", {
            "file": FID.hex(), "batch": "forged#e1", "epoch_after": 1,
            "root_after": tree.root.hex(),   # state did NOT move: forged
            "count": 3, "signed_blocks": 1,
        })
        report = verify_ledger(path)
        assert not report.ok
        assert any("forged root transition" in e for e in report.errors)

    def test_forged_initial_root_is_flagged(self, tmp_path):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(path)
        ledger.append("dyn_create", {
            "file": FID.hex(), "epoch": 0, "count": 2,
            "root": RankTree([b"x", b"y"]).root.hex(),
            "leaves": [b"x".hex(), b"z".hex()],   # not what the root hashes
        })
        report = verify_ledger(path)
        assert not report.ok
        assert any("forged initial root" in e for e in report.errors)

    def test_spliced_update_without_create_is_flagged(self, tmp_path):
        path = tmp_path / "led.jsonl"
        ledger = Ledger(path)
        ledger.append("dyn_update_begin", {
            "file": FID.hex(), "batch": "x#e1", "epoch_before": 0,
            "root_before": RankTree([b"a"]).root.hex(), "ops": [],
        })
        report = verify_ledger(path)
        assert not report.ok
        assert any("spliced update record" in e for e in report.errors)


class _CrashySEM:
    """Raises on the next signing round, then recovers — the mid-batch
    crash window between the begin and commit fences."""

    def __init__(self, sem):
        self.sem = sem
        self.crash_next = False

    def sign_blinded_batch(self, blinded, credential=None):
        if self.crash_next:
            self.crash_next = False
            raise ConnectionError("sem crashed mid-update-batch")
        return self.sem.sign_blinded_batch(blinded, credential)


class TestTornTail:
    def test_crash_mid_batch_then_idempotent_resume(self, params_k4, rng,
                                                    tmp_path):
        path = tmp_path / "led.jsonl"
        store = make_tier(params_k4, rng, Ledger(path), sem_wrap=_CrashySEM)
        store.create(FID, [b"b%d" % i for i in range(4)])
        root_before = store.file_state(FID).root

        store.sem.crash_next = True
        with pytest.raises(ConnectionError):
            store.update(FID, [UpdateOp("modify", 2, b"lost")])
        # The committed state never moved: the batch died after its
        # begin fence but before any signature landed.
        assert store.file_state(FID).epoch == 0
        assert store.file_state(FID).root == root_before
        report = verify_ledger(path)
        assert report.ok, report.errors        # torn mid-batch is not tamper
        assert len(report.open_updates) == 1

        # Resume: the retry writes a second begin with the same
        # root-before (superseding the open one) and commits.
        receipt = store.update(FID, [UpdateOp("modify", 2, b"recovered")])
        assert receipt.epoch_before == 0 and receipt.epoch_after == 1
        report = verify_ledger(path)
        assert report.ok, report.errors
        assert report.open_updates == []
        assert report.updates_checked == 4     # create + begin + begin + commit
