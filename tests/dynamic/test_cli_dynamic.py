"""End-to-end `repro-pdp update` / `dynamic` flows against a tmp state dir."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.ledger import verify_ledger


@pytest.fixture()
def deployment(tmp_path):
    state = tmp_path / "st"
    assert main(["--state-dir", str(state), "init", "--param-set", "toy-64",
                 "-k", "4", "--seed", "7"]) == 0
    assert main(["--state-dir", str(state), "enroll", "alice"]) == 0
    doc = tmp_path / "doc.txt"
    doc.write_bytes(b"versioned shared document " * 4)
    return state, doc


def _run(state, *argv) -> int:
    return main(["--state-dir", str(state), *argv])


class TestDynamicLifecycle:
    def test_create_update_audit(self, deployment):
        state, doc = deployment
        assert _run(state, "dynamic", "create", "alice", "d/1", str(doc),
                    "--block-bytes", "8") == 0
        assert _run(state, "dynamic", "audit", "d/1") == 0
        assert _run(state, "update", "alice", "d/1",
                    "--modify", "0:edited head",
                    "--insert", "1:wedged in",
                    "--append", "tail block") == 0
        assert _run(state, "dynamic", "audit", "d/1", "--sample", "3") == 0
        assert _run(state, "update", "alice", "d/1", "--delete", "1") == 0
        assert _run(state, "dynamic", "audit", "d/1") == 0

    def test_pin_survives_process_boundaries(self, deployment):
        state, doc = deployment
        _run(state, "dynamic", "create", "alice", "d/1", str(doc))
        _run(state, "update", "alice", "d/1", "--append", "x")
        persisted = json.loads((state / "state.json").read_text())
        pin = persisted["dynamic"]["d/1"]
        assert pin["epoch"] == 1 and pin["count"] > 0 and pin["root"]
        assert (state / "cloud" / "d__1.dyn").exists()

    def test_status_and_info_list_dynamic_files(self, deployment, capsys):
        state, doc = deployment
        _run(state, "dynamic", "create", "alice", "d/1", str(doc))
        assert _run(state, "dynamic", "status") == 0
        assert _run(state, "info") == 0
        out = capsys.readouterr().out
        assert "d/1" in out and "epoch" in out

    def test_tampered_dynamic_file_fails_audit(self, deployment):
        """Corrupt one signed element inside the persisted blob: the
        audit's Eq. 6 aggregate must reject it."""
        state, doc = deployment
        _run(state, "dynamic", "create", "alice", "d/1", str(doc),
             "--block-bytes", "8")
        blob_path = state / "cloud" / "d__1.dyn"
        blob = bytearray(blob_path.read_bytes())
        blob[-1] ^= 0x01
        blob_path.write_bytes(bytes(blob))
        assert _run(state, "dynamic", "audit", "d/1") == 1

    def test_ledger_records_update_lifecycle(self, deployment):
        state, doc = deployment
        _run(state, "dynamic", "create", "alice", "d/1", str(doc))
        _run(state, "update", "alice", "d/1", "--modify", "0:new")
        _run(state, "dynamic", "audit", "d/1")
        ledger_path = state / "obs" / "ledger.jsonl"
        report = verify_ledger(ledger_path)
        assert report.ok, report.errors
        assert report.counts.get("dyn_create") == 1
        assert report.counts.get("dyn_update_begin") == 1
        assert report.counts.get("dyn_update_commit") == 1
        assert report.counts.get("dyn_audit") == 1
        assert report.audits_rechecked >= 1    # dyn_audit re-evaluated offline
        assert _run(state, "ledger", "verify", str(ledger_path)) == 0


class TestDynamicErrors:
    def test_update_unknown_file(self, deployment):
        state, _ = deployment
        assert _run(state, "update", "alice", "nope", "--append", "x") == 2

    def test_update_without_ops(self, deployment):
        state, doc = deployment
        _run(state, "dynamic", "create", "alice", "d/1", str(doc))
        assert _run(state, "update", "alice", "d/1") == 2

    def test_update_bad_position(self, deployment):
        state, doc = deployment
        _run(state, "dynamic", "create", "alice", "d/1", str(doc))
        assert _run(state, "update", "alice", "d/1",
                    "--modify", "99:way out") == 2

    def test_create_twice_rejected(self, deployment):
        state, doc = deployment
        _run(state, "dynamic", "create", "alice", "d/1", str(doc))
        assert _run(state, "dynamic", "create", "alice", "d/1", str(doc)) == 2

    def test_unenrolled_member_rejected(self, deployment):
        state, doc = deployment
        assert _run(state, "dynamic", "create", "mallory", "d/1",
                    str(doc)) == 2
