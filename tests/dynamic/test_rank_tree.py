"""The rank-annotated Merkle tree: position is part of what verifies."""

from __future__ import annotations

import pytest

from repro.dynamic.rank_tree import _EMPTY_ROOT, RankPath, RankTree


def leaves(n: int) -> list[bytes]:
    return [b"leaf-%03d" % i for i in range(n)]


class TestStructure:
    def test_empty_tree(self):
        tree = RankTree()
        assert len(tree) == 0
        assert tree.root == _EMPTY_ROOT

    def test_root_depends_on_every_leaf(self):
        base = RankTree(leaves(5)).root
        for i in range(5):
            mutated = leaves(5)
            mutated[i] = b"evil"
            assert RankTree(mutated).root != base

    def test_root_depends_on_order(self):
        swapped = leaves(4)
        swapped[1], swapped[2] = swapped[2], swapped[1]
        assert RankTree(swapped).root != RankTree(leaves(4)).root


class TestRankDerivation:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_every_position_proves_its_own_rank(self, n):
        tree = RankTree(leaves(n))
        for i in range(n):
            path = tree.prove(i)
            assert RankTree.verify_path(tree.root, n, tree.leaf(i), path) == i

    def test_neighbors_path_derives_neighbors_rank(self):
        """The index-shift primitive: block i's proof can never pass as
        block j's — the derived rank IS the position."""
        tree = RankTree(leaves(8))
        for i in range(8):
            derived = RankTree.verify_path(tree.root, 8, tree.leaf(i),
                                           tree.prove(i))
            for j in range(8):
                assert (derived == j) == (i == j)

    def test_wrong_leaf_under_right_path_fails(self):
        tree = RankTree(leaves(6))
        path = tree.prove(2)
        assert RankTree.verify_path(tree.root, 6, tree.leaf(3), path) is None

    def test_forged_total_count_fails(self):
        """A truncated (or padded) file cannot reuse old paths: the total
        leaf count is authenticated by the root itself."""
        tree = RankTree(leaves(7))
        path = tree.prove(0)
        for forged_total in (6, 8):
            assert RankTree.verify_path(tree.root, forged_total,
                                        tree.leaf(0), path) is None

    def test_tampered_sibling_hash_fails(self):
        tree = RankTree(leaves(9))
        path = tree.prove(4)
        side, sibling, count = path.steps[0]
        forged = RankPath(steps=(
            (side, bytes([sibling[0] ^ 1]) + sibling[1:], count),
            *path.steps[1:],
        ))
        assert RankTree.verify_path(tree.root, 9, tree.leaf(4), forged) is None

    def test_tampered_sibling_count_fails(self):
        tree = RankTree(leaves(9))
        path = tree.prove(4)
        side, sibling, count = path.steps[-1]
        forged = RankPath(steps=(
            *path.steps[:-1],
            (side, sibling, count + 1),
        ))
        assert RankTree.verify_path(tree.root, 9, tree.leaf(4), forged) is None


class TestMutators:
    """Every mutator must land on the same root as rebuilding from the
    expected leaf list — the offline ledger checker relies on this."""

    def test_modify(self):
        tree = RankTree(leaves(5))
        tree.modify(2, b"patched")
        expected = leaves(5)
        expected[2] = b"patched"
        assert tree.root == RankTree(expected).root

    def test_insert_shifts_ranks(self):
        tree = RankTree(leaves(5))
        tree.insert(1, b"wedge")
        expected = leaves(5)
        expected.insert(1, b"wedge")
        assert tree.root == RankTree(expected).root
        assert RankTree.verify_path(tree.root, 6, b"leaf-001",
                                    tree.prove(2)) == 2

    def test_append(self):
        tree = RankTree(leaves(4))
        tree.append(b"tail")
        assert tree.root == RankTree(leaves(4) + [b"tail"]).root

    def test_delete(self):
        tree = RankTree(leaves(6))
        tree.delete(3)
        expected = leaves(6)
        del expected[3]
        assert tree.root == RankTree(expected).root
        assert len(tree) == 5

    def test_proof_wire_size_is_logarithmic(self):
        small = RankTree(leaves(8)).prove(0).wire_size_bytes()
        large = RankTree(leaves(1024)).prove(0).wire_size_bytes()
        assert large <= small * 4   # 3 vs 10 levels, 41 bytes per step
