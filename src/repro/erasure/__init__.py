"""Erasure-coded resilient storage (related work [10]/[12] territory).

The paper's Section VII contrasts plain PDP with schemes that *recover*
polluted data: Wang et al. [10] encode user data with erasure codes so
content survives partial corruption, and Cao et al. [12] use LT codes.
This package brings that capability to SEM-PDP without giving up any of
its properties:

* :mod:`repro.erasure.reed_solomon` — a systematic Reed–Solomon code over
  Z_p (Vandermonde evaluation encoding / Lagrange-interpolation decoding),
  operating directly on block *elements*, so coded blocks are ordinary
  SEM-PDP blocks and get blind-signed like any other;
* :mod:`repro.erasure.resilient` — a resilient store that encodes, signs,
  and uploads; *localizes* corruption with deterministic binary-split
  group testing (the same Challenge/Response machinery over ranges); and
  repairs the file from any sufficiently large healthy subset;
* :mod:`repro.erasure.placement` — the explicit slot → server map for
  files striped across a fleet, including the derived per-slice SEM-PDP
  file ids;
* :mod:`repro.erasure.fleet` — the multi-cloud fleet store: stripes
  coded slots across many servers, audits them concurrently with
  cross-server proof aggregation, quarantines failing servers via the
  :class:`~repro.service.cloud_health.CloudScoreboard`, and repairs lost
  slots by reconstruct → re-sign → re-upload, ledger-recorded.
"""

from repro.erasure.fleet import (
    FleetAuditReport,
    FleetRepairReport,
    FleetStore,
    RepairTask,
    ServerHandle,
    ServerUnavailable,
    build_demo_fleet,
)
from repro.erasure.placement import PlacementMap, StripePlacement, slice_file_id
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.resilient import ResilientStore, RepairReport

__all__ = [
    "FleetAuditReport",
    "FleetRepairReport",
    "FleetStore",
    "PlacementMap",
    "ReedSolomonCode",
    "RepairReport",
    "RepairTask",
    "ResilientStore",
    "ServerHandle",
    "ServerUnavailable",
    "StripePlacement",
    "build_demo_fleet",
    "slice_file_id",
]
