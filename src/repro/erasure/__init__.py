"""Erasure-coded resilient storage (related work [10]/[12] territory).

The paper's Section VII contrasts plain PDP with schemes that *recover*
polluted data: Wang et al. [10] encode user data with erasure codes so
content survives partial corruption, and Cao et al. [12] use LT codes.
This package brings that capability to SEM-PDP without giving up any of
its properties:

* :mod:`repro.erasure.reed_solomon` — a systematic Reed–Solomon code over
  Z_p (Vandermonde evaluation encoding / Lagrange-interpolation decoding),
  operating directly on block *elements*, so coded blocks are ordinary
  SEM-PDP blocks and get blind-signed like any other;
* :mod:`repro.erasure.resilient` — a resilient store that encodes, signs,
  and uploads; *localizes* corruption with per-block micro-audits (the
  same Challenge/Response machinery with c = 1); and repairs the file from
  any sufficiently large healthy subset.
"""

from repro.erasure.reed_solomon import ReedSolomonCode
from repro.erasure.resilient import ResilientStore, RepairReport

__all__ = ["ReedSolomonCode", "ResilientStore", "RepairReport"]
