"""Erasure-coded multi-cloud fleet: striped storage, concurrent audits,
quarantine, and audit-driven reconstruct-and-re-upload repair.

:class:`~repro.erasure.resilient.ResilientStore` survives corrupt
*blocks* inside one cloud; this module survives the loss of whole
*servers*.  A file is cut into stripes of ``data_shards`` blocks, each
stripe RS-extended to ``width = data_shards + parity_shards`` coded
words, and coded slot ``j`` of every stripe lives on fleet server ``j``
(the :class:`~repro.erasure.placement.PlacementMap` records the
assignment explicitly).  Losing up to ``parity_shards`` servers is
recoverable: every stripe still has ``data_shards`` survivors — the MDS
bound, now at server granularity.

The audit loop is the paper's protocol, fleet-wide:

* each (file, slot) slice is an ordinary SEM-PDP file under a derived
  id, so per-server challenges are ordinary Eq. 6 audits.  The attached
  :class:`~repro.core.parallel.WorkerPool` fans each challenge's
  hash-MSM and each proof's signature-MSM across workers, with op
  tallies invariant under the worker count;
* proofs from every responding server additionally combine into one
  random-weight cross-server check
  (:meth:`~repro.core.verifier.PublicVerifier.verify_batch`, 2 pairings
  total) — the cheap fleet-is-healthy fast path;
* a server that fails Eq. 6 **or cannot answer** feeds the
  :class:`~repro.service.cloud_health.CloudScoreboard`; a streak trips
  the breaker and quarantines the server with half-open probes, exactly
  like the SEM failover scoreboard;
* repair reconstructs a quarantined server's slot from any
  ``data_shards`` surviving servers, re-signs the slices through the SEM
  batch path, and re-uploads to a replacement server, recording
  ``repair_begin`` / ``repair_slice`` / ``audit`` / ``repair_complete``
  events on the ledger so ``ledger verify`` re-derives every repair
  verdict offline — and so a crashed repair resumes idempotently from
  the chain (:meth:`FleetStore.resume_repairs`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.blocks import Block, encode_data, make_block_id
from repro.core.owner import SignedFile
from repro.erasure.placement import PlacementMap, StripePlacement
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.obs import NULL_OBS
from repro.service.cloud_health import CloudScoreboard

__all__ = [
    "FleetAuditReport",
    "FleetRepairReport",
    "FleetStore",
    "RepairTask",
    "ServerHandle",
    "ServerUnavailable",
    "build_demo_fleet",
]


class ServerUnavailable(ConnectionError):
    """The addressed fleet server is offline (crashed or partitioned)."""


@dataclass
class ServerHandle:
    """One cloud server as the fleet sees it: name, store, liveness.

    ``online`` is the chaos axis: a crash fault flips it off, a restart
    flips it back.  Every access while offline raises
    :class:`ServerUnavailable`, which the audit loop books as a timeout.
    """

    name: str
    server: object                  # CloudServer-shaped
    online: bool = True

    def _check(self) -> None:
        if not self.online:
            raise ServerUnavailable(f"server {self.name} is offline")

    def store(self, signed: SignedFile) -> None:
        self._check()
        self.server.store(signed)

    def retrieve(self, file_id: bytes):
        self._check()
        return self.server.retrieve(file_id)

    def has_file(self, file_id: bytes) -> bool:
        self._check()
        return self.server.has_file(file_id)

    def generate_proof(self, file_id: bytes, challenge):
        self._check()
        return self.server.generate_proof(file_id, challenge)


@dataclass(frozen=True)
class SliceVerdict:
    """One slice audit outcome: which server, which slice, what happened."""

    server: str
    file_id: bytes
    slot: int
    status: str                     # "ok" | "invalid" | "timeout"


@dataclass
class FleetAuditReport:
    """One concurrent audit round over every contactable server."""

    round: int
    verdicts: list[SliceVerdict] = field(default_factory=list)
    skipped_servers: tuple[str, ...] = ()    # quarantined, not contacted
    aggregate_ok: bool | None = None         # cross-server combined check

    @property
    def checks(self) -> int:
        return len(self.verdicts)

    @property
    def failures(self) -> int:
        return sum(1 for v in self.verdicts if v.status == "invalid")

    @property
    def timeouts(self) -> int:
        return sum(1 for v in self.verdicts if v.status == "timeout")

    @property
    def passed(self) -> bool:
        return self.failures == 0 and self.timeouts == 0


@dataclass(frozen=True)
class RepairTask:
    """One planned repair: rebuild (file, slot) from survivors onto target."""

    file_id: bytes
    slot: int
    source: str                     # the failed server
    target: str                     # replacement (may equal source)


@dataclass
class FleetRepairReport:
    """What one repair pass planned, rebuilt, and re-audited."""

    tasks: list[RepairTask] = field(default_factory=list)
    completed: list[RepairTask] = field(default_factory=list)
    unrecoverable: list[RepairTask] = field(default_factory=list)
    slices_rebuilt: int = 0
    blocks_resigned: int = 0
    reaudits_passed: int = 0

    @property
    def repaired(self) -> bool:
        return not self.unrecoverable and len(self.completed) == len(self.tasks)


class FleetStore:
    """Striped, audited, self-repairing storage over many cloud servers.

    Args:
        params: the SEM-PDP system parameters.
        owner: a :class:`~repro.core.owner.DataOwner` (blinds blocks).
        sem: anything with ``sign_blinded_batch`` — a single mediator, a
            threshold cluster client, or the failover client.
        verifier: the fleet's TPA; give it the :class:`WorkerPool` to fan
            challenge aggregation across workers.
        handles: the fleet servers, actives first.  The first
            ``data_shards + parity`` actives host stripe slots; the rest
            are spares that repair re-homes lost slots onto.
        parity: tolerated server losses (RS parity shards per stripe).
        spares: how many trailing ``handles`` are spares.
        scoreboard: cross-round health; defaults to a fresh
            :class:`CloudScoreboard` with threshold 1.
        ledger: optional append-only ledger; audits and repairs are
            recorded for offline re-verification.
        verifier_name: the name audits are recorded under (must match a
            ``verifier_key`` ledger entry for offline Eq. 6 recheck).
    """

    def __init__(self, params, owner, sem, verifier, handles, parity: int,
                 spares: int = 0, rng=None, obs=None, ledger=None,
                 scoreboard: CloudScoreboard | None = None,
                 verifier_name: str = "tpa-fleet"):
        handles = list(handles)
        if spares < 0 or spares >= len(handles):
            raise ValueError("need 0 <= spares < len(handles)")
        width = len(handles) - spares
        if not 0 <= parity < width:
            raise ValueError("need 0 <= parity < active server count")
        self.params = params
        self.group = params.group
        self.owner = owner
        self.sem = sem
        self.verifier = verifier
        self.verifier_name = verifier_name
        self.handles: dict[str, ServerHandle] = {h.name: h for h in handles}
        if len(self.handles) != len(handles):
            raise ValueError("fleet server names must be distinct")
        self.active_names = tuple(h.name for h in handles[:width])
        self.spare_names = tuple(h.name for h in handles[width:])
        self.parity = parity
        self.data_shards = width - parity
        self._rng = rng
        self.obs = obs if obs is not None else NULL_OBS
        self.ledger = ledger
        self.scoreboard = scoreboard or CloudScoreboard(
            tuple(self.handles), threshold=1, quarantine_rounds=2
        )
        self.scoreboard.on_trip.append(self._record_trip)
        self.placements = PlacementMap()
        self._codes: dict[tuple[int, int], ReedSolomonCode] = {}
        self._repair_attempts: dict[tuple[bytes, int], int] = {}
        self.slices_repaired = 0
        self.blocks_resigned = 0
        self.repairs_completed = 0
        #: Internal worker pool, when :func:`build_demo_fleet` built one.
        self.pool = None

    def close(self) -> None:
        """Shut down the internal worker pool, if the fleet owns one."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    # -- internals -----------------------------------------------------------
    def _code(self, data_shards: int, parity: int) -> ReedSolomonCode:
        key = (data_shards, parity)
        if key not in self._codes:
            self._codes[key] = ReedSolomonCode(data_shards, parity,
                                               self.params.order)
        return self._codes[key]

    def _sign_blocks(self, blocks: list[Block]):
        """The SEM batch path: blind → batch-sign → batch-verify → unblind."""
        from repro.crypto.blind_bls import batch_unblind_verify, unblind

        states = [self.owner.blind_block(block) for block in blocks]
        blinded = [s.blinded for s in states]
        blind_signatures = self.sem.sign_blinded_batch(blinded, self.owner.credential)
        if not batch_unblind_verify(
            self.group, blinded, blind_signatures, self.owner.sem_pk, self._rng
        ):
            raise ValueError("batch verification of blind signatures failed")
        return [
            unblind(self.group, s, bs, self.owner.sem_pk, check=False)
            for s, bs in zip(states, blind_signatures)
        ]

    def _record_trip(self, index: int, round_: int, streak: int) -> None:
        if self.ledger is not None:
            self.ledger.append("cloud_quarantine", {
                "cloud": self.scoreboard.name_of(index),
                "round": round_,
                "streak": streak,
            })

    # -- store ---------------------------------------------------------------
    def store(self, data: bytes, file_id: bytes) -> StripePlacement:
        """Encode, stripe, sign, and upload one file across the fleet."""
        data_blocks = encode_data(data, self.params, file_id)
        words = [block.elements for block in data_blocks]
        width_elements = len(words[0])
        zero_word = (0,) * width_elements
        stripes = -(-len(words) // self.data_shards)  # ceil division
        words.extend([zero_word] * (stripes * self.data_shards - len(words)))
        code = self._code(self.data_shards, self.parity)
        placement = StripePlacement(
            file_id=file_id,
            data_shards=self.data_shards,
            parity_shards=self.parity,
            stripes=stripes,
            data_blocks=len(data_blocks),
            servers=self.active_names,
        )
        with self.obs.tracer.span("fleet.store", stripes=stripes,
                                  width=placement.width):
            slot_words: list[list[tuple[int, ...]]] = [
                [] for _ in range(placement.width)
            ]
            for s in range(stripes):
                stripe = words[s * self.data_shards:(s + 1) * self.data_shards]
                for slot, word in enumerate(code.encode(stripe)):
                    slot_words[slot].append(word)
            # One signing batch for the whole file keeps the SEM round
            # count independent of the stripe width.
            all_blocks: list[Block] = []
            for slot in range(placement.width):
                slice_id = placement.slice_id(slot)
                all_blocks.extend(
                    Block(block_id=make_block_id(slice_id, s), elements=word)
                    for s, word in enumerate(slot_words[slot])
                )
            signatures = self._sign_blocks(all_blocks)
            for slot in range(placement.width):
                lo = slot * stripes
                self.handles[self.active_names[slot]].store(SignedFile(
                    file_id=placement.slice_id(slot),
                    blocks=tuple(all_blocks[lo:lo + stripes]),
                    signatures=tuple(signatures[lo:lo + stripes]),
                ))
        self.placements.add(placement)
        return placement

    # -- audit ---------------------------------------------------------------
    def set_online(self, name: str, online: bool) -> None:
        self.handles[name].online = online

    def audit_round(self, sample_size: int | None = None) -> FleetAuditReport:
        """One concurrent per-server audit round with cross-server
        aggregation; quarantined servers are skipped (until their window
        lapses into a half-open probe)."""
        self.scoreboard.begin_round()
        healthy, quarantined = self.scoreboard.contact_order()
        report = FleetAuditReport(
            round=self.scoreboard.round,
            skipped_servers=tuple(self.scoreboard.name_of(i) for i in quarantined),
        )
        aggregable = []
        with self.obs.tracer.span("fleet.audit", servers=len(healthy)) as span:
            for index in healthy:
                name = self.scoreboard.name_of(index)
                outcome = self._audit_server(name, sample_size, report, aggregable)
                if outcome == "ok":
                    self.scoreboard.record_success(index)
                elif outcome == "invalid":
                    self.scoreboard.record_invalid(index)
                elif outcome == "timeout":
                    self.scoreboard.record_timeout(index)
            if aggregable:
                report.aggregate_ok = self.verifier.verify_batch(aggregable)
            span.set(checks=report.checks, failures=report.failures,
                     timeouts=report.timeouts)
        return report

    def _audit_server(self, name: str, sample_size, report: FleetAuditReport,
                      aggregable: list) -> str | None:
        """Audit every slice on one server; returns the round outcome."""
        handle = self.handles[name]
        slices = [
            (file_id, slot)
            for file_id, slot in self.placements.slots_on(name)
        ]
        if not slices:
            return None
        outcome = "ok"
        for file_id, slot in slices:
            placement = self.placements.get(file_id)
            slice_id = placement.slice_id(slot)
            challenge = self.verifier.generate_challenge(
                slice_id, placement.stripes, sample_size=sample_size
            )
            try:
                proof = handle.generate_proof(slice_id, challenge)
            except (ConnectionError, TimeoutError):
                report.verdicts.append(SliceVerdict(name, file_id, slot, "timeout"))
                return "timeout"
            ok = self.verifier.verify(challenge, proof)
            self._record_audit(slice_id, challenge, proof, ok)
            report.verdicts.append(
                SliceVerdict(name, file_id, slot, "ok" if ok else "invalid")
            )
            if ok:
                aggregable.append((challenge, proof))
            else:
                outcome = "invalid"
        return outcome

    def _record_audit(self, slice_id: bytes, challenge, proof, ok: bool) -> None:
        if self.ledger is None:
            return
        self.ledger.append("audit", {
            "verifier": self.verifier_name,
            "file": slice_id.hex(),
            "indices": [int(i) for i in challenge.indices],
            "betas": [int(b) for b in challenge.betas],
            "sigma": proof.sigma.to_bytes().hex(),
            "alphas": [int(a) for a in proof.alphas],
            "ok": ok,
        })

    # -- repair --------------------------------------------------------------
    def plan_repairs(self, failed: list[str] | None = None) -> list[RepairTask]:
        """Deterministic repair plan for the given (default: quarantined)
        servers: one task per (file, slot) they host, targeted at the
        recovered server itself or the first eligible spare."""
        if failed is None:
            failed = self.scoreboard.quarantined_names()
        tasks = []
        for name in sorted(failed):
            for file_id, slot in self.placements.slots_on(name):
                target = self._replacement_for(file_id, name)
                tasks.append(RepairTask(file_id=file_id, slot=slot,
                                        source=name, target=target or name))
        return tasks

    def _replacement_for(self, file_id: bytes, source: str) -> str | None:
        """Where a lost slot goes: back home if the server is reachable
        again, else the first online spare not already hosting the file."""
        if self.handles[source].online:
            return source
        hosting = set(self.placements.get(file_id).servers)
        for name in self.spare_names:
            if name not in hosting and self.handles[name].online:
                return name
        return None

    def repair(self, failed: list[str] | None = None) -> FleetRepairReport:
        """Execute the repair plan: reconstruct, re-sign, re-upload."""
        report = FleetRepairReport(tasks=self.plan_repairs(failed))
        with self.obs.tracer.span("fleet.repair", tasks=len(report.tasks)):
            for task in report.tasks:
                self._execute_repair(task, report)
        return report

    def _repair_id(self, task: RepairTask) -> str:
        key = (task.file_id, task.slot)
        attempt = self._repair_attempts.get(key, 0) + 1
        self._repair_attempts[key] = attempt
        slice_hex = self.placements.get(task.file_id).slice_id(task.slot).hex()
        return f"{slice_hex[:16]}.{attempt}"

    def _execute_repair(self, task: RepairTask, report: FleetRepairReport) -> None:
        import dataclasses

        placement = self.placements.get(task.file_id)
        code = self._code(placement.data_shards, placement.parity_shards)
        # Re-resolve the target now: a spare chosen at plan time may have
        # absorbed an earlier task's slot in the meantime.
        target = self._replacement_for(task.file_id, task.source)
        task = dataclasses.replace(task, target=target or task.source)
        repair_id = self._repair_id(task)
        if self.ledger is not None:
            self.ledger.append("repair_begin", {
                "repair": repair_id,
                "file": task.file_id.hex(),
                "slot": task.slot,
                "from": task.source,
                "to": task.target,
                "stripes": placement.stripes,
            })
        survivors = self._survivor_words(placement, exclude=task.slot)
        if survivors is None or target is None:
            report.unrecoverable.append(task)
            if self.ledger is not None:
                self.ledger.append("repair_failed", {
                    "repair": repair_id,
                    "reason": ("no replacement server"
                               if survivors is not None
                               else "fewer than data_shards survivors"),
                })
            return
        # Rebuild the lost slot stripe by stripe: decode the originals
        # from any data_shards survivors, re-encode, keep slot's word.
        rebuilt: list[tuple[int, ...]] = []
        for s in range(placement.stripes):
            available = {slot: words[s] for slot, words in survivors.items()}
            originals = code.decode(available)
            rebuilt.append(code.encode(originals)[task.slot])
        slice_id = placement.slice_id(task.slot)
        blocks = [
            Block(block_id=make_block_id(slice_id, s), elements=word)
            for s, word in enumerate(rebuilt)
        ]
        signatures = self._sign_blocks(blocks)
        self.handles[task.target].store(SignedFile(
            file_id=slice_id, blocks=tuple(blocks), signatures=tuple(signatures)
        ))
        if self.ledger is not None:
            digest = hashlib.sha256()
            for word in rebuilt:
                for element in word:
                    digest.update(int(element).to_bytes(64, "big"))
            self.ledger.append("repair_slice", {
                "repair": repair_id,
                "stripes": placement.stripes,
                "digest": digest.hexdigest(),
            })
        # Re-audit the restored slice; the recorded entry is the repair
        # verdict `ledger verify` re-derives offline via Eq. 6.
        challenge = self.verifier.generate_challenge(slice_id, placement.stripes)
        proof = self.handles[task.target].generate_proof(slice_id, challenge)
        ok = self.verifier.verify(challenge, proof)
        self._record_audit(slice_id, challenge, proof, ok)
        if self.ledger is not None:
            self.ledger.append("repair_complete", {
                "repair": repair_id,
                "server": task.target,
                "slices": placement.stripes,
                "audit_ok": ok,
            })
        if task.target != task.source:
            self.placements.add(placement.rehome(task.slot, task.target))
        report.completed.append(task)
        report.slices_rebuilt += placement.stripes
        report.blocks_resigned += len(blocks)
        if ok:
            report.reaudits_passed += 1
        self.slices_repaired += placement.stripes
        self.blocks_resigned += len(blocks)
        self.repairs_completed += 1

    def _survivor_words(self, placement: StripePlacement,
                        exclude: int) -> dict[int, list[tuple[int, ...]]] | None:
        """Per-slot stripe words from ``data_shards`` reachable servers."""
        survivors: dict[int, list[tuple[int, ...]]] = {}
        for slot, name in enumerate(placement.servers):
            if slot == exclude or len(survivors) >= placement.data_shards:
                continue
            handle = self.handles[name]
            try:
                stored = handle.retrieve(placement.slice_id(slot))
            except (ConnectionError, TimeoutError, KeyError):
                continue
            survivors[slot] = [block.elements for block in stored.blocks]
        if len(survivors) < placement.data_shards:
            return None
        return survivors

    # -- crash recovery ------------------------------------------------------
    def resume_repairs(self, entries: list[dict] | None = None) -> FleetRepairReport:
        """Finish repairs the ledger shows as begun but never completed.

        Reads the chain (or the given entries), finds every
        ``repair_begin`` without a matching ``repair_complete`` /
        ``repair_failed``, and re-executes those (file, slot) repairs.
        Re-uploading a slice that was already (partially) written is a
        pure overwrite, so resuming after a crash at any point between
        the ``repair_begin`` and ``repair_complete`` appends converges to
        the same fleet state.
        """
        if entries is None:
            if self.ledger is None:
                return FleetRepairReport()
            from repro.obs.ledger import read_ledger

            entries, _torn = read_ledger(self.ledger.path)
        open_repairs: dict[str, dict] = {}
        for entry in entries:
            kind, body = entry.get("kind"), entry.get("body", {})
            if kind == "repair_begin":
                open_repairs[body["repair"]] = body
                self._repair_attempts[(bytes.fromhex(body["file"]), body["slot"])] = \
                    max(self._repair_attempts.get(
                        (bytes.fromhex(body["file"]), body["slot"]), 0),
                        int(str(body["repair"]).rsplit(".", 1)[-1]))
            elif kind in ("repair_complete", "repair_failed"):
                open_repairs.pop(body["repair"], None)
        report = FleetRepairReport()
        for body in open_repairs.values():
            file_id = bytes.fromhex(body["file"])
            # target is re-resolved inside _execute_repair; the recorded
            # "to" is only the crashed run's choice, kept as a hint.
            task = RepairTask(
                file_id=file_id, slot=int(body["slot"]),
                source=str(body["from"]), target=str(body["to"]),
            )
            report.tasks.append(task)
            self._execute_repair(task, report)
        return report

    # -- durability / status -------------------------------------------------
    def reconstructible(self, file_id: bytes) -> bool:
        """Can the file be decoded from the currently reachable servers?"""
        placement = self.placements.get(file_id)
        reachable = 0
        for slot, name in enumerate(placement.servers):
            handle = self.handles.get(name)
            if handle is None or not handle.online:
                continue
            try:
                if handle.has_file(placement.slice_id(slot)):
                    reachable += 1
            except (ConnectionError, TimeoutError):
                continue
        return reachable >= placement.data_shards

    def retrieve(self, file_id: bytes) -> bytes:
        """Decode the payload from any ``data_shards`` reachable slices."""
        from repro.core.blocks import decode_data

        placement = self.placements.get(file_id)
        code = self._code(placement.data_shards, placement.parity_shards)
        survivors = self._survivor_words(placement, exclude=-1)
        if survivors is None:
            raise ValueError(
                f"file {file_id.hex()} is unrecoverable: fewer than "
                f"{placement.data_shards} slices reachable"
            )
        words: list[tuple[int, ...]] = []
        for s in range(placement.stripes):
            available = {slot: slot_words[s]
                         for slot, slot_words in survivors.items()}
            words.extend(code.decode(available))
        blocks = [
            Block(block_id=make_block_id(file_id, i), elements=elements)
            for i, elements in enumerate(words[:placement.data_blocks])
        ]
        return decode_data(blocks, self.params)

    def status(self) -> dict:
        """Flat counters for dashboards, the CLI, and the scenario digest."""
        health = self.scoreboard.summary()
        return {
            "servers": len(self.active_names),
            "spares": len(self.spare_names),
            "parity": self.parity,
            "data_shards": self.data_shards,
            "files": len(self.placements),
            "online": sum(1 for h in self.handles.values() if h.online),
            "quarantined": health["quarantined"],
            "quarantine_trips": health["trips"],
            "probes": health["probes"],
            "audit_rounds": health["rounds"],
            "invalid_proofs": health["invalid_total"],
            "timeouts": health["timeouts"],
            "slices_repaired": self.slices_repaired,
            "blocks_resigned": self.blocks_resigned,
            "repairs_completed": self.repairs_completed,
        }


def _derived_rng(seed: int, *path):
    import random

    h = hashlib.sha256(b"repro-fleet-rng-v1" + str(int(seed)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return random.Random(int.from_bytes(h.digest()[:8], "big"))


def build_demo_fleet(servers: int = 6, parity: int = 2, spares: int = 1,
                     seed: int = 0, param_set: str = "toy-64", k: int = 4,
                     pool=None, obs=None, ledger=None,
                     quarantine_threshold: int = 1,
                     quarantine_rounds: int = 2,
                     verifier_name: str = "tpa-fleet",
                     server_names=None,
                     genesis_extra: dict | None = None,
                     workers: int = 1) -> FleetStore:
    """A self-contained seeded fleet (CLI, bench suite, and tests share it).

    When a ledger is given, the genesis pins (param_set, k, setup seed)
    and a ``verifier_key`` entry pins the organization key, so every
    audit the fleet records is re-derivable offline.

    ``workers > 1`` builds an internal :class:`~repro.core.parallel.WorkerPool`
    from the fleet's own parameters — worker op tallies then merge into
    the fleet group's attached counter, keeping op counts invariant under
    the worker count.  Call :meth:`FleetStore.close` when done with it.
    """
    from repro.core.cloud import CloudServer
    from repro.core.owner import DataOwner
    from repro.core.params import setup
    from repro.core.sem import SecurityMediator
    from repro.core.verifier import PublicVerifier
    from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup

    group = TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS[param_set])
    params = setup(group, k)
    owns_pool = False
    if pool is None and workers > 1:
        from repro.core.parallel import WorkerPool

        pool = WorkerPool(params, workers)
        owns_pool = True
    if obs is not None and obs.enabled:
        obs.observe_group(group)
    sem = SecurityMediator(group, rng=_derived_rng(seed, "sem"),
                           require_membership=False)
    owner = DataOwner(params, sem.pk, rng=_derived_rng(seed, "owner"),
                      pool=pool)
    verifier = PublicVerifier(params, sem.pk, rng=_derived_rng(seed, "tpa"),
                              pool=pool)
    if ledger is not None:
        ledger.ensure_genesis({
            **(genesis_extra or {}),
            "param_set": param_set,
            "k": k,
            "setup_seed": params.seed.hex(),
        })
        ledger.append("verifier_key", {
            "verifier": verifier_name,
            "pk": sem.pk.to_bytes().hex(),
        })
    names = (tuple(server_names) if server_names is not None
             else tuple(f"cloud-s{j}" for j in range(servers + spares)))
    if len(names) != servers + spares:
        raise ValueError("need one server name per active + spare server")
    handles = [
        ServerHandle(name=name, server=CloudServer(
            params, org_pk=sem.pk, rng=_derived_rng(seed, "cloud", name),
            pool=pool,
        ))
        for name in names
    ]
    scoreboard = CloudScoreboard(names, threshold=quarantine_threshold,
                                 quarantine_rounds=quarantine_rounds)
    store = FleetStore(
        params, owner, sem, verifier, handles, parity=parity, spares=spares,
        rng=_derived_rng(seed, "store"), obs=obs, ledger=ledger,
        scoreboard=scoreboard, verifier_name=verifier_name,
    )
    if owns_pool:
        store.pool = pool
    return store
