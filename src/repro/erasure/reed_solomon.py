"""Systematic Reed–Solomon erasure code over the prime field Z_p.

A (data + parity, data) MDS code: any ``data`` of the ``data + parity``
coded words reconstruct the original.  Words here are *vectors* of Z_p
elements (one SEM-PDP block each), coded element-wise.

Encoding views the i-th elements of the data blocks as values of a
degree-(data−1) polynomial at abscissae 1..data and evaluates it at
data+1..data+parity (systematic: data words pass through unchanged).
Decoding interpolates from any ``data`` surviving words.  Everything is
Lagrange interpolation over Z_p — the same primitive Shamir sharing uses,
which is why this substrate costs so little extra code.
"""

from __future__ import annotations

from repro.mathkit.ntheory import inverse_mod


class ReedSolomonCode:
    """An (n, k) = (data + parity, data) systematic RS code over Z_p."""

    def __init__(self, data: int, parity: int, p: int):
        if data < 1 or parity < 0:
            raise ValueError("need data >= 1 and parity >= 0")
        if p <= data + parity:
            raise ValueError("field too small for the requested code length")
        self.data = data
        self.parity = parity
        self.p = p
        # Abscissa of coded word j is j + 1 (0 is reserved; it keeps the
        # Lagrange formulas nonsingular).
        self._parity_rows = [
            self._lagrange_row(self.data + extra) for extra in range(parity)
        ]

    @property
    def length(self) -> int:
        return self.data + self.parity

    # -- internals -----------------------------------------------------------
    def _lagrange_row(self, target_index: int) -> list[int]:
        """Coefficients c_i with  word[target] = Σ c_i · word[i]  (i < data)."""
        p = self.p
        xs = [i + 1 for i in range(self.data)]
        x_t = target_index + 1
        row = []
        for j, xj in enumerate(xs):
            numerator, denominator = 1, 1
            for l, xl in enumerate(xs):
                if l == j:
                    continue
                numerator = numerator * (x_t - xl) % p
                denominator = denominator * (xj - xl) % p
            row.append(numerator * inverse_mod(denominator, p) % p)
        return row

    # -- API --------------------------------------------------------------------
    def encode(self, words: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
        """Append ``parity`` coded words to ``data`` input words.

        Each word is a tuple of Z_p elements; all words must share a width.
        """
        if len(words) != self.data:
            raise ValueError(f"expected {self.data} data words, got {len(words)}")
        widths = {len(w) for w in words}
        if len(widths) != 1:
            raise ValueError("all words must have the same element count")
        p = self.p
        coded = list(words)
        for row in self._parity_rows:
            parity_word = tuple(
                sum(c * word[e] for c, word in zip(row, words)) % p
                for e in range(next(iter(widths)))
            )
            coded.append(parity_word)
        return coded

    def decode(self, available: dict[int, tuple[int, ...]]) -> list[tuple[int, ...]]:
        """Reconstruct the ``data`` original words from any ``data`` coded
        words, given as {coded index: word}.

        Raises:
            ValueError: with fewer than ``data`` distinct surviving words.
        """
        if len(available) < self.data:
            raise ValueError(
                f"need at least {self.data} surviving words, have {len(available)}"
            )
        if any(not 0 <= i < self.length for i in available):
            raise ValueError("coded index out of range")
        p = self.p
        chosen = sorted(available)[: self.data]
        xs = [i + 1 for i in chosen]
        words = [available[i] for i in chosen]
        width = len(words[0])
        # Lagrange basis from the survivors to each systematic abscissa.
        originals = []
        for target in range(self.data):
            if target in available:
                originals.append(tuple(available[target]))
                continue
            x_t = target + 1
            coeffs = []
            for j, xj in enumerate(xs):
                numerator, denominator = 1, 1
                for l, xl in enumerate(xs):
                    if l == j:
                        continue
                    numerator = numerator * (x_t - xl) % p
                    denominator = denominator * (xj - xl) % p
                coeffs.append(numerator * inverse_mod(denominator, p) % p)
            originals.append(
                tuple(
                    sum(c * word[e] for c, word in zip(coeffs, words)) % p
                    for e in range(width)
                )
            )
        return originals

    def parity_word(self, extra_index: int, words: list[tuple[int, ...]]) -> tuple[int, ...]:
        """Recompute one parity word (used by repair)."""
        row = self._parity_rows[extra_index]
        width = len(words[0])
        return tuple(
            sum(c * word[e] for c, word in zip(row, words)) % self.p for e in range(width)
        )
