"""Explicit placement of erasure-coded stripe slices onto fleet servers.

A file striped across a fleet is cut into *stripes* of ``data_shards``
blocks; each stripe is RS-extended to ``width = data_shards +
parity_shards`` coded words, and coded **slot** ``j`` of every stripe
lives on one server.  The placement map is the explicit record of that
assignment — slot → server name — and survives repair: when a server is
lost, its slot is reconstructed and re-homed, and the map records the
replacement.

Each (file, slot) pair is a self-contained SEM-PDP file on its server
(its own derived file id, its own block ids, its own signatures), so the
paper's audit protocol applies to every slice verbatim: a per-server
challenge over a slice is an ordinary Eq. 6 audit, recheckable offline
from a ledger with nothing fleet-specific in the verifier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

__all__ = ["PlacementMap", "StripePlacement", "slice_file_id"]

_SLICE_TAG = b"repro-fleet-slice-v1"


def slice_file_id(file_id: bytes, slot: int) -> bytes:
    """The derived SEM-PDP file id of coded slot ``slot`` of ``file_id``.

    A pure function of (file, slot) — deliberately *not* of the server —
    so a slice keeps its identity (block ids, hence signatures) when
    repair re-homes it onto a replacement server.
    """
    digest = hashlib.sha256(
        _SLICE_TAG + len(file_id).to_bytes(4, "big") + file_id
        + int(slot).to_bytes(4, "big")
    )
    return digest.digest()[:16]


@dataclass(frozen=True)
class StripePlacement:
    """Where one file's coded slots live, and how it was cut."""

    file_id: bytes
    data_shards: int            # RS data words per stripe
    parity_shards: int          # RS parity words per stripe
    stripes: int                # stripes in the file
    data_blocks: int            # real (pre-padding) data blocks
    servers: tuple[str, ...]    # coded slot j lives on servers[j]

    def __post_init__(self):
        if self.data_shards < 1 or self.parity_shards < 0:
            raise ValueError("need data_shards >= 1 and parity_shards >= 0")
        if len(self.servers) != self.width:
            raise ValueError(
                f"placement names {len(self.servers)} servers for a "
                f"width-{self.width} code"
            )
        if len(set(self.servers)) != len(self.servers):
            raise ValueError("each coded slot needs a distinct server")

    @property
    def width(self) -> int:
        return self.data_shards + self.parity_shards

    def slot_of(self, server: str) -> int | None:
        """The coded slot hosted by ``server``, or None if it hosts none."""
        try:
            return self.servers.index(server)
        except ValueError:
            return None

    def slice_id(self, slot: int) -> bytes:
        return slice_file_id(self.file_id, slot)

    def rehome(self, slot: int, server: str) -> "StripePlacement":
        """The placement after repair moved ``slot`` onto ``server``."""
        servers = list(self.servers)
        servers[slot] = server
        return replace(self, servers=tuple(servers))

    def to_dict(self) -> dict:
        return {
            "file": self.file_id.hex(),
            "data_shards": self.data_shards,
            "parity_shards": self.parity_shards,
            "stripes": self.stripes,
            "data_blocks": self.data_blocks,
            "servers": list(self.servers),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "StripePlacement":
        return cls(
            file_id=bytes.fromhex(raw["file"]),
            data_shards=int(raw["data_shards"]),
            parity_shards=int(raw["parity_shards"]),
            stripes=int(raw["stripes"]),
            data_blocks=int(raw["data_blocks"]),
            servers=tuple(str(s) for s in raw["servers"]),
        )


class PlacementMap:
    """All files' placements, keyed by file id."""

    def __init__(self):
        self._placements: dict[bytes, StripePlacement] = {}

    def add(self, placement: StripePlacement) -> None:
        self._placements[placement.file_id] = placement

    def get(self, file_id: bytes) -> StripePlacement:
        return self._placements[file_id]

    def files(self) -> list[bytes]:
        return sorted(self._placements)

    def __len__(self) -> int:
        return len(self._placements)

    def __contains__(self, file_id: bytes) -> bool:
        return file_id in self._placements

    def slots_on(self, server: str) -> list[tuple[bytes, int]]:
        """Every (file, slot) hosted by ``server`` — the repair work-list."""
        out = []
        for file_id in self.files():
            slot = self._placements[file_id].slot_of(server)
            if slot is not None:
                out.append((file_id, slot))
        return out

    def to_dict(self) -> dict:
        return {p.file_id.hex(): p.to_dict()
                for p in self._placements.values()}

    @classmethod
    def from_dict(cls, raw: dict) -> "PlacementMap":
        placements = cls()
        for entry in raw.values():
            placements.add(StripePlacement.from_dict(entry))
        return placements
