"""Resilient SEM-PDP storage: encode → sign → upload → localize → repair.

Workflow on top of the ordinary actors:

1. **Encode**: the payload's n data blocks are RS-extended with m parity
   blocks (element-wise over Z_p), all under the same file.
2. **Sign & upload**: every coded block is blind-signed and stored —
   to the cloud and every verifier, parity blocks are indistinguishable
   from data blocks, so nothing about the paper's protocol changes.
3. **Localize**: when a sampled audit fails, a deterministic binary
   split over the block range pins down exactly which coded blocks are
   corrupt — the PDP machinery doubles as a group-testing corruption
   locator, and a clean range is certified by one aggregate check
   instead of one check per block.
4. **Repair**: any ``n`` healthy coded blocks reconstruct the originals;
   repaired blocks are re-signed via the SEM and re-uploaded.

The file survives up to m corrupted blocks with zero interaction with the
original uploader — the property [10]/[12] add to auditing, recreated on
the SEM-PDP substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocks import Block, decode_data, encode_data, make_block_id
from repro.core.challenge import Challenge
from repro.core.cloud import CloudServer
from repro.core.owner import DataOwner, SignedFile
from repro.core.params import SystemParams
from repro.core.verifier import PublicVerifier
from repro.erasure.reed_solomon import ReedSolomonCode


@dataclass(frozen=True)
class RepairReport:
    """What a repair pass found and fixed."""

    corrupt_positions: tuple[int, ...]
    repaired: bool
    resigned_blocks: int


class ResilientStore:
    """Erasure-coded, audited, self-repairing storage for one organization."""

    def __init__(self, params: SystemParams, owner: DataOwner, sem,
                 cloud: CloudServer, verifier: PublicVerifier, parity: int,
                 rng=None, obs=None):
        from repro.obs import NULL_OBS

        self.params = params
        self.group = params.group
        self.owner = owner
        self.sem = sem
        self.cloud = cloud
        self.verifier = verifier
        self.parity = parity
        self._rng = rng
        self.obs = obs if obs is not None else NULL_OBS
        self._codes: dict[bytes, ReedSolomonCode] = {}
        self._data_blocks: dict[bytes, int] = {}

    # -- store ------------------------------------------------------------------
    def store(self, data: bytes, file_id: bytes) -> int:
        """Encode, sign, and upload; returns the number of coded blocks."""
        data_blocks = encode_data(data, self.params, file_id)
        code = ReedSolomonCode(len(data_blocks), self.parity, self.params.order)
        words = [block.elements for block in data_blocks]
        coded_words = code.encode(words)
        coded_blocks = [
            Block(block_id=make_block_id(file_id, index), elements=elements)
            for index, elements in enumerate(coded_words)
        ]
        signatures = self._sign_blocks(coded_blocks)
        self.cloud.store(
            SignedFile(
                file_id=file_id,
                blocks=tuple(coded_blocks),
                signatures=tuple(signatures),
            )
        )
        self._codes[file_id] = code
        self._data_blocks[file_id] = len(data_blocks)
        return len(coded_blocks)

    def _sign_blocks(self, blocks: list[Block]):
        from repro.crypto.blind_bls import batch_unblind_verify, unblind

        states = [self.owner.blind_block(block) for block in blocks]
        blinded = [s.blinded for s in states]
        blind_signatures = self.sem.sign_blinded_batch(blinded, self.owner.credential)
        if not batch_unblind_verify(
            self.group, blinded, blind_signatures, self.owner.sem_pk, self._rng
        ):
            raise ValueError("batch verification of blind signatures failed")
        return [
            unblind(self.group, s, bs, self.owner.sem_pk, check=False)
            for s, bs in zip(states, blind_signatures)
        ]

    # -- audit / localize -----------------------------------------------------------
    def audit(self, file_id: bytes, sample_size: int | None = None) -> bool:
        stored = self.cloud.retrieve(file_id)
        challenge = self.verifier.generate_challenge(
            file_id, stored.n_blocks, sample_size=sample_size
        )
        return self.verifier.verify(challenge, self.cloud.generate_proof(file_id, challenge))

    def locate_corruption(self, file_id: bytes) -> list[int]:
        """Binary-split group testing over the block range: exact corrupt
        positions in O(k · log n) pairing checks for k corrupt blocks.

        The schedule is deterministic: ranges are visited depth-first,
        lower half before upper half, so for a fixed rng the exact
        sequence of challenges — and hence the Exp/Pair tally — is
        bit-identical across runs.  A range whose aggregate Eq. 6 check
        passes is certified clean with a single verification (a random
        β-combination of a clean range verifies; a corrupt block escapes
        only with probability 1/p), which is what makes this cheaper than
        the old one-challenge-per-block scrub: a clean file costs 1 check
        instead of n.  The whole traversal runs under a
        ``repair.localize`` tracer span so the Exp/Pair cost lands in the
        reconciled cost model.
        """
        stored = self.cloud.retrieve(file_id)
        corrupt: list[int] = []
        challenges = 0
        with self.obs.tracer.span("repair.localize",
                                  blocks=stored.n_blocks) as span:
            # Explicit stack, popping the most recently pushed range and
            # pushing (mid, hi) before (lo, mid): depth-first, low-first.
            stack = [(0, stored.n_blocks)] if stored.n_blocks else []
            while stack:
                lo, hi = stack.pop()
                challenge = self._range_challenge(file_id, lo, hi)
                proof = self.cloud.generate_proof(file_id, challenge)
                challenges += 1
                if self.verifier.verify(challenge, proof):
                    continue
                if hi - lo == 1:
                    corrupt.append(lo)
                    continue
                mid = (lo + hi) // 2
                stack.append((mid, hi))
                stack.append((lo, mid))
            span.set(challenges=challenges, corrupt=len(corrupt))
        corrupt.sort()
        return corrupt

    def _range_challenge(self, file_id: bytes, lo: int, hi: int) -> Challenge:
        """One aggregate challenge over the half-open block range [lo, hi)."""
        positions = range(lo, hi)
        return Challenge(
            indices=tuple(positions),
            block_ids=tuple(make_block_id(file_id, p) for p in positions),
            betas=tuple(self._random_beta() for _ in positions),
        )

    def _random_beta(self) -> int:
        if self._rng is not None:
            return self._rng.randrange(1, self.params.order)
        import secrets

        return secrets.randbelow(self.params.order - 1) + 1

    def _single_block_challenge(self, file_id: bytes, position: int) -> Challenge:
        return self._range_challenge(file_id, position, position + 1)

    # -- repair -------------------------------------------------------------------------
    def repair(self, file_id: bytes) -> RepairReport:
        """Locate corrupt blocks, reconstruct them, re-sign, re-upload."""
        code = self._codes[file_id]
        corrupt = self.locate_corruption(file_id)
        if not corrupt:
            return RepairReport(corrupt_positions=(), repaired=True, resigned_blocks=0)
        stored = self.cloud.retrieve(file_id)
        healthy = {
            i: stored.blocks[i].elements
            for i in range(stored.n_blocks)
            if i not in corrupt
        }
        if len(healthy) < code.data:
            return RepairReport(
                corrupt_positions=tuple(corrupt), repaired=False, resigned_blocks=0
            )
        originals = code.decode(healthy)
        coded_words = code.encode(originals)
        replacement_blocks = [
            Block(
                block_id=make_block_id(file_id, position),
                elements=coded_words[position],
            )
            for position in corrupt
        ]
        replacement_signatures = self._sign_blocks(replacement_blocks)
        for block, signature, position in zip(
            replacement_blocks, replacement_signatures, corrupt
        ):
            stored.blocks[position] = block
            stored.signatures[position] = signature
        return RepairReport(
            corrupt_positions=tuple(corrupt),
            repaired=True,
            resigned_blocks=len(corrupt),
        )

    # -- retrieval -------------------------------------------------------------------------
    def retrieve(self, file_id: bytes) -> bytes:
        """Decode the payload, reconstructing through corruption if needed."""
        code = self._codes[file_id]
        stored = self.cloud.retrieve(file_id)
        corrupt = set(self.locate_corruption(file_id))
        healthy = {
            i: stored.blocks[i].elements
            for i in range(stored.n_blocks)
            if i not in corrupt
        }
        originals = code.decode(healthy)
        data_blocks = [
            Block(block_id=make_block_id(file_id, i), elements=elements)
            for i, elements in enumerate(originals)
        ]
        return decode_data(data_blocks, self.params)
