"""The three-component scenario contract: workload, topology, settings.

One document fully describes a run (DESIGN.md §9):

* **workload** — who generates traffic: cohorts of simulated members
  (scaling to millions; the cohort is the simulated unit, members are a
  population model), each with an arrival process and a file-size
  distribution;
* **topology** — what the traffic hits: SEM groups with (w, t)
  thresholds, cloud stores, TPA verifiers, and the links between them;
* **settings** — how the run executes and is judged: duration, seed,
  request budget, batching/failover knobs, fault plans
  (:mod:`repro.net.faults` actions as just another axis), and an
  *acceptance envelope* the runner checks after the run.

Everything is validated fail-fast at construction: dangling references,
illegal thresholds (t > w), negative rates, and unknown fault kinds are
rejected with the path to the offending field, so by the time a
:class:`Scenario` exists the compiler and runner need no defensive checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.faults import Fault, FaultPlanError, NODE_KINDS

#: Open-loop arrival kinds (interarrival-time processes) plus the
#: closed-loop and batch models handled by the cohort driver directly.
ARRIVAL_KINDS = frozenset({"poisson", "mmpp", "pareto", "diurnal", "closed", "batch"})
SIZE_KINDS = frozenset({"fixed", "uniform", "lognormal", "pareto"})

#: Metric groups a scenario may ask the runner to collect/report.
METRIC_GROUPS = frozenset({"latency", "throughput", "ops", "faults", "cohorts", "clouds"})


class ScenarioError(ValueError):
    """A scenario document failed schema validation."""

    def __init__(self, path: str, problem: str):
        self.path = path
        self.problem = problem
        super().__init__(f"{path}: {problem}")


def _require(condition: bool, path: str, problem: str) -> None:
    if not condition:
        raise ScenarioError(path, problem)


def _valid_name(name, path: str) -> str:
    _require(isinstance(name, str) and name != "", path, "needs a non-empty name")
    _require(
        all(c.isalnum() or c in "-_." for c in name),
        path, f"name {name!r} may only use alphanumerics, '-', '_', '.'",
    )
    return name


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ArrivalSpec:
    """How one cohort's requests arrive.

    ``rate_rps`` is the cohort's *aggregate* arrival rate; alternatively
    ``per_user_rps`` scales with the cohort's member count, which is how a
    million-member cohort stays describable (1M members x 0.0002 rps each
    = 200 rps aggregate — the simulated unit is the cohort, so cost
    follows the request budget, not the population).

    Kinds:

    ========  ==========================================================
    poisson   memoryless open loop: exponential interarrivals
    mmpp      2-state Markov-modulated Poisson (bursty): base rate with
              exponential bursts at ``burst_rate_rps``
    pareto    heavy-tailed interarrivals with tail index ``alpha`` > 1,
              scaled to the requested mean rate
    diurnal   sinusoidal rate modulation with period ``period_s`` and
              peak ``peak_ratio`` x the mean rate (thinning sampler)
    closed    closed loop: ``concurrency`` members in lockstep, each
              thinking ``think_time_s`` between response and next request
    batch     all requests issued at t=0 (the legacy serve-sim model)
    ========  ==========================================================
    """

    kind: str
    rate_rps: float | None = None
    per_user_rps: float | None = None
    # mmpp
    burst_rate_rps: float | None = None
    mean_burst_s: float = 0.5
    mean_idle_s: float = 2.0
    # pareto
    alpha: float = 1.5
    # diurnal
    peak_ratio: float = 2.0
    period_s: float = 10.0
    phase: float = 0.0
    # closed
    concurrency: int = 1
    think_time_s: float = 0.0
    # batch
    requests_per_member: int = 1

    def validate(self, path: str, members: int) -> None:
        _require(self.kind in ARRIVAL_KINDS, path,
                 f"unknown arrival kind {self.kind!r}; choose from {sorted(ARRIVAL_KINDS)}")
        if self.kind in ("poisson", "mmpp", "pareto", "diurnal"):
            _require((self.rate_rps is None) != (self.per_user_rps is None), path,
                     "set exactly one of rate_rps / per_user_rps")
            rate = self.rate_rps if self.rate_rps is not None else self.per_user_rps
            _require(rate > 0, path, f"arrival rate must be positive, got {rate}")
        if self.kind == "mmpp":
            _require(self.burst_rate_rps is not None, path,
                     "mmpp needs burst_rate_rps")
            _require(self.burst_rate_rps > 0, path, "burst_rate_rps must be positive")
            _require(self.burst_rate_rps >= self.effective_rate(members), path,
                     "burst_rate_rps must be >= the base rate (it is the burst state)")
            _require(self.mean_burst_s > 0 and self.mean_idle_s > 0, path,
                     "mmpp sojourn means must be positive")
        if self.kind == "pareto":
            _require(self.alpha > 1.0, path,
                     f"pareto tail index alpha must exceed 1 (finite mean), got {self.alpha}")
        if self.kind == "diurnal":
            _require(self.peak_ratio >= 1.0, path, "peak_ratio must be >= 1")
            _require(self.period_s > 0, path, "period_s must be positive")
            _require(0.0 <= self.phase < 1.0, path, "phase must be in [0, 1)")
        if self.kind == "closed":
            _require(self.concurrency >= 1, path, "concurrency must be >= 1")
            _require(self.think_time_s >= 0, path, "think_time_s must be non-negative")
            _require(self.concurrency <= members, path,
                     f"concurrency {self.concurrency} exceeds the cohort's "
                     f"{members} member(s)")
        if self.kind == "batch":
            _require(self.requests_per_member >= 1, path,
                     "requests_per_member must be >= 1")

    def effective_rate(self, members: int) -> float:
        """Aggregate arrivals/second for a cohort of ``members`` users."""
        if self.rate_rps is not None:
            return self.rate_rps
        if self.per_user_rps is not None:
            return self.per_user_rps * members
        return 0.0


@dataclass(frozen=True)
class SizeSpec:
    """Per-cohort file-size distribution (bytes per uploaded file).

    ``max_bytes`` clamps every sampler — a heavy-tailed draw must not make
    one request arbitrarily expensive to sign in a bounded CI run.
    """

    kind: str = "fixed"
    bytes: int = 64                 # fixed
    min_bytes: int = 32             # uniform / pareto scale
    max_bytes: int = 4096           # clamp for every kind
    median_bytes: int = 128         # lognormal
    sigma: float = 0.5              # lognormal shape
    alpha: float = 1.8              # pareto tail index

    def validate(self, path: str) -> None:
        _require(self.kind in SIZE_KINDS, path,
                 f"unknown size kind {self.kind!r}; choose from {sorted(SIZE_KINDS)}")
        _require(self.max_bytes >= 1, path, "max_bytes must be >= 1")
        if self.kind == "fixed":
            _require(1 <= self.bytes <= self.max_bytes, path,
                     f"fixed bytes must be in [1, max_bytes], got {self.bytes}")
        if self.kind in ("uniform", "pareto"):
            _require(self.min_bytes >= 1, path, "min_bytes must be >= 1")
        if self.kind == "uniform":
            _require(self.min_bytes <= self.max_bytes, path,
                     "uniform needs min_bytes <= max_bytes")
        if self.kind == "lognormal":
            _require(self.median_bytes >= 1, path, "median_bytes must be >= 1")
            _require(self.sigma > 0, path, "sigma must be positive")
        if self.kind == "pareto":
            _require(self.alpha > 1.0, path,
                     f"pareto tail index alpha must exceed 1, got {self.alpha}")


@dataclass(frozen=True)
class CohortSpec:
    """One population of simulated members sharing traffic behaviour."""

    name: str
    members: int
    target: str                     # SEM group the cohort signs through
    arrival: ArrivalSpec = field(default_factory=lambda: ArrivalSpec(kind="poisson", rate_rps=10.0))
    file_sizes: SizeSpec = field(default_factory=SizeSpec)
    max_requests: int | None = None  # per-cohort cap (settings cap global)
    upload_to: tuple[str, ...] = ()  # cloud names, striped round-robin

    def validate(self, path: str) -> None:
        _valid_name(self.name, path)
        _require(self.members >= 1, path, f"members must be >= 1, got {self.members}")
        _require(isinstance(self.target, str) and self.target, path,
                 "cohort needs a target SEM group")
        self.arrival.validate(f"{path}.arrival", self.members)
        self.file_sizes.validate(f"{path}.file_sizes")
        if self.max_requests is not None:
            _require(self.max_requests >= 1, path, "max_requests must be >= 1")


#: Update-mix profiles the dynamic drill knows how to drive.
DYNAMIC_PROFILES = ("churn", "log_append", "hot_block")


@dataclass(frozen=True)
class DynamicSpec:
    """A dynamic-file update workload (rank-authenticated batches).

    Drives :class:`~repro.scenarios.dynamic_drill.DynamicDrill`: ``files``
    dynamic files of ``initial_blocks`` blocks each receive ``batches``
    update batches of ``ops_per_batch`` ops on a fixed virtual period,
    with a full audit (rank paths + root signature + Eq. 6) after every
    ``audit_every``-th batch.  The ``profile`` picks the op mix:
    ``churn`` (versioned-doc edits: modify/insert/delete/append),
    ``log_append`` (append-only tail growth), or ``hot_block`` (modify
    storms on a small hot set of positions).
    """

    profile: str
    target: str                      # SEM group that blind-signs the batches
    files: int = 2
    initial_blocks: int = 8
    block_bytes: int = 16            # payload bytes per dynamic block
    batches: int = 6                 # update batches per file
    ops_per_batch: int = 4
    update_period_s: float = 0.25
    audit_every: int = 2             # audit after every Nth batch (0 = never)
    sample_size: int | None = None   # challenge size per audit (None = all)
    hot_blocks: int = 2              # hot-set size (hot_block profile only)

    def validate(self, path: str) -> None:
        _require(self.profile in DYNAMIC_PROFILES, path,
                 f"profile must be one of {', '.join(DYNAMIC_PROFILES)}, "
                 f"got {self.profile!r}")
        _require(isinstance(self.target, str) and self.target, path,
                 "dynamic workload needs a target SEM group")
        _require(self.files >= 1, path, "files must be >= 1")
        _require(self.initial_blocks >= 1, path, "initial_blocks must be >= 1")
        _require(self.block_bytes >= 1, path, "block_bytes must be >= 1")
        _require(self.batches >= 1, path, "batches must be >= 1")
        _require(self.ops_per_batch >= 1, path, "ops_per_batch must be >= 1")
        _require(self.update_period_s > 0, path,
                 "update_period_s must be positive")
        _require(self.audit_every >= 0, path, "audit_every must be >= 0")
        if self.sample_size is not None:
            _require(self.sample_size >= 1, path, "sample_size must be >= 1")
        _require(self.hot_blocks >= 1, path, "hot_blocks must be >= 1")


@dataclass(frozen=True)
class WorkloadSpec:
    cohorts: tuple[CohortSpec, ...]
    dynamic: DynamicSpec | None = None

    def validate(self, path: str = "workload") -> None:
        _require(len(self.cohorts) >= 1 or self.dynamic is not None, path,
                 "needs at least one cohort (or a dynamic workload)")
        seen: set[str] = set()
        for i, cohort in enumerate(self.cohorts):
            cohort.validate(f"{path}.cohorts[{i}]")
            _require(cohort.name not in seen, f"{path}.cohorts[{i}]",
                     f"duplicate cohort name {cohort.name!r}")
            seen.add(cohort.name)
        if self.dynamic is not None:
            self.dynamic.validate(f"{path}.dynamic")

    @property
    def total_members(self) -> int:
        return sum(c.members for c in self.cohorts)


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LinkParams:
    """Latency/loss/bandwidth parameters of one (class of) link."""

    latency_s: float = 0.005
    bandwidth_bps: float | None = None
    drop_rate: float = 0.0

    def validate(self, path: str) -> None:
        _require(self.latency_s >= 0, path, "latency_s must be non-negative")
        _require(0.0 <= self.drop_rate < 1.0, path,
                 f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.bandwidth_bps is not None:
            _require(self.bandwidth_bps > 0, path, "bandwidth_bps must be positive")


@dataclass(frozen=True)
class SEMGroupSpec:
    """A (w, t)-threshold mediator group behind one signing service.

    ``w`` mediators hold Shamir shares; any ``t`` reconstruct.  The paper
    deploys w = 2t − 1 (tolerates t − 1 unavailable); other w >= t
    choices are legal deployments too.  ``initial_crashed`` starts that
    many mediators fail-silent at t = 0 (the legacy ``--crash`` axis).
    """

    name: str
    w: int = 1
    t: int = 1
    initial_crashed: int = 0
    sem_link: LinkParams = field(default_factory=LinkParams)

    def validate(self, path: str) -> None:
        _valid_name(self.name, path)
        _require(self.w >= 1, path, f"w must be >= 1, got {self.w}")
        _require(self.t >= 1, path, f"t must be >= 1, got {self.t}")
        _require(self.t <= self.w, path,
                 f"threshold t={self.t} exceeds group size w={self.w}")
        _require(0 <= self.initial_crashed <= self.w, path,
                 f"initial_crashed must be in [0, w], got {self.initial_crashed}")
        _require(self.w - self.initial_crashed >= self.t, path,
                 f"crashing {self.initial_crashed} of w={self.w} leaves fewer "
                 f"than t={self.t} live mediators — the group can never sign")
        self.sem_link.validate(f"{path}.sem_link")


@dataclass(frozen=True)
class CloudSpec:
    """One cloud store; cohorts may stripe uploads across several."""

    name: str

    def validate(self, path: str) -> None:
        _valid_name(self.name, path)


@dataclass(frozen=True)
class VerifierSpec:
    """A TPA re-auditing one cloud's stored files on a period."""

    name: str
    audits: str                     # cloud name
    period_s: float = 0.5
    sample_size: int | None = None

    def validate(self, path: str) -> None:
        _valid_name(self.name, path)
        _require(isinstance(self.audits, str) and self.audits, path,
                 "verifier needs an 'audits' cloud name")
        _require(self.period_s > 0, path, "period_s must be positive")
        if self.sample_size is not None:
            _require(self.sample_size >= 1, path, "sample_size must be >= 1")


@dataclass(frozen=True)
class FleetSpec:
    """An erasure-coded cloud fleet: striped storage + audit-driven repair.

    ``servers`` active servers each host one coded slot per file
    (stripe width = ``servers``, data shards = ``servers - parity``), so
    the fleet survives the loss of up to ``parity`` whole servers;
    ``spares`` extra servers stand by as repair targets.  Servers are
    named ``<name_prefix>-s<j>`` (actives first, spares after) — the
    names chaos fault plans target.
    """

    servers: int
    parity: int
    spares: int = 0
    files: int = 2
    file_size: int = 1024            # payload bytes per stored file
    audit_period_s: float = 0.2
    sample_size: int | None = None
    quarantine_threshold: int = 1
    quarantine_rounds: int = 2
    auto_repair: bool = True         # repair quarantined servers each round
    name_prefix: str = "fleet"

    def validate(self, path: str) -> None:
        _require(self.servers >= 2, path,
                 f"servers must be >= 2, got {self.servers}")
        _require(0 <= self.parity < self.servers, path,
                 f"parity must be in [0, servers), got {self.parity}")
        _require(self.spares >= 0, path, "spares must be non-negative")
        _require(self.files >= 1, path, "files must be >= 1")
        _require(self.file_size >= 1, path, "file_size must be >= 1")
        _require(self.audit_period_s > 0, path,
                 "audit_period_s must be positive")
        if self.sample_size is not None:
            _require(self.sample_size >= 1, path, "sample_size must be >= 1")
        _require(self.quarantine_threshold >= 1, path,
                 "quarantine_threshold must be >= 1")
        _require(self.quarantine_rounds >= 1, path,
                 "quarantine_rounds must be >= 1")
        _valid_name(self.name_prefix, path)

    def server_names(self) -> tuple[str, ...]:
        return tuple(f"{self.name_prefix}-s{j}"
                     for j in range(self.servers + self.spares))


@dataclass(frozen=True)
class LinkSpec:
    """Parameters for the directed link class ``src -> dst``.

    ``src``/``dst`` name a cohort, SEM group, cloud, or verifier declared
    elsewhere in the document (dangling references are rejected).
    """

    src: str
    dst: str
    params: LinkParams = field(default_factory=LinkParams)

    def validate(self, path: str) -> None:
        _require(isinstance(self.src, str) and self.src, path, "link needs src")
        _require(isinstance(self.dst, str) and self.dst, path, "link needs dst")
        self.params.validate(path)


@dataclass(frozen=True)
class TopologySpec:
    sem_groups: tuple[SEMGroupSpec, ...]
    clouds: tuple[CloudSpec, ...] = ()
    verifiers: tuple[VerifierSpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()
    default_link: LinkParams = field(default_factory=LinkParams)
    fleet: FleetSpec | None = None

    def validate(self, path: str = "topology") -> None:
        _require(len(self.sem_groups) >= 1 or self.fleet is not None, path,
                 "needs at least one SEM group (or a fleet)")
        names: set[str] = set()
        for kind, entries in (("sem_groups", self.sem_groups),
                              ("clouds", self.clouds),
                              ("verifiers", self.verifiers)):
            for i, entry in enumerate(entries):
                entry.validate(f"{path}.{kind}[{i}]")
                _require(entry.name not in names, f"{path}.{kind}[{i}]",
                         f"duplicate topology name {entry.name!r}")
                names.add(entry.name)
        if self.fleet is not None:
            self.fleet.validate(f"{path}.fleet")
            for server in self.fleet.server_names():
                _require(server not in names, f"{path}.fleet",
                         f"fleet server name {server!r} collides with "
                         "another topology name")
                names.add(server)
        cloud_names = {c.name for c in self.clouds}
        for i, verifier in enumerate(self.verifiers):
            _require(verifier.audits in cloud_names, f"{path}.verifiers[{i}]",
                     f"audits unknown cloud {verifier.audits!r}")
        self.default_link.validate(f"{path}.default_link")
        for i, link in enumerate(self.links):
            link.validate(f"{path}.links[{i}]")

    @property
    def names(self) -> set[str]:
        return ({g.name for g in self.sem_groups}
                | {c.name for c in self.clouds}
                | {v.name for v in self.verifiers})


# ---------------------------------------------------------------------------
# Run settings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EnvelopeSpec:
    """Acceptance envelope the runner judges a finished run against.

    ``None`` disables a check.  ``max_exp_per_request`` /
    ``max_pair_per_request`` bound the *model-equivalent* Exp and pairing
    operations per issued request (the paper's Table I units), so a
    regression in protocol cost fails the scenario even when wall time
    stays quiet.
    """

    max_p99_latency_s: float | None = None
    max_p50_latency_s: float | None = None
    max_drop_rate: float | None = None
    max_failed: int | None = None
    min_completed: int | None = None
    max_exp_per_request: float | None = None
    max_pair_per_request: float | None = None
    max_virtual_duration_s: float | None = None
    # Durability envelope (fleet scenarios): how much loss is acceptable
    # and how fast repair must land.
    max_unrecoverable_files: int | None = None
    min_repaired_slices: int | None = None
    max_post_repair_audit_failures: int | None = None
    max_repair_duration_s: float | None = None
    # Dynamic-update envelope (dynamic scenarios): how much churn must
    # land, and how tightly batching must bound the re-sign cost.
    min_update_batches: int | None = None
    max_resigned_blocks_per_batch: int | None = None
    min_dynamic_audits: int | None = None

    def validate(self, path: str) -> None:
        for name in ("max_p99_latency_s", "max_p50_latency_s", "max_drop_rate",
                     "max_exp_per_request", "max_pair_per_request",
                     "max_virtual_duration_s", "max_repair_duration_s"):
            value = getattr(self, name)
            if value is not None:
                _require(value >= 0, path, f"{name} must be non-negative, got {value}")
        if self.max_drop_rate is not None:
            _require(self.max_drop_rate <= 1.0, path, "max_drop_rate must be <= 1")
        for name in ("max_failed", "min_completed", "max_unrecoverable_files",
                     "min_repaired_slices", "max_post_repair_audit_failures",
                     "min_update_batches", "max_resigned_blocks_per_batch",
                     "min_dynamic_audits"):
            value = getattr(self, name)
            if value is not None:
                _require(value >= 0, path, f"{name} must be non-negative, got {value}")

    @property
    def checks(self) -> list[str]:
        return [name for name in ("max_p99_latency_s", "max_p50_latency_s",
                                  "max_drop_rate", "max_failed", "min_completed",
                                  "max_exp_per_request", "max_pair_per_request",
                                  "max_virtual_duration_s",
                                  "max_unrecoverable_files",
                                  "min_repaired_slices",
                                  "max_post_repair_audit_failures",
                                  "max_repair_duration_s",
                                  "min_update_batches",
                                  "max_resigned_blocks_per_batch",
                                  "min_dynamic_audits")
                if getattr(self, name) is not None]


@dataclass(frozen=True)
class BatchSpec:
    max_batch: int = 16
    max_wait_s: float = 0.02

    def validate(self, path: str) -> None:
        _require(self.max_batch >= 1, path, "max_batch must be >= 1")
        _require(self.max_wait_s > 0, path, "max_wait_s must be positive")


@dataclass(frozen=True)
class FailoverSpec:
    timeout_s: float = 0.5
    round_deadline_s: float | None = None

    def validate(self, path: str) -> None:
        _require(self.timeout_s > 0, path, "timeout_s must be positive")
        if self.round_deadline_s is not None:
            _require(self.round_deadline_s > 0, path,
                     "round_deadline_s must be positive")


@dataclass(frozen=True)
class RunSettings:
    duration_s: float = 1.0
    seed: int = 0
    param_set: str = "toy-64"
    k: int = 4
    max_requests: int = 1000         # global budget across every cohort
    batch: BatchSpec = field(default_factory=BatchSpec)
    failover: FailoverSpec = field(default_factory=FailoverSpec)
    faults: tuple[Fault, ...] = ()
    fault_seed: int | None = None    # None: derived from the scenario seed
    fault_plan_name: str = ""
    envelope: EnvelopeSpec = field(default_factory=EnvelopeSpec)
    metrics: tuple[str, ...] = ("latency", "throughput", "ops")

    def validate(self, path: str = "settings") -> None:
        _require(self.duration_s > 0, path, "duration_s must be positive")
        _require(self.k >= 1, path, "k must be >= 1")
        _require(self.max_requests >= 1, path, "max_requests must be >= 1")
        from repro.pairing import TYPE_A_PARAM_SETS

        _require(self.param_set in TYPE_A_PARAM_SETS, path,
                 f"unknown param_set {self.param_set!r}; "
                 f"choose from {sorted(TYPE_A_PARAM_SETS)}")
        self.batch.validate(f"{path}.batch")
        self.failover.validate(f"{path}.failover")
        self.envelope.validate(f"{path}.envelope")
        for i, metric in enumerate(self.metrics):
            _require(metric in METRIC_GROUPS, f"{path}.metrics[{i}]",
                     f"unknown metric group {metric!r}; "
                     f"choose from {sorted(METRIC_GROUPS)}")


# ---------------------------------------------------------------------------
# SLOs (optional fourth component)
# ---------------------------------------------------------------------------

#: Signal kinds an SLO objective may declare (see repro.obs.slo).
SLO_SIGNAL_KINDS = frozenset(
    {"availability", "latency", "drop_rate", "op_budget", "quarantine"})
ALERT_SEVERITY_KINDS = frozenset({"page", "ticket"})


@dataclass(frozen=True)
class BurnWindowSpec:
    """One explicit burn-rate window pair (overrides the scaled defaults)."""

    long_s: float
    short_s: float
    burn_rate: float
    severity: str = "page"

    def validate(self, path: str) -> None:
        _require(self.short_s > 0, path, "short_s must be positive")
        _require(self.long_s > self.short_s, path,
                 f"long_s ({self.long_s}) must exceed short_s ({self.short_s})")
        _require(self.burn_rate > 0, path, "burn_rate must be positive")
        _require(self.severity in ALERT_SEVERITY_KINDS, path,
                 f"unknown severity {self.severity!r}; "
                 f"choose from {sorted(ALERT_SEVERITY_KINDS)}")


@dataclass(frozen=True)
class ObjectiveSpec:
    """One declarative SLO objective over the run's virtual clock."""

    name: str
    signal: str
    target: float = 0.99
    threshold_s: float | None = None      # latency
    op: str = "exp"                       # op_budget: "exp" | "pair"
    budget_per_request: float | None = None  # op_budget
    windows: tuple[BurnWindowSpec, ...] = ()

    def validate(self, path: str) -> None:
        _valid_name(self.name, path)
        _require(self.signal in SLO_SIGNAL_KINDS, path,
                 f"unknown SLO signal {self.signal!r}; "
                 f"choose from {sorted(SLO_SIGNAL_KINDS)}")
        _require(0.0 < self.target < 1.0, path,
                 f"target must be in (0, 1), got {self.target}")
        if self.signal == "latency":
            _require(self.threshold_s is not None, path,
                     "latency objective needs threshold_s")
            _require(self.threshold_s > 0, path, "threshold_s must be positive")
        else:
            _require(self.threshold_s is None, path,
                     f"threshold_s only applies to latency, not {self.signal}")
        if self.signal == "op_budget":
            _require(self.op in ("exp", "pair"), path,
                     f"op must be 'exp' or 'pair', got {self.op!r}")
            _require(self.budget_per_request is not None, path,
                     "op_budget objective needs budget_per_request")
            _require(self.budget_per_request > 0, path,
                     "budget_per_request must be positive")
        else:
            _require(self.budget_per_request is None, path,
                     f"budget_per_request only applies to op_budget, "
                     f"not {self.signal}")
        for i, window in enumerate(self.windows):
            window.validate(f"{path}.windows[{i}]")


@dataclass(frozen=True)
class SLOSpec:
    """The optional ``slos:`` component: objectives + alert expectations.

    ``expected_alerts`` entries are ``"<objective>"`` (any severity) or
    ``"<objective>:<severity>"``; the runner fails the run unless exactly
    the expected alerts fired.  ``sample_interval_s`` / ``epoch_s``
    default to fractions of the run duration at compile time.
    """

    objectives: tuple[ObjectiveSpec, ...]
    sample_interval_s: float | None = None
    epoch_s: float | None = None
    expected_alerts: tuple[str, ...] = ()

    def validate(self, path: str = "slos") -> None:
        _require(len(self.objectives) >= 1, path,
                 "needs at least one objective")
        seen: set[str] = set()
        for i, objective in enumerate(self.objectives):
            objective.validate(f"{path}.objectives[{i}]")
            _require(objective.name not in seen, f"{path}.objectives[{i}]",
                     f"duplicate objective name {objective.name!r}")
            seen.add(objective.name)
        if self.sample_interval_s is not None:
            _require(self.sample_interval_s > 0, path,
                     "sample_interval_s must be positive")
        if self.epoch_s is not None:
            _require(self.epoch_s > 0, path, "epoch_s must be positive")
        for i, expected in enumerate(self.expected_alerts):
            epath = f"{path}.expected_alerts[{i}]"
            _require(isinstance(expected, str) and expected, epath,
                     "expected alert must be a non-empty string")
            name, _, severity = expected.partition(":")
            _require(name in seen, epath,
                     f"references unknown objective {name!r} "
                     f"(declared: {', '.join(sorted(seen))})")
            if severity:
                _require(severity in ALERT_SEVERITY_KINDS, epath,
                         f"unknown severity {severity!r}; "
                         f"choose from {sorted(ALERT_SEVERITY_KINDS)}")


# ---------------------------------------------------------------------------
# The scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One fully-described run.  Construction validates everything."""

    name: str
    workload: WorkloadSpec
    topology: TopologySpec
    settings: RunSettings = field(default_factory=RunSettings)
    description: str = ""
    slos: SLOSpec | None = None
    legacy: bool = field(default=False, compare=False)  # set by the CLI shim only

    def __post_init__(self):
        self.validate()

    # -- compiled node naming (the contract fault plans target) -------------
    def node_names(self) -> set[str]:
        """Every simulator node name this scenario compiles to.

        Naming contract: SEM ``j`` of group ``G`` is ``sem-<G>-<j>``, the
        group's service front end is ``svc-<G>``, cohort ``C`` drives
        traffic from ``c-<C>``, and clouds/verifiers keep their declared
        names.  Fault plans address these names.
        """
        names: set[str] = set()
        for group in self.topology.sem_groups:
            names.add(f"svc-{group.name}")
            names.update(f"sem-{group.name}-{j}" for j in range(group.w))
        names.update(f"c-{c.name}" for c in self.workload.cohorts)
        names.update(c.name for c in self.topology.clouds)
        names.update(v.name for v in self.topology.verifiers)
        if self.topology.fleet is not None:
            names.update(self.topology.fleet.server_names())
        return names

    def validate(self) -> None:
        _valid_name(self.name, "scenario")
        if self.topology.fleet is None or self.workload.cohorts:
            # A pure fleet drill needs no signing workload; anything else
            # (including a fleet riding alongside cohorts) validates the
            # workload as usual.
            self.workload.validate()
        self.topology.validate()
        self.settings.validate()
        if self.slos is not None:
            self.slos.validate()
        group_names = {g.name for g in self.topology.sem_groups}
        cloud_names = {c.name for c in self.topology.clouds}
        if self.workload.dynamic is not None:
            _require(self.workload.dynamic.target in group_names,
                     "workload.dynamic",
                     f"target references unknown SEM group "
                     f"{self.workload.dynamic.target!r}")
            _require(self.slos is None, "workload.dynamic",
                     "dynamic drills do not support slos: yet — drop one")
            _require(not self.workload.cohorts, "workload.dynamic",
                     "a dynamic drill replaces the cohort workload — "
                     "declare cohorts or dynamic, not both")
        for i, cohort in enumerate(self.workload.cohorts):
            path = f"workload.cohorts[{i}]"
            _require(cohort.target in group_names, path,
                     f"target references unknown SEM group {cohort.target!r}")
            for cloud in cohort.upload_to:
                _require(cloud in cloud_names, path,
                         f"upload_to references unknown cloud {cloud!r}")
        # A cloud stores files under one organizational key, so every cohort
        # striping to it must sign through the same SEM group — otherwise the
        # cloud's (and its TPA's) verification key is ambiguous.
        cloud_signer: dict[str, tuple[str, str]] = {}
        for i, cohort in enumerate(self.workload.cohorts):
            path = f"workload.cohorts[{i}]"
            for cloud in cohort.upload_to:
                prior = cloud_signer.setdefault(cloud, (cohort.target, cohort.name))
                _require(prior[0] == cohort.target, path,
                         f"cloud {cloud!r} receives uploads signed by group "
                         f"{cohort.target!r} here but by {prior[0]!r} from "
                         f"cohort {prior[1]!r} — one cloud, one signing group")
        endpoint_names = self.topology.names | {c.name for c in self.workload.cohorts}
        for i, link in enumerate(self.topology.links):
            path = f"topology.links[{i}]"
            for end in (link.src, link.dst):
                _require(end in endpoint_names, path,
                         f"link references unknown endpoint {end!r}")
        if self.legacy:
            # Legacy serve-sim wiring keeps its historical node names
            # ("service", "sem-j", "client-i"); chaos plans are validated
            # against the live simulator at install time instead.
            return
        node_names = self.node_names()
        for i, fault in enumerate(self.settings.faults):
            path = f"settings.faults[{i}]"
            if fault.kind in NODE_KINDS:
                _require(fault.node in node_names, path,
                         f"fault targets unknown node {fault.node!r} "
                         f"(known: {', '.join(sorted(node_names))})")
            for src, dst in fault.links:
                for end in (src, dst):
                    _require(end == "*" or end in node_names, path,
                             f"fault link pattern references unknown node {end!r}")

    @property
    def total_requests_budget(self) -> int:
        """The hard cap on issued requests (global and per-cohort caps)."""
        per_cohort = sum(
            c.max_requests if c.max_requests is not None else self.settings.max_requests
            for c in self.workload.cohorts
        )
        return min(self.settings.max_requests, per_cohort)


def make_fault(raw: dict, path: str) -> Fault:
    """Build one :class:`~repro.net.faults.Fault` from a scenario dict,
    translating structural errors into :class:`ScenarioError` with path."""
    try:
        from repro.net.faults import _fault_from_dict

        return _fault_from_dict(raw)
    except FaultPlanError as exc:
        raise ScenarioError(path, str(exc)) from None
