"""Execute a compiled scenario and judge it against its envelope.

The runner owns the full lifecycle: compile → arm workload → drain the
simulator → collect metrics → check the acceptance envelope → emit a
verdict report.  Everything it reports splits into two planes:

* the **deterministic plane** — completions, latencies, byte counts, op
  tallies, fault counts — a pure function of the scenario document and
  its seed.  :meth:`ScenarioResult.digest` hashes exactly this plane, so
  two runs of one scenario must produce identical digests (the
  determinism tests replay a million-user scenario and assert it);
* the **wall plane** — host execution time — reported for humans and
  excluded from the digest.

Verdict reports follow the bench-run discipline (committed-schema JSON,
sorted keys) so CI can archive them next to ``BENCH_<suite>.json``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.scenarios.compile import (
    CompiledScenario,
    compile_legacy,
    compile_scenario,
)
from repro.scenarios.schema import EnvelopeSpec, Scenario

#: Verdict report schema identifier (bump on breaking changes).
VERDICT_SCHEMA = "repro-scenario-verdict-v1"


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass(frozen=True)
class EnvelopeViolation:
    """One acceptance-envelope check that failed."""

    check: str
    limit: float
    observed: float
    detail: str = ""

    def render(self) -> str:
        rendered = f"{self.check}: observed {self.observed:.6g} vs limit {self.limit:.6g}"
        if self.detail:
            rendered += f" ({self.detail})"
        return rendered


@dataclass
class ScenarioResult:
    """The runner's complete accounting of one finished run."""

    scenario: Scenario
    issued: int = 0
    completed: int = 0
    failed: int = 0
    dropped_messages: int = 0
    delivered_messages: int = 0
    bytes_on_wire: int = 0
    virtual_duration_s: float = 0.0
    wall_s: float = 0.0                      # excluded from the digest
    latencies: list[float] = field(default_factory=list)
    ops: dict[str, int] = field(default_factory=dict)
    cohorts: dict[str, dict] = field(default_factory=dict)
    clouds: dict[str, dict] = field(default_factory=dict)
    verifiers: dict[str, dict] = field(default_factory=dict)
    services: dict[str, dict] = field(default_factory=dict)
    fault_counts: dict[str, int] = field(default_factory=dict)
    violations: list[EnvelopeViolation] = field(default_factory=list)
    # Flight recorder (populated only when a ledger / enabled obs ran):
    ledger: dict | None = None               # chain head: entries/epoch/hash
    critical_path: dict | None = None        # p99 exemplar's hop attribution
    exemplars: list | None = None            # latency buckets → trace ids
    # Fleet drill (populated only when the scenario declares topology.fleet):
    fleet: dict | None = None                # durability + repair accounting
    # Dynamic drill (populated only when workload.dynamic is declared):
    dynamic: dict | None = None              # update batches + audit tallies
    # SLO engine (populated only when the scenario declares slos:):
    alerts: list | None = None               # alert state-machine timeline
    fired_alerts: list | None = None         # deduplicated objective:severity
    expected_alerts: list | None = None      # what the document declared
    error_budgets: list | None = None        # per-objective budget rows
    metering: list | None = None             # epoch metering records
    metering_close: dict | None = None       # closing grand totals per scope

    @property
    def lost(self) -> int:
        """Requests that never got a terminal response (dropped in flight)."""
        return self.issued - self.completed - self.failed

    @property
    def drop_rate(self) -> float:
        total = self.delivered_messages + self.dropped_messages
        return self.dropped_messages / total if total else 0.0

    @property
    def latency_p50_s(self) -> float:
        return percentile(sorted(self.latencies), 0.50)

    @property
    def latency_p99_s(self) -> float:
        return percentile(sorted(self.latencies), 0.99)

    def model_ops(self) -> dict[str, int]:
        """Raw counter tallies folded into the paper's Table I units."""
        from repro.obs.exporters import model_equivalent_exp

        return {"exp": model_equivalent_exp(self.ops),
                "pair": self.ops.get("pairings", 0)}

    def ops_per_request(self, key: str) -> float:
        """Model-equivalent ``exp``/``pair`` operations per issued request."""
        return self.model_ops()[key] / self.issued if self.issued else 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    # -- determinism ---------------------------------------------------------
    def deterministic_view(self) -> dict:
        """The digest's input: every metric that must replay identically."""
        view = {
            "scenario": self.scenario.name,
            "seed": self.scenario.settings.seed,
            "issued": self.issued,
            "completed": self.completed,
            "failed": self.failed,
            "lost": self.lost,
            "dropped_messages": self.dropped_messages,
            "delivered_messages": self.delivered_messages,
            "bytes_on_wire": self.bytes_on_wire,
            "virtual_duration_s": round(self.virtual_duration_s, 9),
            "latencies": [round(v, 9) for v in self.latencies],
            "ops": dict(sorted(self.ops.items())),
            "cohorts": {k: self.cohorts[k] for k in sorted(self.cohorts)},
            "clouds": {k: self.clouds[k] for k in sorted(self.clouds)},
            "verifiers": {k: self.verifiers[k] for k in sorted(self.verifiers)},
            "fault_counts": dict(sorted(self.fault_counts.items())),
        }
        if self.ledger is not None:
            # The chain head joins the deterministic plane: a double run
            # must reproduce the ledger bit-for-bit, hash and all.
            # (Conditional, so ledger-less digests stay stable.)
            view["ledger"] = self.ledger
        if self.fleet is not None:
            # The quarantine/repair timeline is a pure function of the
            # scenario + seed, so the whole fleet block joins the plane.
            view["fleet"] = self.fleet
        if self.dynamic is not None:
            # Same deal for the update timeline: every batch receipt and
            # audit verdict must replay bit-identically.
            view["dynamic"] = self.dynamic
        if self.alerts is not None:
            # The alert timeline and metering records join the plane the
            # same way: a double run must replay them bit-identically.
            view["slo"] = {
                "alerts": self.alerts,
                "fired": self.fired_alerts,
                "error_budgets": self.error_budgets,
                "metering": self.metering,
                "metering_close": self.metering_close,
            }
        return view

    def digest(self) -> str:
        canonical = json.dumps(self.deterministic_view(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- reporting -----------------------------------------------------------
    def to_report(self) -> dict:
        """The verdict document written by ``repro-pdp scenario run``."""
        return {
            "schema": VERDICT_SCHEMA,
            "scenario": self.scenario.name,
            "description": self.scenario.description,
            "seed": self.scenario.settings.seed,
            "verdict": "pass" if self.passed else "fail",
            "checks": self.scenario.settings.envelope.checks,
            "violations": [
                {"check": v.check, "limit": v.limit, "observed": v.observed,
                 **({"detail": v.detail} if v.detail else {})}
                for v in self.violations
            ],
            "digest": self.digest(),
            "wall_s": self.wall_s,
            "metrics": {
                "issued": self.issued,
                "completed": self.completed,
                "failed": self.failed,
                "lost": self.lost,
                "drop_rate": self.drop_rate,
                "latency_p50_s": self.latency_p50_s,
                "latency_p99_s": self.latency_p99_s,
                "virtual_duration_s": self.virtual_duration_s,
                "bytes_on_wire": self.bytes_on_wire,
                "exp_per_request": self.ops_per_request("exp"),
                "pair_per_request": self.ops_per_request("pair"),
            },
            "population": {
                "total_members": self.scenario.workload.total_members,
                "cohorts": {k: self.cohorts[k] for k in sorted(self.cohorts)},
            },
            "clouds": {k: self.clouds[k] for k in sorted(self.clouds)},
            "verifiers": {k: self.verifiers[k] for k in sorted(self.verifiers)},
            "services": {k: self.services[k] for k in sorted(self.services)},
            "fault_counts": dict(sorted(self.fault_counts.items())),
            **({"fleet": self.fleet} if self.fleet is not None else {}),
            **({"dynamic": self.dynamic} if self.dynamic is not None else {}),
            "flight_recorder": {
                "ledger": self.ledger,
                "critical_path": self.critical_path,
                "exemplars": self.exemplars,
            },
            **({"slo": {
                "objectives": [
                    {"name": o.name, "signal": o.signal, "target": o.target}
                    for o in self.scenario.slos.objectives
                ],
                "expected_alerts": self.expected_alerts,
                "fired": self.fired_alerts,
                "error_budgets": self.error_budgets,
                "alerts": self.alerts,
                "metering": self.metering,
                "metering_close": self.metering_close,
            }} if self.alerts is not None and self.scenario.slos is not None
               else {}),
        }


def check_envelope(result: ScenarioResult,
                   envelope: EnvelopeSpec) -> list[EnvelopeViolation]:
    """Every envelope check that the finished run violates."""
    fleet = result.fleet or {}
    dyn = result.dynamic or {}
    observed = {
        "max_p99_latency_s": result.latency_p99_s,
        "max_p50_latency_s": result.latency_p50_s,
        "max_drop_rate": result.drop_rate,
        "max_failed": float(result.failed),
        "min_completed": float(result.completed),
        "max_exp_per_request": result.ops_per_request("exp"),
        "max_pair_per_request": result.ops_per_request("pair"),
        "max_virtual_duration_s": result.virtual_duration_s,
        # Durability checks read the fleet block; a fleet-less run that
        # declares them observes zeros (max_* pass vacuously, min_* fail).
        "max_unrecoverable_files": float(fleet.get("unrecoverable_files", 0)),
        "min_repaired_slices": float(fleet.get("repaired_slices", 0)),
        "max_post_repair_audit_failures": float(
            fleet.get("post_repair_audit_failures", 0)),
        "max_repair_duration_s": float(fleet.get("repair_duration_s", 0.0)),
        # Dynamic-tier checks read the dynamic block the same way.
        "min_update_batches": float(dyn.get("update_batches", 0)),
        "max_resigned_blocks_per_batch": float(
            dyn.get("max_resigned_per_batch", 0)),
        "min_dynamic_audits": float(dyn.get("audits_ok", 0)),
    }
    violations = []
    for check in envelope.checks:
        limit = float(getattr(envelope, check))
        value = observed[check]
        breached = value < limit if check.startswith("min_") else value > limit
        if breached:
            violations.append(EnvelopeViolation(check=check, limit=limit,
                                                observed=value))
    return violations


class ScenarioRunner:
    """Compile, execute, and judge one scenario.

    The legacy path (``scenario.legacy``) reproduces the historical
    ``serve-sim`` wiring byte-for-byte so the flag shim cannot drift from
    the behaviour the chaos-smoke CI job and the verify recipe pin down;
    both paths share this collection and verdict logic.
    """

    def __init__(self, scenario: Scenario, obs=None, journal=None,
                 chaos_plan=None, max_events: int | None = None,
                 ledger=None):
        self.scenario = scenario
        self.obs = obs
        self.journal = journal
        self.chaos_plan = chaos_plan
        self.max_events = max_events
        self.ledger = ledger
        self.compiled: CompiledScenario | None = None
        self.slo = None                      # SLOHarness when slos: declared
        self.replayed = 0

    def compile(self) -> CompiledScenario:
        if self.compiled is None:
            if self.scenario.slos is not None and (
                    self.obs is None or not self.obs.enabled):
                # The SLO engine samples the run's registry; a scenario
                # that declares objectives implies observability.
                from repro.obs import Observability

                self.obs = Observability.create()
            if self.scenario.legacy:
                self.compiled = compile_legacy(
                    self.scenario, self.obs, journal=self.journal,
                    chaos_plan=self.chaos_plan, ledger=self.ledger,
                )
            else:
                self.compiled = compile_scenario(self.scenario, obs=self.obs,
                                                 ledger=self.ledger)
            if self.scenario.slos is not None:
                from repro.scenarios.slo_wiring import SLOHarness

                self.slo = SLOHarness(self.scenario, self.compiled,
                                      self.obs.registry, ledger=self.ledger)
        return self.compiled

    def run(self) -> ScenarioResult:
        if self.scenario.workload.dynamic is not None:
            return self._run_dynamic()
        if self.scenario.topology.fleet is not None:
            return self._run_fleet()
        compiled = self.compile()
        started = time.perf_counter()
        if self.scenario.legacy:
            self._drive_legacy(compiled)
        else:
            compiled.start_workload()
        virtual_end = compiled.sim.run(max_events=self.max_events)
        if self.slo is not None:
            # Last evaluation + metering close happen before the ledger
            # is sealed, so metering records precede the run_summary.
            self.slo.finalize(virtual_end)
        result = self._collect(compiled, virtual_end)
        if self.ledger is not None:
            self._seal_ledger(result)
        result.wall_s = time.perf_counter() - started
        result.violations = check_envelope(result,
                                           self.scenario.settings.envelope)
        if self.slo is not None:
            result.violations.extend(self._check_expected_alerts(result))
        return result

    def _run_fleet(self) -> ScenarioResult:
        """The storage-drill path: no compiled node graph, the fleet store
        drives the simulator directly (see scenarios/fleet_drill.py)."""
        from repro.scenarios.fleet_drill import FleetDrill

        started = time.perf_counter()
        drill = FleetDrill(self.scenario, obs=self.obs, ledger=self.ledger)
        self.obs = drill.obs          # drill may have enabled obs for SLOs
        self.slo = drill.slo
        virtual_end = drill.run()
        result = ScenarioResult(scenario=self.scenario)
        result.virtual_duration_s = virtual_end
        result.issued = drill.checks_issued
        result.completed = drill.ok_proofs
        result.failed = drill.invalid_proofs + drill.timeouts
        result.ops = {k: v for k, v in drill.counter.snapshot().items() if v}
        result.fleet = drill.summary()
        result.fault_counts = dict(sorted(drill.fault_counts.items()))
        for name in self.scenario.topology.fleet.server_names():
            handle = drill.fleet.handles[name]
            result.clouds[name] = {
                "files_stored": handle.server.stored_files,
                "online": handle.online,
            }
        if self.slo is not None:
            result.alerts = list(self.slo.engine.timeline)
            result.fired_alerts = self.slo.engine.fired()
            result.expected_alerts = list(self.slo.expected_alerts())
            result.error_budgets = list(self.slo.budget_rows)
            result.metering = []
            result.metering_close = {}
        if self.ledger is not None:
            self._seal_ledger(result)
        result.wall_s = time.perf_counter() - started
        result.violations = check_envelope(result,
                                           self.scenario.settings.envelope)
        if self.slo is not None:
            result.violations.extend(self._check_expected_alerts(result))
        return result

    def _run_dynamic(self) -> ScenarioResult:
        """The update-drill path: no compiled node graph, the dynamic
        store drives the simulator directly (see scenarios/dynamic_drill.py).
        An update batch counts as one issued-and-completed request; a
        dynamic audit is issued too and fails when its proof does."""
        from repro.scenarios.dynamic_drill import DynamicDrill

        started = time.perf_counter()
        drill = DynamicDrill(self.scenario, obs=self.obs, ledger=self.ledger)
        self.obs = drill.obs
        virtual_end = drill.run()
        result = ScenarioResult(scenario=self.scenario)
        result.virtual_duration_s = virtual_end
        result.issued = drill.update_batches + drill.audits_done
        result.completed = drill.update_batches + drill.audits_ok
        result.failed = drill.audits_failed
        result.ops = {k: v for k, v in drill.counter.snapshot().items() if v}
        result.dynamic = drill.summary()
        if self.ledger is not None:
            self._seal_ledger(result)
        result.wall_s = time.perf_counter() - started
        result.violations = check_envelope(result,
                                           self.scenario.settings.envelope)
        return result

    def _check_expected_alerts(self,
                               result: ScenarioResult) -> list[EnvelopeViolation]:
        """Expected-alerts-exactly: the declared set must equal the fired
        set — a silent alert is as much a failure as a spurious one."""
        unexpected, missing = self.slo.check_expected(result.fired_alerts or [])
        violations = []
        if unexpected:
            violations.append(EnvelopeViolation(
                check="slo_unexpected_alerts", limit=0.0,
                observed=float(len(unexpected)),
                detail="fired but not expected: " + ", ".join(unexpected)))
        if missing:
            violations.append(EnvelopeViolation(
                check="slo_missing_alerts", limit=0.0,
                observed=float(len(missing)),
                detail="expected but never fired: " + ", ".join(missing)))
        return violations

    def _seal_ledger(self, result: ScenarioResult) -> None:
        """End-of-run ledger entries, then expose the head to the digest."""
        import hashlib as _hashlib
        import os as _os

        if self.journal is not None and getattr(self.journal, "path", None):
            path = self.journal.path
            if _os.path.exists(path):
                with open(path, "rb") as handle:
                    digest = _hashlib.sha256(handle.read()).hexdigest()
                self.ledger.append("journal_segment", {
                    "sha256": digest,
                    "bytes": _os.path.getsize(path),
                })
        # Raw counts only — the scenario digest covers the ledger head, so
        # the summary must not itself depend on the digest (no cycles).
        self.ledger.append("run_summary", {
            "scenario": self.scenario.name,
            "seed": self.scenario.settings.seed,
            "issued": result.issued,
            "completed": result.completed,
            "failed": result.failed,
            "virtual_duration_s": round(result.virtual_duration_s, 9),
        })
        result.ledger = self.ledger.head()

    # -- legacy drive --------------------------------------------------------
    def _drive_legacy(self, compiled: CompiledScenario) -> None:
        """The historical request loop: every request enqueued at t = 0,
        payload bytes drawn from the root RNG in client-major order."""
        self.replayed = compiled.legacy_replayed
        cohort = self.scenario.workload.cohorts[0]
        rng = compiled.legacy_rng
        size = cohort.file_sizes.bytes
        for i, client in enumerate(compiled.legacy_clients):
            for n in range(cohort.arrival.requests_per_member):
                data = rng.randbytes(size)
                compiled.sim.send(
                    client.request_for_data(data, f"file-{i}-{n}".encode())
                )

    # -- collection ----------------------------------------------------------
    def _collect(self, compiled: CompiledScenario,
                 virtual_end: float) -> ScenarioResult:
        sim = compiled.sim
        result = ScenarioResult(scenario=self.scenario)
        result.virtual_duration_s = virtual_end
        result.dropped_messages = sim.dropped
        result.delivered_messages = sim.delivered
        result.bytes_on_wire = sim.total_bytes()
        if compiled.counter is not None:
            result.ops = {k: v for k, v in compiled.counter.snapshot().items() if v}
        if self.scenario.legacy:
            clients = compiled.legacy_clients
            result.issued = compiled.legacy_expected
            result.completed = sum(len(c.completed) for c in clients)
            result.failed = sum(len(c.failed) for c in clients)
            for client in clients:
                result.latencies.extend(client.latencies)
            cohort = self.scenario.workload.cohorts[0]
            result.cohorts[cohort.name] = {
                "members": cohort.members,
                "requests": result.issued,
                "completed": result.completed,
                "failed": result.failed,
            }
        else:
            for name, node in compiled.cohorts.items():
                result.issued += node.issued
                result.completed += len(node.completed)
                result.failed += len(node.failed)
                result.latencies.extend(node.latencies)
                result.cohorts[name] = node.stats()
        for name, node in compiled.clouds.items():
            result.clouds[name] = {
                "files_stored": node.server.stored_files,
            }
        for name, node in compiled.verifiers.items():
            result.verifiers[name] = {
                "audits_passed": node.audits_passed,
                "audits_failed": node.audits_failed,
                "files_watched": len(node.watched),
            }
        for name, service in compiled.services.items():
            summary = service.metrics.summary()
            health = service.health.summary()
            result.services[name] = {
                "batches": summary["batches"],
                "batch_size_mean": summary["batch_size_mean"],
                "signatures_produced": summary["signatures_produced"],
                "queue_high_watermark": summary["queue_high_watermark"],
                "retries": summary["retries"],
                "failovers": summary["failovers"],
                "latency_p50_s": summary["latency_p50_s"],
                "latency_p99_s": summary["latency_p99_s"],
                "quarantine_trips": health["trips"],
                "probes": health["probes"],
                "invalid_share_batches": health["invalid_total"],
            }
        if compiled.injector is not None:
            result.fault_counts = dict(compiled.injector.counts)
        if self.slo is not None:
            result.alerts = list(self.slo.engine.timeline)
            result.fired_alerts = self.slo.engine.fired()
            result.expected_alerts = list(self.slo.expected_alerts())
            result.error_budgets = list(self.slo.budget_rows)
            result.metering = list(self.slo.meter.records)
            result.metering_close = dict(self.slo.meter.close_record)
        self._attribute_latency(compiled, result)
        return result

    def _attribute_latency(self, compiled: CompiledScenario,
                           result: ScenarioResult) -> None:
        """Critical-path + exemplar analysis off the live causal stream."""
        if self.obs is None or not self.obs.enabled:
            return
        from repro.obs.causal import (
            critical_path_report,
            exemplar_buckets,
            spans_from_tracer,
        )

        sources = (compiled.legacy_clients if self.scenario.legacy
                   else compiled.cohorts.values())
        pairs: list[tuple[float, int]] = []
        for node in sources:
            pairs.extend(getattr(node, "exemplars", ()))
        if not pairs:
            return
        spans = spans_from_tracer(self.obs.tracer)
        result.exemplars = exemplar_buckets(pairs)
        result.critical_path = critical_path_report(spans, pairs, q=0.99)


def run_scenario(scenario: Scenario, obs=None,
                 max_events: int | None = None) -> ScenarioResult:
    """One-call convenience used by tests and the bench suite."""
    return ScenarioRunner(scenario, obs=obs, max_events=max_events).run()
