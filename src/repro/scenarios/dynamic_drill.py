"""Run a scenario's ``workload.dynamic`` as a deterministic update drill.

The compiled node-graph path simulates the static *signing* pipeline and
the fleet path the *storage* pipeline; a dynamic scenario exercises the
*update* pipeline: a :class:`~repro.dynamic.store.DynamicStore` applying
seeded batches of verified mutations (rank-tree root handoff + one
Eq. 7-checked blind-sign round per batch) while a
:class:`~repro.dynamic.store.DynamicAuditor` re-audits the moving files
against its pinned roots.  The drill runs on the same discrete-event
simulator timer wheel, draws every op and payload from seeded streams,
and fences every batch on the run ledger with ``dyn_update_begin`` /
``dyn_update_commit`` records — so a double run replays bit-identically
and ``repro-pdp ledger verify`` re-derives every root transition
offline.

Three workload profiles (see
:class:`~repro.scenarios.schema.DynamicSpec`):

* ``churn`` — versioned-document editing: a seeded mix of modify,
  insert, delete, and append ops;
* ``log_append`` — append-only growth, the log-storage shape;
* ``hot_block`` — modify storms concentrated on the first
  ``hot_blocks`` positions, the worst case for naive re-sign-all.

Envelope checks the drill feeds: ``min_update_batches``,
``max_resigned_blocks_per_batch`` (the batched-re-signing claim, as an
acceptance gate), and ``min_dynamic_audits``.
"""

from __future__ import annotations

import hashlib
import random

from repro.dynamic import DynamicAuditor, DynamicStore, UpdateOp
from repro.obs import NULL_OBS
from repro.scenarios.schema import Scenario

__all__ = ["DynamicDrill"]


class DynamicDrill:
    """One seeded dynamic run: create files, mutate on a period, audit.

    Owns a bare :class:`~repro.net.simulator.Simulator` used purely as a
    deterministic timer wheel: one update tick per
    ``update_period_s`` applies one atomic batch to the next file in
    round-robin order until every file has received ``batches`` batches.
    After every ``audit_every``-th batch the drill challenges the file it
    just mutated and verifies (block, rank-path, root-signature, Eq. 6)
    together against the root it pinned from the batch receipt.
    """

    def __init__(self, scenario: Scenario, obs=None, ledger=None):
        from repro.core.owner import DataOwner
        from repro.core.params import setup
        from repro.net.simulator import Simulator
        from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup
        from repro.pairing.interface import OperationCounter

        spec = scenario.workload.dynamic
        if spec is None:
            raise ValueError("scenario has no workload.dynamic")
        self.scenario = scenario
        self.spec = spec
        self.obs = obs if obs is not None else NULL_OBS
        self.ledger = ledger
        self.sim = Simulator()
        if ledger is not None:
            # Ledger timestamps advance with virtual time, like the
            # compiled path; entries are replayable, hash and all.
            ledger.clock = lambda: self.sim.now
        settings = scenario.settings
        group = TypeAPairingGroup.from_params(
            TYPE_A_PARAM_SETS[settings.param_set])
        params = setup(group, k=settings.k)
        if self.obs.enabled:
            self.counter = self.obs.counter
        else:
            self.counter = OperationCounter()
        group.attach_counter(self.counter)
        key_rng = _drill_rng(settings.seed, b"keys")
        sem_front, org_pk = self._build_target(group, key_rng)
        self.owner = DataOwner(params, org_pk, rng=key_rng)
        self.store = DynamicStore(params, sem_front, self.owner,
                                  ledger=ledger)
        self.auditor = DynamicAuditor(params, org_pk,
                                      rng=_drill_rng(settings.seed, b"audit"))
        self._ops_rng = _drill_rng(settings.seed, b"ops")
        self.file_ids = [f"dyn-file-{i:04d}".encode()
                         for i in range(spec.files)]
        # Running tallies the envelope checks and the result read directly.
        self.update_batches = 0
        self.blocks_resigned = 0
        self.max_resigned_per_batch = 0
        self.audits_done = 0
        self.audits_ok = 0
        self.audits_failed = 0

    def _build_target(self, group, rng):
        """The signing side the DynamicSpec's ``target`` group declares:
        a single mediator for w = 1, a threshold cluster front otherwise
        (Section V — the update path is unchanged either way)."""
        from repro.core.multi_sem import MultiSEMClient, SEMCluster
        from repro.core.sem import SecurityMediator

        target = next(g for g in self.scenario.topology.sem_groups
                      if g.name == self.spec.target)
        if target.w > 1:
            cluster = SEMCluster(group, t=target.t, w=target.w, rng=rng,
                                 require_membership=False)
            return MultiSEMClient(cluster, rng=rng), cluster.master_pk
        sem = SecurityMediator(group, rng=rng, require_membership=False)
        return sem, sem.pk

    # -- drive ---------------------------------------------------------------
    def run(self) -> float:
        """Create the files, arm the update tick, drain the simulator."""
        spec = self.spec
        payload_rng = _drill_rng(self.scenario.settings.seed, b"payload")
        for file_id in self.file_ids:
            chunks = [payload_rng.randbytes(spec.block_bytes)
                      for _ in range(spec.initial_blocks)]
            receipt = self.store.create(file_id, chunks)
            self.auditor.pin_receipt(receipt)
        self._arm_update_tick()
        return self.sim.run()

    def _arm_update_tick(self) -> None:
        spec = self.spec
        horizon = self.scenario.settings.duration_s
        sim = self.sim
        total = spec.files * spec.batches

        def tick():
            index = self.update_batches % len(self.file_ids)
            file_id = self.file_ids[index]
            ops = self._ops_for_batch(file_id)
            receipt = self.store.update(file_id, ops)
            self.auditor.pin_receipt(receipt)
            self.update_batches += 1
            self.blocks_resigned += receipt.signed_blocks
            self.max_resigned_per_batch = max(self.max_resigned_per_batch,
                                              receipt.signed_blocks)
            if spec.audit_every and self.update_batches % spec.audit_every == 0:
                self._audit(file_id)
            if (self.update_batches < total
                    and sim.now + spec.update_period_s <= horizon):
                sim.schedule(spec.update_period_s, tick)

        sim.schedule(spec.update_period_s, tick)

    def _ops_for_batch(self, file_id: bytes) -> list[UpdateOp]:
        """One batch of ops in the declared profile's shape.

        Positions are generated against a simulated running count because
        :meth:`~repro.dynamic.store.DynamicStore.update` applies the
        batch sequentially — an insert shifts everything after it before
        the next op's position is interpreted.
        """
        spec, rng = self.spec, self._ops_rng
        count = self.store.file_state(file_id).count
        ops: list[UpdateOp] = []
        for _ in range(spec.ops_per_batch):
            if spec.profile == "log_append":
                ops.append(UpdateOp("append",
                                    payload=rng.randbytes(spec.block_bytes)))
                count += 1
                continue
            if spec.profile == "hot_block":
                hot = max(1, min(spec.hot_blocks, count))
                ops.append(UpdateOp("modify", rng.randrange(hot),
                                    rng.randbytes(spec.block_bytes)))
                continue
            # churn: a versioned document being edited in place.
            kind = rng.choice(("modify", "modify", "insert", "append",
                               "delete"))
            if kind == "delete" and count <= 1:
                kind = "append"   # never drain a file to zero blocks
            if kind == "modify":
                ops.append(UpdateOp("modify", rng.randrange(count),
                                    rng.randbytes(spec.block_bytes)))
            elif kind == "insert":
                ops.append(UpdateOp("insert", rng.randrange(count + 1),
                                    rng.randbytes(spec.block_bytes)))
                count += 1
            elif kind == "append":
                ops.append(UpdateOp("append",
                                    payload=rng.randbytes(spec.block_bytes)))
                count += 1
            else:
                ops.append(UpdateOp("delete", rng.randrange(count)))
                count -= 1
        return ops

    def _audit(self, file_id: bytes) -> None:
        challenge = self.auditor.generate_challenge(
            file_id, sample_size=self.spec.sample_size)
        proof = self.store.generate_proof(file_id, challenge)
        ok = self.auditor.verify(file_id, challenge, proof)
        self.audits_done += 1
        if ok:
            self.audits_ok += 1
        else:
            self.audits_failed += 1

    # -- accounting ----------------------------------------------------------
    def summary(self) -> dict:
        """The ``dynamic`` block of the scenario result (deterministic)."""
        files = {}
        for file_id in self.file_ids:
            state = self.store.file_state(file_id)
            files[file_id.decode()] = {
                "epoch": state.epoch,
                "count": state.count,
                "root": state.root.hex(),
            }
        return {
            "profile": self.spec.profile,
            "update_batches": self.update_batches,
            "blocks_resigned": self.blocks_resigned,
            "max_resigned_per_batch": self.max_resigned_per_batch,
            "audits_done": self.audits_done,
            "audits_ok": self.audits_ok,
            "audits_failed": self.audits_failed,
            "files": files,
        }


def _drill_rng(seed: int, domain: bytes) -> random.Random:
    digest = hashlib.sha256(
        b"repro-dynamic-drill-v1|" + domain + b"|" + str(int(seed)).encode())
    return random.Random(int.from_bytes(digest.digest()[:8], "big"))
