"""Scenario documents: YAML/JSON in, validated :class:`Scenario` out.

The loader is strict by design (validation-first, fail-fast — the
AsyncFlow input-contract discipline): unknown keys are rejected with
their document path, every field is type-coerced explicitly, and the
resulting :class:`~repro.scenarios.schema.Scenario` re-validates all
cross-references on construction.  YAML support uses PyYAML when the
interpreter has it (the standard toolchain does) and falls back to JSON
otherwise — ``.json`` scenarios always work.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.scenarios.schema import (
    ArrivalSpec,
    BatchSpec,
    BurnWindowSpec,
    CloudSpec,
    CohortSpec,
    DynamicSpec,
    EnvelopeSpec,
    FailoverSpec,
    FleetSpec,
    LinkParams,
    LinkSpec,
    ObjectiveSpec,
    RunSettings,
    Scenario,
    ScenarioError,
    SEMGroupSpec,
    SizeSpec,
    SLOSpec,
    TopologySpec,
    VerifierSpec,
    WorkloadSpec,
    make_fault,
)


def _check_keys(raw: dict, known: set[str], path: str) -> None:
    if not isinstance(raw, dict):
        raise ScenarioError(path, f"expected a mapping, got {type(raw).__name__}")
    unknown = set(raw) - known
    if unknown:
        raise ScenarioError(path, f"unknown keys {sorted(unknown)} "
                                  f"(known: {sorted(known)})")


def _opt_float(raw: dict, key: str, path: str):
    value = raw.get(key)
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ScenarioError(f"{path}.{key}", f"expected a number, got {value!r}") from None


def _opt_int(raw: dict, key: str, path: str):
    value = raw.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or int(value) != value:
        raise ScenarioError(f"{path}.{key}", f"expected an integer, got {value!r}")
    return int(value)


def _float(raw: dict, key: str, default: float, path: str) -> float:
    value = _opt_float(raw, key, path)
    return default if value is None else value


def _int(raw: dict, key: str, default: int, path: str) -> int:
    value = _opt_int(raw, key, path)
    return default if value is None else value


def _arrival(raw: dict, path: str) -> ArrivalSpec:
    _check_keys(raw, {"kind", "rate_rps", "per_user_rps", "burst_rate_rps",
                      "mean_burst_s", "mean_idle_s", "alpha", "peak_ratio",
                      "period_s", "phase", "concurrency", "think_time_s",
                      "requests_per_member"}, path)
    return ArrivalSpec(
        kind=str(raw.get("kind", "poisson")),
        rate_rps=_opt_float(raw, "rate_rps", path),
        per_user_rps=_opt_float(raw, "per_user_rps", path),
        burst_rate_rps=_opt_float(raw, "burst_rate_rps", path),
        mean_burst_s=_float(raw, "mean_burst_s", 0.5, path),
        mean_idle_s=_float(raw, "mean_idle_s", 2.0, path),
        alpha=_float(raw, "alpha", 1.5, path),
        peak_ratio=_float(raw, "peak_ratio", 2.0, path),
        period_s=_float(raw, "period_s", 10.0, path),
        phase=_float(raw, "phase", 0.0, path),
        concurrency=_int(raw, "concurrency", 1, path),
        think_time_s=_float(raw, "think_time_s", 0.0, path),
        requests_per_member=_int(raw, "requests_per_member", 1, path),
    )


def _sizes(raw: dict, path: str) -> SizeSpec:
    _check_keys(raw, {"kind", "bytes", "min_bytes", "max_bytes",
                      "median_bytes", "sigma", "alpha"}, path)
    return SizeSpec(
        kind=str(raw.get("kind", "fixed")),
        bytes=_int(raw, "bytes", 64, path),
        min_bytes=_int(raw, "min_bytes", 32, path),
        max_bytes=_int(raw, "max_bytes", 4096, path),
        median_bytes=_int(raw, "median_bytes", 128, path),
        sigma=_float(raw, "sigma", 0.5, path),
        alpha=_float(raw, "alpha", 1.8, path),
    )


def _cohort(raw: dict, path: str) -> CohortSpec:
    _check_keys(raw, {"name", "members", "target", "arrival", "file_sizes",
                      "max_requests", "upload_to"}, path)
    upload_to = raw.get("upload_to", [])
    if not isinstance(upload_to, (list, tuple)):
        raise ScenarioError(f"{path}.upload_to", "expected a list of cloud names")
    return CohortSpec(
        name=str(raw.get("name", "")),
        members=_int(raw, "members", 1, path),
        target=str(raw.get("target", "")),
        arrival=_arrival(raw.get("arrival", {}), f"{path}.arrival"),
        file_sizes=_sizes(raw.get("file_sizes", {}), f"{path}.file_sizes"),
        max_requests=_opt_int(raw, "max_requests", path),
        upload_to=tuple(str(c) for c in upload_to),
    )


def _dynamic(raw: dict, path: str) -> DynamicSpec:
    _check_keys(raw, {"profile", "target", "files", "initial_blocks",
                      "block_bytes", "batches", "ops_per_batch",
                      "update_period_s", "audit_every", "sample_size",
                      "hot_blocks"}, path)
    return DynamicSpec(
        profile=str(raw.get("profile", "")),
        target=str(raw.get("target", "")),
        files=_int(raw, "files", 2, path),
        initial_blocks=_int(raw, "initial_blocks", 8, path),
        block_bytes=_int(raw, "block_bytes", 16, path),
        batches=_int(raw, "batches", 6, path),
        ops_per_batch=_int(raw, "ops_per_batch", 4, path),
        update_period_s=_float(raw, "update_period_s", 0.25, path),
        audit_every=_int(raw, "audit_every", 2, path),
        sample_size=_opt_int(raw, "sample_size", path),
        hot_blocks=_int(raw, "hot_blocks", 2, path),
    )


def _link_params(raw: dict, path: str) -> LinkParams:
    _check_keys(raw, {"latency_s", "bandwidth_bps", "drop_rate"}, path)
    return LinkParams(
        latency_s=_float(raw, "latency_s", 0.005, path),
        bandwidth_bps=_opt_float(raw, "bandwidth_bps", path),
        drop_rate=_float(raw, "drop_rate", 0.0, path),
    )


def _fleet(raw: dict, path: str) -> FleetSpec:
    _check_keys(raw, {"servers", "parity", "spares", "files", "file_size",
                      "audit_period_s", "sample_size", "quarantine_threshold",
                      "quarantine_rounds", "auto_repair", "name_prefix"}, path)
    auto_repair = raw.get("auto_repair", True)
    if not isinstance(auto_repair, bool):
        raise ScenarioError(f"{path}.auto_repair", "expected a boolean")
    return FleetSpec(
        servers=_int(raw, "servers", 3, path),
        parity=_int(raw, "parity", 1, path),
        spares=_int(raw, "spares", 0, path),
        files=_int(raw, "files", 2, path),
        file_size=_int(raw, "file_size", 1024, path),
        audit_period_s=_float(raw, "audit_period_s", 0.2, path),
        sample_size=_opt_int(raw, "sample_size", path),
        quarantine_threshold=_int(raw, "quarantine_threshold", 1, path),
        quarantine_rounds=_int(raw, "quarantine_rounds", 2, path),
        auto_repair=auto_repair,
        name_prefix=str(raw.get("name_prefix", "fleet")),
    )


def _topology(raw: dict, path: str) -> TopologySpec:
    _check_keys(raw, {"sem_groups", "clouds", "verifiers", "links",
                      "default_link", "fleet"}, path)
    groups = []
    for i, entry in enumerate(raw.get("sem_groups", [])):
        gpath = f"{path}.sem_groups[{i}]"
        _check_keys(entry, {"name", "w", "t", "initial_crashed", "sem_link"}, gpath)
        groups.append(SEMGroupSpec(
            name=str(entry.get("name", "")),
            w=_int(entry, "w", 1, gpath),
            t=_int(entry, "t", 1, gpath),
            initial_crashed=_int(entry, "initial_crashed", 0, gpath),
            sem_link=_link_params(entry.get("sem_link", {}), f"{gpath}.sem_link"),
        ))
    clouds = []
    for i, entry in enumerate(raw.get("clouds", [])):
        cpath = f"{path}.clouds[{i}]"
        _check_keys(entry, {"name"}, cpath)
        clouds.append(CloudSpec(name=str(entry.get("name", ""))))
    verifiers = []
    for i, entry in enumerate(raw.get("verifiers", [])):
        vpath = f"{path}.verifiers[{i}]"
        _check_keys(entry, {"name", "audits", "period_s", "sample_size"}, vpath)
        verifiers.append(VerifierSpec(
            name=str(entry.get("name", "")),
            audits=str(entry.get("audits", "")),
            period_s=_float(entry, "period_s", 0.5, vpath),
            sample_size=_opt_int(entry, "sample_size", vpath),
        ))
    links = []
    for i, entry in enumerate(raw.get("links", [])):
        lpath = f"{path}.links[{i}]"
        _check_keys(entry, {"src", "dst", "latency_s", "bandwidth_bps",
                            "drop_rate"}, lpath)
        links.append(LinkSpec(
            src=str(entry.get("src", "")),
            dst=str(entry.get("dst", "")),
            params=_link_params(
                {k: v for k, v in entry.items() if k not in ("src", "dst")}, lpath
            ),
        ))
    fleet_raw = raw.get("fleet")
    return TopologySpec(
        sem_groups=tuple(groups),
        clouds=tuple(clouds),
        verifiers=tuple(verifiers),
        links=tuple(links),
        default_link=_link_params(raw.get("default_link", {}),
                                  f"{path}.default_link"),
        fleet=(_fleet(fleet_raw, f"{path}.fleet")
               if fleet_raw is not None else None),
    )


def _envelope(raw: dict, path: str) -> EnvelopeSpec:
    _check_keys(raw, {"max_p99_latency_s", "max_p50_latency_s", "max_drop_rate",
                      "max_failed", "min_completed", "max_exp_per_request",
                      "max_pair_per_request", "max_virtual_duration_s",
                      "max_unrecoverable_files", "min_repaired_slices",
                      "max_post_repair_audit_failures",
                      "max_repair_duration_s", "min_update_batches",
                      "max_resigned_blocks_per_batch",
                      "min_dynamic_audits"}, path)
    return EnvelopeSpec(
        max_p99_latency_s=_opt_float(raw, "max_p99_latency_s", path),
        max_p50_latency_s=_opt_float(raw, "max_p50_latency_s", path),
        max_drop_rate=_opt_float(raw, "max_drop_rate", path),
        max_failed=_opt_int(raw, "max_failed", path),
        min_completed=_opt_int(raw, "min_completed", path),
        max_exp_per_request=_opt_float(raw, "max_exp_per_request", path),
        max_pair_per_request=_opt_float(raw, "max_pair_per_request", path),
        max_virtual_duration_s=_opt_float(raw, "max_virtual_duration_s", path),
        max_unrecoverable_files=_opt_int(raw, "max_unrecoverable_files", path),
        min_repaired_slices=_opt_int(raw, "min_repaired_slices", path),
        max_post_repair_audit_failures=_opt_int(
            raw, "max_post_repair_audit_failures", path),
        max_repair_duration_s=_opt_float(raw, "max_repair_duration_s", path),
        min_update_batches=_opt_int(raw, "min_update_batches", path),
        max_resigned_blocks_per_batch=_opt_int(
            raw, "max_resigned_blocks_per_batch", path),
        min_dynamic_audits=_opt_int(raw, "min_dynamic_audits", path),
    )


def _settings(raw: dict, path: str) -> RunSettings:
    _check_keys(raw, {"duration_s", "seed", "param_set", "k", "max_requests",
                      "batch", "failover", "faults", "fault_seed",
                      "fault_plan_name", "envelope", "metrics"}, path)
    batch_raw = raw.get("batch", {})
    _check_keys(batch_raw, {"max_batch", "max_wait_s"}, f"{path}.batch")
    failover_raw = raw.get("failover", {})
    _check_keys(failover_raw, {"timeout_s", "round_deadline_s"}, f"{path}.failover")
    faults_raw = raw.get("faults", [])
    if not isinstance(faults_raw, list):
        raise ScenarioError(f"{path}.faults", "expected a list of fault objects")
    faults = tuple(
        make_fault(entry, f"{path}.faults[{i}]") for i, entry in enumerate(faults_raw)
    )
    metrics = raw.get("metrics", ["latency", "throughput", "ops"])
    if not isinstance(metrics, (list, tuple)):
        raise ScenarioError(f"{path}.metrics", "expected a list of metric groups")
    return RunSettings(
        duration_s=_float(raw, "duration_s", 1.0, path),
        seed=_int(raw, "seed", 0, path),
        param_set=str(raw.get("param_set", "toy-64")),
        k=_int(raw, "k", 4, path),
        max_requests=_int(raw, "max_requests", 1000, path),
        batch=BatchSpec(
            max_batch=_int(batch_raw, "max_batch", 16, f"{path}.batch"),
            max_wait_s=_float(batch_raw, "max_wait_s", 0.02, f"{path}.batch"),
        ),
        failover=FailoverSpec(
            timeout_s=_float(failover_raw, "timeout_s", 0.5, f"{path}.failover"),
            round_deadline_s=_opt_float(failover_raw, "round_deadline_s",
                                        f"{path}.failover"),
        ),
        faults=faults,
        fault_seed=_opt_int(raw, "fault_seed", path),
        fault_plan_name=str(raw.get("fault_plan_name", "")),
        envelope=_envelope(raw.get("envelope", {}), f"{path}.envelope"),
        metrics=tuple(str(m) for m in metrics),
    )


def _slo_objective(raw: dict, path: str) -> ObjectiveSpec:
    _check_keys(raw, {"name", "signal", "target", "threshold_s", "op",
                      "budget_per_request", "windows"}, path)
    windows_raw = raw.get("windows", [])
    if not isinstance(windows_raw, list):
        raise ScenarioError(f"{path}.windows", "expected a list of window pairs")
    windows = []
    for i, entry in enumerate(windows_raw):
        wpath = f"{path}.windows[{i}]"
        _check_keys(entry, {"long_s", "short_s", "burn_rate", "severity"}, wpath)
        windows.append(BurnWindowSpec(
            long_s=_float(entry, "long_s", 0.0, wpath),
            short_s=_float(entry, "short_s", 0.0, wpath),
            burn_rate=_float(entry, "burn_rate", 0.0, wpath),
            severity=str(entry.get("severity", "page")),
        ))
    return ObjectiveSpec(
        name=str(raw.get("name", "")),
        signal=str(raw.get("signal", "")),
        target=_float(raw, "target", 0.99, path),
        threshold_s=_opt_float(raw, "threshold_s", path),
        op=str(raw.get("op", "exp")),
        budget_per_request=_opt_float(raw, "budget_per_request", path),
        windows=tuple(windows),
    )


def _slos(raw: dict, path: str) -> SLOSpec:
    _check_keys(raw, {"objectives", "sample_interval_s", "epoch_s",
                      "expected_alerts"}, path)
    objectives_raw = raw.get("objectives", [])
    if not isinstance(objectives_raw, list):
        raise ScenarioError(f"{path}.objectives", "expected a list of objectives")
    expected = raw.get("expected_alerts", [])
    if not isinstance(expected, (list, tuple)):
        raise ScenarioError(f"{path}.expected_alerts",
                            "expected a list of alert names")
    return SLOSpec(
        objectives=tuple(
            _slo_objective(entry, f"{path}.objectives[{i}]")
            for i, entry in enumerate(objectives_raw)
        ),
        sample_interval_s=_opt_float(raw, "sample_interval_s", path),
        epoch_s=_opt_float(raw, "epoch_s", path),
        expected_alerts=tuple(str(e) for e in expected),
    )


def scenario_from_dict(raw: dict) -> Scenario:
    """Build and fully validate a scenario from a parsed document."""
    _check_keys(raw, {"name", "description", "workload", "topology",
                      "settings", "slos"}, "scenario")
    workload_raw = raw.get("workload", {})
    _check_keys(workload_raw, {"cohorts", "dynamic"}, "workload")
    cohorts_raw = workload_raw.get("cohorts", [])
    if not isinstance(cohorts_raw, list):
        raise ScenarioError("workload.cohorts", "expected a list of cohorts")
    dynamic_raw = workload_raw.get("dynamic")
    workload = WorkloadSpec(
        cohorts=tuple(
            _cohort(entry, f"workload.cohorts[{i}]")
            for i, entry in enumerate(cohorts_raw)
        ),
        dynamic=(None if dynamic_raw is None
                 else _dynamic(dynamic_raw, "workload.dynamic")),
    )
    slos_raw = raw.get("slos")
    return Scenario(
        name=str(raw.get("name", "")),
        description=str(raw.get("description", "")),
        workload=workload,
        topology=_topology(raw.get("topology", {}), "topology"),
        settings=_settings(raw.get("settings", {}), "settings"),
        slos=None if slos_raw is None else _slos(slos_raw, "slos"),
    )


def parse_scenario(text: str, source: str = "<string>") -> Scenario:
    """Parse a YAML or JSON scenario document from a string."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML ships with the toolchain
        yaml = None
    if yaml is not None:
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(source, f"not valid YAML: {exc}") from None
    else:
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                source, f"not valid JSON (and PyYAML is unavailable): {exc}"
            ) from None
    if not isinstance(raw, dict):
        raise ScenarioError(source, "document root must be a mapping")
    return scenario_from_dict(raw)


def load_scenario(path) -> Scenario:
    """Load and validate one scenario file (``.yaml``/``.yml``/``.json``)."""
    path = Path(path)
    if not path.exists():
        raise ScenarioError(str(path), "no such scenario file")
    return parse_scenario(path.read_text(), source=str(path))


def discover_scenarios(directory) -> list[Path]:
    """Scenario files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p for p in directory.iterdir()
        if p.suffix in (".yaml", ".yml", ".json") and p.is_file()
    )
