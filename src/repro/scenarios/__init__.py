"""Declarative scenario engine: one document fully describes a run.

A scenario is three independent, schema-validated components — a
**workload** model (cohorts of up to millions of members with arrival
processes and file-size distributions), a **topology** graph (SEM
groups, clouds, TPA verifiers, links), and **run settings** (duration,
seeds, fault plans, acceptance envelopes).  The loader fails fast with
the path to any offending field; the compiler maps the document onto the
deterministic simulator with hash-derived independent RNG streams; the
runner executes, judges the envelope, and emits a verdict report.

Entry points: ``repro-pdp scenario validate|run|list`` and
``repro-pdp serve-sim --scenario FILE``.
"""

from repro.scenarios.arrivals import (
    ArrivalProcess,
    DiurnalProcess,
    MMPPProcess,
    ParetoProcess,
    PoissonProcess,
    make_arrival_process,
)
from repro.scenarios.compile import CompiledScenario, compile_scenario
from repro.scenarios.legacy import scenario_from_legacy_args, warn_if_mixed
from repro.scenarios.loader import (
    discover_scenarios,
    load_scenario,
    parse_scenario,
    scenario_from_dict,
)
from repro.scenarios.population import Population, sample_size_bytes
from repro.scenarios.rng import derive_rng, derive_seed
from repro.scenarios.runner import (
    VERDICT_SCHEMA,
    EnvelopeViolation,
    ScenarioResult,
    ScenarioRunner,
    check_envelope,
    run_scenario,
)
from repro.scenarios.schema import (
    ArrivalSpec,
    BatchSpec,
    BurnWindowSpec,
    CloudSpec,
    CohortSpec,
    EnvelopeSpec,
    FailoverSpec,
    FleetSpec,
    LinkParams,
    LinkSpec,
    ObjectiveSpec,
    RunSettings,
    Scenario,
    ScenarioError,
    SEMGroupSpec,
    SizeSpec,
    SLOSpec,
    TopologySpec,
    VerifierSpec,
    WorkloadSpec,
)

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "BatchSpec",
    "BurnWindowSpec",
    "CloudSpec",
    "CohortSpec",
    "CompiledScenario",
    "DiurnalProcess",
    "EnvelopeSpec",
    "EnvelopeViolation",
    "FailoverSpec",
    "FleetSpec",
    "LinkParams",
    "LinkSpec",
    "MMPPProcess",
    "ObjectiveSpec",
    "ParetoProcess",
    "PoissonProcess",
    "Population",
    "RunSettings",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "SEMGroupSpec",
    "SizeSpec",
    "SLOSpec",
    "TopologySpec",
    "VERDICT_SCHEMA",
    "VerifierSpec",
    "WorkloadSpec",
    "check_envelope",
    "compile_scenario",
    "derive_rng",
    "derive_seed",
    "discover_scenarios",
    "load_scenario",
    "make_arrival_process",
    "parse_scenario",
    "run_scenario",
    "sample_size_bytes",
    "scenario_from_dict",
    "scenario_from_legacy_args",
    "warn_if_mixed",
]
