"""Run a scenario's ``topology.fleet`` as a deterministic durability drill.

The compiled node-graph path simulates the *signing* pipeline; a fleet
scenario instead exercises the *storage* pipeline: an erasure-coded
:class:`~repro.erasure.fleet.FleetStore` under periodic concurrent
audits, with the scenario's chaos faults killing (and restarting) whole
cloud servers mid-run.  The drill runs on the same discrete-event
simulator timer wheel, draws every random decision from seeded streams,
and records audits, quarantines, and repairs on the run ledger — so its
quarantine/repair timeline is bit-identical on a double run and every
repair verdict re-derives offline via ``repro-pdp ledger verify``.

Envelope checks the drill feeds (see
:class:`~repro.scenarios.schema.EnvelopeSpec`): ``max_unrecoverable_files``,
``min_repaired_slices``, ``max_post_repair_audit_failures``, and
``max_repair_duration_s`` (virtual seconds from the first server loss to
the last completed repair — detection latency included).

SLO objectives ride along through :class:`FleetSLO`, a storage-flavoured
:class:`~repro.scenarios.slo_wiring.SLOHarness`: a "request" is one
slice challenge, a "bad" outcome is an invalid proof or an unreachable
server, and the ``quarantine`` signal burns on exactly those outcomes —
so a ``parity + 1``-loss plan pages while a surviving plan stays quiet.
"""

from __future__ import annotations

from repro.erasure.fleet import FleetStore, build_demo_fleet
from repro.obs import NULL_OBS, Observability
from repro.obs.meter import _exp_total
from repro.obs.slo import (
    SLI_BAD,
    SLI_DROPPED,
    SLI_EXP,
    SLI_FINISHED,
    SLI_INVALID,
    SLI_MESSAGES,
    SLI_PAIR,
    SLI_REQUESTS,
    AlertEngine,
    LatencyTap,
    bind_sli_sources,
    compile_rules,
    error_budget_report,
)
from repro.obs.timeseries import TimeSeriesStore
from repro.scenarios.schema import Scenario
from repro.scenarios.slo_wiring import SAMPLES_PER_RUN, objectives_from_spec

__all__ = ["FleetDrill", "FleetSLO"]


class FleetSLO:
    """The SLO harness for a fleet drill: same engine, storage SLIs.

    Mirrors :class:`~repro.scenarios.slo_wiring.SLOHarness` (virtual-time
    sampler on the timer wheel, burn-rate alert engine, error-budget
    report, expected-alerts exactness) with the drill's signal sources.
    Per-group cost metering does not apply to a storage drill, so the
    metering plane stays empty.
    """

    def __init__(self, scenario: Scenario, drill: "FleetDrill", registry,
                 counter):
        spec = scenario.slos
        duration = scenario.settings.duration_s
        self.spec = spec
        self.objectives = objectives_from_spec(spec)
        sim = drill.sim
        bind_sli_sources(registry, {
            SLI_REQUESTS: lambda: drill.checks_issued,
            SLI_FINISHED: lambda: drill.checks_issued,
            SLI_BAD: lambda: drill.invalid_proofs + drill.timeouts,
            SLI_MESSAGES: lambda: drill.checks_issued,
            SLI_DROPPED: lambda: drill.timeouts,
            SLI_EXP: lambda: _exp_total(counter),
            SLI_PAIR: lambda: counter.pairings if counter else 0,
            SLI_INVALID: lambda: drill.invalid_proofs + drill.timeouts,
        })
        self.tap = LatencyTap(registry)
        self.store = TimeSeriesStore(registry, clock=lambda: sim.now)
        self.engine = AlertEngine(
            compile_rules(self.objectives, duration), self.store
        )
        self.store.on_sample = self.engine.evaluate
        interval = spec.sample_interval_s or duration / SAMPLES_PER_RUN
        self._attach_sampler(sim, interval, duration)
        self.duration = duration
        self.budget_rows: list[dict] = []
        self._finalized = False

    def _attach_sampler(self, sim, interval_s: float, horizon_s: float) -> None:
        store = self.store

        def fire():
            store.sample(sim.now)
            if sim.now < horizon_s and sim.pending_events():
                sim.schedule(interval_s, fire, daemon=True)

        store.sample(sim.now)  # t=0 baseline for partial-window math
        sim.schedule(interval_s, fire, daemon=True)

    def finalize(self, virtual_end: float) -> None:
        if self._finalized:
            return
        self._finalized = True
        self.store.sample(virtual_end)
        self.budget_rows = error_budget_report(
            self.objectives, self.store, self.duration, virtual_end
        )

    def expected_alerts(self) -> tuple[str, ...]:
        return self.spec.expected_alerts

    def check_expected(self, fired: list[str]) -> tuple[list[str], list[str]]:
        expected = set(self.spec.expected_alerts)
        unexpected = [
            f for f in fired
            if f not in expected and f.split(":")[0] not in expected
        ]
        missing = [
            e for e in sorted(expected)
            if not any(f == e or f.split(":")[0] == e for f in fired)
        ]
        return unexpected, missing


class FleetDrill:
    """One seeded fleet run: store files, audit on a period, self-repair.

    Owns a bare :class:`~repro.net.sim.Simulator` used purely as a
    deterministic timer wheel: audit ticks re-arm until the horizon, and
    every ``crash`` fault in the scenario's plan that targets a fleet
    server becomes an offline/online toggle at its ``at``/``until``
    times.  Everything else — challenges, proofs, quarantine, repair — is
    the :class:`~repro.erasure.fleet.FleetStore` acting at those instants.
    """

    def __init__(self, scenario: Scenario, obs=None, ledger=None, pool=None):
        from repro.net.simulator import Simulator
        from repro.pairing.interface import OperationCounter

        spec = scenario.topology.fleet
        if spec is None:
            raise ValueError("scenario has no topology.fleet")
        self.scenario = scenario
        self.spec = spec
        self.obs = obs if obs is not None else NULL_OBS
        if scenario.slos is not None and not self.obs.enabled:
            self.obs = Observability.create()
        self.ledger = ledger
        self.sim = Simulator()
        if ledger is not None:
            # Ledger timestamps advance with virtual time, like the
            # compiled path; entries are replayable, hash and all.
            ledger.clock = lambda: self.sim.now
        settings = scenario.settings
        self.fleet: FleetStore = build_demo_fleet(
            servers=spec.servers, parity=spec.parity, spares=spec.spares,
            seed=settings.seed, param_set=settings.param_set, k=settings.k,
            pool=pool, obs=self.obs if self.obs.enabled else None,
            ledger=ledger,
            quarantine_threshold=spec.quarantine_threshold,
            quarantine_rounds=spec.quarantine_rounds,
            server_names=spec.server_names(),
            genesis_extra={"scenario": scenario.name, "seed": settings.seed},
        )
        if self.obs.enabled:
            self.counter = self.obs.counter
        else:
            self.counter = OperationCounter()
            self.fleet.group.attach_counter(self.counter)
        # Running tallies the SLO signals and the result read directly.
        self.checks_issued = 0
        self.ok_proofs = 0
        self.invalid_proofs = 0
        self.timeouts = 0
        self.rounds = 0
        self.post_repair_audit_failures = 0
        self.fault_counts: dict[str, int] = {}
        self._loss_at: float | None = None
        self._repaired_at: float | None = None
        self.slo = (FleetSLO(scenario, self, self.obs.registry, self.counter)
                    if scenario.slos is not None else None)

    # -- drive ---------------------------------------------------------------
    def run(self) -> float:
        """Arm everything and drain the simulator; returns virtual end."""
        spec, settings = self.spec, self.scenario.settings
        rng = _payload_rng(settings.seed)
        for i in range(spec.files):
            self.fleet.store(rng.randbytes(spec.file_size),
                             f"fleet-file-{i:04d}".encode())
        self._install_faults()
        self._arm_audit_tick()
        virtual_end = self.sim.run()
        if self.slo is not None:
            self.slo.finalize(virtual_end)
        return virtual_end

    def _install_faults(self) -> None:
        server_names = set(self.spec.server_names())
        for fault in self.scenario.settings.faults:
            if fault.kind != "crash" or fault.node not in server_names:
                continue
            name = fault.node
            self.sim.schedule(fault.at, self._offline_action(name))
            if fault.until is not None:
                self.sim.schedule(fault.until, self._online_action(name))

    def _offline_action(self, name: str):
        def fire():
            self.fleet.set_online(name, False)
            self.fault_counts["crash"] = self.fault_counts.get("crash", 0) + 1
            if self._loss_at is None:
                self._loss_at = self.sim.now

        return fire

    def _online_action(self, name: str):
        def fire():
            self.fleet.set_online(name, True)
            self.fault_counts["restart"] = self.fault_counts.get("restart", 0) + 1

        return fire

    def _arm_audit_tick(self) -> None:
        spec = self.spec
        horizon = self.scenario.settings.duration_s
        sim = self.sim

        def tick():
            self.rounds += 1
            report = self.fleet.audit_round(sample_size=spec.sample_size)
            self.checks_issued += report.checks
            self.ok_proofs += report.checks - report.failures - report.timeouts
            self.invalid_proofs += report.failures
            self.timeouts += report.timeouts
            if spec.auto_repair and self.fleet.scoreboard.quarantined_names():
                repair = self.fleet.repair()
                self.post_repair_audit_failures += (
                    len(repair.completed) - repair.reaudits_passed
                )
                if repair.completed:
                    self._repaired_at = sim.now
            if sim.now + spec.audit_period_s <= horizon:
                sim.schedule(spec.audit_period_s, tick)

        sim.schedule(spec.audit_period_s, tick)

    # -- accounting ----------------------------------------------------------
    @property
    def repair_duration_s(self) -> float:
        """Virtual seconds from the first server loss to the last repair."""
        if self._loss_at is None or self._repaired_at is None:
            return 0.0
        return max(0.0, self._repaired_at - self._loss_at)

    def unrecoverable_files(self) -> int:
        return sum(
            0 if self.fleet.reconstructible(file_id) else 1
            for file_id in self.fleet.placements.files()
        )

    def summary(self) -> dict:
        """The ``fleet`` block of the scenario result (deterministic plane)."""
        status = self.fleet.status()
        status.update({
            "rounds": self.rounds,
            "checks_issued": self.checks_issued,
            "ok_proofs": self.ok_proofs,
            "invalid_proofs": self.invalid_proofs,
            "timeouts": self.timeouts,
            "unrecoverable_files": self.unrecoverable_files(),
            "repaired_slices": self.fleet.slices_repaired,
            "post_repair_audit_failures": self.post_repair_audit_failures,
            "repair_duration_s": round(self.repair_duration_s, 9),
        })
        return status


def _payload_rng(seed: int):
    import hashlib
    import random

    digest = hashlib.sha256(b"repro-fleet-payload-v1" + str(int(seed)).encode())
    return random.Random(int.from_bytes(digest.digest()[:8], "big"))
