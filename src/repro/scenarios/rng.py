"""Seed-stable, independent RNG streams for scenario components.

Every random decision in a compiled scenario — cohort arrival times,
file-size draws, per-link drop decisions, key generation — must come from
a stream that is (a) reproducible from the scenario seed alone and
(b) independent of every other stream.  Sharing one ``random.Random``
across components couples them: adding a cohort would shift every later
draw of every other cohort, so "the same scenario plus one cohort" would
perturb results that should be untouched.

The fix is hash-based derivation: each component's stream is seeded by
``SHA-256(root_seed / label / label / ...)``, a pure function of the root
seed and the component's *name* — never of construction order.  Two
compilations of the same scenario produce bit-identical streams, and
reordering or adding components never moves anyone else's seed.
"""

from __future__ import annotations

import hashlib
import random

_DERIVE_TAG = b"repro-scenario-rng-v1"


def derive_seed(root_seed: int, *path: str | int) -> int:
    """A 64-bit seed that is a pure function of ``(root_seed, *path)``.

    >>> derive_seed(1, "cohort", "alpha") == derive_seed(1, "cohort", "alpha")
    True
    >>> derive_seed(1, "cohort", "alpha") != derive_seed(1, "cohort", "beta")
    True
    >>> derive_seed(1, "cohort", "alpha") != derive_seed(2, "cohort", "alpha")
    True
    """
    h = hashlib.sha256(_DERIVE_TAG)
    h.update(str(int(root_seed)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(root_seed: int, *path: str | int) -> random.Random:
    """An independent ``random.Random`` for the component named by ``path``."""
    return random.Random(derive_seed(root_seed, *path))
