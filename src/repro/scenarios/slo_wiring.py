"""Wire a scenario's ``slos:`` component onto a compiled simulation.

The schema (:class:`repro.scenarios.schema.SLOSpec`) stays declarative;
this module is the compile-time bridge to the obs machinery: it binds
the SLI counters into the run's registry, arms the virtual-time sampler
(:class:`repro.obs.timeseries.TimeSeriesStore`) and the alert engine
(:class:`repro.obs.slo.AlertEngine`) on the simulator timer wheel, and
installs the per-scope :class:`repro.obs.meter.Meter` with its node →
billing-scope map and usage sources.

Everything is bound **only when the scenario declares SLOs**, so plain
runs keep their golden metric expositions and digests byte-identical.
"""

from __future__ import annotations

from repro.obs.meter import Meter, _exp_total
from repro.obs.slo import (
    SLI_BAD,
    SLI_DROPPED,
    SLI_EXP,
    SLI_FINISHED,
    SLI_INVALID,
    SLI_MESSAGES,
    SLI_PAIR,
    SLI_REQUESTS,
    AlertEngine,
    BurnRateWindow,
    LatencyTap,
    SLOObjective,
    bind_sli_sources,
    compile_rules,
    error_budget_report,
)
from repro.obs.timeseries import TimeSeriesStore
from repro.scenarios.schema import BurnWindowSpec, ObjectiveSpec, Scenario, SLOSpec

__all__ = ["SLOHarness", "default_slo_spec", "objectives_from_spec"]

#: Default sampler cadence: this many windows across the run duration.
SAMPLES_PER_RUN = 50
#: Default metering cadence: epochs per run duration.
EPOCHS_PER_RUN = 5


def objectives_from_spec(spec: SLOSpec) -> list[SLOObjective]:
    """Schema objectives → runtime objectives (windows carried through)."""
    out = []
    for o in spec.objectives:
        windows = tuple(
            BurnRateWindow(long_s=w.long_s, short_s=w.short_s,
                           burn_rate=w.burn_rate, severity=w.severity)
            for w in o.windows
        )
        out.append(SLOObjective(
            name=o.name, signal=o.signal, target=o.target,
            threshold_s=o.threshold_s, op=o.op,
            budget_per_request=o.budget_per_request, windows=windows,
        ))
    return out


def default_slo_spec() -> SLOSpec:
    """The stock objectives ``serve-sim --slo`` attaches to a legacy run.

    Legacy runs drain as fast as the protocol allows (their declared
    duration is only a horizon), so the sampler and metering cadences are
    pinned to the sub-second scale of the actual traffic instead of being
    derived from the horizon.
    """
    return SLOSpec(
        objectives=(
            ObjectiveSpec(name="availability", signal="availability",
                          target=0.95,
                          windows=(BurnWindowSpec(long_s=0.2, short_s=0.05,
                                                  burn_rate=4.0),)),
            ObjectiveSpec(name="drops", signal="drop_rate", target=0.75,
                          windows=(BurnWindowSpec(long_s=0.2, short_s=0.05,
                                                  burn_rate=4.0),)),
            ObjectiveSpec(name="latency-p90", signal="latency", target=0.90,
                          threshold_s=1.0,
                          windows=(BurnWindowSpec(long_s=0.2, short_s=0.05,
                                                  burn_rate=4.0),)),
        ),
        sample_interval_s=0.02,
        epoch_s=0.1,
    )


class SLOHarness:
    """Everything SLO-shaped for one run, armed on the timer wheel.

    Construction binds the SLI collectors, attaches the sampler + alert
    engine, and installs the meter; :meth:`finalize` runs the last
    evaluation at the end of virtual time, computes the error-budget
    rows, and closes the metering epoch (before the runner seals the
    ledger, so metering records precede the ``run_summary`` entry).
    """

    def __init__(self, scenario: Scenario, compiled, registry, ledger=None):
        spec = scenario.slos
        duration = scenario.settings.duration_s
        self.spec = spec
        self.objectives = objectives_from_spec(spec)
        sim = compiled.sim
        self._bind_slis(registry, compiled, scenario)
        self.store = TimeSeriesStore(registry, clock=lambda: sim.now)
        self.engine = AlertEngine(
            compile_rules(self.objectives, duration), self.store
        )
        self.store.on_sample = self.engine.evaluate
        interval = spec.sample_interval_s or duration / SAMPLES_PER_RUN
        self._attach_sampler(sim, interval, duration)
        self.meter = Meter(compiled.counter, self._scope_map(scenario, compiled),
                           ledger=ledger)
        self._add_usage_sources(scenario, compiled)
        self.meter.install(sim)
        epoch_s = spec.epoch_s or duration / EPOCHS_PER_RUN
        self._attach_meter(sim, epoch_s, duration)
        self.duration = duration
        self.budget_rows: list[dict] = []
        self._finalized = False

    # -- timer wiring --------------------------------------------------------
    def _attach_sampler(self, sim, interval_s: float, horizon_s: float) -> None:
        """Like :meth:`TimeSeriesStore.attach`, but daemon + horizon-bounded.

        Daemon timers don't count as pending events, so the sampler, the
        metering epoch timer, and the dashboard can all re-arm themselves
        without keeping each other (and the run) alive forever; the
        horizon bound additionally stops sampling past the scenario's
        declared duration.
        """
        store = self.store

        def fire():
            store.sample(sim.now)
            if sim.now < horizon_s and sim.pending_events():
                sim.schedule(interval_s, fire, daemon=True)

        store.clock = lambda: sim.now
        store.sample(sim.now)  # t=0 baseline for partial-window math
        sim.schedule(interval_s, fire, daemon=True)

    def _attach_meter(self, sim, epoch_s: float, horizon_s: float) -> None:
        meter = self.meter

        def fire():
            meter.roll(sim.now)
            if sim.now < horizon_s and sim.pending_events():
                sim.schedule(epoch_s, fire, daemon=True)

        sim.schedule(epoch_s, fire, daemon=True)

    # -- SLI binding ---------------------------------------------------------
    def _request_sources(self, scenario: Scenario, compiled):
        if scenario.legacy:
            clients = compiled.legacy_clients
            issued = lambda: compiled.legacy_expected
            completed = lambda: sum(len(c.completed) for c in clients)
            failed = lambda: sum(len(c.failed) for c in clients)
        else:
            cohorts = list(compiled.cohorts.values())
            issued = lambda: sum(c.issued for c in cohorts)
            completed = lambda: sum(len(c.completed) for c in cohorts)
            failed = lambda: sum(len(c.failed) for c in cohorts)
        return issued, completed, failed

    def _bind_slis(self, registry, compiled, scenario: Scenario) -> None:
        sim = compiled.sim
        counter = compiled.counter
        services = list(compiled.services.values())
        issued, completed, failed = self._request_sources(scenario, compiled)
        bind_sli_sources(registry, {
            SLI_REQUESTS: issued,
            SLI_FINISHED: lambda: completed() + failed(),
            SLI_BAD: failed,
            SLI_MESSAGES: lambda: sim.delivered + sim.dropped,
            SLI_DROPPED: lambda: sim.dropped,
            SLI_EXP: lambda: _exp_total(counter),
            SLI_PAIR: lambda: counter.pairings,
            SLI_INVALID: lambda: sum(
                s.health.summary()["invalid_total"] for s in services
            ),
        })
        self.tap = LatencyTap(registry)
        sources = (compiled.legacy_clients if scenario.legacy
                   else compiled.cohorts.values())
        for node in sources:
            self.tap.add_source(node.latencies)

    # -- metering scopes -----------------------------------------------------
    def _scope_map(self, scenario: Scenario, compiled) -> dict[str, str]:
        scope: dict[str, str] = {}
        if scenario.legacy:
            group = scenario.topology.sem_groups[0]
            cohort = scenario.workload.cohorts[0]
            for service in compiled.services.values():
                scope[service.name] = f"group:{group.name}"
                for endpoint in service.endpoints:
                    scope[endpoint.name] = f"group:{group.name}"
            for client in compiled.legacy_clients:
                scope[client.name] = f"cohort:{cohort.name}"
            return scope
        for spec in scenario.topology.sem_groups:
            scope[f"svc-{spec.name}"] = f"group:{spec.name}"
            for j in range(spec.w):
                scope[f"sem-{spec.name}-{j}"] = f"group:{spec.name}"
        for cohort in scenario.workload.cohorts:
            scope[f"c-{cohort.name}"] = f"cohort:{cohort.name}"
        for cloud in scenario.topology.clouds:
            scope[cloud.name] = f"cloud:{cloud.name}"
        for verifier in scenario.topology.verifiers:
            scope[verifier.name] = f"verifier:{verifier.name}"
        return scope

    def _add_usage_sources(self, scenario: Scenario, compiled) -> None:
        sim = compiled.sim
        scope_of = self.meter.scope_of

        def bytes_sent_by(scope: str):
            return sum(
                ch.stats.bytes_total
                for (src, _dst), ch in sim._channels.items()
                if scope_of.get(src) == scope
            )

        def group_source(scope, service):
            return lambda: {
                "requests": service.metrics.submitted,
                "signatures": service.metrics.signatures_produced,
                "bytes": bytes_sent_by(scope),
            }

        def cohort_source(scope, issued, completed):
            return lambda: {
                "requests": issued(),
                "signatures": completed(),
                "bytes": bytes_sent_by(scope),
            }

        if scenario.legacy:
            group = scenario.topology.sem_groups[0]
            cohort = scenario.workload.cohorts[0]
            for service in compiled.services.values():
                scope = f"group:{group.name}"
                self.meter.add_source(scope, group_source(scope, service))
            clients = compiled.legacy_clients
            scope = f"cohort:{cohort.name}"
            self.meter.add_source(scope, cohort_source(
                scope,
                lambda: compiled.legacy_expected,
                lambda: sum(len(c.completed) for c in clients),
            ))
            return
        for gname, service in compiled.services.items():
            scope = f"group:{gname}"
            self.meter.add_source(scope, group_source(scope, service))
        for cname, node in compiled.cohorts.items():
            scope = f"cohort:{cname}"
            self.meter.add_source(scope, cohort_source(
                scope,
                (lambda n: lambda: n.issued)(node),
                (lambda n: lambda: len(n.completed))(node),
            ))
        for vname, node in compiled.verifiers.items():
            scope = f"verifier:{vname}"
            self.meter.add_source(scope, (lambda s, n: lambda: {
                "requests": n.audits_passed + n.audits_failed,
                "signatures": 0,
                "bytes": bytes_sent_by(s),
            })(scope, node))
        for clname, node in compiled.clouds.items():
            scope = f"cloud:{clname}"
            self.meter.add_source(scope, (lambda s, n: lambda: {
                "requests": n.server.stored_files,
                "signatures": 0,
                "bytes": bytes_sent_by(s),
            })(scope, node))

    # -- end of run ----------------------------------------------------------
    def finalize(self, virtual_end: float) -> None:
        if self._finalized:
            return
        self._finalized = True
        self.store.sample(virtual_end)  # closes the last window + evaluates
        self.budget_rows = error_budget_report(
            self.objectives, self.store, self.duration, virtual_end
        )
        self.meter.close(virtual_end)

    # -- expectations --------------------------------------------------------
    def expected_alerts(self) -> tuple[str, ...]:
        return self.spec.expected_alerts

    def check_expected(self, fired: list[str]) -> tuple[list[str], list[str]]:
        """(unexpected, missing) against the declared expectations.

        An expectation ``"obj"`` covers any severity of that objective;
        ``"obj:severity"`` is exact.  Exactness cuts both ways: every
        fired alert must be expected and every expectation must fire.
        """
        expected = set(self.spec.expected_alerts)
        unexpected = [
            f for f in fired
            if f not in expected and f.split(":")[0] not in expected
        ]
        missing = [
            e for e in sorted(expected)
            if not any(f == e or f.split(":")[0] == e for f in fired)
        ]
        return unexpected, missing
