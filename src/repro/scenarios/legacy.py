"""The deprecation shim: legacy ``serve-sim`` flags as a scenario.

``repro-pdp serve-sim`` predates the scenario engine; its flag set
(``--clients/--requests/--threshold/--crash/...``) describes exactly one
shape of run — a single SEM group, one batch-arrival cohort, everything
issued at t = 0.  :func:`scenario_from_legacy_args` synthesizes that
in-memory :class:`~repro.scenarios.schema.Scenario` (marked ``legacy``)
so both the flag path and ``--scenario FILE`` flow through one
:class:`~repro.scenarios.runner.ScenarioRunner`, and the flag path keeps
its historical byte-for-byte behaviour via the dedicated legacy compiler.
"""

from __future__ import annotations

import warnings

from repro.scenarios.schema import (
    ArrivalSpec,
    BatchSpec,
    CohortSpec,
    FailoverSpec,
    LinkParams,
    RunSettings,
    Scenario,
    SEMGroupSpec,
    SizeSpec,
    TopologySpec,
    WorkloadSpec,
)

#: serve-sim flags subsumed by the scenario document, with their argparse
#: defaults — used to detect (and warn about) mixing them with --scenario.
LEGACY_FLAG_DEFAULTS = {
    "param_set": "toy-64",
    "k": 4,
    "threshold": None,
    "clients": 2,
    "requests": 2,
    "file_bytes": 64,
    "max_batch": 16,
    "max_wait": 0.02,
    "timeout": 0.5,
    "latency": 0.005,
    "drop_rate": 0.0,
    "crash": 0,
    "seed": 0,
    "round_deadline": None,
}

_warned_mixed = False


def warn_if_mixed(args) -> list[str]:
    """Warn (once per process) when legacy flags accompany ``--scenario``.

    Returns the non-default flag names, so callers can test the detection
    without capturing warnings.
    """
    global _warned_mixed
    overridden = [
        flag for flag, default in LEGACY_FLAG_DEFAULTS.items()
        if getattr(args, flag, default) != default
    ]
    if overridden and not _warned_mixed:
        _warned_mixed = True
        warnings.warn(
            "serve-sim: legacy flags ("
            + ", ".join("--" + f.replace("_", "-") for f in sorted(overridden))
            + ") are ignored when --scenario is given; move them into the "
            "scenario document",
            DeprecationWarning,
            stacklevel=3,
        )
    return overridden


def scenario_from_legacy_args(args) -> Scenario:
    """The legacy flag set as a validated in-memory scenario document."""
    threshold = args.threshold if args.threshold and args.threshold > 1 else None
    t = threshold or 1
    w = 1 if threshold is None else 2 * threshold - 1
    link = LinkParams(latency_s=args.latency, drop_rate=args.drop_rate)
    return Scenario(
        name="serve-sim-legacy",
        description="synthesized from legacy serve-sim flags",
        workload=WorkloadSpec(cohorts=(
            CohortSpec(
                name="clients",
                members=args.clients,
                target="main",
                arrival=ArrivalSpec(kind="batch",
                                    requests_per_member=args.requests),
                file_sizes=SizeSpec(kind="fixed", bytes=args.file_bytes,
                                    max_bytes=args.file_bytes),
            ),
        )),
        topology=TopologySpec(
            sem_groups=(
                SEMGroupSpec(name="main", w=w, t=t,
                             initial_crashed=args.crash, sem_link=link),
            ),
            default_link=link,
        ),
        settings=RunSettings(
            duration_s=3600.0,  # legacy runs drain the queue, not a clock
            seed=args.seed,
            param_set=args.param_set,
            k=args.k,
            max_requests=max(1, args.clients * args.requests),
            batch=BatchSpec(max_batch=args.max_batch, max_wait_s=args.max_wait),
            failover=FailoverSpec(timeout_s=args.timeout,
                                  round_deadline_s=args.round_deadline),
        ),
        legacy=True,
    )
