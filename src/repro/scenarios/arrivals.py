"""Seeded arrival-time processes for scenario cohorts.

Each process is an interarrival-time generator driven by one dedicated
``random.Random`` (derived per cohort by :mod:`repro.scenarios.rng`), so
a cohort's arrival stream is a pure function of the scenario seed and the
cohort's name.  All four open-loop kinds produce the same long-run mean
rate for the same ``rate`` parameter; they differ in *shape*:

* :class:`PoissonProcess` — memoryless, CV(interarrival) = 1;
* :class:`MMPPProcess` — 2-state Markov-modulated Poisson: overdispersed
  (CV > 1), the classic bursty-traffic model;
* :class:`ParetoProcess` — heavy-tailed interarrivals with tail index
  ``alpha`` (finite mean requires alpha > 1), scaled to the mean rate;
* :class:`DiurnalProcess` — nonhomogeneous Poisson with a sinusoidal
  rate profile (period = the scenario's compressed "day"), sampled by
  thinning against the peak rate.

Closed-loop and batch arrivals have no interarrival process — the cohort
driver issues them from response events / at t = 0 directly.
"""

from __future__ import annotations

import math
import random

from repro.scenarios.schema import ArrivalSpec, ScenarioError


class ArrivalProcess:
    """Interface: successive interarrival gaps in virtual seconds."""

    def next_interarrival(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    def __init__(self, rate_rps: float, rng: random.Random):
        self.rate = rate_rps
        self.rng = rng

    def next_interarrival(self) -> float:
        return self.rng.expovariate(self.rate)


class MMPPProcess(ArrivalProcess):
    """2-state MMPP: exponential sojourns in an idle state emitting at the
    base rate and a burst state emitting at ``burst_rate``."""

    def __init__(self, base_rate: float, burst_rate: float,
                 mean_burst_s: float, mean_idle_s: float, rng: random.Random):
        self.rates = (base_rate, burst_rate)      # state 0 = idle, 1 = burst
        self.mean_sojourn = (mean_idle_s, mean_burst_s)
        self.rng = rng
        self.state = 0
        self._sojourn_left = rng.expovariate(1.0 / self.mean_sojourn[0])

    def next_interarrival(self) -> float:
        gap = 0.0
        while True:
            candidate = self.rng.expovariate(self.rates[self.state])
            if candidate <= self._sojourn_left:
                self._sojourn_left -= candidate
                return gap + candidate
            # The state flips before the candidate arrival: advance to the
            # flip, discard the candidate (memorylessness makes this exact),
            # and continue sampling under the new state's rate.
            gap += self._sojourn_left
            self.state = 1 - self.state
            self._sojourn_left = self.rng.expovariate(1.0 / self.mean_sojourn[self.state])


class ParetoProcess(ArrivalProcess):
    """Pareto(Lomax-free) interarrivals: ``x_m * U^(-1/alpha)`` scaled so
    the mean gap is ``1/rate`` (x_m = (alpha-1)/(alpha*rate))."""

    def __init__(self, rate_rps: float, alpha: float, rng: random.Random):
        if alpha <= 1.0:
            raise ScenarioError("arrivals.pareto", "alpha must exceed 1")
        self.alpha = alpha
        self.x_m = (alpha - 1.0) / (alpha * rate_rps)
        self.rng = rng

    def next_interarrival(self) -> float:
        u = 1.0 - self.rng.random()               # U in (0, 1]
        return self.x_m * u ** (-1.0 / self.alpha)


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal-rate Poisson via thinning (Lewis–Shedler).

    rate(t) = mean * (1 + (peak_ratio - 1) * (1 + sin(2*pi*(t/period + phase)))/2)
    normalized so the long-run mean is ``mean_rate`` and the instantaneous
    peak is ``peak_ratio`` x the trough-to-peak midpoint.
    """

    def __init__(self, mean_rate: float, peak_ratio: float, period_s: float,
                 phase: float, rng: random.Random):
        self.mean = mean_rate
        # Modulation depth in [0, 1): rate swings mean*(1 ± depth).
        self.depth = (peak_ratio - 1.0) / (peak_ratio + 1.0)
        self.period = period_s
        self.phase = phase
        self.rng = rng
        self.t = 0.0
        self.peak = mean_rate * (1.0 + self.depth)

    def rate_at(self, t: float) -> float:
        cycle = math.sin(2.0 * math.pi * (t / self.period + self.phase))
        return self.mean * (1.0 + self.depth * cycle)

    def next_interarrival(self) -> float:
        start = self.t
        while True:
            self.t += self.rng.expovariate(self.peak)
            if self.rng.random() * self.peak <= self.rate_at(self.t):
                return self.t - start


def make_arrival_process(spec: ArrivalSpec, members: int,
                         rng: random.Random) -> ArrivalProcess:
    """Build the open-loop process for one cohort's validated spec."""
    rate = spec.effective_rate(members)
    if spec.kind == "poisson":
        return PoissonProcess(rate, rng)
    if spec.kind == "mmpp":
        return MMPPProcess(rate, spec.burst_rate_rps, spec.mean_burst_s,
                           spec.mean_idle_s, rng)
    if spec.kind == "pareto":
        return ParetoProcess(rate, spec.alpha, rng)
    if spec.kind == "diurnal":
        return DiurnalProcess(rate, spec.peak_ratio, spec.period_s,
                              spec.phase, rng)
    raise ScenarioError("arrivals", f"{spec.kind!r} has no interarrival process")
