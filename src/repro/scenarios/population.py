"""User-population models: who issues each request and how big it is.

A cohort of N members (N may be millions) is simulated as *one* driver
node plus a population sampler: each arrival is attributed to a member id
drawn from the population and a file size drawn from the cohort's size
distribution.  Simulation cost therefore scales with the request budget,
never with the population size — a 1M-member cohort issuing 300 requests
costs the same as a 10-member cohort issuing 300 requests, while keeping
honest per-member statistics (distinct members touched, requests per
member).
"""

from __future__ import annotations

import math
import random

from repro.scenarios.schema import CohortSpec, SizeSpec


def sample_size_bytes(spec: SizeSpec, rng: random.Random) -> int:
    """One file size in bytes, clamped to [1, spec.max_bytes]."""
    if spec.kind == "fixed":
        raw = spec.bytes
    elif spec.kind == "uniform":
        raw = rng.randint(spec.min_bytes, spec.max_bytes)
    elif spec.kind == "lognormal":
        raw = rng.lognormvariate(math.log(spec.median_bytes), spec.sigma)
    elif spec.kind == "pareto":
        u = 1.0 - rng.random()
        raw = spec.min_bytes * u ** (-1.0 / spec.alpha)
    else:  # pragma: no cover - schema validation rejects unknown kinds
        raise ValueError(f"unknown size kind {spec.kind!r}")
    return max(1, min(int(raw), spec.max_bytes))


class Population:
    """Member attribution and per-cohort workload statistics."""

    def __init__(self, cohort: CohortSpec, rng: random.Random):
        self.cohort = cohort
        self.rng = rng
        self.requests = 0
        self.bytes_total = 0
        self._distinct: set[int] = set()

    def next_request(self) -> tuple[int, int]:
        """(member_id, file_size_bytes) for the next arrival."""
        member = self.rng.randrange(self.cohort.members)
        size = sample_size_bytes(self.cohort.file_sizes, self.rng)
        self.requests += 1
        self.bytes_total += size
        self._distinct.add(member)
        return member, size

    @property
    def distinct_members(self) -> int:
        return len(self._distinct)

    def stats(self) -> dict:
        return {
            "members": self.cohort.members,
            "requests": self.requests,
            "distinct_members": self.distinct_members,
            "bytes_total": self.bytes_total,
        }
