"""Compile a validated scenario onto the discrete-event simulator.

The compiler is the bridge between the declarative contract
(:mod:`repro.scenarios.schema`) and the existing runtime: SEM groups
become :class:`~repro.service.simnodes.SEMServiceNode` deployments,
cohorts become driver nodes feeding requests through their arrival
process, clouds/verifiers become storage + TPA nodes, links become
per-direction :class:`~repro.net.channel.Channel` instances, and fault
plans install through :mod:`repro.net.faults` unchanged.

Every random stream is derived by name from the scenario seed
(:mod:`repro.scenarios.rng`): per-cohort arrival/population/payload
streams, per-directed-link channel streams, per-group key material.  No
``random.Random`` instance is ever shared between two components, so
adding or reordering components cannot perturb the others — the property
the determinism tests pin down.

Request ids are run-local (a fresh counter per compilation) rather than
process-global, so two runs of one scenario in the same process produce
bit-identical traffic — including message byte sizes.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.core.blocks import encode_data
from repro.core.cloud import CloudServer
from repro.core.owner import SignedFile
from repro.core.params import setup
from repro.core.verifier import PublicVerifier
from repro.crypto.threshold import distribute_key
from repro.net.actors import CloudNode, SEMNode
from repro.net.channel import Channel
from repro.net.faults import FaultPlan
from repro.net.message import Message
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.pairing import TYPE_A_PARAM_SETS, TypeAPairingGroup
from repro.pairing.interface import OperationCounter
from repro.scenarios.arrivals import make_arrival_process
from repro.scenarios.population import Population
from repro.scenarios.rng import derive_rng, derive_seed
from repro.scenarios.schema import CohortSpec, LinkParams, Scenario
from repro.service.api import SignRequest, SignResponse
from repro.service.batcher import BatchConfig
from repro.service.failover import FailoverConfig, SEMEndpoint
from repro.service.simnodes import SEMServiceNode


class RequestBudget:
    """The global cap on issued requests, shared by every cohort driver."""

    def __init__(self, limit: int):
        self.limit = limit
        self.issued = 0

    def take(self) -> bool:
        if self.issued >= self.limit:
            return False
        self.issued += 1
        return True


class CohortNode(Node):
    """One cohort's driver: its members' requests, aggregated.

    Open-loop kinds schedule the next arrival from the interarrival
    process; ``closed`` keeps ``concurrency`` requests in flight with a
    think-time gap; ``batch`` issues everything at t = 0.  Arrivals stop
    at the scenario horizon or when a budget (global or per-cohort) runs
    out — the simulator then drains naturally.
    """

    def __init__(
        self,
        cohort: CohortSpec,
        params,
        service_name: str,
        seed: int,
        horizon_s: float,
        budget: RequestBudget,
        request_ids,
        clouds: list[str] | None = None,
    ):
        super().__init__(f"c-{cohort.name}")
        self.cohort = cohort
        self.params = params
        self.service_name = service_name
        self.horizon_s = horizon_s
        self.budget = budget
        self._ids = request_ids
        self.clouds = list(clouds or cohort.upload_to)
        self._stripe = 0
        self.population = Population(cohort, derive_rng(seed, "population", cohort.name))
        self._payload_rng = derive_rng(seed, "payload", cohort.name)
        self._arrival_rng = derive_rng(seed, "arrival", cohort.name)
        self.process = None
        if cohort.arrival.kind not in ("closed", "batch"):
            self.process = make_arrival_process(
                cohort.arrival, cohort.members, self._arrival_rng
            )
        self.issued = 0
        self.completed: list[int] = []
        self.failed: list[int] = []
        self.latencies: list[float] = []
        self.exemplars: list[tuple[float, int]] = []  # (latency, trace id)
        self.uploads_acked = 0
        self._sent_at: dict[int, float] = {}
        self._pending_blocks: dict[int, tuple] = {}
        self._seq = 0
        self.on("svc_sign_response", self._handle_response)
        self.on("upload_ack", self._handle_upload_ack)

    # -- arrivals ------------------------------------------------------------
    def start(self) -> list[Message]:
        """Arm the arrival schedule; returns any t = 0 messages to send."""
        kind = self.cohort.arrival.kind
        if kind == "batch":
            out = []
            for _ in range(self.cohort.members * self.cohort.arrival.requests_per_member):
                message = self._next_request()
                if message is None:
                    break
                out.append(message)
            return out
        if kind == "closed":
            for slot in range(self.cohort.arrival.concurrency):
                self.sim.schedule(self._think_gap(initial=True), self._fire)
            return []
        self.sim.schedule(self.process.next_interarrival(), self._fire)
        return []

    def _think_gap(self, initial: bool = False) -> float:
        think = self.cohort.arrival.think_time_s
        if think <= 0:
            return 0.0
        if initial:
            # Stagger the closed-loop slots so they don't arrive in lockstep.
            return self._arrival_rng.uniform(0.0, think)
        return self._arrival_rng.expovariate(1.0 / think)

    def _fire(self):
        if self.crashed or self.sim.now > self.horizon_s:
            return None
        message = self._next_request()
        if message is None:
            return None
        if self.process is not None:  # open loop: arm the next arrival
            self.sim.schedule(self.process.next_interarrival(), self._fire)
        return message

    def _exhausted(self) -> bool:
        cap = self.cohort.max_requests
        return cap is not None and self.issued >= cap

    def _next_request(self) -> Message | None:
        if self._exhausted() or not self.budget.take():
            return None
        member, size = self.population.next_request()
        data = self._payload_rng.randbytes(size)
        file_id = f"{self.cohort.name}/{self._seq}-m{member}".encode()
        self._seq += 1
        blocks = tuple(encode_data(data, self.params, file_id))
        request = SignRequest(
            request_id=next(self._ids),
            owner=self.name,
            blocks=blocks,
            submitted_at=self.sim.now if self.sim else 0.0,
        )
        self.issued += 1
        self._sent_at[request.request_id] = self.sim.now if self.sim else 0.0
        if self.clouds:
            self._pending_blocks[request.request_id] = (file_id, blocks)
        message = self.make_message(self.service_name, "svc_sign_request", request)
        if self.sim is not None:
            # Root a fresh causal tree per request: closed-loop requests
            # fire from inside the previous response's handler, and the
            # ambient context would chain them into one ever-deeper trace.
            self.sim.start_trace(message)
        return message

    # -- responses -----------------------------------------------------------
    def _handle_response(self, message: Message):
        response: SignResponse = message.payload
        sent = self._sent_at.pop(response.request_id, None)
        if sent is not None:
            self.latencies.append(self.sim.now - sent)
            if message.trace is not None:
                self.exemplars.append((self.sim.now - sent, message.trace.trace_id))
        out = []
        if response.ok:
            self.completed.append(response.request_id)
            pending = self._pending_blocks.pop(response.request_id, None)
            if pending is not None:
                file_id, blocks = pending
                signed = SignedFile(
                    file_id=file_id, blocks=blocks, signatures=response.signatures
                )
                cloud = self.clouds[self._stripe % len(self.clouds)]
                self._stripe += 1
                out.append(self.make_message(cloud, "upload", signed))
        else:
            self.failed.append(response.request_id)
            self._pending_blocks.pop(response.request_id, None)
        if self.cohort.arrival.kind == "closed" and self.sim.now <= self.horizon_s:
            self.sim.schedule(self._think_gap(), self._fire)
        return out or None

    def _handle_upload_ack(self, message: Message):
        self.uploads_acked += 1
        return None

    def stats(self) -> dict:
        return {
            **self.population.stats(),
            "issued": self.issued,
            "completed": len(self.completed),
            "failed": len(self.failed),
            "uploads_acked": self.uploads_acked,
        }


class ScenarioCloudNode(CloudNode):
    """A cloud store that registers new files with its TPA watchers."""

    def __init__(self, name: str, server: CloudServer):
        super().__init__(name, server)
        self.watchers: list[TPANode] = []

    def _handle_upload(self, message: Message):
        reply = super()._handle_upload(message)
        signed: SignedFile = message.payload
        for watcher in self.watchers:
            watcher.watch(signed.file_id, len(signed.blocks))
        return reply


class TPANode(Node):
    """A third-party auditor re-challenging its cloud on a period.

    Ticks stop at the scenario horizon so the event queue drains; verdicts
    accumulate as pass/fail counts per file.
    """

    def __init__(self, name: str, verifier: PublicVerifier, cloud_name: str,
                 period_s: float, sample_size: int | None, horizon_s: float,
                 ledger=None):
        super().__init__(name)
        self.verifier = verifier
        self.cloud_name = cloud_name
        self.period_s = period_s
        self.sample_size = sample_size
        self.horizon_s = horizon_s
        self.ledger = ledger
        self.watched: dict[bytes, int] = {}
        self.audits_passed = 0
        self.audits_failed = 0
        self.on("proof", self._handle_proof)

    def start(self) -> None:
        self.sim.schedule(self.period_s, self._tick)

    def watch(self, file_id: bytes, n_blocks: int) -> None:
        self.watched[file_id] = n_blocks

    def _tick(self):
        if self.crashed or self.sim.now > self.horizon_s:
            return None
        self.sim.schedule(self.period_s, self._tick)
        out = []
        for file_id, n_blocks in self.watched.items():
            challenge = self.verifier.generate_challenge(
                file_id, n_blocks, sample_size=self.sample_size
            )
            if self.ledger is not None:
                self.ledger.append("challenge", {
                    "verifier": self.name,
                    "file": file_id.hex(),
                    "blocks": len(challenge.indices),
                    "indices": [int(i) for i in challenge.indices],
                })
            out.append(
                self.make_message(self.cloud_name, "challenge", (file_id, challenge))
            )
        return out or None

    def _handle_proof(self, message: Message):
        file_id, challenge, response = message.payload
        counter = getattr(self.verifier.group, "counter", None)
        before = (counter.snapshot()
                  if self.ledger is not None and counter is not None else None)
        ok = self.verifier.verify(challenge, response)
        if ok:
            self.audits_passed += 1
        else:
            self.audits_failed += 1
        if self.ledger is not None:
            # The full challenge + proof go on the chain so `ledger verify`
            # can re-evaluate Eq. 6 offline (block ids re-derive from the
            # file id and indices; the pk comes from the verifier_key entry).
            body = {
                "verifier": self.name,
                "file": file_id.hex(),
                "indices": [int(i) for i in challenge.indices],
                "betas": [int(b) for b in challenge.betas],
                "sigma": response.sigma.to_bytes().hex(),
                "alphas": [int(a) for a in response.alphas],
                "ok": ok,
            }
            if before is not None:
                from repro.obs.exporters import model_equivalent_exp

                after = counter.snapshot()
                delta = {k: after.get(k, 0) - before.get(k, 0)
                         for k in set(after) | set(before)}
                body["exp"] = model_equivalent_exp(delta)
                body["pair"] = delta.get("pairings", 0)
            self.ledger.append("audit", body)
        return None


@dataclass
class CompiledScenario:
    """Everything a runner needs to execute and account for one scenario."""

    scenario: Scenario
    sim: Simulator
    params: object
    counter: OperationCounter
    services: dict[str, SEMServiceNode] = field(default_factory=dict)
    cohorts: dict[str, CohortNode] = field(default_factory=dict)
    clouds: dict[str, ScenarioCloudNode] = field(default_factory=dict)
    verifiers: dict[str, TPANode] = field(default_factory=dict)
    budget: RequestBudget | None = None
    injector: object = None
    # Legacy compatibility handles (serve-sim flag shim):
    legacy_clients: list = field(default_factory=list)
    legacy_rng: random.Random | None = None
    legacy_expected: int = 0
    legacy_replayed: int = 0

    def start_workload(self) -> None:
        """Arm cohort arrival schedules and TPA audit ticks."""
        for cohort in self.cohorts.values():
            for message in cohort.start():
                self.sim.send(message)
        for tpa in self.verifiers.values():
            tpa.start()

    def assert_independent_streams(self) -> None:
        """Every compiled channel must own a distinct RNG instance.

        A shared ``random.Random`` across links would correlate drop
        decisions that the schema declares independent; this is the
        cheap structural audit the determinism tests lean on.
        """
        rngs = [ch.rng for ch in self.sim._channels.values() if ch.rng is not None]
        if len(rngs) != len({id(r) for r in rngs}):
            raise AssertionError("compiled channels share an RNG instance")


def _link_params_for(scenario: Scenario, src: str, dst: str) -> LinkParams:
    """The declared parameters of ``src -> dst`` (either direction), or the
    topology default."""
    for link in scenario.topology.links:
        if (link.src, link.dst) in ((src, dst), (dst, src)):
            return link.params
    return scenario.topology.default_link


def _channel(params: LinkParams, seed: int, src: str, dst: str) -> Channel:
    rng = derive_rng(seed, "link", src, dst) if params.drop_rate > 0 else None
    return Channel(
        latency_s=params.latency_s,
        bandwidth_bps=params.bandwidth_bps,
        drop_rate=params.drop_rate,
        rng=rng,
    )


def _connect(sim: Simulator, scenario: Scenario, seed: int,
             spec_a: str, node_a: str, spec_b: str, node_b: str) -> None:
    """Wire both directions of one pair with independent derived channels."""
    params = _link_params_for(scenario, spec_a, spec_b)
    sim.connect(node_a, node_b, _channel(params, seed, node_a, node_b),
                bidirectional=False)
    sim.connect(node_b, node_a, _channel(params, seed, node_b, node_a),
                bidirectional=False)


def compile_scenario(scenario: Scenario, obs=None,
                     ledger=None) -> CompiledScenario:
    """Build the simulator network for a (non-legacy) scenario."""
    settings = scenario.settings
    seed = settings.seed
    group = TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS[settings.param_set])
    params = setup(group, settings.k)
    if obs is not None and obs.enabled:
        obs.observe_group(group)
        counter = obs.counter
    else:
        counter = OperationCounter()
        group.attach_counter(counter)
    sim = Simulator()
    if obs is not None and obs.enabled:
        obs.tracer.clock = lambda: sim.now
        sim.tracer = obs.tracer  # message deliveries become causal spans
    if ledger is not None:
        ledger.clock = lambda: sim.now
        # Genesis pins everything `ledger verify` needs to rebuild the
        # crypto context offline: the parameter universe is a pure
        # function of (param_set, k, setup seed).
        ledger.ensure_genesis({
            "scenario": scenario.name,
            "seed": seed,
            "param_set": settings.param_set,
            "k": settings.k,
            "setup_seed": params.seed.hex(),
        })
        if obs is not None and obs.enabled:
            from repro.obs import bind_ledger

            bind_ledger(obs.registry, ledger)
    compiled = CompiledScenario(scenario=scenario, sim=sim, params=params,
                                counter=counter)
    batch_config = BatchConfig(max_batch=settings.batch.max_batch,
                               max_wait_s=settings.batch.max_wait_s)
    failover_config = FailoverConfig(
        timeout_s=settings.failover.timeout_s,
        round_deadline_s=settings.failover.round_deadline_s,
    )
    group_pks: dict[str, object] = {}
    for spec in scenario.topology.sem_groups:
        key_rng = derive_rng(seed, "group", spec.name)
        service_name = f"svc-{spec.name}"
        if spec.w == 1 and spec.t == 1:
            sk = group.random_nonzero_scalar(key_rng)
            sem = SEMNode(f"sem-{spec.name}-0", group, sk)
            sim.add_node(sem)
            endpoints = [SEMEndpoint(name=sem.name, x=1, share_pk=sem.pk)]
            org_pk, org_pk_g1 = sem.pk, group.g1() ** sk
        else:
            shares = distribute_key(group, spec.w, spec.t, rng=key_rng)
            endpoints = []
            for j, share in enumerate(shares.shares):
                name = f"sem-{spec.name}-{j}"
                sim.add_node(SEMNode(name, group, share.y))
                endpoints.append(
                    SEMEndpoint(name=name, x=share.x, share_pk=shares.share_pks[j])
                )
            org_pk, org_pk_g1 = shares.master_pk, shares.master_pk_g1
        service = SEMServiceNode(
            service_name,
            params,
            endpoints,
            spec.t,
            org_pk,
            org_pk_g1=org_pk_g1,
            batch_config=batch_config,
            failover_config=failover_config,
            rng=derive_rng(seed, "service", spec.name),
            obs=obs,
            ledger=ledger,
        )
        sim.add_node(service)
        compiled.services[spec.name] = service
        group_pks[spec.name] = org_pk
        for endpoint in endpoints:
            params_link = spec.sem_link
            sim.connect(service_name, endpoint.name,
                        _channel(params_link, seed, service_name, endpoint.name),
                        bidirectional=False)
            sim.connect(endpoint.name, service_name,
                        _channel(params_link, seed, endpoint.name, service_name),
                        bidirectional=False)
    # Clouds store files signed by the single group that uploads to them
    # (schema validation guarantees the mapping is unambiguous).
    cloud_group: dict[str, str] = {}
    for cohort in scenario.workload.cohorts:
        for cloud in cohort.upload_to:
            cloud_group.setdefault(cloud, cohort.target)
    for spec in scenario.topology.clouds:
        org_pk = group_pks.get(cloud_group.get(spec.name, ""),
                               next(iter(group_pks.values())))
        node = ScenarioCloudNode(
            spec.name, CloudServer(params, org_pk=org_pk,
                                   rng=derive_rng(seed, "cloud", spec.name))
        )
        sim.add_node(node)
        compiled.clouds[spec.name] = node
    for spec in scenario.topology.verifiers:
        org_pk = group_pks.get(cloud_group.get(spec.audits, ""),
                               next(iter(group_pks.values())))
        verifier = PublicVerifier(params, org_pk,
                                  rng=derive_rng(seed, "tpa", spec.name))
        if ledger is not None:
            ledger.append("verifier_key", {
                "verifier": spec.name,
                "pk": org_pk.to_bytes().hex(),
            })
        node = TPANode(spec.name, verifier, spec.audits, spec.period_s,
                       spec.sample_size, settings.duration_s, ledger=ledger)
        sim.add_node(node)
        compiled.verifiers[spec.name] = node
        compiled.clouds[spec.audits].watchers.append(node)
        _connect(sim, scenario, seed, spec.name, spec.name, spec.audits, spec.audits)
    compiled.budget = RequestBudget(settings.max_requests)
    request_ids = itertools.count(1)
    for cohort in scenario.workload.cohorts:
        node = CohortNode(
            cohort,
            params,
            f"svc-{cohort.target}",
            seed,
            settings.duration_s,
            compiled.budget,
            request_ids,
        )
        sim.add_node(node)
        compiled.cohorts[cohort.name] = node
        _connect(sim, scenario, seed, cohort.name, node.name,
                 cohort.target, f"svc-{cohort.target}")
        for cloud in cohort.upload_to:
            _connect(sim, scenario, seed, cohort.name, node.name, cloud, cloud)
    if settings.faults:
        fault_seed = settings.fault_seed
        if fault_seed is None:
            fault_seed = derive_seed(seed, "faults") % (1 << 31)
        plan = FaultPlan(
            faults=list(settings.faults),
            seed=fault_seed,
            name=settings.fault_plan_name or scenario.name,
        )
        compiled.injector = plan.install(sim)
    for spec in scenario.topology.sem_groups:
        for j in range(spec.initial_crashed):
            sim.nodes[f"sem-{spec.name}-{j}"].crash()
    compiled.assert_independent_streams()
    return compiled


def compile_legacy(scenario: Scenario, obs, journal=None,
                   chaos_plan: FaultPlan | None = None,
                   ledger=None) -> CompiledScenario:
    """Replicate the historical ``serve-sim`` wiring for the flag shim.

    Byte-for-byte compatible with the pre-scenario code path: one root
    RNG seeds key material, channels, and payloads in the original
    consumption order, node names stay ``service``/``sem-j``/``client-i``,
    and arrivals are the legacy all-at-t=0 batch issued by
    :class:`~repro.scenarios.runner.ScenarioRunner`.
    """
    from repro.service.simnodes import build_service_network

    settings = scenario.settings
    spec = scenario.topology.sem_groups[0]
    cohort = scenario.workload.cohorts[0]
    group = TypeAPairingGroup.from_params(TYPE_A_PARAM_SETS[settings.param_set])
    params = setup(group, settings.k)
    if ledger is not None:
        # build_service_network re-clocks the ledger to virtual time and
        # binds its registry counters; genesis is written here, first.
        ledger.ensure_genesis({
            "scenario": scenario.name,
            "seed": settings.seed,
            "param_set": settings.param_set,
            "k": settings.k,
            "setup_seed": params.seed.hex(),
        })
    rng = random.Random(settings.seed)
    threshold = spec.t if spec.t > 1 else None
    link = scenario.topology.default_link
    channel = Channel(latency_s=link.latency_s, drop_rate=link.drop_rate,
                      rng=random.Random(rng.getrandbits(64)))
    sim, service, clients = build_service_network(
        params,
        threshold=threshold,
        n_clients=cohort.members,
        rng=rng,
        batch_config=BatchConfig(max_batch=settings.batch.max_batch,
                                 max_wait_s=settings.batch.max_wait_s),
        failover_config=FailoverConfig(
            timeout_s=settings.failover.timeout_s,
            round_deadline_s=settings.failover.round_deadline_s,
        ),
        client_service_channel=channel,
        service_sem_channel=channel,
        journal=journal,
        obs=obs,
        ledger=ledger,
    )
    compiled = CompiledScenario(
        scenario=scenario, sim=sim, params=params,
        counter=obs.counter if obs is not None and obs.enabled else OperationCounter(),
        services={spec.name: service},
        legacy_clients=clients,
        legacy_rng=rng,
        legacy_expected=cohort.members * cohort.arrival.requests_per_member,
    )
    if chaos_plan is not None:
        compiled.injector = chaos_plan.install(sim)
        if obs is not None and obs.enabled:
            from repro.obs import bind_fault_injector

            bind_fault_injector(obs.registry, compiled.injector)
    if journal is not None:
        compiled.legacy_replayed = service.recover()
    for j in range(spec.initial_crashed):
        sim.nodes[f"sem-{j}"].crash()
    return compiled
