"""Binary persistence for dynamic file state (the CLI's ``.dyn`` blobs).

Same conventions as :mod:`repro.core.serial`: a magic header, varint
framing, compressed G1 points, fixed-width scalars sized by the group
order.  The rank tree is not serialized — it is a pure function of the
slot sequence and is rebuilt on load.
"""

from __future__ import annotations

import io

from repro.core.blocks import Block
from repro.core.params import SystemParams
from repro.core.serial import _read_bytes, _write_bytes, read_varint, write_varint
from repro.dynamic.rank_tree import RankTree
from repro.dynamic.store import DynamicFile, dyn_block_id

_MAGIC_DYNAMIC_FILE = b"SPDPd1"


def encode_dynamic_file(state: DynamicFile, params: SystemParams) -> bytes:
    stream = io.BytesIO()
    stream.write(_MAGIC_DYNAMIC_FILE)
    _write_bytes(stream, state.file_id)
    write_varint(stream, state.epoch)
    write_varint(stream, state.next_serial)
    write_varint(stream, len(state.slots))
    write_varint(stream, params.k)
    width = (params.order.bit_length() + 7) // 8
    for serial, version in state.slots:
        write_varint(stream, serial)
        write_varint(stream, version)
        for element in state.blocks[serial].elements:
            stream.write(element.to_bytes(width, "big"))
        _write_bytes(stream, state.signatures[serial].to_bytes())
    _write_bytes(stream, state.root_signature.to_bytes()
                 if state.root_signature is not None else b"")
    return stream.getvalue()


def decode_dynamic_file(data: bytes, params: SystemParams) -> DynamicFile:
    stream = io.BytesIO(data)
    if stream.read(len(_MAGIC_DYNAMIC_FILE)) != _MAGIC_DYNAMIC_FILE:
        raise ValueError("not a serialized dynamic file")
    file_id = _read_bytes(stream)
    epoch = read_varint(stream)
    next_serial = read_varint(stream)
    n = read_varint(stream)
    k = read_varint(stream)
    if k != params.k:
        raise ValueError(f"file was encoded with k={k}, params have k={params.k}")
    width = (params.order.bit_length() + 7) // 8
    state = DynamicFile(file_id=file_id, epoch=epoch, next_serial=next_serial)
    for _ in range(n):
        serial = read_varint(stream)
        version = read_varint(stream)
        elements = tuple(
            int.from_bytes(stream.read(width), "big") for _ in range(k)
        )
        block_id = dyn_block_id(file_id, serial, version)
        state.slots.append((serial, version))
        state.blocks[serial] = Block(block_id=block_id, elements=elements)
        state.signatures[serial] = params.group.deserialize_g1(_read_bytes(stream))
    root_sig = _read_bytes(stream)
    state.root_signature = (
        params.group.deserialize_g1(root_sig) if root_sig else None
    )
    state.tree = RankTree([
        dyn_block_id(file_id, serial, version) for serial, version in state.slots
    ])
    return state
