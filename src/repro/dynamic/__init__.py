"""Dynamic PDP tier: rank-authenticated updates with batched re-signing.

This package is the production dynamic-data subsystem (ROADMAP "dynamic
data" item; Gritti et al.'s rank-based construction from PAPERS.md).  It
supersedes the :mod:`repro.dynamics` prototype in three ways:

* the Merkle tree over block indices is **rank-annotated** — every
  interior node hash seals its children's leaf counts, so an inclusion
  proof *derives* the leaf's position from the counts instead of trusting
  a claimed index (defeats index-shifting after insert/delete);
* update operations (``insert`` / ``modify`` / ``delete`` / ``append``)
  are **batched**: the k touched blocks plus the one epoch-stamped root
  go through a single SEM blind-sign round (Eq. 3) with one Eq. 7 batch
  verification — exactly k block re-signatures per batch, never n;
* every batch is recorded on the hash-chained ledger as a
  ``dyn_update_begin`` / ``dyn_update_commit`` pair (root-before /
  root-after), replayable offline by ``repro-pdp ledger verify``.
"""

from repro.dynamic.rank_tree import RankPath, RankTree
from repro.dynamic.store import (
    DynamicAuditor,
    DynamicFileError,
    DynamicProof,
    DynamicStore,
    UpdateOp,
    UpdateReceipt,
    dyn_block_id,
    dyn_root_message,
)

__all__ = [
    "DynamicAuditor",
    "DynamicFileError",
    "DynamicProof",
    "DynamicStore",
    "RankPath",
    "RankTree",
    "UpdateOp",
    "UpdateReceipt",
    "dyn_block_id",
    "dyn_root_message",
]
