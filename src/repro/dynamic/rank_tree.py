"""Rank-annotated Merkle tree over an ordered sequence of byte leaves.

The plain Merkle tree in :mod:`repro.dynamics.merkle` authenticates
*which* identifiers are under the root but trusts the path's claimed
index to pick the left/right hashing order — fine for static files,
insufficient once blocks shift.  Here every interior node hash seals the
**leaf counts** of both children::

    leaf:  H(0x00 || leaf)                                   count 1
    node:  H(0x01 || be8(lc) || lh || be8(rc) || rh)         count lc+rc

so an inclusion proof carries (side, sibling hash, sibling count) per
step and verification *derives* the leaf's position as the sum of the
left-side sibling counts — the leaf's rank.  A cloud that deletes block
i and replays a neighbouring block's proof for position i produces a
derived rank that disagrees with the challenged position, and any count
forgery changes a node preimage and breaks the root hash.  The total
count derived at the root also authenticates the file's length, so a
truncated file cannot masquerade as the full one.

Like the prototype tree, mutation is an O(n) rebuild (microseconds at
this reproduction's block counts, and far easier to audit than node
surgery); proofs and verification are O(log n).  Odd nodes are promoted
unchanged — never duplicated — which is what keeps the Bitcoin-style
duplication mutation impossible here too.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"
_EMPTY_ROOT = hashlib.sha256(b"\x02empty-rank").digest()

#: Path-step side markers: the sibling sits to our left or to our right.
SIDE_LEFT = 0
SIDE_RIGHT = 1


def _hash_leaf(leaf: bytes) -> bytes:
    return hashlib.sha256(_LEAF_TAG + leaf).digest()


def _hash_node(left_count: int, left: bytes, right_count: int, right: bytes) -> bytes:
    return hashlib.sha256(
        _NODE_TAG
        + left_count.to_bytes(8, "big") + left
        + right_count.to_bytes(8, "big") + right
    ).digest()


@dataclass(frozen=True)
class RankPath:
    """Inclusion proof: (side, sibling hash, sibling count) bottom-up.

    Levels where the climbing node was promoted (no sibling) contribute
    no step — promotion leaves both hash and count unchanged.
    """

    steps: tuple[tuple[int, bytes, int], ...]

    def wire_size_bytes(self) -> int:
        return sum(1 + 32 + 8 for _ in self.steps)


class RankTree:
    """Rank-annotated Merkle tree over an ordered list of byte leaves."""

    def __init__(self, leaves: list[bytes] | None = None):
        self._leaves: list[bytes] = list(leaves) if leaves else []
        # Levels of (hash, count) pairs, bottom-up; level 0 is the leaves.
        self._levels: list[list[tuple[bytes, int]]] = []
        self._rebuild()

    # -- construction --------------------------------------------------------
    def _rebuild(self) -> None:
        if not self._leaves:
            self._levels = [[]]
            return
        level = [(_hash_leaf(leaf), 1) for leaf in self._leaves]
        levels = [level]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    (lh, lc), (rh, rc) = level[i], level[i + 1]
                    nxt.append((_hash_node(lc, lh, rc, rh), lc + rc))
                else:
                    nxt.append(level[i])  # promoted unchanged
            level = nxt
            levels.append(level)
        self._levels = levels

    # -- accessors -----------------------------------------------------------
    @property
    def root(self) -> bytes:
        if not self._leaves:
            return _EMPTY_ROOT
        return self._levels[-1][0][0]

    def __len__(self) -> int:
        return len(self._leaves)

    def leaf(self, index: int) -> bytes:
        return self._leaves[index]

    def leaves(self) -> list[bytes]:
        return list(self._leaves)

    # -- mutation ------------------------------------------------------------
    def modify(self, index: int, leaf: bytes) -> None:
        self._leaves[index] = leaf
        self._rebuild()

    def insert(self, index: int, leaf: bytes) -> None:
        if not 0 <= index <= len(self._leaves):
            raise IndexError("insert position out of range")
        self._leaves.insert(index, leaf)
        self._rebuild()

    def append(self, leaf: bytes) -> None:
        self._leaves.append(leaf)
        self._rebuild()

    def delete(self, index: int) -> None:
        del self._leaves[index]
        self._rebuild()

    # -- proofs ---------------------------------------------------------------
    def prove(self, index: int) -> RankPath:
        """Rank-authenticated inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IndexError("leaf index out of range")
        steps = []
        position = index
        for level in self._levels[:-1]:
            sibling_pos = position ^ 1
            if sibling_pos < len(level):
                sibling_hash, sibling_count = level[sibling_pos]
                side = SIDE_LEFT if sibling_pos < position else SIDE_RIGHT
                steps.append((side, sibling_hash, sibling_count))
            # else: promoted — no step, hash and count pass through.
            position //= 2
        return RankPath(steps=tuple(steps))

    @staticmethod
    def verify_path(root: bytes, total: int, leaf: bytes,
                    path: RankPath) -> int | None:
        """Verify ``leaf`` against ``root``; return its derived rank.

        Returns the authenticated position (0-based) when the recomputed
        root hash matches ``root`` *and* the derived total leaf count
        matches ``total``; ``None`` otherwise.  The caller compares the
        returned rank against the position it challenged — the proof
        cannot claim a different one without breaking the hash.
        """
        digest = _hash_leaf(leaf)
        count = 1
        rank = 0
        for side, sibling_hash, sibling_count in path.steps:
            if sibling_count < 1:
                return None
            if side == SIDE_LEFT:
                digest = _hash_node(sibling_count, sibling_hash, count, digest)
                rank += sibling_count
            elif side == SIDE_RIGHT:
                digest = _hash_node(count, digest, sibling_count, sibling_hash)
            else:
                return None
            count += sibling_count
        if digest != root or count != total:
            return None
        return rank
