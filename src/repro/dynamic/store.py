"""Dynamic file store and auditor: rank-authenticated updates with
batched re-signing.

The store keeps each dynamic file as an ordered sequence of *slots*.
A slot holds a ``(serial, version)`` pair: serials are allocated once
and never reused (so a deleted block's identifier can never come back),
versions increment on modify (so a stale copy of a block carries a
visibly old identifier).  The block identifier

    ``file_id || '#' || be8(serial) || be8(version)``

is simultaneously the leaf of the rank-annotated Merkle tree
(:class:`~repro.dynamic.rank_tree.RankTree`) and the hashed identity in
the block's BLS signature — one string binds *content* (Eq. 6),
*position* (rank path), and *freshness* (version + epoch-stamped root).

Update batches are the whole point: an update of k blocks blinds the k
new block aggregates plus one epoch-stamped root message and pushes all
k + 1 through a **single** ``sem.sign_blinded_batch`` round (Eq. 3),
verifies the batch with one Eq. 7 check (2 pairings total), and
unblinds without per-message pairings — exactly k block re-signatures
per batch, never n.  Every batch is fenced on the hash-chained ledger
with a ``dyn_update_begin`` / ``dyn_update_commit`` pair so
``repro-pdp ledger verify`` can replay the root transitions offline.

The auditor pins ``(epoch, root, count)`` per file and checks four
things together: the pin (stale-root replay dies here), the root
signature (pairing check against the organization key), each challenged
block's rank path (index-shifting dies here — the derived rank must
equal the challenged position), and Eq. 6 over the *authenticated*
block identifiers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.core.challenge import Challenge, ProofResponse
from repro.core.owner import DataOwner
from repro.core.params import SystemParams
from repro.core.verifier import PublicVerifier
from repro.crypto.blind_bls import batch_unblind_verify, blind
from repro.dynamic.rank_tree import RankPath, RankTree
from repro.pairing.interface import GroupElement

#: Ledger record kinds written by :class:`DynamicStore`.
KIND_DYN_CREATE = "dyn_create"
KIND_DYN_UPDATE_BEGIN = "dyn_update_begin"
KIND_DYN_UPDATE_COMMIT = "dyn_update_commit"

_VALID_OPS = ("insert", "modify", "delete", "append")


class DynamicFileError(ValueError):
    """A dynamic-store operation was malformed or failed verification."""


def dyn_block_id(file_id: bytes, serial: int, version: int) -> bytes:
    """id_i for a dynamic block — also the rank-tree leaf."""
    return file_id + b"#" + struct.pack(">QQ", serial, version)


def dyn_root_message(file_id: bytes, epoch: int, count: int, root: bytes) -> bytes:
    """The epoch-stamped root statement the SEM blind-signs per batch.

    Binding the epoch and leaf count alongside the root hash means a
    replayed old root signature asserts an old epoch — it cannot be
    passed off as the current state.
    """
    return (
        b"dyn-root|" + file_id + b"|"
        + epoch.to_bytes(8, "big") + b"|" + count.to_bytes(8, "big") + b"|" + root
    )


@dataclass(frozen=True)
class UpdateOp:
    """One verified mutation: insert / modify / delete / append.

    ``position`` is the 0-based slot index *at the time the op is
    applied* (ops in a batch apply sequentially, so a batch of inserts
    at position 0 stacks in reverse order, exactly like repeated
    ``list.insert(0, ...)``).
    """

    op: str
    position: int | None = None
    payload: bytes | None = None

    def __post_init__(self):
        if self.op not in _VALID_OPS:
            raise DynamicFileError(f"unknown update op {self.op!r}")
        if self.op in ("insert", "modify"):
            if self.position is None or self.payload is None:
                raise DynamicFileError(f"{self.op} needs a position and a payload")
        elif self.op == "delete":
            if self.position is None or self.payload is not None:
                raise DynamicFileError("delete needs a position and no payload")
        else:  # append
            if self.position is not None or self.payload is None:
                raise DynamicFileError("append needs a payload and no position")


@dataclass(frozen=True)
class UpdateReceipt:
    """What a committed batch tells the TPA: the root transition."""

    file_id: bytes
    batch: str
    epoch_before: int
    epoch_after: int
    root_before: bytes
    root_after: bytes
    count: int
    signed_blocks: int
    ops: int


@dataclass(frozen=True)
class DynamicProof:
    """Cloud's answer to a dynamic challenge.

    ``block_ids`` / ``paths`` align with the challenge's positions; the
    Eq. 6 response is computed over these authenticated identifiers.
    """

    file_id: bytes
    epoch: int
    count: int
    root: bytes
    root_signature: GroupElement
    block_ids: tuple[bytes, ...]
    paths: tuple[RankPath, ...]
    response: ProofResponse

    def wire_size_bytes(self) -> int:
        fixed = 8 + 8 + 32 + len(self.root_signature.to_bytes())
        ids = sum(len(b) for b in self.block_ids)
        paths = sum(p.wire_size_bytes() for p in self.paths)
        return fixed + ids + paths + self.response.wire_size_bytes()


@dataclass
class DynamicFile:
    """In-memory (and serialized) state of one dynamic file."""

    file_id: bytes
    epoch: int = 0
    next_serial: int = 0
    slots: list[tuple[int, int]] = field(default_factory=list)
    blocks: dict[int, Block] = field(default_factory=dict)
    signatures: dict[int, GroupElement] = field(default_factory=dict)
    tree: RankTree = field(default_factory=RankTree)
    root_signature: GroupElement | None = None

    @property
    def count(self) -> int:
        return len(self.slots)

    @property
    def root(self) -> bytes:
        return self.tree.root


class DynamicStore:
    """Owner + cloud side of the dynamic tier.

    One object plays both roles for the reproduction (like
    :class:`~repro.core.protocol.SemPdpSystem` does for static files):
    the *owner* path blinds and batches signatures through the SEM, the
    *cloud* path stores blocks and answers challenges.  The split is
    clean — :meth:`generate_proof` touches only stored state.

    Args:
        params: system parameters (group, k, u-vector).
        sem: anything exposing ``sign_blinded_batch(blinded, credential)``
            — a single :class:`~repro.core.sem.SecurityMediator` or a
            :class:`~repro.core.multi_sem.MultiSEMClient` cluster front.
        owner: the enrolled member whose credential signs the updates.
        sem_pk_g1: optional G1 mirror of the SEM key (fixed-base paths).
        ledger: optional hash-chained ledger; when present every create
            and update batch is fenced with dyn_* records.
    """

    def __init__(self, params: SystemParams, sem, owner: DataOwner,
                 sem_pk_g1: GroupElement | None = None, ledger=None):
        self.params = params
        self.group = params.group
        self.sem = sem
        self.owner = owner
        self.sem_pk_g1 = sem_pk_g1
        self.ledger = ledger
        self._files: dict[bytes, DynamicFile] = {}

    # -- accessors -----------------------------------------------------------
    def file_state(self, file_id: bytes) -> DynamicFile:
        try:
            return self._files[file_id]
        except KeyError:
            raise DynamicFileError(f"unknown dynamic file {file_id!r}") from None

    def files(self) -> list[bytes]:
        return sorted(self._files)

    def adopt(self, state: DynamicFile) -> None:
        """Install a deserialized file state (CLI persistence path)."""
        self._files[state.file_id] = state

    # -- payload packing -----------------------------------------------------
    def elements_from_bytes(self, payload: bytes) -> tuple[int, ...]:
        width = self.params.element_bytes()
        needed = self.params.block_bytes()
        if len(payload) > needed:
            raise DynamicFileError(f"a dynamic block holds at most {needed} bytes")
        payload = payload.ljust(needed, b"\x00")
        return tuple(
            int.from_bytes(payload[i * width : (i + 1) * width], "big")
            for i in range(self.params.k)
        )

    # -- create --------------------------------------------------------------
    def create(self, file_id: bytes, chunks: list[bytes]) -> UpdateReceipt:
        """Sign and store the initial block sequence (epoch 0).

        All n block aggregates plus the epoch-0 root message go through
        one blind-sign batch — the same n + 1-message round an update of
        n blocks would use.
        """
        if file_id in self._files:
            raise DynamicFileError(f"dynamic file {file_id!r} already exists")
        state = DynamicFile(file_id=file_id)
        new_blocks: list[Block] = []
        for chunk in chunks:
            serial = state.next_serial
            state.next_serial += 1
            block = Block(
                block_id=dyn_block_id(file_id, serial, 0),
                elements=self.elements_from_bytes(chunk),
            )
            state.slots.append((serial, 0))
            state.blocks[serial] = block
            new_blocks.append(block)
        state.tree = RankTree([b.block_id for b in new_blocks])
        signatures, root_signature = self._sign_batch(state, new_blocks)
        for block, signature in zip(new_blocks, signatures):
            serial, _ = struct.unpack(">QQ", block.block_id[len(file_id) + 1:])
            state.signatures[serial] = signature
        state.root_signature = root_signature
        self._files[file_id] = state
        if self.ledger is not None:
            self.ledger.append(KIND_DYN_CREATE, {
                "file": file_id.hex(),
                "epoch": 0,
                "count": state.count,
                "root": state.root.hex(),
                "leaves": [b.block_id.hex() for b in new_blocks],
            })
        return UpdateReceipt(
            file_id=file_id, batch=self._batch_id(file_id, 0),
            epoch_before=0, epoch_after=0,
            root_before=state.root, root_after=state.root,
            count=state.count, signed_blocks=len(new_blocks), ops=len(chunks),
        )

    # -- update --------------------------------------------------------------
    def update(self, file_id: bytes, ops: list[UpdateOp]) -> UpdateReceipt:
        """Apply one atomic batch of verified updates.

        Stages the ops on copies, writes ``dyn_update_begin``, runs the
        single k + 1-message blind-sign round, then installs the staged
        state and writes ``dyn_update_commit``.  A crash between begin
        and commit leaves the committed state untouched and the ledger
        with an open batch — re-running the same batch writes a second
        begin with the same root-before, which the offline checker
        treats as an idempotent retry.
        """
        if not ops:
            raise DynamicFileError("an update batch needs at least one op")
        state = self.file_state(file_id)
        epoch_before, root_before = state.epoch, state.root
        epoch_after = state.epoch + 1
        batch = self._batch_id(file_id, epoch_after)

        slots = list(state.slots)
        next_serial = state.next_serial
        new_entries: list[tuple[int, int, Block]] = []
        removed: list[int] = []
        op_records = []
        for op in ops:
            record: dict = {"op": op.op}
            if op.op == "delete":
                if not 0 <= op.position < len(slots):
                    raise DynamicFileError(f"delete position {op.position} out of range")
                serial, _ = slots.pop(op.position)
                removed.append(serial)
                record["position"] = op.position
            else:
                if op.op == "modify":
                    if not 0 <= op.position < len(slots):
                        raise DynamicFileError(
                            f"modify position {op.position} out of range")
                    serial, version = slots[op.position]
                    version += 1
                    position = op.position
                    slots[position] = (serial, version)
                elif op.op == "insert":
                    if not 0 <= op.position <= len(slots):
                        raise DynamicFileError(
                            f"insert position {op.position} out of range")
                    serial, version = next_serial, 0
                    next_serial += 1
                    position = op.position
                    slots.insert(position, (serial, version))
                else:  # append
                    serial, version = next_serial, 0
                    next_serial += 1
                    position = len(slots)
                    slots.append((serial, version))
                block = Block(
                    block_id=dyn_block_id(file_id, serial, version),
                    elements=self.elements_from_bytes(op.payload),
                )
                new_entries.append((serial, version, block))
                record["position"] = position
                record["leaf"] = block.block_id.hex()
            op_records.append(record)

        staged = RankTree([
            dyn_block_id(file_id, serial, version) for serial, version in slots
        ])
        root_after = staged.root

        if self.ledger is not None:
            self.ledger.append(KIND_DYN_UPDATE_BEGIN, {
                "file": file_id.hex(),
                "batch": batch,
                "epoch_before": epoch_before,
                "root_before": root_before.hex(),
                "ops": op_records,
            })

        shadow = DynamicFile(file_id=file_id, epoch=epoch_after, tree=staged,
                             slots=slots)
        signatures, root_signature = self._sign_batch(
            shadow, [block for _, _, block in new_entries]
        )

        # Commit: install the staged state atomically (plain attribute
        # writes — nothing below can fail).
        state.slots = slots
        state.next_serial = next_serial
        state.tree = staged
        state.epoch = epoch_after
        state.root_signature = root_signature
        for (serial, _version, block), signature in zip(new_entries, signatures):
            state.blocks[serial] = block
            state.signatures[serial] = signature
        for serial in removed:
            state.blocks.pop(serial, None)
            state.signatures.pop(serial, None)

        if self.ledger is not None:
            self.ledger.append(KIND_DYN_UPDATE_COMMIT, {
                "file": file_id.hex(),
                "batch": batch,
                "epoch_after": epoch_after,
                "root_after": root_after.hex(),
                "count": state.count,
                "signed_blocks": len(new_entries),
            })
        return UpdateReceipt(
            file_id=file_id, batch=batch,
            epoch_before=epoch_before, epoch_after=epoch_after,
            root_before=root_before, root_after=root_after,
            count=state.count, signed_blocks=len(new_entries), ops=len(ops),
        )

    def _batch_id(self, file_id: bytes, epoch_after: int) -> str:
        return f"{file_id.hex()[:16]}#e{epoch_after}"

    def _sign_batch(self, state: DynamicFile,
                    new_blocks: list[Block]) -> tuple[list[GroupElement], GroupElement]:
        """One blind-sign round for k blocks + the epoch-stamped root.

        Blind (Eq. 2) each touched block's aggregate and H(root message),
        obtain all k + 1 blind signatures from the SEM in one batch
        (Eq. 3), verify the whole batch with a single Eq. 7 check
        (2 pairings), and unblind without per-message checks.
        """
        owner = self.owner
        states = [owner.blind_block(block) for block in new_blocks]
        root_msg = dyn_root_message(state.file_id, state.epoch, len(state.slots),
                                    state.tree.root)
        states.append(blind(self.group, self.group.hash_to_g1(root_msg), owner._rng))
        blinded = [s.blinded for s in states]
        blind_signatures = self.sem.sign_blinded_batch(blinded, owner.credential)
        if not batch_unblind_verify(
            self.group, blinded, blind_signatures, owner.sem_pk, owner._rng,
            pool=owner.pool,
        ):
            raise DynamicFileError(
                "batch verification of blind signatures failed (Eq. 7)")
        signatures = [
            owner.unblind(s, bs, check=False, sem_pk_g1=self.sem_pk_g1)
            for s, bs in zip(states, blind_signatures)
        ]
        return signatures[:-1], signatures[-1]

    # -- cloud: challenge/response -------------------------------------------
    def generate_proof(self, file_id: bytes, challenge: Challenge) -> DynamicProof:
        """Answer a dynamic challenge: Eq. 6 response + rank paths.

        The challenge carries *positions* (its block_ids are empty
        placeholders — the verifier does not trust the cloud to know
        them); the proof supplies the authenticated identifiers and
        their rank paths, and the Eq. 6 aggregate over the stored
        blocks and signatures.
        """
        state = self.file_state(file_id)
        block_ids: list[bytes] = []
        paths: list[RankPath] = []
        sigs: list[GroupElement] = []
        alphas = [0] * self.params.k
        for position, beta in zip(challenge.indices, challenge.betas):
            if not 0 <= position < state.count:
                raise DynamicFileError(f"challenged position {position} out of range")
            serial, _version = state.slots[position]
            block = state.blocks[serial]
            block_ids.append(block.block_id)
            paths.append(state.tree.prove(position))
            sigs.append(state.signatures[serial])
            for l, element in enumerate(block.elements):
                alphas[l] = (alphas[l] + beta * element) % self.params.order
        sigma = self.group.multi_exp(sigs, list(challenge.betas))
        return DynamicProof(
            file_id=file_id,
            epoch=state.epoch,
            count=state.count,
            root=state.root,
            root_signature=state.root_signature,
            block_ids=tuple(block_ids),
            paths=tuple(paths),
            response=ProofResponse(sigma=sigma, alphas=tuple(alphas)),
        )

    # -- fault injection (tests / scenarios) ---------------------------------
    def tamper_block(self, file_id: bytes, position: int) -> None:
        """Corrupt a stored block's first element (keeps id + signature)."""
        state = self.file_state(file_id)
        serial, _ = state.slots[position]
        block = state.blocks[serial]
        elements = list(block.elements)
        elements[0] = (elements[0] + 1) % self.params.order
        state.blocks[serial] = Block(block_id=block.block_id,
                                     elements=tuple(elements))


class DynamicAuditor:
    """TPA for dynamic files: pins (epoch, root, count), checks proofs.

    Verification is the conjunction the tentpole demands — pin match,
    root-signature pairing check, rank-path per challenged position,
    and Eq. 6 over the authenticated identifiers.  Any single failure
    rejects the proof.
    """

    def __init__(self, params: SystemParams, org_pk: GroupElement,
                 rng=None, pool=None):
        self.params = params
        self.group = params.group
        self.org_pk = org_pk
        self.verifier = PublicVerifier(params, org_pk, rng=rng, pool=pool)
        self._pins: dict[bytes, tuple[int, bytes, int]] = {}

    # -- pin management ------------------------------------------------------
    def pin(self, file_id: bytes, epoch: int, root: bytes, count: int) -> None:
        self._pins[file_id] = (epoch, root, count)

    def pin_receipt(self, receipt: UpdateReceipt) -> None:
        """Advance the pin from a committed batch's receipt."""
        self.pin(receipt.file_id, receipt.epoch_after, receipt.root_after,
                 receipt.count)

    def pinned(self, file_id: bytes) -> tuple[int, bytes, int]:
        try:
            return self._pins[file_id]
        except KeyError:
            raise DynamicFileError(f"no pinned root for {file_id!r}") from None

    # -- challenge -----------------------------------------------------------
    def generate_challenge(self, file_id: bytes, sample_size: int | None = None,
                           beta_bits: int | None = None) -> Challenge:
        """Challenge c random *positions* of the pinned file.

        The block_ids are empty placeholders: the proof must supply the
        real identifiers under rank paths — the verifier never trusts
        an unauthenticated id.
        """
        _epoch, _root, count = self.pinned(file_id)
        if count == 0:
            raise DynamicFileError("cannot challenge an empty file")
        template = self.verifier.generate_challenge(
            b"", count, sample_size=sample_size, beta_bits=beta_bits)
        return Challenge(
            indices=template.indices,
            block_ids=tuple(b"" for _ in template.indices),
            betas=template.betas,
        )

    # -- verify --------------------------------------------------------------
    def verify(self, file_id: bytes, challenge: Challenge,
               proof: DynamicProof) -> bool:
        """True iff the proof is fresh, positioned, and possessed."""
        epoch, root, count = self.pinned(file_id)
        # Freshness: a proof for any earlier (or other) state shows a
        # different epoch/root/count and dies here.
        if (proof.file_id != file_id or proof.epoch != epoch
                or proof.root != root or proof.count != count):
            return False
        if not (len(proof.block_ids) == len(proof.paths) == len(challenge.indices)):
            return False
        # Root authenticity: the SEM signed this exact (epoch, count, root).
        root_msg = dyn_root_message(file_id, epoch, count, root)
        lhs = self.group.pair(proof.root_signature, self.group.g2())
        rhs = self.group.pair(self.group.hash_to_g1(root_msg), self.org_pk)
        if lhs != rhs:
            return False
        # Position: each rank path must derive exactly the challenged rank.
        for position, block_id, path in zip(
            challenge.indices, proof.block_ids, proof.paths
        ):
            if not block_id.startswith(file_id + b"#"):
                return False
            if RankTree.verify_path(root, count, block_id, path) != position:
                return False
        # Possession: Eq. 6 over the authenticated identifiers.
        authed = Challenge(
            indices=challenge.indices,
            block_ids=proof.block_ids,
            betas=challenge.betas,
        )
        return self.verifier.verify(authed, proof.response)
