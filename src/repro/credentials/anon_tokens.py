"""Blind-signature-based single-use anonymous tokens.

Protocol (all under the issuer's token key, distinct from the SEM data
key):

1. **Withdraw** — the member picks a random serial s, computes
   T = H(epoch || s), blinds it, and has the group manager blind-sign it.
   The manager checks *who* is withdrawing (members only, quota per
   member) but — by blindness — learns nothing about s.
2. **Spend** — to authenticate a signing request, the member reveals
   (s, σ = T^y).  The SEM checks the pairing equation for the *current*
   epoch and that s is fresh (double-spend list).
3. **Revoke** — the manager bumps the epoch.  All outstanding tokens die
   (they hash the old epoch); everyone still enrolled withdraws fresh
   tokens; the revoked member simply isn't served at the counter.

Unlinkability: the manager's view of a withdrawal is a uniformly random
blinded element, and a spent token reveals only (s, σ) — independent of
any withdrawal transcript.  So neither the manager nor the SEM can link a
signing request to a member identity, strictly stronger than the opaque
pseudonymous tokens in :mod:`repro.core.group_mgmt`.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.crypto.blind_bls import blind, sign_blinded, unblind
from repro.pairing.interface import GroupElement, PairingGroup


@dataclass(frozen=True)
class AnonymousToken:
    """A spendable token: the serial and the issuer's signature on it."""

    epoch: int
    serial: bytes
    signature: GroupElement


def _token_element(group: PairingGroup, epoch: int, serial: bytes) -> GroupElement:
    return group.hash_to_g1(b"anon-token|" + epoch.to_bytes(8, "big") + b"|" + serial)


class CredentialIssuer:
    """The group manager's token-issuing counter."""

    def __init__(self, group: PairingGroup, rng=None, quota_per_member: int = 64):
        self.group = group
        self._rng = rng
        self._sk = group.random_nonzero_scalar(rng)
        self.pk = group.g2() ** self._sk
        self.pk_g1 = group.g1() ** self._sk
        self.epoch = 0
        self.quota_per_member = quota_per_member
        self._members: set[str] = set()
        self._withdrawn: dict[tuple[int, str], int] = {}

    # -- membership --------------------------------------------------------
    def enroll(self, member_id: str) -> None:
        if member_id in self._members:
            raise ValueError(f"{member_id!r} already enrolled")
        self._members.add(member_id)

    def revoke(self, member_id: str) -> None:
        """Remove the member and invalidate ALL outstanding tokens by
        bumping the epoch — O(1), and cloud data is untouched."""
        self._members.discard(member_id)
        self.epoch += 1

    def is_enrolled(self, member_id: str) -> bool:
        return member_id in self._members

    # -- withdrawal (the only authenticated step) -----------------------------
    def sign_withdrawal(self, member_id: str, blinded: GroupElement) -> GroupElement:
        """Blind-sign one token withdrawal for an enrolled member.

        Raises:
            PermissionError: non-members (including the just-revoked).
            RuntimeError: quota exceeded for this epoch.
        """
        if member_id not in self._members:
            raise PermissionError(f"{member_id!r} is not an enrolled member")
        key = (self.epoch, member_id)
        if self._withdrawn.get(key, 0) >= self.quota_per_member:
            raise RuntimeError("withdrawal quota exceeded for this epoch")
        self._withdrawn[key] = self._withdrawn.get(key, 0) + 1
        return sign_blinded(blinded, self._sk)


class TokenWallet:
    """Member-side: withdraws and holds unlinkable tokens."""

    def __init__(self, group: PairingGroup, member_id: str, issuer_pk: GroupElement,
                 issuer_pk_g1: GroupElement | None = None, rng=None):
        self.group = group
        self.member_id = member_id
        self.issuer_pk = issuer_pk
        self.issuer_pk_g1 = issuer_pk_g1
        self._rng = rng
        self._tokens: list[AnonymousToken] = []

    def withdraw(self, issuer: CredentialIssuer, count: int = 1) -> int:
        """Withdraw ``count`` fresh tokens for the issuer's current epoch."""
        epoch = issuer.epoch
        for _ in range(count):
            serial = (
                self._rng.randbytes(16) if self._rng is not None else secrets.token_bytes(16)
            )
            element = _token_element(self.group, epoch, serial)
            state = blind(self.group, element, self._rng)
            blind_signature = issuer.sign_withdrawal(self.member_id, state.blinded)
            signature = unblind(
                self.group, state, blind_signature, self.issuer_pk,
                pk1=self.issuer_pk_g1, check=True,
            )
            self._tokens.append(AnonymousToken(epoch=epoch, serial=serial, signature=signature))
        return len(self._tokens)

    def spend(self) -> AnonymousToken:
        """Pop one token (single-use)."""
        if not self._tokens:
            raise LookupError("wallet is empty; withdraw first")
        return self._tokens.pop()

    def __len__(self) -> int:
        return len(self._tokens)


@dataclass
class TokenVerifier:
    """SEM-side token acceptance: signature + epoch + double-spend check."""

    group: PairingGroup
    issuer_pk: GroupElement
    current_epoch: int = 0
    _spent: set[bytes] = field(default_factory=set)

    def advance_epoch(self, epoch: int) -> None:
        if epoch < self.current_epoch:
            raise ValueError("epochs only move forward")
        self.current_epoch = epoch
        self._spent.clear()  # old serials can never validate again anyway

    def accept(self, token: AnonymousToken) -> bool:
        """True iff the token is valid, current, and never seen before."""
        if token.epoch != self.current_epoch:
            return False
        if token.serial in self._spent:
            return False
        element = _token_element(self.group, token.epoch, token.serial)
        lhs = self.group.pair(token.signature, self.group.g2())
        if lhs != self.group.pair(element, self.issuer_pk):
            return False
        self._spent.add(token.serial)
        return True
