"""Anonymous credentials for SEM authentication.

The paper assumes "the SEM can authenticate each data owner by anonymous
credential supporting both revocation and reputation, e.g., PE(AR)²"
(Section II-B) and leaves the mechanism external.  The core package uses
opaque pseudonymous tokens for that role; this package supplies a proper
*unlinkable* mechanism built from the same blind-BLS primitive the scheme
itself uses:

* the group manager blind-signs batches of single-use tokens for each
  member (so the manager cannot link tokens to future requests either);
* tokens are keyed to a revocation *epoch*; bumping the epoch invalidates
  every outstanding token, and re-issuance simply excludes revoked
  members — O(1) revocation without touching cloud data;
* the SEM checks the manager's signature and a double-spend list; two
  requests by the same member are cryptographically unlinkable.
"""

from repro.credentials.anon_tokens import (
    AnonymousToken,
    CredentialIssuer,
    TokenVerifier,
    TokenWallet,
)

__all__ = [
    "AnonymousToken",
    "CredentialIssuer",
    "TokenVerifier",
    "TokenWallet",
]
