"""Multi-owner shared files (paper Section IV-C, "Multi-Owner Scenario").

A file maintained by several members — think collaborative editing — where
each block is signed by its actual author *via the SEM*.  Because every
signature comes out under the single organization key, the stored file is
bit-for-bit indistinguishable from a single-owner upload: a verifier can
neither attribute blocks to members nor even tell how many members
contributed (the "more important member" / "more important block"
inferences the paper warns about are information-theoretically impossible).

The builder below assembles such a file from per-member contributions,
running each member's Blind/Sign/Unblind independently (members never see
each other's blinding factors), and emits one ordinary
:class:`~repro.core.owner.SignedFile`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocks import Block, make_block_id
from repro.core.owner import DataOwner, SignedFile
from repro.core.params import SystemParams
from repro.crypto.blind_bls import batch_unblind_verify


@dataclass(frozen=True)
class Contribution:
    """One member's slice of the shared file."""

    owner: DataOwner
    payload: bytes


class SharedFileBuilder:
    """Assembles a multi-owner file block by block."""

    def __init__(self, params: SystemParams, file_id: bytes, sem, sem_pk_g1=None):
        self.params = params
        self.group = params.group
        self.file_id = file_id
        self.sem = sem
        self.sem_pk_g1 = sem_pk_g1
        self._blocks: list[Block] = []
        self._signatures: list = []
        self._authors: list[DataOwner] = []  # builder-local; NOT uploaded

    def _pack_elements(self, payload: bytes) -> list[tuple[int, ...]]:
        """Pack one contribution into whole blocks (padded)."""
        width = self.params.element_bytes()
        block_bytes = self.params.block_bytes()
        if len(payload) % block_bytes:
            payload = payload + b"\x00" * (block_bytes - len(payload) % block_bytes)
        out = []
        for offset in range(0, len(payload), block_bytes):
            chunk = payload[offset : offset + block_bytes]
            out.append(
                tuple(
                    int.from_bytes(chunk[j * width : (j + 1) * width], "big")
                    for j in range(self.params.k)
                )
            )
        return out

    def append(self, contribution: Contribution) -> int:
        """Sign a member's contribution and append its blocks.

        Each member talks to the SEM herself (her own blinding factors,
        her own credential).  Returns the number of blocks appended.
        """
        owner = contribution.owner
        element_rows = self._pack_elements(contribution.payload)
        blocks = [
            Block(
                block_id=make_block_id(self.file_id, len(self._blocks) + i),
                elements=elements,
            )
            for i, elements in enumerate(element_rows)
        ]
        states = [owner.blind_block(block) for block in blocks]
        blinded = [s.blinded for s in states]
        blind_signatures = self.sem.sign_blinded_batch(blinded, owner.credential)
        if not batch_unblind_verify(
            self.group, blinded, blind_signatures, owner.sem_pk, owner._rng
        ):
            raise ValueError("batch verification failed for a contribution")
        signatures = [
            owner.unblind(s, bs, check=False, sem_pk_g1=self.sem_pk_g1)
            for s, bs in zip(states, blind_signatures)
        ]
        self._blocks.extend(blocks)
        self._signatures.extend(signatures)
        self._authors.extend([owner] * len(blocks))
        return len(blocks)

    def build(self) -> SignedFile:
        """The finished shared file — structurally a plain SignedFile."""
        if not self._blocks:
            raise ValueError("no contributions appended")
        return SignedFile(
            file_id=self.file_id,
            blocks=tuple(self._blocks),
            signatures=tuple(self._signatures),
        )

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    def author_of(self, position: int) -> DataOwner:
        """Builder-side bookkeeping ONLY — this mapping never leaves the
        members' side; nothing equivalent exists in the uploaded file."""
        return self._authors[position]


def build_shared_file(
    params: SystemParams,
    file_id: bytes,
    sem,
    contributions: list[Contribution],
    sem_pk_g1=None,
) -> SignedFile:
    """Convenience wrapper: assemble a shared file in one call."""
    builder = SharedFileBuilder(params, file_id, sem, sem_pk_g1=sem_pk_g1)
    for contribution in contributions:
        builder.append(contribution)
    return builder.build()
