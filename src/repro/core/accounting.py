"""Operation and byte accounting for reproducing the paper's cost tables.

:class:`CostTracker` is a context manager that attaches an
:class:`~repro.pairing.interface.OperationCounter` to a pairing group,
accumulates wall-clock time, and records message byte counts reported by
the protocol layers.  Benchmarks use it to check measured operation counts
against the closed-form expressions of Table I.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.pairing.interface import OperationCounter, PairingGroup


@dataclass
class CostTracker:
    """Collects Exp/Pair tallies, elapsed time, and communication bytes."""

    group: PairingGroup
    counter: OperationCounter = field(default_factory=OperationCounter)
    bytes_sent: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    _start: float | None = None
    _previous_counter: OperationCounter | None = None

    def __enter__(self) -> "CostTracker":
        self._previous_counter = self.group.counter
        self.group.attach_counter(self.counter)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed_seconds += time.perf_counter() - self._start
            self._start = None
        self.group.counter = self._previous_counter
        self._previous_counter = None

    def record_bytes(self, channel: str, count: int) -> None:
        """Add ``count`` bytes to the named logical channel."""
        self.bytes_sent[channel] = self.bytes_sent.get(channel, 0) + count

    @property
    def exp_g1(self) -> int:
        """Full-cost Exp_G1 operations executed: generic plus MSM-folded.

        Exponentiations served from a fixed-base window table
        (``exp_g1_fixed_base``) or elided for a zero exponent
        (``exp_g1_skipped``) are excluded — benchmarks use this property to
        show those optimizations paying off against the paper's bounds.
        For the paper's one-Exp-per-element convention use
        :func:`repro.obs.exporters.model_equivalent_exp` on
        ``counter.snapshot()``.
        """
        return self.counter.exp_g1 + self.counter.exp_g1_msm

    @property
    def pairings(self) -> int:
        return self.counter.pairings

    def summary(self) -> dict:
        return {
            **self.counter.snapshot(),
            "elapsed_seconds": self.elapsed_seconds,
            "bytes_sent": dict(self.bytes_sent),
        }
