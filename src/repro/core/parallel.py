"""Multiprocessing fan-out for the audit/upload hot paths.

The paper's evaluation audits files of 100k–1M blocks with c = 460
challenged blocks; the per-block work (hash-to-curve, one MSM term, one
blind/unblind exponentiation) is embarrassingly parallel.  This module
chunks those per-block computations across a pool of worker processes
while preserving two invariants the rest of the repo depends on:

**Bit-identical results.**  The group is commutative and our arithmetic is
exact, so partial aggregates computed over contiguous chunks merge to the
same point regardless of chunking; and every random draw (blinding factors,
betas, gammas) happens *sequentially in the parent*, so a seeded run
produces byte-for-byte the same proofs at any ``--workers`` value.

**Exact op-count reconciliation.**  Each worker attaches a fresh
:class:`~repro.pairing.interface.OperationCounter` and returns the snapshot
delta alongside its result; the parent merges the deltas into its own
counter (:meth:`OperationCounter.merge`) *inside a per-worker tracer span*,
so phase traces, the cost table, and the PR-3 regression gate see exactly
the tallies a single-process run would produce.  This works because every
tally is per-term (one ``exp_g1_msm`` per nonzero MSM exponent, one
``hash_to_g1`` per id, …) and therefore invariant under chunking; the
partial-aggregate merges use raw, uncounted group additions — matching
:meth:`PairingGroup.multi_exp`, which doesn't tally its internal
additions either.

Workers are started with the ``fork`` context where available (Linux —
inherits the parent's imports cheaply) and receive the system parameters
once via the pool initializer.  Fixed-base tables are *not* rebuilt per
process: when a ``table_cache_dir`` is configured each worker loads the
serialized tables from :mod:`repro.ec.precompute`.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.core.blocks import Block, aggregate_block
from repro.core.params import SystemParams
from repro.crypto.blind_bls import BlindingState, unblind
from repro.obs.tracer import NULL_TRACER
from repro.pairing.interface import GroupElement, OperationCounter

#: Below this many items a fan-out costs more in pickling than it saves.
MIN_PARALLEL_ITEMS = 8

# Populated inside each worker process by :func:`_init_worker`.
_WORKER: dict = {}


def chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into ≤ ``n_chunks`` contiguous ``(lo, hi)``.

    Deterministic and order-preserving — the merge order (and therefore
    every result) is independent of worker scheduling.  Chunk sizes differ
    by at most one.

    >>> chunk_ranges(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> chunk_ranges(2, 8)  # never more chunks than items
    [(0, 1), (1, 2)]
    """
    if n_items <= 0:
        return []
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    ranges = []
    lo = 0
    for i in range(n_chunks):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def default_workers() -> int:
    """A sensible ``--workers`` default: the machine's CPU count."""
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Worker-side task functions (must be module-level for pickling)
# ---------------------------------------------------------------------------

def _init_worker(params: SystemParams, table_cache_dir, window: int) -> None:
    group = params.group
    counter = OperationCounter()
    group.attach_counter(counter)
    tables = None
    if table_cache_dir is not None:
        from repro.ec.precompute import load_or_build

        tables, _ = load_or_build(
            table_cache_dir, group, list(params.u), params.order.bit_length(), window
        )
    _WORKER.clear()
    _WORKER.update(params=params, group=group, counter=counter, tables=tables)


def _delta_since(before):
    return _WORKER["counter"].diff(before)


def _task_msm(payload):
    """Partial MSM over raw G1 points: returns (point, op-delta)."""
    points, exponents = payload
    group = _WORKER["group"]
    before = _WORKER["counter"].snapshot()
    elements = [GroupElement(group, pt, "g1") for pt in points]
    acc = group.multi_exp(elements, exponents)
    return acc.point, _delta_since(before)


def _task_hash_msm(payload):
    """Partial ∏ H(id_i)^{β_i}: hashes ids then MSMs, per Eq. 6's RHS."""
    block_ids, betas = payload
    group = _WORKER["group"]
    before = _WORKER["counter"].snapshot()
    elements = [group.hash_to_g1(block_id) for block_id in block_ids]
    acc = group.multi_exp(elements, betas)
    return acc.point, _delta_since(before)


def _task_blind(payload):
    """Aggregate + blind a chunk of blocks with parent-drawn factors.

    Uses the cached fixed-base tables when the pool was configured with a
    ``table_cache_dir`` (matching a parent owner built from the same cache),
    the plain aggregate otherwise.
    """
    raw_blocks, rs = payload
    params = _WORKER["params"]
    group = _WORKER["group"]
    tables = _WORKER["tables"]
    before = _WORKER["counter"].snapshot()
    g = group.g1()
    out = []
    for (block_id, elements), r in zip(raw_blocks, rs):
        block = Block(block_id=block_id, elements=elements)
        if tables is not None:
            from repro.ec.fixed_base import aggregate_with_tables

            aggregate = aggregate_with_tables(params, block, tables)
        else:
            aggregate = aggregate_block(params, block)
        out.append((aggregate * g**r).point)
    return out, _delta_since(before)


def _task_unblind(payload):
    """Unblind a chunk of blind signatures (Eq. 5, checks already done)."""
    blinded_pts, sig_pts, rs, pk_pt, pk1_pt = payload
    group = _WORKER["group"]
    before = _WORKER["counter"].snapshot()
    pk = GroupElement(group, pk_pt, "g2")
    pk1 = GroupElement(group, pk1_pt, "g1")
    out = []
    for blinded_pt, sig_pt, r in zip(blinded_pts, sig_pts, rs):
        state = BlindingState(r=r, blinded=GroupElement(group, blinded_pt, "g1"))
        signature = GroupElement(group, sig_pt, "g1")
        out.append(unblind(group, state, signature, pk, pk1=pk1, check=False).point)
    return out, _delta_since(before)


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------

class WorkerPool:
    """A persistent pool of processes for chunked audit/upload work.

    Construct once (it forks lazily on first use), share between the cloud,
    verifier, and owner so one audit round reuses the same workers, and
    :meth:`close` it (or use it as a context manager) when done.

    Args:
        params: the system parameters every worker needs.
        workers: process count; ``<= 1`` makes every method run inline in
            the parent (identical results and op counts, no processes).
        table_cache_dir: when given, workers load the u_1..u_k fixed-base
            tables from this :mod:`repro.ec.precompute` cache instead of
            rebuilding them per process, and blinding uses them.
        window: fixed-base window width for the cached tables.
        tracer: an :class:`~repro.obs.tracer.Tracer`; each fan-out merges
            every worker's op delta inside a ``<task>.worker`` span so
            traces show per-worker cost.
    """

    def __init__(
        self,
        params: SystemParams,
        workers: int,
        table_cache_dir=None,
        window: int = 4,
        tracer=None,
    ):
        self.params = params
        self.group = params.group
        self.workers = max(1, int(workers))
        self.table_cache_dir = table_cache_dir
        self.window = window
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._pool = None

    # -- lifecycle ---------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.params, self.table_cache_dir, self.window),
            )
        return self._pool

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- merge helpers -----------------------------------------------------
    def _merge_partials(self, task: str, results):
        """Merge (point, delta) partials: raw adds + counter/span merges."""
        counter = self.group.counter
        acc = None
        for i, (point, delta) in enumerate(results):
            # Merging inside the span lets the tracer attribute this
            # worker's ops to its own `<task>.worker` span automatically.
            with self.tracer.span(f"{task}.worker", worker=i):
                if counter is not None:
                    counter.merge(delta)
            acc = point if acc is None else self.group._add(acc, point, "g1")
        return GroupElement(self.group, acc, "g1")

    def _run(self, task_fn, payloads):
        pool = self._ensure_pool()
        return pool.map(task_fn, payloads)

    # -- fan-out operations -------------------------------------------------
    def msm(self, elements: list[GroupElement], exponents: list[int]) -> GroupElement:
        """``prod elements[i] ** exponents[i]`` chunked across workers.

        Identical point and op tallies to
        :meth:`~repro.pairing.interface.PairingGroup.multi_exp` on the
        whole input.
        """
        if len(elements) != len(exponents):
            raise ValueError("elements and exponents must have equal length")
        if not elements:
            raise ValueError("need at least one term")
        if self.workers <= 1 or len(elements) < MIN_PARALLEL_ITEMS:
            return self.group.multi_exp(elements, exponents)
        payloads = [
            ([el.point for el in elements[lo:hi]], list(exponents[lo:hi]))
            for lo, hi in chunk_ranges(len(elements), self.workers)
        ]
        return self._merge_partials("msm", self._run(_task_msm, payloads))

    def hash_msm(self, block_ids: list[bytes], betas: list[int]) -> GroupElement:
        """``prod H(id_i) ** beta_i`` — hash-to-curve fanned out too."""
        if len(block_ids) != len(betas):
            raise ValueError("block_ids and betas must have equal length")
        if not block_ids:
            raise ValueError("need at least one term")
        if self.workers <= 1 or len(block_ids) < MIN_PARALLEL_ITEMS:
            elements = [self.group.hash_to_g1(block_id) for block_id in block_ids]
            return self.group.multi_exp(elements, betas)
        payloads = [
            (list(block_ids[lo:hi]), list(betas[lo:hi]))
            for lo, hi in chunk_ranges(len(block_ids), self.workers)
        ]
        return self._merge_partials("hash_msm", self._run(_task_hash_msm, payloads))

    def blind_blocks(self, blocks: list[Block], rs: list[int]) -> list[GroupElement]:
        """Aggregate + blind every block, with parent-drawn blinding factors.

        The caller draws ``rs`` (sequentially, before calling) so the rng
        stream is identical to a serial run.
        """
        if len(blocks) != len(rs):
            raise ValueError("one blinding factor per block required")
        if self.workers <= 1 or len(blocks) < MIN_PARALLEL_ITEMS:
            return None  # caller runs its serial path
        payloads = [
            (
                [(b.block_id, b.elements) for b in blocks[lo:hi]],
                list(rs[lo:hi]),
            )
            for lo, hi in chunk_ranges(len(blocks), self.workers)
        ]
        results = self._run(_task_blind, payloads)
        return self._collect_lists("blind", results)

    def unblind_batch(
        self,
        states: list[BlindingState],
        signatures: list[GroupElement],
        pk: GroupElement,
        pk1: GroupElement,
    ) -> list[GroupElement] | None:
        """Unblind every signature (Eq. 5) across workers."""
        if len(states) != len(signatures):
            raise ValueError("one blind signature per state required")
        if self.workers <= 1 or len(states) < MIN_PARALLEL_ITEMS:
            return None  # caller runs its serial path
        payloads = [
            (
                [s.blinded.point for s in states[lo:hi]],
                [sig.point for sig in signatures[lo:hi]],
                [s.r for s in states[lo:hi]],
                pk.point,
                pk1.point,
            )
            for lo, hi in chunk_ranges(len(states), self.workers)
        ]
        results = self._run(_task_unblind, payloads)
        return self._collect_lists("unblind", results)

    def _collect_lists(self, task: str, results) -> list[GroupElement]:
        counter = self.group.counter
        out: list[GroupElement] = []
        for i, (points, delta) in enumerate(results):
            with self.tracer.span(f"{task}.worker", worker=i):
                if counter is not None:
                    counter.merge(delta)
            out.extend(GroupElement(self.group, pt, "g1") for pt in points)
        return out
