"""One-stop facade wiring all actors together.

:class:`SemPdpSystem` is the public API most applications want: create a
system (single- or multi-SEM), enroll members, have them sign-and-upload
files, and audit.  The lower-level actor classes remain available for
anything the facade does not cover.

Example:
    >>> from repro.pairing import toy_group
    >>> from repro.core import SemPdpSystem
    >>> system = SemPdpSystem.create(toy_group(), k=4)
    >>> alice = system.enroll("alice")
    >>> receipt = system.upload(alice, b"hello shared cloud", b"file-1")
    >>> system.audit(b"file-1")
    True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cloud import CloudServer
from repro.core.group_mgmt import GroupManager
from repro.core.multi_sem import MultiSEMClient, SEMCluster
from repro.core.owner import DataOwner, SignedFile
from repro.core.params import SystemParams, setup
from repro.core.sem import SecurityMediator
from repro.core.verifier import PublicVerifier
from repro.obs import NULL_OBS
from repro.pairing.interface import PairingGroup


@dataclass(frozen=True)
class UploadReceipt:
    """What an owner gets back after a successful sign-and-upload."""

    file_id: bytes
    n_blocks: int
    encrypted: bool
    nonce: bytes | None


class SemPdpSystem:
    """An organization's complete SEM-PDP deployment."""

    def __init__(
        self,
        params: SystemParams,
        manager: GroupManager,
        cloud: CloudServer,
        verifier: PublicVerifier,
        sem: SecurityMediator | None = None,
        cluster: SEMCluster | None = None,
        rng=None,
        obs=None,
    ):
        if (sem is None) == (cluster is None):
            raise ValueError("provide exactly one of sem / cluster")
        self.params = params
        self.manager = manager
        self.cloud = cloud
        self.verifier = verifier
        self.sem = sem
        self.cluster = cluster
        self._rng = rng
        self.obs = obs if obs is not None else NULL_OBS
        self.obs.observe_group(params.group)
        self.pool = None
        self.table_cache_dir = None

    def close(self) -> None:
        """Release the shared worker pool, if any (idempotent)."""
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "SemPdpSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- construction -----------------------------------------------------
    @classmethod
    def create(
        cls,
        group: PairingGroup,
        k: int = 8,
        threshold: int | None = None,
        verify_on_upload: bool = False,
        rng=None,
        obs=None,
        workers: int = 1,
        table_cache_dir=None,
    ) -> "SemPdpSystem":
        """Stand up a full deployment.

        Args:
            group: the pairing group (``default_group()`` for the paper's
                parameters, ``toy_group()`` for fast experiments).
            k: elements aggregated per block.
            threshold: when given, deploy a multi-SEM cluster with this t
                (and w = 2t − 1 SEMs); a single SEM otherwise.
            verify_on_upload: make the cloud check organization signatures
                before accepting uploads.
            obs: an :class:`~repro.obs.Observability` bundle; when given,
                every protocol phase emits a traced span with its Exp/Pair
                tallies and the system's group feeds the shared counter.
            workers: when > 1, share one
                :class:`~repro.core.parallel.WorkerPool` of this many
                processes across the cloud, verifier, and enrolled owners;
                proofs stay bit-identical and op tallies exactly equal to a
                single-process run.  Call :meth:`close` (or use the system
                as a context manager) to release the processes.
            table_cache_dir: persist the u_1..u_k fixed-base tables via
                :mod:`repro.ec.precompute` here; owners and pool workers
                load them instead of rebuilding.
        """
        obs = obs if obs is not None else NULL_OBS
        obs.observe_group(group)
        with obs.tracer.span("keygen", k=k, threshold=threshold or 0):
            params = setup(group, k)
            manager = GroupManager(rng=rng)
            if threshold is None:
                sem = SecurityMediator(group, rng=rng)
                cluster = None
                org_pk = sem.pk
                manager.register_sem(sem)
            else:
                cluster = SEMCluster(group, t=threshold, rng=rng)
                sem = None
                org_pk = cluster.master_pk
                for share_sem in cluster.sems:
                    manager.register_sem(share_sem)
            pool = None
            if workers > 1:
                from repro.core.parallel import WorkerPool

                pool = WorkerPool(
                    params,
                    workers,
                    table_cache_dir=table_cache_dir,
                    tracer=obs.tracer,
                )
            cloud = CloudServer(
                params, org_pk=org_pk, verify_on_upload=verify_on_upload,
                rng=rng, pool=pool,
            )
            verifier = PublicVerifier(params, org_pk, rng=rng, pool=pool)
        system = cls(
            params=params,
            manager=manager,
            cloud=cloud,
            verifier=verifier,
            sem=sem,
            cluster=cluster,
            rng=rng,
            obs=obs,
        )
        system.pool = pool
        system.table_cache_dir = table_cache_dir
        return system

    @property
    def org_pk(self):
        return self.sem.pk if self.sem is not None else self.cluster.master_pk

    @property
    def org_pk_g1(self):
        return self.sem.pk_g1 if self.sem is not None else self.cluster.master_pk_g1

    # -- membership -----------------------------------------------------------
    def enroll(self, member_id: str) -> DataOwner:
        """Enroll a member and hand back a ready-to-use :class:`DataOwner`.

        The owner shares the system's worker pool and fixed-base table
        cache, so uploads parallelize whenever the system was created with
        ``workers > 1``.
        """
        credential = self.manager.join(member_id)
        return DataOwner(
            self.params,
            self.org_pk,
            credential=credential,
            rng=self._rng,
            table_cache_dir=self.table_cache_dir,
            pool=self.pool,
        )

    def revoke(self, member_id: str) -> None:
        """Instant revocation; stored signatures remain valid."""
        self.manager.revoke(member_id)

    # -- data path ---------------------------------------------------------------
    def _signing_service(self):
        if self.sem is not None:
            return self.sem
        return MultiSEMClient(self.cluster, rng=self._rng)

    def upload(
        self,
        owner: DataOwner,
        data: bytes,
        file_id: bytes,
        batch: bool = True,
        encrypt_key: bytes | None = None,
    ) -> UploadReceipt:
        """Sign ``data`` via the SEM(s) and store it in the cloud."""
        tracer = self.obs.tracer
        with tracer.span("upload", bytes=len(data)):
            with tracer.span("sign", optimized=batch) as span:
                signed: SignedFile = owner.sign_file(
                    data,
                    file_id,
                    self._signing_service(),
                    batch=batch,
                    encrypt_key=encrypt_key,
                    sem_pk_g1=self.org_pk_g1,
                )
                span.set(
                    n_blocks=len(signed.blocks),
                    bytes_to_sem=self.params.group.g1_element_bytes() * len(signed.blocks),
                    bytes_from_sem=self.params.group.g1_element_bytes() * len(signed.blocks),
                )
            with tracer.span("store", n_blocks=len(signed.blocks)):
                self.cloud.store(signed)
        return UploadReceipt(
            file_id=file_id,
            n_blocks=len(signed.blocks),
            encrypted=signed.encrypted,
            nonce=signed.nonce,
        )

    def audit(
        self, file_id: bytes, sample_size: int | None = None, beta_bits: int | None = None
    ) -> bool:
        """Run one Challenge/Response/Verify round as a public verifier."""
        tracer = self.obs.tracer
        with tracer.span("audit"):
            stored = self.cloud.retrieve(file_id)
            with tracer.span("challenge", n_blocks=stored.n_blocks) as span:
                challenge = self.verifier.generate_challenge(
                    file_id, stored.n_blocks, sample_size=sample_size, beta_bits=beta_bits
                )
                span.set(challenged=len(challenge))
            with tracer.span("proofgen", challenged=len(challenge)):
                response = self.cloud.generate_proof(file_id, challenge)
            with tracer.span(
                "proofverify", challenged=len(challenge), k=self.params.k
            ) as span:
                ok = self.verifier.verify(challenge, response)
                span.set(ok=ok)
        return ok
