"""Canonical binary serialization for protocol objects.

A downstream deployment needs to move challenges, proofs, and signed files
between processes; this module gives every protocol object a compact,
versioned, deterministic encoding:

* varint-framed fields (no delimiters to escape),
* group elements in their compressed point encoding,
* scalars as fixed-width big-endian integers sized by the group order.

The encodings are self-describing enough to be decoded with only the
:class:`~repro.core.params.SystemParams` in hand, and they are what the
CLI (:mod:`repro.cli`) persists to disk.
"""

from __future__ import annotations

import io

from repro.core.blocks import Block
from repro.core.challenge import Challenge, ProofResponse
from repro.core.owner import SignedFile
from repro.core.params import SystemParams

_MAGIC_SIGNED_FILE = b"SPDPf1"
_MAGIC_CHALLENGE = b"SPDPc1"
_MAGIC_RESPONSE = b"SPDPr1"


def write_varint(stream: io.BytesIO, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            stream.write(bytes([byte | 0x80]))
        else:
            stream.write(bytes([byte]))
            return


def read_varint(stream: io.BytesIO) -> int:
    shift = 0
    result = 0
    while True:
        raw = stream.read(1)
        if not raw:
            raise ValueError("truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def _write_bytes(stream: io.BytesIO, data: bytes) -> None:
    write_varint(stream, len(data))
    stream.write(data)


def _read_bytes(stream: io.BytesIO) -> bytes:
    length = read_varint(stream)
    data = stream.read(length)
    if len(data) != length:
        raise ValueError("truncated byte field")
    return data


def _scalar_width(params: SystemParams) -> int:
    return (params.order.bit_length() + 7) // 8


# ---------------------------------------------------------------------------
# SignedFile
# ---------------------------------------------------------------------------

def encode_signed_file(signed: SignedFile, params: SystemParams) -> bytes:
    stream = io.BytesIO()
    stream.write(_MAGIC_SIGNED_FILE)
    _write_bytes(stream, signed.file_id)
    stream.write(b"\x01" if signed.encrypted else b"\x00")
    _write_bytes(stream, signed.nonce or b"")
    write_varint(stream, len(signed.blocks))
    write_varint(stream, params.k)
    width = _scalar_width(params)
    for block in signed.blocks:
        _write_bytes(stream, block.block_id)
        for element in block.elements:
            stream.write(element.to_bytes(width, "big"))
    for signature in signed.signatures:
        _write_bytes(stream, signature.to_bytes())
    return stream.getvalue()


def decode_signed_file(data: bytes, params: SystemParams) -> SignedFile:
    stream = io.BytesIO(data)
    if stream.read(len(_MAGIC_SIGNED_FILE)) != _MAGIC_SIGNED_FILE:
        raise ValueError("not a serialized SignedFile")
    file_id = _read_bytes(stream)
    encrypted = stream.read(1) == b"\x01"
    nonce = _read_bytes(stream) or None
    n = read_varint(stream)
    k = read_varint(stream)
    if k != params.k:
        raise ValueError(f"file was encoded with k={k}, params have k={params.k}")
    width = _scalar_width(params)
    blocks = []
    for _ in range(n):
        block_id = _read_bytes(stream)
        elements = tuple(
            int.from_bytes(stream.read(width), "big") for _ in range(k)
        )
        blocks.append(Block(block_id=block_id, elements=elements))
    signatures = tuple(
        params.group.deserialize_g1(_read_bytes(stream)) for _ in range(n)
    )
    return SignedFile(
        file_id=file_id,
        blocks=tuple(blocks),
        signatures=signatures,
        encrypted=encrypted,
        nonce=nonce,
    )


# ---------------------------------------------------------------------------
# Challenge
# ---------------------------------------------------------------------------

def encode_challenge(challenge: Challenge, params: SystemParams) -> bytes:
    stream = io.BytesIO()
    stream.write(_MAGIC_CHALLENGE)
    write_varint(stream, len(challenge))
    width = _scalar_width(params)
    for index, block_id, beta in zip(
        challenge.indices, challenge.block_ids, challenge.betas
    ):
        write_varint(stream, index)
        _write_bytes(stream, block_id)
        stream.write(beta.to_bytes(width, "big"))
    return stream.getvalue()


def decode_challenge(data: bytes, params: SystemParams) -> Challenge:
    stream = io.BytesIO(data)
    if stream.read(len(_MAGIC_CHALLENGE)) != _MAGIC_CHALLENGE:
        raise ValueError("not a serialized Challenge")
    count = read_varint(stream)
    width = _scalar_width(params)
    indices, ids, betas = [], [], []
    for _ in range(count):
        indices.append(read_varint(stream))
        ids.append(_read_bytes(stream))
        betas.append(int.from_bytes(stream.read(width), "big"))
    return Challenge(indices=tuple(indices), block_ids=tuple(ids), betas=tuple(betas))


# ---------------------------------------------------------------------------
# ProofResponse
# ---------------------------------------------------------------------------

def encode_response(response: ProofResponse, params: SystemParams) -> bytes:
    stream = io.BytesIO()
    stream.write(_MAGIC_RESPONSE)
    _write_bytes(stream, response.sigma.to_bytes())
    write_varint(stream, len(response.alphas))
    width = _scalar_width(params)
    for alpha in response.alphas:
        stream.write(alpha.to_bytes(width, "big"))
    return stream.getvalue()


def decode_response(data: bytes, params: SystemParams) -> ProofResponse:
    stream = io.BytesIO(data)
    if stream.read(len(_MAGIC_RESPONSE)) != _MAGIC_RESPONSE:
        raise ValueError("not a serialized ProofResponse")
    sigma = params.group.deserialize_g1(_read_bytes(stream))
    count = read_varint(stream)
    width = _scalar_width(params)
    alphas = tuple(
        int.from_bytes(stream.read(width), "big") for _ in range(count)
    )
    return ProofResponse(sigma=sigma, alphas=alphas)
