"""The data owner — paper Blind and Unblind (Section IV-B) plus the
end-to-end per-file signing workflow (Section IV-A).

For each block the owner (1) aggregates the k elements into one G1 value,
(2) blinds it (Eq. 2), (3) obtains σ̃ from the SEM (Eq. 3), and (4) checks
and unblinds it (Eq. 4/5).  With ``batch=True`` step (4) verifies all n
blind signatures at once (Eq. 7) — the "Our Scheme*" optimization that
Figure 4(a) shows closes the gap with SW08.

The optional data-privacy layer (Section IV-C) encrypts the payload with
ChaCha20 before any of this happens, so neither the SEM nor the cloud ever
sees plaintext.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.core.blocks import Block, aggregate_block, encode_data
from repro.core.params import SystemParams
from repro.crypto.blind_bls import BlindingState, batch_unblind_verify, blind, unblind
from repro.crypto.symmetric import chacha20_decrypt, chacha20_encrypt
from repro.pairing.interface import GroupElement


@dataclass(frozen=True)
class SignedFile:
    """The owner's output: blocks plus one signature per block, ready to upload."""

    file_id: bytes
    blocks: tuple[Block, ...]
    signatures: tuple[GroupElement, ...]
    encrypted: bool = False
    nonce: bytes | None = None

    def __post_init__(self):
        if len(self.blocks) != len(self.signatures):
            raise ValueError("one signature per block required")


@dataclass
class OwnerStats:
    """Per-file workload statistics for communication accounting."""

    blocks: int = 0
    bytes_to_sem: int = 0
    bytes_from_sem: int = 0
    resigned_blocks: int = 0
    extra: dict = field(default_factory=dict)


class DataOwner:
    """A group member who signs (via the SEM) and uploads shared data.

    Args:
        use_fixed_base: precompute window tables for the u_1..u_k bases so
            Bind's k exponentiations become table lookups (one-time cost
            amortized across all blocks the owner ever signs).
    """

    def __init__(self, params: SystemParams, sem_pk: GroupElement, credential=None,
                 rng=None, use_fixed_base: bool = False):
        self.params = params
        self.group = params.group
        self.sem_pk = sem_pk
        self.credential = credential
        self._rng = rng
        self.stats = OwnerStats()
        self._tables = None
        if use_fixed_base:
            from repro.ec.fixed_base import build_tables

            self._tables = build_tables(list(params.u), params.order.bit_length())

    # -- single-block primitives (the paper's algorithms) -------------------
    def aggregate(self, block: Block) -> GroupElement:
        """H(id)·∏u^m — via fixed-base tables when enabled."""
        if self._tables is not None:
            from repro.ec.fixed_base import aggregate_with_tables

            return aggregate_with_tables(self.params, block, self._tables)
        return aggregate_block(self.params, block)

    def blind_block(self, block: Block) -> BlindingState:
        """Blind (Eq. 2): aggregate the block, then blind the aggregate."""
        return blind(self.group, self.aggregate(block), self._rng)

    def unblind(
        self,
        state: BlindingState,
        blind_signature: GroupElement,
        check: bool = True,
        sem_pk_g1: GroupElement | None = None,
    ) -> GroupElement:
        """Unblind (Eq. 4/5): verify then recover σ_i = M_i^y."""
        return unblind(
            self.group, state, blind_signature, self.sem_pk, pk1=sem_pk_g1, check=check
        )

    # -- per-file workflow ----------------------------------------------------
    def sign_file(
        self,
        data: bytes,
        file_id: bytes,
        sem,
        batch: bool = True,
        encrypt_key: bytes | None = None,
        sem_pk_g1: GroupElement | None = None,
    ) -> SignedFile:
        """Run Blind/Sign/Unblind for every block of ``data``.

        Args:
            data: the raw payload.
            file_id: unique file identifier (block ids derive from it).
            sem: anything exposing ``sign_blinded_batch(blinded, credential)``
                (a :class:`~repro.core.sem.SecurityMediator`, a
                :class:`~repro.core.multi_sem.MultiSEMClient`, or a network
                proxy).
            batch: use Eq. 7 batch verification (2 pairings total) instead
                of per-signature Eq. 4 checks (2 pairings each).
            encrypt_key: when given, ChaCha20-encrypt the payload first
                (data privacy, Section IV-C).

        Returns:
            A :class:`SignedFile` ready for
            :meth:`repro.core.cloud.CloudServer.store`.
        """
        nonce = None
        encrypted = False
        if encrypt_key is not None:
            nonce = secrets.token_bytes(12)
            data = chacha20_encrypt(encrypt_key, nonce, data)
            encrypted = True
        blocks = encode_data(data, self.params, file_id)
        states = [self.blind_block(block) for block in blocks]
        blinded = [s.blinded for s in states]
        element_size = self.group.g1_element_bytes()
        self.stats.blocks += len(blocks)
        self.stats.bytes_to_sem += element_size * len(blocks)
        blind_signatures = sem.sign_blinded_batch(blinded, self.credential)
        self.stats.bytes_from_sem += element_size * len(blind_signatures)
        if batch:
            if not batch_unblind_verify(self.group, blinded, blind_signatures, self.sem_pk, self._rng):
                raise ValueError("batch verification of blind signatures failed (Eq. 7)")
            signatures = tuple(
                self.unblind(s, bs, check=False, sem_pk_g1=sem_pk_g1)
                for s, bs in zip(states, blind_signatures)
            )
        else:
            signatures = tuple(
                self.unblind(s, bs, check=True, sem_pk_g1=sem_pk_g1)
                for s, bs in zip(states, blind_signatures)
            )
        return SignedFile(
            file_id=file_id,
            blocks=tuple(blocks),
            signatures=signatures,
            encrypted=encrypted,
            nonce=nonce,
        )

    @staticmethod
    def decrypt_file(data: bytes, key: bytes, nonce: bytes) -> bytes:
        """Undo the data-privacy layer after downloading from the cloud."""
        return chacha20_decrypt(key, nonce, data)
