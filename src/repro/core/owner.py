"""The data owner — paper Blind and Unblind (Section IV-B) plus the
end-to-end per-file signing workflow (Section IV-A).

For each block the owner (1) aggregates the k elements into one G1 value,
(2) blinds it (Eq. 2), (3) obtains σ̃ from the SEM (Eq. 3), and (4) checks
and unblinds it (Eq. 4/5).  With ``batch=True`` step (4) verifies all n
blind signatures at once (Eq. 7) — the "Our Scheme*" optimization that
Figure 4(a) shows closes the gap with SW08.

The optional data-privacy layer (Section IV-C) encrypts the payload with
ChaCha20 before any of this happens, so neither the SEM nor the cloud ever
sees plaintext.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.core.blocks import Block, aggregate_block, encode_data
from repro.core.params import SystemParams
from repro.crypto.blind_bls import BlindingState, batch_unblind_verify, blind, unblind
from repro.crypto.symmetric import chacha20_decrypt, chacha20_encrypt
from repro.pairing.interface import GroupElement


@dataclass(frozen=True)
class SignedFile:
    """The owner's output: blocks plus one signature per block, ready to upload."""

    file_id: bytes
    blocks: tuple[Block, ...]
    signatures: tuple[GroupElement, ...]
    encrypted: bool = False
    nonce: bytes | None = None

    def __post_init__(self):
        if len(self.blocks) != len(self.signatures):
            raise ValueError("one signature per block required")


@dataclass
class OwnerStats:
    """Per-file workload statistics for communication accounting."""

    blocks: int = 0
    bytes_to_sem: int = 0
    bytes_from_sem: int = 0
    resigned_blocks: int = 0
    extra: dict = field(default_factory=dict)


class DataOwner:
    """A group member who signs (via the SEM) and uploads shared data.

    Args:
        use_fixed_base: precompute window tables for the u_1..u_k bases so
            Bind's k exponentiations become table lookups (one-time cost
            amortized across all blocks the owner ever signs).
        table_cache_dir: load/persist those tables via the
            :mod:`repro.ec.precompute` disk cache instead of rebuilding
            (implies ``use_fixed_base``).
        pool: a :class:`~repro.core.parallel.WorkerPool`; block
            aggregation/blinding, Eq. 7 batch verification, and unblinding
            then fan out across its workers.  Configure the pool with the
            same ``table_cache_dir`` so workers and owner use identical
            aggregation paths (keeping op tallies equal at any worker
            count).
    """

    def __init__(self, params: SystemParams, sem_pk: GroupElement, credential=None,
                 rng=None, use_fixed_base: bool = False,
                 table_cache_dir=None, pool=None):
        self.params = params
        self.group = params.group
        self.sem_pk = sem_pk
        self.credential = credential
        self._rng = rng
        self.stats = OwnerStats()
        self.pool = pool
        self._tables = None
        if table_cache_dir is not None:
            from repro.ec.precompute import load_or_build

            self._tables, _ = load_or_build(
                table_cache_dir, self.group, list(params.u), params.order.bit_length()
            )
        elif use_fixed_base:
            from repro.ec.precompute import build_tables_fast

            self._tables = build_tables_fast(list(params.u), params.order.bit_length())

    # -- single-block primitives (the paper's algorithms) -------------------
    def aggregate(self, block: Block) -> GroupElement:
        """H(id)·∏u^m — via fixed-base tables when enabled."""
        if self._tables is not None:
            from repro.ec.fixed_base import aggregate_with_tables

            return aggregate_with_tables(self.params, block, self._tables)
        return aggregate_block(self.params, block)

    def blind_block(self, block: Block) -> BlindingState:
        """Blind (Eq. 2): aggregate the block, then blind the aggregate."""
        return blind(self.group, self.aggregate(block), self._rng)

    def unblind(
        self,
        state: BlindingState,
        blind_signature: GroupElement,
        check: bool = True,
        sem_pk_g1: GroupElement | None = None,
    ) -> GroupElement:
        """Unblind (Eq. 4/5): verify then recover σ_i = M_i^y."""
        return unblind(
            self.group, state, blind_signature, self.sem_pk, pk1=sem_pk_g1, check=check
        )

    # -- per-file workflow ----------------------------------------------------
    def sign_file(
        self,
        data: bytes,
        file_id: bytes,
        sem,
        batch: bool = True,
        encrypt_key: bytes | None = None,
        sem_pk_g1: GroupElement | None = None,
    ) -> SignedFile:
        """Run Blind/Sign/Unblind for every block of ``data``.

        Args:
            data: the raw payload.
            file_id: unique file identifier (block ids derive from it).
            sem: anything exposing ``sign_blinded_batch(blinded, credential)``
                (a :class:`~repro.core.sem.SecurityMediator`, a
                :class:`~repro.core.multi_sem.MultiSEMClient`, or a network
                proxy).
            batch: use Eq. 7 batch verification (2 pairings total) instead
                of per-signature Eq. 4 checks (2 pairings each).
            encrypt_key: when given, ChaCha20-encrypt the payload first
                (data privacy, Section IV-C).

        Returns:
            A :class:`SignedFile` ready for
            :meth:`repro.core.cloud.CloudServer.store`.
        """
        nonce = None
        encrypted = False
        if encrypt_key is not None:
            nonce = secrets.token_bytes(12)
            data = chacha20_encrypt(encrypt_key, nonce, data)
            encrypted = True
        blocks = encode_data(data, self.params, file_id)
        states = self._blind_all(blocks)
        blinded = [s.blinded for s in states]
        element_size = self.group.g1_element_bytes()
        self.stats.blocks += len(blocks)
        self.stats.bytes_to_sem += element_size * len(blocks)
        blind_signatures = sem.sign_blinded_batch(blinded, self.credential)
        self.stats.bytes_from_sem += element_size * len(blind_signatures)
        if batch:
            if not batch_unblind_verify(
                self.group, blinded, blind_signatures, self.sem_pk, self._rng,
                pool=self.pool,
            ):
                raise ValueError("batch verification of blind signatures failed (Eq. 7)")
            signatures = self._unblind_all(states, blind_signatures, sem_pk_g1)
        else:
            signatures = tuple(
                self.unblind(s, bs, check=True, sem_pk_g1=sem_pk_g1)
                for s, bs in zip(states, blind_signatures)
            )
        return SignedFile(
            file_id=file_id,
            blocks=tuple(blocks),
            signatures=signatures,
            encrypted=encrypted,
            nonce=nonce,
        )

    # -- parallel fan-out helpers ------------------------------------------
    def _blind_all(self, blocks: list[Block]) -> list[BlindingState]:
        """Blind every block, fanning the aggregation out when pooled.

        The blinding factors are always drawn here, sequentially, so a
        seeded run consumes the rng stream identically at any worker count
        and signatures come out bit-for-bit equal.
        """
        if self.pool is None:
            return [self.blind_block(block) for block in blocks]
        rs = [self.group.random_nonzero_scalar(self._rng) for _ in blocks]
        blinded = self.pool.blind_blocks(blocks, rs)
        if blinded is None:  # pool chose the inline path
            return [
                BlindingState(r=r, blinded=self.aggregate(b) * self.group.g1() ** r)
                for b, r in zip(blocks, rs)
            ]
        return [BlindingState(r=r, blinded=m) for r, m in zip(rs, blinded)]

    def _unblind_all(self, states, blind_signatures, sem_pk_g1) -> tuple:
        """Unblind every signature (Eq. 5), fanned out when pooled."""
        if self.pool is not None:
            pk1 = sem_pk_g1
            if pk1 is None and self.group.is_symmetric:
                from repro.pairing.interface import GroupElement as _GE

                pk1 = _GE(self.group, self.sem_pk.point, "g1")
            if pk1 is not None:
                result = self.pool.unblind_batch(
                    states, blind_signatures, self.sem_pk, pk1
                )
                if result is not None:
                    return tuple(result)
        return tuple(
            self.unblind(s, bs, check=False, sem_pk_g1=sem_pk_g1)
            for s, bs in zip(states, blind_signatures)
        )

    @staticmethod
    def decrypt_file(data: bytes, key: bytes, nonce: bytes) -> bytes:
        """Undo the data-privacy layer after downloading from the cloud."""
        return chacha20_decrypt(key, nonce, data)
