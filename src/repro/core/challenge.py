"""Challenge and response message types (paper Challenge/Response).

A challenge is C = {(id_i, β_i)} for a subset I of block indices; a response
is R = (σ, α_1..α_k) with σ = ∏ σ_i^{β_i} and α_l = Σ β_i·m_{i,l} mod p.

Both types know their serialized size, which drives the communication
accounting of Section VI-A2.  Two size conventions are provided:

* ``paper_size_bits`` — the paper's accounting, which counts every group
  element and every scalar as |p| bits (the group-order size);
* ``wire_size_bytes`` — honest sizes with compressed G1 points over the
  512-bit base field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pairing.interface import GroupElement


@dataclass(frozen=True)
class Challenge:
    """C = {(id_i, β_i)}_{i ∈ I}; ``indices`` carries the positions i."""

    indices: tuple[int, ...]
    block_ids: tuple[bytes, ...]
    betas: tuple[int, ...]

    def __post_init__(self):
        if not (len(self.indices) == len(self.block_ids) == len(self.betas)):
            raise ValueError("indices, block_ids and betas must align")
        if len(set(self.indices)) != len(self.indices):
            raise ValueError("challenge indices must be distinct")

    def __len__(self) -> int:
        return len(self.indices)

    def paper_size_bits(self, p_bits: int, id_bits: int | None = None) -> int:
        """c·(|id| + |p|) bits, the paper's challenge accounting."""
        if id_bits is None:
            id_bits = p_bits
        return len(self.indices) * (id_bits + p_bits)

    def wire_size_bytes(self) -> int:
        return sum(len(bid) for bid in self.block_ids) + sum(
            (beta.bit_length() + 7) // 8 or 1 for beta in self.betas
        )


@dataclass(frozen=True)
class ProofResponse:
    """R = (σ, α_1..α_k)."""

    sigma: GroupElement
    alphas: tuple[int, ...]

    def paper_size_bits(self, p_bits: int) -> int:
        """(k + 1)·|p| bits, the paper's response accounting."""
        return (len(self.alphas) + 1) * p_bits

    def wire_size_bytes(self) -> int:
        scalar_bytes = (self.sigma.group.order.bit_length() + 7) // 8
        return len(self.sigma.to_bytes()) + scalar_bytes * len(self.alphas)
