"""Block encoding: raw bytes ↔ blocks of k elements of Z_p, plus the
aggregate-and-hash map that turns a block into the G1 element the SEM signs.

The paper divides data M into n blocks m_1..m_n, each holding k elements of
Z_p (Section IV-A).  We pack ``element_bytes = floor((|p| − 1)/8)`` bytes
per element so every packed integer is strictly below p, and prepend an
8-byte length header so decoding recovers the exact original bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SystemParams
from repro.pairing.interface import GroupElement

_LENGTH_HEADER_BYTES = 8


@dataclass(frozen=True)
class Block:
    """One data block: its identifier and its k Z_p elements."""

    block_id: bytes
    elements: tuple[int, ...]

    def __post_init__(self):
        if not self.elements:
            raise ValueError("a block needs at least one element")


def make_block_id(file_id: bytes, index: int) -> bytes:
    """Canonical block identifier id_i = file_id || index."""
    return file_id + b"#" + index.to_bytes(8, "big")


def encode_data(data: bytes, params: SystemParams, file_id: bytes) -> list[Block]:
    """Split ``data`` into blocks of k Z_p elements (zero-padded at the end).

    The original length is stored in an 8-byte header so
    :func:`decode_data` is an exact inverse.
    """
    element_bytes = params.element_bytes()
    payload = len(data).to_bytes(_LENGTH_HEADER_BYTES, "big") + data
    block_bytes = params.block_bytes()
    if len(payload) % block_bytes:
        payload += b"\x00" * (block_bytes - len(payload) % block_bytes)
    blocks = []
    for index in range(len(payload) // block_bytes):
        chunk = payload[index * block_bytes : (index + 1) * block_bytes]
        elements = tuple(
            int.from_bytes(chunk[j * element_bytes : (j + 1) * element_bytes], "big")
            for j in range(params.k)
        )
        blocks.append(Block(block_id=make_block_id(file_id, index), elements=elements))
    return blocks


def decode_data(blocks: list[Block], params: SystemParams) -> bytes:
    """Exact inverse of :func:`encode_data` (blocks must be in order)."""
    element_bytes = params.element_bytes()
    bound = 1 << (8 * element_bytes)
    for block in blocks:
        if any(not 0 <= element < bound for element in block.elements):
            raise ValueError("block element out of range for this encoding")
    payload = b"".join(
        element.to_bytes(element_bytes, "big") for block in blocks for element in block.elements
    )
    if len(payload) < _LENGTH_HEADER_BYTES:
        raise ValueError("not enough data to hold the length header")
    length = int.from_bytes(payload[:_LENGTH_HEADER_BYTES], "big")
    if length > len(payload) - _LENGTH_HEADER_BYTES:
        raise ValueError("corrupt length header")
    return payload[_LENGTH_HEADER_BYTES : _LENGTH_HEADER_BYTES + length]


def aggregate_block(params: SystemParams, block: Block) -> GroupElement:
    """The G1 aggregate  H(id_i) · ∏_l u_l^{m_{i,l}}  (inner part of Eq. 2).

    This is what gets blinded and signed: the resulting σ_i =
    [H(id_i) ∏ u_l^{m_{i,l}}]^y is the paper's verification metadata.
    """
    if len(block.elements) != params.k:
        raise ValueError(f"block has {len(block.elements)} elements, expected k={params.k}")
    group = params.group
    acc = group.hash_to_g1(block.block_id)
    for u_l, m_l in zip(params.u, block.elements):
        if m_l:
            acc = acc * u_l**m_l
        elif group.counter is not None:
            # Table I counts this elided u^0 as one Exp; keep it reconcilable.
            group.counter.exp_g1_skipped += 1
    return acc
